"""Head-node crash recovery: checkpoint/journal + warm reconciliation.

Acceptance run for the durable cluster tier: the head node dies mid-run
(taking the queue, budget accounting, and every validated model with it)
and a supervised restart recovers from the checkpoint + journal.  Scored
against a no-crash golden run of the identical workload under a static
target: no job lost, none admitted twice, planned draw never over the
ceiling, live jobs reconciled warm, and the power trace re-converging
within the documented bound.
"""

from repro.experiments import resilience
from repro.experiments.scorecard import score_headnode_recovery


def test_headnode_crash_recovery(benchmark, report):
    result = benchmark.pedantic(
        lambda: resilience.run_headnode_recovery(
            duration=1200.0, seed=1, crash_time=400.0, down_for=60.0
        ),
        rounds=1,
        iterations=1,
    )
    card = score_headnode_recovery(result)

    assert result.budget_violations == 0
    assert not result.lost_jobs
    assert not result.double_admitted
    assert result.recovery_merges > 0
    assert result.convergence_time is not None
    assert result.convergence_time <= 120.0
    assert card.all_passed, card.render()

    report(
        resilience.format_headnode_table(result) + "\n\n" + card.render(),
        recovery_merges=result.recovery_merges,
        checkpoints_written=result.checkpoints_written,
        convergence_time=result.convergence_time,
        orphans=len(result.orphaned),
    )
