"""§5.2: the QoS-constant justification from queue-trace statistics.

The paper justifies Q = 5 at 90 % by measuring a month of real queue data
whose 90th-percentile wait/execution ratio exceeds 22, making Q = 5 strictly
more aggressive.  We regenerate the check from the synthetic heavy-tailed
trace that stands in for that data.
"""

from repro.aqa.qos import QoSConstraint, generate_queue_trace, wait_exec_ratio_percentile


def test_qos_constant_justification(benchmark, report):
    trace = benchmark.pedantic(
        lambda: generate_queue_trace(50_000, seed=0), rounds=1, iterations=1
    )
    ratio90 = wait_exec_ratio_percentile(trace, 90.0)
    assert ratio90 > 22.0, "trace must be harsher than the Q=5 constraint"
    constraint = QoSConstraint(limit=5.0, probability=0.9)
    # Jobs run at Q equal to their wait/exec ratio would violate Q=5 badly:
    ratios = trace[:, 0] / trace[:, 1]
    assert not constraint.satisfied(ratios)
    report(
        f"queue-trace 90th-pct wait/exec ratio: {ratio90:.1f} (paper: > 22)\n"
        f"Q=5@90% would {'hold' if constraint.satisfied(ratios) else 'NOT hold'} "
        "for jobs degraded to the trace's wait ratios",
        ratio90=round(float(ratio90), 2),
    )
