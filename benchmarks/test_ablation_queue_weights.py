"""Ablation: AQA queue-weight training vs uniform weights (paper §4.4.2).

"Each queue is assigned a weight of node allocations that is tuned over
simulations of expected power-constraint and job-submission scenarios."
This bench tunes the weights on one schedule seed and validates on another:
the tuned weights must score no worse than uniform weights on the training
objective and carry most of the gain to the held-out scenario.
"""

import numpy as np

from repro.aqa.regulation import BoundedRandomWalkSignal
from repro.aqa.training import train_queue_weights
from repro.tabsim.simulator import SimConfig, TabularClusterSimulator
from repro.tabsim.tables import SimJobType
from repro.workloads.generator import PoissonScheduleGenerator
from repro.workloads.nas import long_running_mix

NUM_NODES = 250
NODE_SCALE = 2


def objective_for(seed: int):
    """QoS-weighted objective for one job-submission scenario."""
    base = long_running_mix()
    sim_types = [SimJobType.from_job_type(t, node_scale=NODE_SCALE) for t in base]
    scaled = [t.scaled_nodes(NODE_SCALE) for t in base]

    def objective(weights) -> float:
        generator = PoissonScheduleGenerator(
            scaled, utilization=0.85, total_nodes=NUM_NODES, seed=seed
        )
        schedule = generator.generate(1000.0)
        sim = TabularClusterSimulator(
            sim_types,
            schedule,
            BoundedRandomWalkSignal(5000.0, seed=seed + 1),
            SimConfig(
                num_nodes=NUM_NODES,
                average_power=NUM_NODES * 140.0,  # power-constrained regime
                reserve=NUM_NODES * 12.0,
                seed=seed + 2,
            ),
            queue_weights=dict(weights),
        )
        result = sim.run(1000.0, drain=True)
        q = np.concatenate(
            [v for v in result.qos_by_type().values() if v.size] or [np.zeros(1)]
        )
        # Mean QoS plus a tail penalty: what AQA's QoS constraint cares about.
        return float(np.mean(q) + np.percentile(q, 90))

    return objective, [t.name for t in sim_types]


def test_ablation_queue_weight_training(benchmark, report):
    def sweep():
        train_obj, names = objective_for(seed=11)
        result = train_queue_weights(train_obj, names, iterations=20, seed=0)
        uniform = {n: 1.0 for n in names}
        holdout_obj, _ = objective_for(seed=47)
        return {
            "train_uniform": train_obj(uniform),
            "train_tuned": result.score,
            "holdout_uniform": holdout_obj(uniform),
            "holdout_tuned": holdout_obj(result.weights),
            "weights": result.weights,
        }

    r = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Training can only improve (the search keeps the best seen).
    assert r["train_tuned"] <= r["train_uniform"] + 1e-9
    # And the improvement is not pure overfitting: held-out no worse than
    # uniform by more than a small tolerance.
    assert r["holdout_tuned"] <= r["holdout_uniform"] * 1.10

    rows = [
        f"{'scenario':>10} {'uniform':>9} {'tuned':>9}",
        f"{'train':>10} {r['train_uniform']:>9.2f} {r['train_tuned']:>9.2f}",
        f"{'holdout':>10} {r['holdout_uniform']:>9.2f} {r['holdout_tuned']:>9.2f}",
        "weights: " + ", ".join(f"{k}={v:.2f}" for k, v in sorted(r["weights"].items())),
    ]
    report(
        "\n".join(rows),
        train_uniform=round(r["train_uniform"], 3),
        train_tuned=round(r["train_tuned"], 3),
        holdout_uniform=round(r["holdout_uniform"], 3),
        holdout_tuned=round(r["holdout_tuned"], 3),
    )
