"""Fig. 9: one hour of time-varying power-target tracking on 16 nodes.

Paper series: target vs measured cluster power, target updated every 4 s in
the 2.3–4.5 kW committed band.  Shape checks: the measured mean lands on the
target mean, and tracking error stays within the AQA constraint (≤30 % of
reserve for ≥90 % of the time; the paper reports ≤17 % here).
"""

import numpy as np
import pytest

from repro.analysis.tracking import TrackingConstraint
from repro.experiments import fig9


def test_fig9_demand_response_hour(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig9.run_fig9(duration=2400.0, seed=0, warmup=300.0),
        rounds=1,
        iterations=1,
    )
    errors = result.errors()
    err90 = result.error_at_90th()
    constraint = TrackingConstraint(max_error=0.30, probability=0.90)
    trace = result.result.power_trace
    steady = trace[trace[:, 0] >= 300.0]

    assert constraint.satisfied(errors), f"err90={err90:.2f}"
    assert steady[:, 2].mean() == pytest.approx(steady[:, 1].mean(), rel=0.08)
    # The committed band mirrors the paper's 2.3–4.5 kW figure axis.
    assert trace[:, 1].min() >= 2300.0
    assert trace[:, 1].max() <= 4500.0

    report(
        fig9.format_table(result),
        err90=round(err90, 4),
        frac_within_30pct=round(float(np.mean(errors <= 0.30)), 4),
        jobs_completed=len(result.result.completed),
    )
