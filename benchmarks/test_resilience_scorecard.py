"""Resilience: the Fig. 9 workload under the standard fault load.

Acceptance run for the fault-injection subsystem: one node crash, one
endpoint crash, 5 % link loss across the whole run, one corrupt status, and
one 60 s facility-meter outage, injected into the 1-hour-style demand
response workload.  The run must drain with zero ghost job records, the
crash-requeued job must finish, and the 90th-percentile tracking error must
stay within 1.5x of the fault-free run of the identical workload.
"""

from repro.experiments import resilience
from repro.experiments.scorecard import score_resilience
from repro.faults.schedule import FaultSchedule


def test_resilience_standard_fault_load(benchmark, report):
    duration = 2400.0
    result = benchmark.pedantic(
        lambda: resilience.run_resilience(duration=duration, seed=0, warmup=300.0),
        rounds=1,
        iterations=1,
    )
    card = score_resilience(result)

    assert result.faulted.result.unstarted_jobs == 0
    assert result.requeued, "standard load's node crash should kill a job"
    assert result.requeued_completed
    assert result.ghost_jobs == 0
    assert result.injector_quiescent
    assert result.degradation_ratio <= 1.5, (
        f"faulted err90 {result.faulted_error90:.3f} vs "
        f"healthy {result.healthy_error90:.3f}"
    )
    assert card.all_passed, card.render()

    report(
        resilience.format_table(result) + "\n\n" + card.render(),
        healthy_err90=round(result.healthy_error90, 4),
        faulted_err90=round(result.faulted_error90, 4),
        degradation_ratio=round(result.degradation_ratio, 4),
        requeued=len(result.requeued),
        ghost_jobs=result.ghost_jobs,
    )


def test_fault_log_bit_identical_replay(benchmark, report):
    """Same seed + same schedule ⇒ the fault event log replays exactly."""
    duration = 600.0
    schedule = FaultSchedule.standard_load(duration)

    def both():
        a = resilience.run_resilience(
            duration=duration, seed=3, warmup=120.0, schedule=schedule
        )
        b = resilience.run_resilience(
            duration=duration, seed=3, warmup=120.0, schedule=schedule
        )
        return a, b

    a, b = benchmark.pedantic(both, rounds=1, iterations=1)
    assert a.fault_log, "fault log should not be empty"
    assert a.fault_log == b.fault_log
    assert a.faulted.result.power_trace.tobytes() == (
        b.faulted.result.power_trace.tobytes()
    )
    report(
        "\n".join(a.fault_log),
        log_lines=len(a.fault_log),
    )
