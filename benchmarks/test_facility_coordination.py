"""§8 extension: facility-tier power coordination across two clusters.

The paper's future work motivates a facility splitting a constrained shared
feed between an old and a new cluster ("shared power infrastructure that may
not have the capacity to use both clusters at peak power demand
concurrently").  This bench runs two live emulated clusters under one
facility coordinator and checks that (a) the combined draw lands on the
facility budget, and (b) an even-slowdown facility split favours the cluster
running power-sensitive work over one running insensitive work.
"""

import numpy as np

from repro.budget.base import JobBudgetRequest
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorSystem
from repro.core.targets import ConstantTarget
from repro.facility.coordinator import (
    ClusterMember,
    FacilityCoordinator,
    MutableTarget,
    aggregate_cluster_model,
)
from repro.workloads.nas import NAS_TYPES, P_NODE_MIN


def member_for(name, job_specs, *, idle_nodes=0, idle_power=60.0):
    """Facility view of a cluster running the given (type, count) mix."""
    requests = [
        JobBudgetRequest(
            job_id=f"{t}-{i}",
            nodes=NAS_TYPES[t].nodes,
            model=NAS_TYPES[t].truth,
            p_min=P_NODE_MIN,
            p_max=NAS_TYPES[t].p_demand,
        )
        for i, t in enumerate(job_specs)
    ]
    model = aggregate_cluster_model(requests)
    slack = idle_nodes * idle_power
    return ClusterMember(
        name=name,
        target=MutableTarget(model.p_max + slack),
        p_min=model.p_min + slack,
        p_max=model.p_max + slack,
        model=model,
    )


def run_two_clusters(*, duration=400.0, seed=0):
    hot_types = ["bt", "ep"]  # power-sensitive mix
    flat_types = ["sp", "is"]  # insensitive mix
    systems = {}
    members = {}
    for name, types in (("hot", hot_types), ("flat", flat_types)):
        member = member_for(name, types)
        nodes = sum(NAS_TYPES[t].nodes for t in types)
        system = AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=member.target,
            config=AnorConfig(num_nodes=nodes, seed=seed, feedback_enabled=False),
        )
        for i, t in enumerate(types):
            system.submit_now(f"{t}-{i}", t)
        systems[name] = system
        members[name] = member

    total_max = sum(m.p_max for m in members.values())
    facility = FacilityCoordinator(
        facility_target=ConstantTarget(0.75 * total_max)
    )
    for member in members.values():
        facility.add_member(member)

    traces = {name: [] for name in systems}
    for step in range(int(duration)):
        if step % 4 == 0:
            facility.step(float(step))
        for name, system in systems.items():
            system.step()
            traces[name].append(system.cluster.measured_power)
    return facility, members, {n: np.asarray(v) for n, v in traces.items()}


def test_facility_two_cluster_split(benchmark, report):
    facility, members, traces = benchmark.pedantic(
        run_two_clusters, rounds=1, iterations=1
    )
    target_total = facility.facility_target.target(0.0)
    shares = {n: m.last_assigned for n, m in members.items()}
    assert sum(shares.values()) <= target_total * 1.02

    # The sensitive cluster receives a larger fraction of its range.
    frac = {
        n: (shares[n] - m.p_min) / (m.p_max - m.p_min)
        for n, m in members.items()
    }
    assert frac["hot"] > frac["flat"]

    # Realised combined power (steady window) honours the facility budget.
    steady = slice(60, 300)
    combined = traces["hot"][steady] + traces["flat"][steady]
    assert combined.mean() <= target_total * 1.05

    rows = [f"{'cluster':>8} {'assigned (W)':>13} {'range frac':>11} {'measured (W)':>13}"]
    for n, m in members.items():
        rows.append(
            f"{n:>8} {shares[n]:>13.0f} {frac[n]:>11.2f} "
            f"{traces[n][steady].mean():>13.0f}"
        )
    rows.append(f"facility budget: {target_total:.0f} W")
    report(
        "\n".join(rows),
        hot_fraction=round(frac["hot"], 3),
        flat_fraction=round(frac["flat"], 3),
        combined_mean=round(float(combined.mean()), 1),
    )
