"""Fig. 7: two BT instances, one possibly misclassified as IS (840 W shared).

Paper bars: agnostic ≈ aware when both jobs share one power-performance
profile (both policies make the same decision); misclassifying one instance
slows it (~15–20 %); feedback recovers much of the loss.
"""

import numpy as np

from repro.experiments import fig6


def mean(result, policy, job):
    return float(np.mean(result.slowdowns[policy][job]))


def test_fig7_same_type_misclassification(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig6.run_fig7(trials=3, seed=1, tick=1.0), rounds=1, iterations=1
    )
    agnostic = mean(result, "Performance Agnostic", "bt")
    aware = mean(result, "Performance Aware", "bt")
    mis = mean(result, "Under-estimate bt", "bt=is")
    recovered = mean(result, "Under-estimate bt, with feedback", "bt=is")

    # Identical jobs ⇒ agnostic and aware coincide (paper: "both solutions
    # make the same decisions").
    assert abs(agnostic - aware) < 0.05
    # Misclassified instance slows well past the correctly-classified one.
    assert mis > mean(result, "Under-estimate bt", "bt") + 0.03
    # Feedback recovers part of the loss.
    assert recovered < mis

    report(
        fig6.format_table(result),
        agnostic=round(agnostic, 4),
        aware=round(aware, 4),
        misclassified=round(mis, 4),
        with_feedback=round(recovered, 4),
    )
