"""Predictive planning: the forecast drill as a tier-2 acceptance gate.

The receding-horizon planner (DESIGN.md §9) must *earn* its place on the
reactive path: against the same bursty regulation stream, the predictive
arm has to track strictly better than the reactive baseline while issuing
fewer cap rewrites — anticipation, not churn.  The adversarial arm runs the
same scenario with a forecaster rigged to predict the opposite of every
trend; the safety envelope must keep its budgets inside the ceiling and
trip to fallback within the configured error window.  Any scorecard claim
failing is a hard test failure (and a nonzero ``anor plan --drill`` exit).
"""

from repro.experiments.resilience import format_forecast_table, run_forecast_drill
from repro.experiments.scorecard import score_forecast


def test_forecast_drill_scorecard(benchmark, report):
    duration = 600.0
    result = benchmark.pedantic(
        lambda: run_forecast_drill(duration=duration, seed=0, warmup=120.0),
        rounds=1,
        iterations=1,
    )
    card = score_forecast(result)

    # Predictive must beat reactive on both axes, not trade one for the other.
    assert result.tracking_ratio < 1.0, (
        f"predictive err90 {result.predictive_error90:.3f} vs "
        f"reactive {result.reactive_error90:.3f}"
    )
    assert result.predictive_rewrites < result.reactive_rewrites

    # Safety: no arm's planned draw may breach the budget ceiling, even with
    # the inverted-ramp forecaster lying about every trend.
    assert result.predictive_violations == 0
    assert result.adversarial_violations == 0

    # The envelope must notice the adversarial forecaster and fall back
    # within its detection window.
    assert result.adversarial_fallbacks > 0
    assert result.fallback_latency is not None
    assert result.fallback_latency <= result.fallback_latency_bound

    # A well-matched forecaster must never trip the envelope.
    assert result.predictive_fallbacks == 0

    assert card.all_passed, card.render()

    report(
        format_forecast_table(result) + "\n\n" + card.render(),
        reactive_err90=round(result.reactive_error90, 4),
        predictive_err90=round(result.predictive_error90, 4),
        tracking_ratio=round(result.tracking_ratio, 4),
        reactive_rewrites=result.reactive_rewrites,
        predictive_rewrites=result.predictive_rewrites,
        adversarial_fallbacks=result.adversarial_fallbacks,
        fallback_latency=round(result.fallback_latency, 1),
    )
