"""Ablation: default-model policy for a never-characterized job type (§6.1.2).

A genuinely *unknown* job (FT with no precharacterized model) runs alongside
EP and IS under a shared budget.  The cluster must pick a stand-in model:
assume least-sensitive (IS-like) or most-sensitive (EP-like) known type.
This reproduces Fig. 5's trade-off end-to-end on the emulated cluster rather
than offline: underprediction slows the unknown job, overprediction slows
the sensitive co-scheduled job.
"""

import numpy as np

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorSystem, precharacterized_models
from repro.core.targets import ConstantTarget
from repro.modeling.classifier import JobClassifier
from repro.modeling.default_models import LeastSensitivePolicy, MostSensitivePolicy
from repro.workloads.nas import NAS_TYPES


def run_with_policy(policy, *, seeds=(0, 1)):
    """Slowdowns of (unknown ft, known ep) with the given default policy."""
    ft_slow, ep_slow = [], []
    models = {k: v for k, v in precharacterized_models().items() if k != "ft"}
    for seed in seeds:
        classifier = JobClassifier(
            models, unknown_types={"ft"}, default_policy=policy
        )
        system = AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(3 * 210.0),  # tight 3-node budget
            classifier=classifier,
            config=AnorConfig(num_nodes=3, seed=7919 * seed + 5,
                              feedback_enabled=False),
        )
        system.submit_now("ft-0", "ft", nodes=1)
        system.submit_now("ep-1", "ep", nodes=1)
        system.submit_now("is-2", "is", nodes=1)
        result = system.run(until_idle=True, max_time=7200.0)
        for totals in result.completed:
            ref = NAS_TYPES[totals.job_type].compute_time(
                NAS_TYPES[totals.job_type].p_max
            )
            slow = totals.runtime / ref - 1.0
            if totals.job_type == "ft":
                ft_slow.append(slow)
            elif totals.job_type == "ep":
                ep_slow.append(slow)
    return float(np.mean(ft_slow)), float(np.mean(ep_slow))


def test_ablation_default_model_policy(benchmark, report):
    def sweep():
        return {
            "assume-least-sensitive": run_with_policy(LeastSensitivePolicy()),
            "assume-most-sensitive": run_with_policy(MostSensitivePolicy()),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    under_ft, under_ep = results["assume-least-sensitive"]
    over_ft, over_ep = results["assume-most-sensitive"]

    # §6.1.2's trade-off, now on the live control plane: assuming
    # insensitive starves the unknown job; assuming sensitive feeds it at
    # the co-scheduled sensitive job's expense.
    assert under_ft > over_ft
    assert over_ep > under_ep - 0.01

    rows = [
        f"{'default policy':>24} {'ft(unknown)':>12} {'ep':>8}",
        f"{'assume least sensitive':>24} {100 * under_ft:>11.1f}% {100 * under_ep:>7.1f}%",
        f"{'assume most sensitive':>24} {100 * over_ft:>11.1f}% {100 * over_ep:>7.1f}%",
    ]
    report(
        "\n".join(rows),
        under_ft=round(under_ft, 4),
        under_ep=round(under_ep, 4),
        over_ft=round(over_ft, 4),
        over_ep=round(over_ep, 4),
    )
