"""Fig. 3 + §5.1: characterization curves and model-fit R² per job type.

Paper series: relative execution time at per-node caps 140–280 W for the
eight NPB types (error bars over 10 runs), and fit R² scores (most ≥ 0.97;
IS 0.92, MG 0.94, SP 0.84).  Shape checks: EP most sensitive (~1.8× at
140 W), IS least (~1.08×), and the R² ordering.
"""

from repro.experiments import fig3


def test_fig3_characterization(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig3.characterize_job_types(
            caps=[140.0, 160.0, 180.0, 200.0, 220.0, 240.0, 260.0, 280.0],
            runs_per_cap=5,  # paper uses 10; 5 keeps the bench quick
            seed=0,
            tick=0.5,
        ),
        rounds=1,
        iterations=1,
    )
    rel140 = {n: result.relative_times(n)[0][0] for n in result.runtimes}
    assert max(rel140, key=rel140.get) == "ep"
    assert min(rel140, key=rel140.get) == "is"
    assert rel140["ep"] > 1.6
    assert rel140["is"] < 1.15
    assert result.r2["sp"] < min(result.r2[t] for t in ("bt", "cg", "ep", "ft", "lu"))
    report(
        fig3.format_table(result),
        ep_rel_140=round(rel140["ep"], 3),
        is_rel_140=round(rel140["is"], 3),
        sp_r2=round(result.r2["sp"], 3),
    )
