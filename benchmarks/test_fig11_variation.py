"""Fig. 11: QoS degradation vs node performance variation (1000-node tabsim).

Paper series: 90th-percentile QoS degradation per job type at variation
bands 0…±30 % (99 % coverage), 10 trials each, 6 types at 75 % utilization,
QoS target 5.  Shape checks: degradation grows with variation, type
orderings stay sensible, and power tracking stays within the 30 %/90 %
constraint at every level (§6.4).
"""

import numpy as np

from repro.experiments import fig11


def test_fig11_variation_sweep(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig11.run_fig11(
            bands=(0.0, 0.075, 0.15, 0.225, 0.30),
            trials=4,  # paper uses 10; 4 keeps the bench quick
            num_nodes=1000,
            node_scale=25,
            duration=2700.0,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    # QoS degradation grows with variation (averaged over types and trials).
    mean_by_band = np.array(
        [
            np.mean([result.qos90[n][bi].mean() for n in result.qos90])
            for bi in range(len(result.bands))
        ]
    )
    assert mean_by_band[-1] > mean_by_band[0]
    # Tracking error within the constraint at every variation level (§6.4).
    assert result.tracking90.mean(axis=1).max() < 0.30
    # At zero variation nobody should be anywhere near the QoS limit.
    assert all(result.qos90[n][0].mean() < result.qos_limit for n in result.qos90)

    report(
        fig11.format_table(result),
        qos_mean_band0=round(float(mean_by_band[0]), 3),
        qos_mean_band30=round(float(mean_by_band[-1]), 3),
        tracking_90th_worst=round(float(result.tracking90.mean(axis=1).max()), 4),
    )
