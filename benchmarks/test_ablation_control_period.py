"""Ablation: cluster-tier control period vs power-tracking accuracy.

The paper's targets move every 4 s while the agents sample every second
(§4.4.1, §7.2 discusses the resulting multi-rate asynchrony).  This sweep
re-budgets at 1/4/10-second periods over a shortened Fig. 9 scenario: a
manager slower than the target stream must miss steps, so tracking error
should grow with the period.
"""

import numpy as np

from repro.experiments.fig9 import DEFAULT_RESERVE, build_demand_response_system
from repro.analysis.tracking import tracking_error_series


def run_with_period(manager_period: float, *, duration=1200.0, seed=0) -> float:
    system = build_demand_response_system(duration=duration, seed=seed)
    system.config.manager_period = manager_period
    system._next_manager = 0.0
    result = system.run(duration)
    errors = tracking_error_series(
        result.power_trace, DEFAULT_RESERVE, t_start=300.0, smooth_samples=4
    )
    return float(np.percentile(errors, 90))


def test_ablation_manager_period(benchmark, report):
    periods = (1.0, 4.0, 10.0)

    def sweep():
        return {p: run_with_period(p) for p in periods}

    err90 = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Slower budgeting tracks a 4 s target stream worse.
    assert err90[10.0] > err90[1.0]
    # The paper's operating point (1 s manager under 4 s targets) meets the
    # AQA constraint.
    assert err90[1.0] < 0.30

    rows = [f"{'manager period (s)':>19} {'tracking err90':>15}"]
    for p in periods:
        rows.append(f"{p:>19.0f} {100 * err90[p]:>14.1f}%")
    report(
        "\n".join(rows),
        **{f"err90_period_{int(p)}s": round(v, 4) for p, v in err90.items()},
    )
