"""Ablation: the online-feedback design knobs (DESIGN.md §5).

Two sweeps over the Fig. 6 under-estimate scenario (BT claimed as IS under a
static 840 W budget):

* **retrain threshold** — the paper refits after ≥10 new epochs; larger
  thresholds delay recovery, smaller ones track noise.
* **feedback on/off** — the headline ablation: recovery only exists with
  the job-tier → cluster-tier model path enabled.
"""

import numpy as np

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorSystem, precharacterized_models
from repro.core.targets import ConstantTarget
from repro.modeling.classifier import JobClassifier
from repro.workloads.nas import NAS_TYPES


def run_misclassified_bt(*, feedback: bool, retrain_threshold: int, seeds=(0, 1, 2)):
    """Mean BT slowdown when claimed as IS, per configuration."""
    slowdowns = []
    for seed in seeds:
        system = AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(840.0),
            classifier=JobClassifier(precharacterized_models()),
            config=AnorConfig(
                num_nodes=4,
                seed=1009 * seed + 17,
                feedback_enabled=feedback,
                retrain_threshold=retrain_threshold,
            ),
        )
        system.submit_now("bt-0", "bt", claimed_type="is")
        system.submit_now("sp-1", "sp")
        result = system.run(until_idle=True, max_time=7200.0)
        bt = [t for t in result.completed if t.job_type == "bt"][0]
        ref = NAS_TYPES["bt"].compute_time(NAS_TYPES["bt"].p_max)
        slowdowns.append(bt.runtime / ref - 1.0)
    return float(np.mean(slowdowns))


def test_ablation_retrain_threshold(benchmark, report):
    thresholds = (10, 40, 120)

    def sweep():
        no_fb = run_misclassified_bt(feedback=False, retrain_threshold=10)
        with_fb = {
            k: run_misclassified_bt(feedback=True, retrain_threshold=k)
            for k in thresholds
        }
        return no_fb, with_fb

    no_fb, with_fb = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Feedback at the paper's threshold recovers a meaningful share.
    assert with_fb[10] < no_fb
    # A very sluggish retrain schedule recovers less than the paper's.
    assert with_fb[120] >= with_fb[10] - 0.01

    rows = [f"{'retrain threshold':>18} {'BT slowdown':>12}"]
    rows.append(f"{'(no feedback)':>18} {100 * no_fb:>11.1f}%")
    for k in thresholds:
        rows.append(f"{k:>18} {100 * with_fb[k]:>11.1f}%")
    report(
        "\n".join(rows),
        no_feedback=round(no_fb, 4),
        **{f"threshold_{k}": round(v, 4) for k, v in with_fb.items()},
    )
