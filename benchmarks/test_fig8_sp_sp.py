"""Fig. 8: two SP instances, one possibly misclassified as EP (840 W shared).

Paper bars: all slowdowns are small (SP is insensitive; the budget barely
binds it); misclassifying one instance as power-hungry EP steals power from
its co-scheduled twin, producing a small but visible slowdown there, which
feedback then reduces.
"""

import numpy as np

from repro.experiments import fig6


def mean(result, policy, job):
    return float(np.mean(result.slowdowns[policy][job]))


def test_fig8_overestimate_insensitive_pair(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig6.run_fig8(trials=6, seed=2, tick=1.0), rounds=1, iterations=1
    )
    agnostic = mean(result, "Performance Agnostic", "sp")
    aware = mean(result, "Performance Aware", "sp")
    cojob_mis = mean(result, "Over-estimate sp", "sp")
    cojob_fb = mean(result, "Over-estimate sp, with feedback", "sp")

    # Same-profile pair: policies coincide, and slowdowns stay small
    # (paper Fig. 8 tops out around 6 %).
    assert abs(agnostic - aware) < 0.05
    assert agnostic < 0.10
    # The misclassified twin's overestimated appetite slows the co-job.
    assert cojob_mis > aware - 0.01
    # Feedback narrows it again.
    assert cojob_fb <= cojob_mis + 0.01

    report(
        fig6.format_table(result),
        agnostic=round(agnostic, 4),
        aware=round(aware, 4),
        cojob_under_misclassification=round(cojob_mis, 4),
        cojob_with_feedback=round(cojob_fb, 4),
    )
