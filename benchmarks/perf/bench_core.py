"""Perf-regression harness for the simulation core.

Times the core kernels with ``time.perf_counter``:

* ``fig9`` — the reduced fig9 end-to-end loop (emulated cluster + full
  two-tier control plane, default 1 s control periods);
* ``fig9_event`` — the same scenario with a multi-rate control plane
  (agent/endpoint 30 s, manager 60 s) under event-calendar stepping — the
  headline kernel for the event-driven core;
* ``fig9_faults`` — the multi-rate event run under the standard fault
  load (fault firings truncate strides);
* ``fig9_telemetry`` — the fig9 loop with ``repro.telemetry`` fully enabled
  (metrics + event bus + ring sink), documenting the observability overhead;
* ``fig9_plan`` — the fig9 loop over a bursty stepped target at a 4 s
  manager period, plan off then plan on in the same sample; the derived
  ``plan_overhead`` (wall time) and ``plan_solve_overhead`` (deterministic
  extra budgeter solves) pin the receding-horizon planner's cost on the
  reactive path;
* ``tabsim_event`` — the 1000-node tabular simulator stepped on the 4 s
  target-hold boundaries instead of every simulated second;
* ``tabsim`` — the 1000-node tabular simulator loop at 1 s steps;
* ``budgeter`` — the even-slowdown and even-power solvers over repeated
  budget rounds (the bisection hot path of every manager period).

Output is ``BENCH_core.json``: per-kernel wall time, ticks/sec (or
rounds/sec), and the speedup vs. the recorded **seed baseline**
(``baseline_seed.json``, measured on the pre-vectorization implementation —
never regenerate it on optimized code).  A second, regenerable baseline
(``baseline.json``) gates CI: ``--check`` fails the run when ticks/sec
regresses more than ``--max-regress`` against it.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_core.py                  # full
    PYTHONPATH=src python benchmarks/perf/bench_core.py --quick          # CI smoke
    PYTHONPATH=src python benchmarks/perf/bench_core.py --quick --check  # gate
    PYTHONPATH=src python benchmarks/perf/bench_core.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

HERE = Path(__file__).parent
SEED_BASELINE = HERE / "baseline_seed.json"
CURRENT_BASELINE = HERE / "baseline.json"
DEFAULT_OUTPUT = Path("BENCH_core.json")


# ----------------------------------------------------------------- kernels


def bench_fig9(*, duration: float, seed: int) -> dict:
    """End-to-end fig9 loop: one simulated second per tick."""
    from repro.experiments.fig9 import run_fig9

    start = time.perf_counter()
    fig9 = run_fig9(duration=duration, seed=seed)
    wall = time.perf_counter() - start
    ticks = fig9.result.power_trace.shape[0]
    return {
        "wall_s": wall,
        "ticks": int(ticks),
        "ticks_per_sec": ticks / wall,
        "jobs_completed": len(fig9.result.completed),
    }


def bench_fig9_telemetry(*, duration: float, seed: int) -> dict:
    """The fig9 loop with full observability on — pins the enabled overhead."""
    from repro.core.framework import AnorConfig
    from repro.experiments.fig9 import run_fig9

    cfg = AnorConfig(seed=seed, telemetry_enabled=True)
    start = time.perf_counter()
    fig9 = run_fig9(duration=duration, seed=seed, config=cfg)
    wall = time.perf_counter() - start
    ticks = fig9.result.power_trace.shape[0]
    return {
        "wall_s": wall,
        "ticks": int(ticks),
        "ticks_per_sec": ticks / wall,
        "jobs_completed": len(fig9.result.completed),
    }


def bench_fig9_event(*, duration: float, seed: int) -> dict:
    """Multi-rate control plane under event-calendar stepping.

    Agent/endpoint sample every 30 s and the manager re-budgets every 60 s
    — the regime the event calendar is built for: long control-free runs
    of ticks collapse into analytic strides.  Ticks/sec here against the
    seed baseline's ``fig9`` is the headline speedup of this optimisation
    (the workload is the same fig9 scenario; only the control-plane rates
    and the stepping mode differ).
    """
    from repro.core.framework import AnorConfig
    from repro.experiments.fig9 import run_fig9

    cfg = AnorConfig(
        seed=seed,
        agent_period=30.0,
        endpoint_period=30.0,
        manager_period=60.0,
        event_driven=True,
    )
    start = time.perf_counter()
    fig9 = run_fig9(duration=duration, seed=seed, config=cfg)
    wall = time.perf_counter() - start
    ticks = fig9.result.power_trace.shape[0]
    return {
        "wall_s": wall,
        "ticks": int(ticks),
        "ticks_per_sec": ticks / wall,
        "jobs_completed": len(fig9.result.completed),
    }


def bench_fig9_faults(*, duration: float, seed: int) -> dict:
    """The multi-rate event run under the standard fault load.

    Fault firings are calendar events that truncate strides; this kernel
    pins the cost of event stepping when the calendar is busy (crashes,
    link loss, meter outages) rather than quiet.
    """
    from repro.core.framework import AnorConfig
    from repro.experiments.fig9 import build_demand_response_system
    from repro.faults.schedule import FaultSchedule

    cfg = AnorConfig(
        seed=seed,
        agent_period=30.0,
        endpoint_period=30.0,
        manager_period=60.0,
        event_driven=True,
    )
    schedule = FaultSchedule.standard_load(duration)
    system = build_demand_response_system(
        duration=duration, seed=seed, config=cfg, fault_schedule=schedule
    )
    start = time.perf_counter()
    result = system.run(duration)
    wall = time.perf_counter() - start
    ticks = result.power_trace.shape[0]
    return {
        "wall_s": wall,
        "ticks": int(ticks),
        "ticks_per_sec": ticks / wall,
        "jobs_completed": len(result.completed),
    }


def bench_fig9_plan(*, duration: float, seed: int) -> dict:
    """Planner overhead on the reactive path (DESIGN.md §9).

    Runs the same bursty stepped-target fig9 scenario twice — plan off
    (pure reactive) and plan on (receding-horizon planner active, schedule
    forecaster) — at a 4 s manager period.  Both runs come from the same
    sample so ``plan_overhead`` compares a matched pair: the planner buys
    its tracking/rewrite wins out of forecasting, not out of extra work.
    ``plan_solve_overhead`` is the noise-free version of the same claim —
    extra budgeter solves per run, a seeded-deterministic count (lazy cap
    materialization keeps it near zero: only warm-hit rounds re-solve).
    """
    from repro.aqa.regulation import BoundedRandomWalkSignal
    from repro.core.framework import AnorConfig
    from repro.core.targets import RegulationTarget, SteppedTarget
    from repro.experiments.fig9 import (
        DEFAULT_AVERAGE_POWER,
        DEFAULT_RESERVE,
        build_demand_response_system,
    )

    hold = 4.0
    signal = BoundedRandomWalkSignal(duration * 2, step=hold, seed=seed + 11)
    regulation = RegulationTarget(
        DEFAULT_AVERAGE_POWER, DEFAULT_RESERVE, signal, update_period=hold
    )
    n_steps = int(duration * 2 / hold)
    times = [hold * k for k in range(n_steps)]
    stepped = SteppedTarget(times, [regulation.target(t) for t in times])

    def run_one(plan: bool) -> tuple[float, object, int]:
        cfg = AnorConfig(
            seed=seed,
            manager_period=hold,
            plan_enabled=plan,
            plan_shadow_rounds=0,
        )
        system = build_demand_response_system(
            duration=duration, seed=seed, target_source=stepped, config=cfg
        )
        budgeter = system.manager.budgeter
        solves = [0]
        orig_allocate = budgeter.allocate

        def counting_allocate(requests, budget):
            solves[0] += 1
            return orig_allocate(requests, budget)

        budgeter.allocate = counting_allocate
        start = time.perf_counter()
        result = system.run(duration)
        return time.perf_counter() - start, result, solves[0]

    # Interleave the arms; report per-arm minima for wall time but the
    # *median of per-pair ratios* for the overhead: a noise burst hits both
    # halves of its pair, so the ratio is far more stable than min-vs-min.
    # Nine pairs because single-run noise on a shared box is several percent
    # — comparable to the overhead being measured — and the median needs a
    # majority of clean pairs to reject it.
    reactive_wall = wall = float("inf")
    result = None
    ratios = []
    reactive_solves = plan_solves = 0
    for _ in range(9):
        r_wall, _unused, reactive_solves = run_one(False)
        p_wall, p_result, plan_solves = run_one(True)
        ratios.append(p_wall / r_wall)
        reactive_wall = min(reactive_wall, r_wall)
        if p_wall < wall:
            wall, result = p_wall, p_result
    ratios.sort()
    overhead = ratios[len(ratios) // 2] - 1.0
    # Solve counts are seeded-deterministic, so the ratio is noise-free: it
    # is the planner's *work* overhead (extra budgeter solves per run),
    # immune to the wall-clock jitter that dominates `plan_overhead` on a
    # shared box.
    solve_overhead = plan_solves / reactive_solves - 1.0 if reactive_solves else 0.0
    ticks = result.power_trace.shape[0]
    return {
        "wall_s": wall,
        "reactive_wall_s": reactive_wall,
        "plan_overhead": overhead,
        "plan_solve_overhead": solve_overhead,
        "reactive_solves": int(reactive_solves),
        "plan_solves": int(plan_solves),
        "ticks": int(ticks),
        "ticks_per_sec": ticks / wall,
        "jobs_completed": len(result.completed),
    }


def bench_tabsim_event(*, num_nodes: int, duration: float, seed: int) -> dict:
    """1000-node tabsim advanced on target-hold boundaries (dt = 4 s).

    The regulation signal holds each level for 4 s, so stepping the tabular
    simulator at the hold period advances on exactly the instants where its
    input can change — the event-calendar idea applied at tabsim scale.
    ``sim_seconds_per_sec`` is the simulated-time throughput (ticks cover
    4 s each); ``ticks_per_sec`` stays trace rows/s for the CI gate.
    """
    from repro.aqa.regulation import BoundedRandomWalkSignal
    from repro.tabsim.simulator import SimConfig, TabularClusterSimulator
    from repro.tabsim.tables import SimJobType
    from repro.workloads.generator import PoissonScheduleGenerator
    from repro.workloads.nas import long_running_mix

    hold = 4.0
    base_types = long_running_mix()
    sim_types = [SimJobType.from_job_type(jt, node_scale=25) for jt in base_types]
    scaled = [jt.scaled_nodes(25) for jt in base_types]
    generator = PoissonScheduleGenerator(
        scaled, utilization=0.75, total_nodes=num_nodes, seed=seed
    )
    schedule = generator.generate(duration)
    signal = BoundedRandomWalkSignal(duration * 4, step=hold, seed=seed + 1)
    config = SimConfig(num_nodes=num_nodes, seed=seed + 2, dt=hold)
    sim = TabularClusterSimulator(sim_types, schedule, signal, config)
    start = time.perf_counter()
    result = sim.run(duration)
    wall = time.perf_counter() - start
    ticks = result.power_trace.shape[0]
    return {
        "wall_s": wall,
        "ticks": int(ticks),
        "ticks_per_sec": ticks / wall,
        "sim_seconds_per_sec": ticks * hold / wall,
        "jobs_completed": result.completed_jobs,
    }


def bench_tabsim(*, num_nodes: int, duration: float, seed: int) -> dict:
    """The 1000-node-scale tabular simulator loop (paper §5.6)."""
    from repro.aqa.regulation import BoundedRandomWalkSignal
    from repro.tabsim.simulator import SimConfig, TabularClusterSimulator
    from repro.tabsim.tables import SimJobType
    from repro.workloads.generator import PoissonScheduleGenerator
    from repro.workloads.nas import long_running_mix

    base_types = long_running_mix()
    sim_types = [SimJobType.from_job_type(jt, node_scale=25) for jt in base_types]
    scaled = [jt.scaled_nodes(25) for jt in base_types]
    generator = PoissonScheduleGenerator(
        scaled, utilization=0.75, total_nodes=num_nodes, seed=seed
    )
    schedule = generator.generate(duration)
    signal = BoundedRandomWalkSignal(duration * 4, step=4.0, seed=seed + 1)
    config = SimConfig(num_nodes=num_nodes, seed=seed + 2)
    sim = TabularClusterSimulator(sim_types, schedule, signal, config)
    start = time.perf_counter()
    result = sim.run(duration)
    wall = time.perf_counter() - start
    ticks = result.power_trace.shape[0]
    return {
        "wall_s": wall,
        "ticks": int(ticks),
        "ticks_per_sec": ticks / wall,
        "jobs_completed": result.completed_jobs,
    }


def bench_budgeter(*, n_jobs: int, rounds: int, seed: int) -> dict:
    """Repeated budget rounds over a fixed job mix (the bisection hot path)."""
    import numpy as np

    from repro.budget.base import JobBudgetRequest
    from repro.budget.even_power import EvenPowerBudgeter
    from repro.budget.even_slowdown import EvenSlowdownBudgeter
    from repro.workloads.nas import NAS_TYPES, P_NODE_MAX, P_NODE_MIN

    types = list(NAS_TYPES.values())
    jobs = [
        JobBudgetRequest(
            job_id=f"j{i:03d}",
            nodes=types[i % len(types)].nodes,
            model=types[i % len(types)].truth,
            p_min=P_NODE_MIN,
            p_max=P_NODE_MAX,
        )
        for i in range(n_jobs)
    ]
    total_nodes = sum(j.nodes for j in jobs)
    budgets = np.linspace(
        total_nodes * P_NODE_MIN * 1.02, total_nodes * P_NODE_MAX * 0.98, rounds
    )
    solvers = [EvenSlowdownBudgeter(), EvenPowerBudgeter()]
    start = time.perf_counter()
    for budget in budgets:
        for solver in solvers:
            solver.allocate(jobs, float(budget))
    wall = time.perf_counter() - start
    n_rounds = rounds * len(solvers)
    return {
        "wall_s": wall,
        "rounds": n_rounds,
        "ticks_per_sec": n_rounds / wall,  # rounds/sec, same key for the gate
    }


# ------------------------------------------------------------- harness


def _best_of(repeats: int, fn, **kwargs) -> dict:
    """Run ``fn`` ``repeats`` times, keep the fastest (min-wall) sample.

    Wall-clock minima are the standard noise filter for micro/meso
    benchmarks: interference only ever adds time, so the minimum is the
    closest observable to the true cost.
    """
    samples = [fn(**kwargs) for _ in range(max(1, repeats))]
    best = min(samples, key=lambda r: r["wall_s"])
    if "plan_overhead" in best:
        # Overhead is a ratio, not a time: the min-wall sample's value is
        # no less noisy than any other's, so take the median across repeats.
        ratios = sorted(r["plan_overhead"] for r in samples)
        best["plan_overhead"] = ratios[len(ratios) // 2]
    best["repeats"] = max(1, repeats)
    return best


def run_suite(quick: bool, seed: int, repeats: int = 3) -> dict:
    kernels = {}
    kernels["fig9"] = _best_of(
        repeats, bench_fig9, duration=300.0 if quick else 900.0, seed=seed
    )
    kernels["fig9_event"] = _best_of(
        repeats, bench_fig9_event, duration=300.0 if quick else 900.0, seed=seed
    )
    kernels["fig9_faults"] = _best_of(
        repeats, bench_fig9_faults, duration=300.0 if quick else 900.0, seed=seed
    )
    kernels["fig9_telemetry"] = _best_of(
        repeats, bench_fig9_telemetry, duration=300.0 if quick else 900.0, seed=seed
    )
    kernels["fig9_plan"] = _best_of(
        repeats, bench_fig9_plan, duration=300.0 if quick else 900.0, seed=seed
    )
    kernels["tabsim_event"] = _best_of(
        repeats,
        bench_tabsim_event,
        num_nodes=1000,
        duration=600.0 if quick else 1800.0,
        seed=seed + 3,
    )
    kernels["tabsim"] = _best_of(
        repeats,
        bench_tabsim,
        num_nodes=1000,
        duration=600.0 if quick else 1800.0,
        seed=seed + 3,
    )
    kernels["budgeter"] = _best_of(
        repeats, bench_budgeter, n_jobs=24, rounds=50 if quick else 200, seed=seed
    )
    return kernels


def compare(kernels: dict, baseline: dict | None, config: str) -> dict:
    """Per-kernel speedup of this run vs. a config-matched baseline.

    Baseline files store one entry per config ("quick"/"full") because
    ticks/sec is workload-dependent — comparing across configs would be
    meaningless.
    """
    if not baseline:
        return {}
    base_kernels = baseline.get(config, {}).get("kernels", {})
    out = {}
    for name, result in kernels.items():
        base = base_kernels.get(name)
        if base and base.get("ticks_per_sec"):
            out[name] = result["ticks_per_sec"] / base["ticks_per_sec"]
    return out


def load_json(path: Path) -> dict | None:
    if not path.exists():
        return None
    return json.loads(path.read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced CI smoke config")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="samples per kernel; the fastest (min wall) is reported",
    )
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when ticks/sec regresses more than --max-regress "
        "against the committed baseline.json",
    )
    parser.add_argument("--max-regress", type=float, default=0.30)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite baseline.json from this run (quick mode numbers)",
    )
    args = parser.parse_args(argv)

    config = "quick" if args.quick else "full"
    kernels = run_suite(args.quick, args.seed, args.repeats)
    seed_baseline = load_json(SEED_BASELINE)
    report = {
        "config": config,
        "seed": args.seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "kernels": kernels,
        "speedup_vs_seed": compare(kernels, seed_baseline, config),
    }
    if "fig9" in kernels and "fig9_telemetry" in kernels:
        report["telemetry_overhead"] = (
            kernels["fig9_telemetry"]["wall_s"] / kernels["fig9"]["wall_s"] - 1.0
        )
    if "fig9_plan" in kernels:
        report["plan_overhead"] = kernels["fig9_plan"]["plan_overhead"]
        report["plan_solve_overhead"] = kernels["fig9_plan"]["plan_solve_overhead"]
    # Headline for the event-calendar core: the multi-rate event kernel vs.
    # the *seed* implementation's fixed-dt fig9 (same scenario; only the
    # control-plane rates and stepping mode differ).
    seed_fig9 = (
        (seed_baseline or {}).get(config, {}).get("kernels", {}).get("fig9", {})
    )
    if "fig9_event" in kernels and seed_fig9.get("ticks_per_sec"):
        report["fig9_event_vs_seed_fig9"] = (
            kernels["fig9_event"]["ticks_per_sec"] / seed_fig9["ticks_per_sec"]
        )
    out_path = Path(args.output)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    for name, result in kernels.items():
        speed = report["speedup_vs_seed"].get(name)
        extra = f"  ({speed:.2f}x vs seed)" if speed else ""
        print(
            f"{name:10s} {result['wall_s']:8.3f}s  "
            f"{result['ticks_per_sec']:10.1f} ticks/s{extra}"
        )
    if "telemetry_overhead" in report:
        print(f"telemetry overhead: {report['telemetry_overhead']:+.1%} wall time")
    if "plan_overhead" in report:
        print(f"plan overhead: {report['plan_overhead']:+.1%} wall time vs reactive")
    if "plan_solve_overhead" in report:
        print(
            "plan solve overhead: "
            f"{report['plan_solve_overhead']:+.1%} budgeter solves vs reactive "
            "(deterministic)"
        )
    if "fig9_event_vs_seed_fig9" in report:
        print(
            "fig9_event vs seed fig9: "
            f"{report['fig9_event_vs_seed_fig9']:.1f}x ticks/sec"
        )
    print(f"wrote {out_path}")

    if args.update_baseline:
        baseline = load_json(CURRENT_BASELINE) or {}
        baseline[config] = {"kernels": kernels}
        CURRENT_BASELINE.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"updated {CURRENT_BASELINE} [{config}]")
    if args.check:
        baseline = load_json(CURRENT_BASELINE)
        if baseline is None or config not in baseline:
            print(f"no committed baseline.json entry for {config!r}; "
                  "run --update-baseline first")
            return 1
        failures = []
        for name, speedup in compare(kernels, baseline, config).items():
            if speedup < 1.0 - args.max_regress:
                failures.append(f"{name}: {speedup:.2f}x of baseline ticks/sec")
        if failures:
            print("PERF REGRESSION: " + "; ".join(failures))
            return 1
        print(f"perf gate ok (>{1.0 - args.max_regress:.0%} of baseline ticks/sec)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
