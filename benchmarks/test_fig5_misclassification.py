"""Fig. 5: cost of misclassifying the unknown FT job as IS or EP.

Paper takeaways to reproduce: (1) underprediction slows the unknown job,
overprediction slows the sensitive co-scheduled jobs; (2) the damage scales
with the relative size of the misclassified job — small unknown jobs suffer
most under underprediction, large unknown jobs hurt others most under
overprediction (§6.1.2).
"""

from repro.experiments import fig5
from repro.experiments.fig5 import worst_excess_slowdown


def test_fig5_misclassification_quadrants(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig5.run_fig5(n_budgets=30), rounds=1, iterations=1
    )
    under_small_ft = worst_excess_slowdown(result, "under-small", "ft(unknown)")
    under_large_ft = worst_excess_slowdown(result, "under-large", "ft(unknown)")
    over_small_ep = worst_excess_slowdown(result, "over-small", "ep")
    over_large_ep = worst_excess_slowdown(result, "over-large", "ep")

    # Takeaway 1: who gets hurt depends on the direction of the error.
    assert under_small_ft > 0.05
    assert worst_excess_slowdown(result, "under-small", "ep") < 0.02
    assert over_small_ep > 0.02
    assert worst_excess_slowdown(result, "over-small", "ft(unknown)") <= 0.01

    # Takeaway 2: relative job size amplifies the damage.
    assert under_small_ft > under_large_ft
    assert over_large_ep > over_small_ep

    report(
        fig5.format_table(result),
        under_small_ft=round(under_small_ft, 4),
        under_large_ft=round(under_large_ft, 4),
        over_small_ep=round(over_small_ep, 4),
        over_large_ep=round(over_large_ep, 4),
    )
