"""§8 extension: phase-change handling via drift detection (modeler ablation).

"Some jobs may consist of multiple power-sensitivity profiles through the
job's lifecycle" (paper §8).  This bench feeds the online modeler the same
two-phase epoch stream — a sensitive simulation phase, then a near-flat
analysis phase, observed through the usual dithered caps — once with drift
detection off and once with it on.  Without detection, the fit keeps
averaging both phases and mispredicts the current behaviour; with detection
the stale history is discarded at the transition and the fit converges to
the live phase.  (End-to-end execution of phased jobs is covered by
tests/test_workloads_phased.py; this isolates the §8 modeling mechanism.)
"""

import numpy as np

from repro.modeling.online import OnlineModeler
from repro.modeling.quadratic import QuadraticPowerModel
from repro.workloads.phased import PhaseSpec, make_two_phase_type

PHASED = make_two_phase_type(
    "px",
    nodes=1,
    epochs=240,
    t_uncapped=760.0,  # ~3.2 s/epoch: quantisation well below the signal
    first=PhaseSpec(0.5, 1.9, 272.0),
    second=PhaseSpec(0.5, 1.0, 235.0),
)

SEEDS = (0, 1, 2, 3, 4)


def stream_phases(modeler: OnlineModeler, *, seed: int, budget_cap: float = 210.0):
    """Feed the modeler the phased job's epoch stream at 1 Hz observations."""
    rng = np.random.default_rng(seed)
    t, epochs_done = 0.0, 0
    sign, hold = 1.0, 0
    carry = 0.0
    while epochs_done < PHASED.epochs:
        # Endpoint-style dither: ±6 % held for 12 observations.
        hold += 1
        if hold % 12 == 0:
            sign = -sign
        applied = budget_cap * (1.0 + 0.06 * sign)
        progress = epochs_done / PHASED.epochs
        tau = PHASED.time_per_epoch_at(applied, progress) * float(
            np.exp(rng.normal(0.0, PHASED.noise))
        )
        carry += 1.0 / tau  # one second of progress
        new = int(carry)
        if new:
            carry -= new
            epochs_done = min(epochs_done + new, PHASED.epochs)
        t += 1.0
        modeler.observe(t, epochs_done, applied)
    return modeler


def phase2_error(modeler: OnlineModeler, *, budget_cap: float = 210.0) -> float:
    """Relative prediction error vs the live (phase-2) curve over the
    operating window the dither actually visited."""
    caps = np.linspace(budget_cap * 0.94, budget_cap * 1.06, 7)
    truth = np.array([PHASED.time_per_epoch_at(float(c), 0.9) for c in caps])
    pred = np.array([modeler.model.time_at(float(c)) for c in caps])
    return float(np.mean(np.abs(pred - truth) / truth))


def run_ablation(*, detect_drift: bool, seeds=SEEDS):
    errors, resets = [], 0
    for seed in seeds:
        default = QuadraticPowerModel.from_anchors(3.2, 1.4, 140.0, 280.0)
        modeler = OnlineModeler(140.0, 280.0, default, detect_drift=detect_drift)
        stream_phases(modeler, seed=seed)
        errors.append(phase2_error(modeler))
        resets += modeler.drift_resets
    return float(np.mean(errors)), resets


def test_phase_drift_detection(benchmark, report):
    def sweep():
        return {
            "without": run_ablation(detect_drift=False),
            "with": run_ablation(detect_drift=True),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    err_without, resets_without = results["without"]
    err_with, resets_with = results["with"]

    assert resets_without == 0
    assert resets_with >= len(SEEDS) - 1  # fires on essentially every stream
    # Detection at least halves the live-phase prediction error.
    assert err_with < 0.5 * err_without

    rows = [
        f"{'configuration':>26} {'phase-2 model error':>20} {'resets':>7}",
        f"{'without drift detection':>26} {100 * err_without:>19.1f}% {resets_without:>7}",
        f"{'with drift detection':>26} {100 * err_with:>19.1f}% {resets_with:>7}",
    ]
    report(
        "\n".join(rows),
        err_without=round(err_without, 4),
        err_with=round(err_with, 4),
        resets_with=resets_with,
    )
