"""Fig. 10: per-type slowdown under the 1-hour time-varying schedule.

Paper bars: under uniform capping, the power-sensitive types (BT, LU, FT)
slow down most; the characterized balancer improves the slowest type (paper:
11.6 % → 8.0 %) at the cost of lightly capping insensitive types more; the
BT→IS misclassification inflates BT's slowdown; and the adjusted
(feedback) policy recovers much of it.  Tracking error must stay under 30 %
at the 90th percentile (paper: ≤24 % worst case).
"""

import numpy as np

from repro.experiments import fig10


def test_fig10_policy_matrix(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig10.run_fig10(duration=1800.0, trials=1, seed=0, warmup=300.0),
        rounds=1,
        iterations=1,
    )
    uniform = result.mean_slowdown("Uniform")
    char = result.mean_slowdown("Characterized")
    mis = result.mean_slowdown("Misclassified")
    adj = result.mean_slowdown("Adjusted")

    # Sensitive types suffer most under uniform capping.
    sensitive = np.mean([uniform["bt"], uniform["lu"], uniform["ft"]])
    insensitive = np.mean([uniform["sp"], uniform["mg"], uniform["cg"]])
    assert sensitive > insensitive

    # Characterized improves the slowest type (paper: 11.6 % -> 8.0 %).
    _, worst_uniform = result.slowest_type("Uniform")
    _, worst_char = result.slowest_type("Characterized")
    assert worst_char < worst_uniform

    # Misclassification hurts BT; feedback recovers.
    assert mis["bt"] > char["bt"]
    assert adj["bt"] < mis["bt"]

    # Tracking constraint (§6.3): ≤30 % error at the 90th percentile.
    assert max(result.tracking_90th.values()) < 0.35

    report(
        fig10.format_table(result),
        worst_uniform=round(worst_uniform, 4),
        worst_characterized=round(worst_char, 4),
        bt_misclassified=round(mis["bt"], 4),
        bt_adjusted=round(adj["bt"], 4),
        tracking_90th_worst=round(max(result.tracking_90th.values()), 4),
    )
