"""Trust boundary: byzantine drill and chaos soak acceptance runs.

Acceptance runs for the cap-compliance auditor: the byzantine drill pits
two wedged-open actuators and one fabricated-model endpoint against the
audit-on manager (which must quarantine every rogue within the detection
bound with zero collateral damage and hold facility power at target) and
against the audit-off manager (which must visibly overshoot — proving the
drill actually bites).  The short chaos soak then churns randomized fault
cocktails through the audited manager and requires every online invariant
monitor to stay silent.
"""

from repro.experiments import resilience
from repro.experiments.scorecard import score_byzantine, score_soak


def test_byzantine_drill_scorecard(benchmark, report):
    result = benchmark.pedantic(
        lambda: resilience.run_byzantine_drill(duration=900.0, seed=3),
        rounds=1,
        iterations=1,
    )
    card = score_byzantine(result)

    assert len(result.victims_on) >= 3, "drill should field three rogues"
    assert not result.missed_victims, result.missed_victims
    assert not result.collateral_quarantines, result.collateral_quarantines
    assert not result.false_quarantines_clean, result.false_quarantines_clean
    assert card.all_passed, card.render()

    report(
        resilience.format_byzantine_table(result) + "\n\n" + card.render(),
        victims=len(result.victims_on),
        detection_latencies={
            k: round(v, 1) for k, v in result.detection_latencies.items()
        },
        on_settled_mean=round(result.on_settled_mean, 2),
        off_detect_mean=round(result.off_detect_mean, 2),
        energy_ratio=round(
            result.off_total_energy / max(result.on_total_energy, 1e-9), 3
        ),
    )


def test_chaos_soak_invariants_hold(benchmark, report):
    result = benchmark.pedantic(
        lambda: resilience.run_chaos_soak(seconds=45.0, base_seed=7),
        rounds=1,
        iterations=1,
    )
    card = score_soak(result)

    assert result.episodes, "soak should complete at least one episode"
    assert result.total_faults > 0
    assert result.all_clean, "\n".join(result.violations)
    assert card.all_passed, card.render()

    report(
        resilience.format_soak_table(result) + "\n\n" + card.render(),
        episodes=len(result.episodes),
        total_faults=result.total_faults,
        quarantines=sum(e.quarantines for e in result.episodes),
        violations=len(result.violations),
    )
