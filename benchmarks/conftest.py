"""Benchmark-harness helpers.

Each benchmark regenerates one paper figure (scaled where noted), records
the headline numbers in ``benchmark.extra_info`` (visible in pytest-benchmark
JSON output), and prints the paper-vs-measured table.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(benchmark):
    """Attach results to the benchmark record and echo the table."""

    def _report(table: str, **extra) -> None:
        for key, value in extra.items():
            benchmark.extra_info[key] = value
        print("\n" + table)

    return _report
