"""Fig. 6: BT + SP under a shared 840 W budget on the emulated cluster.

Paper bars (slowdown vs no power cap): performance-agnostic hurts BT
(~11 %) while barely touching SP; the performance-aware balancer pulls the
two together (~5 %); misclassifying either job reopens the gap (~15 %); and
online feedback recovers much of the loss in both directions.
"""

import numpy as np

from repro.experiments import fig6


def mean(result, policy, job):
    return float(np.mean(result.slowdowns[policy][job]))


def test_fig6_pair_policies(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig6.run_fig6(trials=3, seed=0, tick=1.0), rounds=1, iterations=1
    )
    agnostic_bt = mean(result, "Performance Agnostic", "bt")
    aware_bt = mean(result, "Performance Aware", "bt")
    under_bt = mean(result, "Under-estimate bt", "bt=is")
    under_fb = mean(result, "Under-estimate bt, with feedback", "bt=is")
    over_bt = mean(result, "Over-estimate sp", "bt")
    over_fb = mean(result, "Over-estimate sp, with feedback", "bt")

    # Who wins, in the paper's order.
    assert agnostic_bt > aware_bt  # awareness helps the sensitive job
    assert under_bt > agnostic_bt * 0.9  # misclassification is the worst case
    assert under_fb < under_bt  # feedback recovers (under-estimate)
    assert over_fb < over_bt  # feedback recovers (over-estimate)
    # Rough factors: agnostic ≈ 2-4× aware for BT; feedback recovers ≥ 25 %.
    assert agnostic_bt / aware_bt > 1.5
    assert (under_bt - under_fb) / under_bt > 0.2

    report(
        fig6.format_table(result),
        agnostic_bt=round(agnostic_bt, 4),
        aware_bt=round(aware_bt, 4),
        under_estimate_bt=round(under_bt, 4),
        under_estimate_bt_feedback=round(under_fb, 4),
        over_estimate_bt=round(over_bt, 4),
        over_estimate_bt_feedback=round(over_fb, 4),
    )
