"""End-to-end forecasting pipeline: metadata → claimed type → ANOR (§2).

The paper supplements queue-metadata forecasting ([17, 20]) with online
feedback: predictions classify jobs before they run, and the job tier's
epoch feedback repairs whatever the forecaster gets wrong.  This bench runs
the full pipeline — train a metadata forecaster, predict each submission's
type, hand the (sometimes wrong) claim to the cluster tier — and checks
that (a) forecasting is decent but imperfect on an ambiguous stream, and
(b) enabling feedback recovers part of the mispredicted jobs' slowdown.
"""

import numpy as np

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorSystem, precharacterized_models
from repro.core.targets import ConstantTarget
from repro.modeling.classifier import JobClassifier
from repro.modeling.forecasting import (
    NaiveBayesTypeForecaster,
    synthesize_submissions,
)
from repro.workloads.nas import NAS_TYPES

TYPES = ["bt", "sp"]


def build_forecaster(seed=0):
    """Train on an ambiguous stream: users overlap 35 % of the time."""
    data = synthesize_submissions(
        TYPES, 400, seed=seed, crossover=0.35,
        walltime_by_type={"bt": 500.0, "sp": 520.0},  # indistinct walltimes
        nodes_by_type={"bt": 2, "sp": 2},
    )
    forecaster = NaiveBayesTypeForecaster().fit(data)
    return forecaster


def run_pipeline(*, feedback: bool, pairs: int = 4, seed: int = 0):
    """Run `pairs` BT+SP co-runs with forecaster-claimed types."""
    forecaster = build_forecaster(seed)
    # Fresh ambiguous submissions to predict (not in the training set).
    stream = synthesize_submissions(
        TYPES, 400, seed=seed + 1, crossover=0.35,
        walltime_by_type={"bt": 500.0, "sp": 520.0},
        nodes_by_type={"bt": 2, "sp": 2},
    )
    mispredicted = 0
    slowdowns = []
    # The forecaster is right ~95 % of the time, so draw the run's jobs the
    # way an operator studying forecast risk would: oversample the stream's
    # mispredicted submissions (put them first) so the run contains both
    # correct and incorrect claims.
    def risk_first(type_name):
        subs = [(m, t) for m, t in stream if t == type_name]
        wrong = [s for s in subs if forecaster.predict(s[0]) != type_name]
        right = [s for s in subs if forecaster.predict(s[0]) == type_name]
        return (wrong + right)[:pairs]

    pair_submissions = [risk_first("bt"), risk_first("sp")]
    for k in range(pairs):
        system = AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(840.0),
            classifier=JobClassifier(precharacterized_models()),
            config=AnorConfig(num_nodes=4, seed=3001 * seed + k,
                              feedback_enabled=feedback),
        )
        for series in pair_submissions:
            metadata, truth = series[k]
            claimed = forecaster.predict(metadata)
            if claimed != truth:
                mispredicted += 1
            system.submit_now(f"{truth}-{k}", truth, claimed_type=claimed)
        result = system.run(until_idle=True, max_time=7200.0)
        for totals in result.completed:
            ref = NAS_TYPES[totals.job_type].compute_time(
                NAS_TYPES[totals.job_type].p_max
            )
            slowdowns.append(totals.runtime / ref - 1.0)
    return float(np.mean(slowdowns)), mispredicted


def test_forecast_to_feedback_pipeline(benchmark, report):
    def sweep():
        return {
            "feedback-off": run_pipeline(feedback=False),
            "feedback-on": run_pipeline(feedback=True),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slow_off, mis_off = results["feedback-off"]
    slow_on, mis_on = results["feedback-on"]

    # The stream is ambiguous enough that some predictions are wrong …
    assert mis_off == mis_on  # same forecaster, same stream
    assert mis_off >= 1
    # … and feedback recovers part of the resulting slowdown.
    assert slow_on < slow_off

    # Forecaster sanity: well above chance on held-out data.
    forecaster = build_forecaster(0)
    holdout = synthesize_submissions(
        TYPES, 300, seed=99, crossover=0.35,
        walltime_by_type={"bt": 500.0, "sp": 520.0},
        nodes_by_type={"bt": 2, "sp": 2},
    )
    accuracy = forecaster.accuracy(holdout)
    assert accuracy > 0.6

    rows = [
        f"forecaster hold-out accuracy : {100 * accuracy:.1f}%",
        f"mispredicted jobs in run     : {mis_off}",
        f"mean slowdown, feedback off  : {100 * slow_off:.1f}%",
        f"mean slowdown, feedback on   : {100 * slow_on:.1f}%",
    ]
    report(
        "\n".join(rows),
        accuracy=round(accuracy, 3),
        mispredicted=mis_off,
        slow_off=round(slow_off, 4),
        slow_on=round(slow_on, 4),
    )
