"""Ablation: FCFS vs EASY backfill under the ANOR control plane.

The paper replays its schedule FCFS; production resource managers backfill.
This sweep runs the same mixed-width schedule under both schedulers on the
emulated cluster and reports queue-wait statistics — backfill should cut
short-narrow jobs' waits without delaying the wide head jobs (EASY's
reservation guarantee), and power management must keep working identically
underneath either scheduler.
"""

import numpy as np

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorSystem
from repro.core.targets import ConstantTarget
from repro.sched import EasyBackfillScheduler, FcfsScheduler
from repro.workloads.nas import NAS_TYPES


def run_schedule(scheduler, *, seed=0):
    """A contrived but realistic mix: wide long heads + narrow short tails."""
    system = AnorSystem(
        budgeter=EvenSlowdownBudgeter(),
        target_source=ConstantTarget(8 * 230.0),
        scheduler=scheduler,
        config=AnorConfig(num_nodes=8, seed=seed, feedback_enabled=False),
    )
    # Two wide lu jobs monopolise the machine; narrow short jobs queue behind.
    system.submit_now("lu-0", "lu", nodes=5)
    system.submit_now("lu-1", "lu", nodes=5)  # blocked head (needs 5 of 8)
    for i in range(4):
        system.submit_now(f"is-{i}", "is", nodes=1)
        system.submit_now(f"mg-{i}", "mg", nodes=1)
    result = system.run(until_idle=True, max_time=7200.0)
    waits = {
        t.job_id: t.sojourn - t.runtime - NAS_TYPES[t.job_type].setup_time
        - NAS_TYPES[t.job_type].teardown_time
        for t in result.completed
    }
    narrow_waits = [w for jid, w in waits.items() if not jid.startswith("lu")]
    head_end = [t.sojourn for t in result.completed if t.job_id == "lu-1"][0]
    return {
        "mean_narrow_wait": float(np.mean(narrow_waits)),
        "head_sojourn": float(head_end),
        "completed": len(result.completed),
    }


def test_ablation_backfill_vs_fcfs(benchmark, report):
    def sweep():
        return {
            "fcfs": run_schedule(FcfsScheduler()),
            "easy-backfill": run_schedule(EasyBackfillScheduler()),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fcfs, easy = results["fcfs"], results["easy-backfill"]

    assert fcfs["completed"] == easy["completed"] == 10
    # Backfill slashes narrow jobs' queue waits...
    assert easy["mean_narrow_wait"] < 0.5 * fcfs["mean_narrow_wait"]
    # ...without delaying the blocked wide head beyond estimate slack.
    assert easy["head_sojourn"] <= fcfs["head_sojourn"] * 1.10

    rows = [
        f"{'scheduler':>15} {'mean narrow wait':>17} {'head sojourn':>13}",
        f"{'fcfs':>15} {fcfs['mean_narrow_wait']:>16.0f}s {fcfs['head_sojourn']:>12.0f}s",
        f"{'easy-backfill':>15} {easy['mean_narrow_wait']:>16.0f}s {easy['head_sojourn']:>12.0f}s",
    ]
    report(
        "\n".join(rows),
        fcfs_narrow_wait=round(fcfs["mean_narrow_wait"], 1),
        easy_narrow_wait=round(easy["mean_narrow_wait"], 1),
        fcfs_head=round(fcfs["head_sojourn"], 1),
        easy_head=round(easy["head_sojourn"], 1),
    )
