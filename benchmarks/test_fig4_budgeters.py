"""Fig. 4: even-slowdown vs even-power budgeters across shared budgets.

Paper series: estimated slowdown of one instance of each of the 8 job types
under a budget sweep.  Shape checks: even-slowdown never increases the
worst-job slowdown, strictly improves it at mid-range budgets, and the two
policies coincide at the budget extremes (§6.1.1).
"""

import numpy as np

from repro.experiments import fig4


def test_fig4_budgeter_comparison(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig4.run_fig4(n_budgets=40), rounds=1, iterations=1
    )
    ep = result.max_slowdown("even-power")
    es = result.max_slowdown("even-slowdown")
    assert np.all(es <= ep + 1e-9)
    mid = len(ep) // 2
    assert es[mid] < ep[mid]
    assert es[0] == ep[0]
    assert es[-1] == ep[-1]
    # Paper Fig. 4: at mid budgets the ideal budgeter roughly halves the
    # worst-job slowdown relative to even power caps.
    improvement = (ep[mid] - es[mid]) / ep[mid]
    assert improvement > 0.25
    report(
        fig4.format_table(result),
        midrange_worst_even_power=round(float(ep[mid]), 4),
        midrange_worst_even_slowdown=round(float(es[mid]), 4),
        midrange_improvement=round(float(improvement), 3),
    )
