#!/usr/bin/env python
"""A shift of demand-response operation: re-bidding hour after hour (§4.4.1).

"The bidding decision is made once per hour, influencing the range of power
targets that will be received until the next bid."  This example operates
ONE continuous tabular-simulated cluster across several hours whose workload
intensity ramps (a quiet morning into a busy afternoon).  At each hour
boundary the session re-runs the bid search against short lookahead
simulations of the coming hour's load, then commits the winning (P̄, R) to
the live cluster — the bid changes mid-run, the cluster keeps running.

Run with:  python examples/multi_hour_operation.py [--hours 4]
"""

import argparse

import numpy as np

from repro.analysis import TrackingConstraint, tracking_error_series
from repro.aqa import (
    Bid,
    BidEvaluation,
    BoundedRandomWalkSignal,
    DemandResponseBidder,
    DemandResponseSession,
    HourMetrics,
    QoSConstraint,
)
from repro.tabsim import SimConfig, SimJobType, TabularClusterSimulator
from repro.workloads import PoissonScheduleGenerator, Schedule, long_running_mix

NUM_NODES = 300
NODE_SCALE = 3
HOUR = 1800.0  # compressed "hours" keep the example quick
QOS = QoSConstraint(limit=5.0, probability=0.9)
TRACKING = TrackingConstraint(max_error=0.30, probability=0.90)

#: Hour-by-hour utilization: a quiet start ramping into a busy afternoon.
UTILIZATION_BY_HOUR = (0.45, 0.60, 0.75, 0.85, 0.85, 0.70)


def sim_types():
    return [SimJobType.from_job_type(t, node_scale=NODE_SCALE) for t in long_running_mix()]


def scaled_types():
    return [t.scaled_nodes(NODE_SCALE) for t in long_running_mix()]


def ramp_schedule(hours: int, *, seed: int) -> Schedule:
    """Concatenate per-hour Poisson schedules at each hour's utilization."""
    requests = []
    for hour in range(hours):
        util = UTILIZATION_BY_HOUR[hour % len(UTILIZATION_BY_HOUR)]
        generator = PoissonScheduleGenerator(
            scaled_types(), utilization=util, total_nodes=NUM_NODES,
            seed=seed + hour,
        )
        part = generator.generate(HOUR, start_time=hour * HOUR)
        requests.extend(
            # Re-key ids so hours don't collide.
            type(r)(r.submit_time, f"h{hour}-{r.job_id}", r.type_name, r.nodes)
            for r in part
        )
    return Schedule(requests=requests, duration=hours * HOUR)


def lookahead_evaluate(bid: Bid, hour: int) -> BidEvaluation:
    """Forecast the hour with a short, fresh simulation of its load."""
    util = UTILIZATION_BY_HOUR[hour % len(UTILIZATION_BY_HOUR)]
    generator = PoissonScheduleGenerator(
        scaled_types(), utilization=util, total_nodes=NUM_NODES, seed=100 + hour
    )
    schedule = generator.generate(900.0)
    sim = TabularClusterSimulator(
        sim_types(),
        schedule,
        BoundedRandomWalkSignal(3600.0, seed=101 + hour),
        SimConfig(
            num_nodes=NUM_NODES,
            average_power=bid.average_power,
            reserve=max(bid.reserve, 1.0),
            power_aware_admission=True,
            seed=102 + hour,
        ),
    )
    result = sim.run(900.0, drain=True)
    q = np.concatenate(
        [v for v in result.qos_by_type().values() if v.size] or [np.zeros(1)]
    )
    errors = result.tracking_errors(t_start=450.0, t_end=900.0)
    return BidEvaluation(
        bid=bid,
        qos_ok=QOS.satisfied(q),
        tracking_ok=TRACKING.satisfied(errors),
        qos_90th=float(np.percentile(q, 90)),
        tracking_error_90th=float(np.percentile(errors, 90)),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # One live cluster for the whole shift.
    live = TabularClusterSimulator(
        sim_types(),
        ramp_schedule(args.hours, seed=args.seed),
        BoundedRandomWalkSignal(args.hours * HOUR * 2, seed=args.seed + 7),
        SimConfig(
            num_nodes=NUM_NODES,
            average_power=NUM_NODES * 100.0,  # replaced by the first bid
            reserve=1.0,
            power_aware_admission=True,
            seed=args.seed + 11,
        ),
    )

    def run_hour(bid: Bid, hour: int) -> HourMetrics:
        # Commit the bid to the LIVE cluster and run it to the hour's end.
        live.config.average_power = bid.average_power
        live.config.reserve = max(bid.reserve, 1.0)
        done_before = int(live.jobs.completed_mask().sum())
        end = (hour + 1) * HOUR
        while live.now < end:
            live.step()
        trace = np.asarray(live._trace)
        # Hour 0 includes the cluster's fill-up; score tracking only once
        # the machine is loaded (the committed DR window starts then).
        warmup = 600.0 if hour == 0 else 240.0
        window = trace[(trace[:, 0] > hour * HOUR + warmup) & (trace[:, 0] <= end)]
        errors = tracking_error_series(window, live.config.reserve)
        done_mask = live.jobs.completed_mask()
        ended_now = done_mask & (live.jobs.end_time[: live.jobs.count] <= end)
        sojourn = live.jobs.sojourn_times()[ended_now]
        t_min = np.array(
            [live.job_types[i].t_at_p_max for i in live.jobs.type_idx[: live.jobs.count][ended_now]]
        )
        q = sojourn / t_min - 1.0 if sojourn.size else np.zeros(1)
        return HourMetrics(
            qos_90th=float(np.percentile(q, 90)),
            tracking_error_90th=float(np.percentile(errors, 90)),
            mean_power=float(window[:, 2].mean()),
            jobs_completed=int(done_mask.sum()) - done_before,
        )

    low_util, high_util = min(UTILIZATION_BY_HOUR), max(UTILIZATION_BY_HOUR)
    floor = NUM_NODES * (low_util * 140.0 + (1 - low_util) * 60.0)
    ceiling = NUM_NODES * (high_util * 240.0 + (1 - high_util) * 60.0)
    bidder = DemandResponseBidder(floor, ceiling, n_power_steps=4, n_reserve_steps=3)
    session = DemandResponseSession(bidder, lookahead_evaluate, run_hour)

    print(
        f"Operating {NUM_NODES} nodes for {args.hours} compressed hours; "
        f"utilization ramp {UTILIZATION_BY_HOUR[:args.hours]}...\n"
    )
    session.run(args.hours)
    print(session.format_ledger())
    print(
        f"\ntotal jobs: {session.total_jobs}, worst hour QoS90 "
        f"{session.worst_qos():.2f} (limit 5)"
        "\nEach hour the session re-ran the bid search against the coming"
        "\nhour's forecast load and committed the cheapest feasible (P̄, R)"
        "\nto the live cluster; with this cost model large reserves pay for"
        "\nthemselves, so the bid stays aggressive while QoS headroom lasts."
    )


if __name__ == "__main__":
    main()
