#!/usr/bin/env python
"""Demand response: track a moving power target through a busy hour.

Reproduces the paper's §6.3 scenario end-to-end: a 16-node cluster receives
a new power target every 4 seconds (average ± reserve driven by a
mean-reverting regulation signal) while a Poisson stream of six NPB job
types arrives at 95 % node utilization.  The ANOR cluster tier re-budgets
every second; job tiers enforce caps and stream epoch feedback.

Run with:  python examples/demand_response_day.py [--minutes 20]
"""

import argparse

import numpy as np

from repro.analysis import TrackingConstraint, tracking_error_series
from repro.experiments.fig9 import (
    DEFAULT_AVERAGE_POWER,
    DEFAULT_RESERVE,
    build_demand_response_system,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    duration = args.minutes * 60.0

    system = build_demand_response_system(duration=duration, seed=args.seed)
    print(
        f"Tracking {DEFAULT_AVERAGE_POWER / 1000:.1f} kW ± "
        f"{DEFAULT_RESERVE / 1000:.2f} kW for {args.minutes:.0f} minutes "
        f"on {system.config.num_nodes} nodes..."
    )
    result = system.run(duration)

    trace = result.power_trace
    errors = tracking_error_series(
        trace, DEFAULT_RESERVE, t_start=300.0, smooth_samples=4
    )
    constraint = TrackingConstraint(max_error=0.30, probability=0.90)

    print(f"\njobs completed          : {len(result.completed)}")
    print(f"mean target / measured  : {trace[:, 1].mean():.0f} / {trace[:, 2].mean():.0f} W")
    print(f"tracking error (90th)   : {100 * np.percentile(errors, 90):.1f}%")
    print(f"within 30% for ≥90%?    : {constraint.satisfied(errors)}")

    # A coarse ASCII strip chart of target vs measured (1 sample / 2 min).
    print("\n  time    target  measured")
    for i in range(0, trace.shape[0], 120):
        t, target, measured = trace[i]
        bar = "#" * int((measured - 2000) / 100)
        print(f"{t:6.0f}s {target:7.0f} {measured:9.0f}  {bar}")


if __name__ == "__main__":
    main()
