#!/usr/bin/env python
"""1000-node study: how node performance variation erodes QoS (paper §6.4).

Uses the tabular cluster simulator directly: six job types scaled 25×,
75 % utilization, a demand-response target stream, and per-node performance
coefficients drawn from N(1, σ).  Sweeps the variation band and reports the
90th percentile of QoS degradation per job type against the Q ≤ 5 target.

Run with:  python examples/datacenter_variation_study.py [--trials 3]
"""

import argparse

from repro.experiments.fig11 import format_table, run_fig11


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--nodes", type=int, default=1000)
    parser.add_argument("--minutes", type=float, default=40.0)
    parser.add_argument(
        "--qos-aware-capping",
        action="store_true",
        help="exempt at-risk jobs from power caps (§6.4's feedback variant)",
    )
    args = parser.parse_args()

    print(
        f"Simulating {args.nodes} nodes × {args.trials} trials per variation "
        f"level ({args.minutes:.0f} min schedules)..."
    )
    result = run_fig11(
        trials=args.trials,
        num_nodes=args.nodes,
        duration=args.minutes * 60.0,
        qos_aware_capping=args.qos_aware_capping,
    )
    print()
    print(format_table(result))
    crossings = result.types_exceeding_limit()
    print("\nfirst variation band where a type's 90th-pct QoS exceeds 5:")
    for name, band in sorted(crossings.items()):
        text = f"±{100 * band:.1f}%" if band == band else "never"
        print(f"  {name}: {text}")


if __name__ == "__main__":
    main()
