#!/usr/bin/env python
"""Misclassification and recovery: watch online feedback fix a bad model.

The cluster tier believes a BT job (high power sensitivity) is an IS job
(low sensitivity), so the even-slowdown budgeter starves it.  With feedback
enabled, the job tier's online modeler learns the true curve from epoch
timing and ships the coefficients up; the budgeter then re-steers power.
This example traces the believed sensitivity and the job's power cap over
time so you can watch the recovery happen (paper Figs. 6–7).

Run with:  python examples/misclassification_recovery.py
"""

from repro.budget import EvenSlowdownBudgeter
from repro.core import AnorConfig, AnorSystem, ConstantTarget
from repro.core.framework import precharacterized_models
from repro.modeling import JobClassifier
from repro.workloads import NAS_TYPES


def run(feedback: bool) -> None:
    label = "WITH feedback" if feedback else "WITHOUT feedback"
    system = AnorSystem(
        budgeter=EvenSlowdownBudgeter(),
        target_source=ConstantTarget(840.0),
        classifier=JobClassifier(precharacterized_models()),
        config=AnorConfig(num_nodes=4, seed=7, feedback_enabled=feedback),
    )
    # The BT job *claims* to be IS — deliberate misclassification.
    system.submit_now("bt-mis", "bt", claimed_type="is")
    system.submit_now("sp-ok", "sp")

    print(f"\n=== {label} ===")
    print(f"{'time':>6} {'bt cap (W/node)':>16} {'believed sensitivity':>22}")
    last_printed = -60.0
    while system.cluster.running or system._queue:
        system.step()
        now = system.cluster.clock.now
        record = system.manager.jobs.get("bt-mis")
        if record is not None and record.last_status and now - last_printed >= 30.0:
            model = record.active_model
            print(
                f"{now:>5.0f}s {record.last_status.applied_cap:>16.0f} "
                f"{model.sensitivity:>21.2f}x"
            )
            last_printed = now
        if now > 3600.0:
            break

    bt_truth = NAS_TYPES["bt"]
    for totals in system.cluster.completed:
        if totals.job_type != "bt":
            continue
        ref = bt_truth.compute_time(bt_truth.p_max)
        print(
            f"BT finished: runtime {totals.runtime:.0f}s, "
            f"slowdown {100 * (totals.runtime / ref - 1):+.1f}% "
            f"(true sensitivity {bt_truth.truth.sensitivity:.2f}x)"
        )


def main() -> None:
    print("BT misclassified as IS under an 840 W shared budget.")
    run(feedback=False)
    run(feedback=True)
    print(
        "\nWith feedback the believed sensitivity climbs from IS's ~1.08x "
        "toward BT's true 1.65x,\nand the budgeter raises BT's cap — "
        "recovering most of the lost performance."
    )


if __name__ == "__main__":
    main()
