#!/usr/bin/env python
"""Facility tier: two clusters sharing one constrained power feed (paper §8).

The paper's future work motivates coordinating power across clusters, e.g.
"facilities that are bringing up next-generation clusters while previous-
generation clusters are still operating under a shared power infrastructure
that may not have the capacity to use both clusters at peak power demand
concurrently."

This example runs two live emulated clusters — one full of power-sensitive
jobs, one full of insensitive jobs — under a FacilityCoordinator that
re-splits a shared feed every few seconds using the same even-slowdown
budgeter the cluster tier uses for jobs.

Run with:  python examples/facility_coordination.py
"""

from repro.budget import EvenSlowdownBudgeter
from repro.budget.base import JobBudgetRequest
from repro.core import AnorConfig, AnorSystem, ConstantTarget
from repro.facility import (
    ClusterMember,
    FacilityCoordinator,
    MutableTarget,
    aggregate_cluster_model,
)
from repro.workloads import NAS_TYPES


def build_cluster(name: str, job_types: list[str], seed: int):
    """One emulated cluster plus its facility-tier description."""
    requests = [
        JobBudgetRequest(
            job_id=f"{t}-{i}",
            nodes=NAS_TYPES[t].nodes,
            model=NAS_TYPES[t].truth,
            p_min=140.0,
            p_max=NAS_TYPES[t].p_demand,
        )
        for i, t in enumerate(job_types)
    ]
    model = aggregate_cluster_model(requests)
    member = ClusterMember(
        name=name,
        target=MutableTarget(model.p_max),
        p_min=model.p_min,
        p_max=model.p_max,
        model=model,
    )
    nodes = sum(NAS_TYPES[t].nodes for t in job_types)
    system = AnorSystem(
        budgeter=EvenSlowdownBudgeter(),
        target_source=member.target,  # the facility rewrites this live
        config=AnorConfig(num_nodes=nodes, seed=seed),
    )
    for i, t in enumerate(job_types):
        system.submit_now(f"{t}-{i}", t)
    return system, member


def main() -> None:
    hot_system, hot = build_cluster("next-gen", ["bt", "ep", "lu"], seed=1)
    flat_system, flat = build_cluster("prev-gen", ["sp", "is", "mg"], seed=2)

    feed = 0.75 * (hot.p_max + flat.p_max)
    facility = FacilityCoordinator(facility_target=ConstantTarget(feed))
    facility.add_member(hot)
    facility.add_member(flat)

    print(
        f"Shared feed: {feed:.0f} W "
        f"(vs {hot.p_max + flat.p_max:.0f} W if both ran at peak)\n"
    )
    print(f"{'time':>5} {'next-gen share':>15} {'prev-gen share':>15} "
          f"{'next-gen meas':>14} {'prev-gen meas':>14}")
    for step in range(400):
        if step % 4 == 0:
            facility.step(float(step))
        hot_system.step()
        flat_system.step()
        if step % 60 == 0:
            print(
                f"{step:>4}s {hot.last_assigned:>14.0f}W {flat.last_assigned:>14.0f}W "
                f"{hot_system.cluster.measured_power:>13.0f}W "
                f"{flat_system.cluster.measured_power:>13.0f}W"
            )

    frac_hot = (hot.last_assigned - hot.p_min) / (hot.p_max - hot.p_min)
    frac_flat = (flat.last_assigned - flat.p_min) / (flat.p_max - flat.p_min)
    print(
        f"\nThe sensitive cluster runs at {100 * frac_hot:.0f}% of its power "
        f"range, the insensitive one at {100 * frac_flat:.0f}% — the facility "
        "steers the constrained feed toward the watts that buy performance."
    )


if __name__ == "__main__":
    main()
