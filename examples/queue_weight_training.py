#!/usr/bin/env python
"""AQA queue-weight training over simulations (paper §4.4.2).

"Each queue is assigned a weight of node allocations that is tuned over
simulations of expected power-constraint and job-submission scenarios."
This example tunes the six long-running types' queue weights on the tabular
simulator: the objective charges each simulated hour for energy, credits the
offered reserve, and adds penalties when the QoS or power-tracking
constraints break — so the search finds weights that keep sensitive queues
from starving under the demand-response schedule.

Run with:  python examples/queue_weight_training.py [--iterations 25]
"""

import argparse

import numpy as np

from repro.analysis import TrackingConstraint
from repro.aqa import BoundedRandomWalkSignal, QoSConstraint, train_queue_weights
from repro.tabsim import SimConfig, SimJobType, TabularClusterSimulator
from repro.workloads import PoissonScheduleGenerator, long_running_mix


def make_objective(*, num_nodes=300, duration=1200.0, seed=0):
    base_types = long_running_mix()
    scale = max(1, num_nodes // 130)
    sim_types = [SimJobType.from_job_type(jt, node_scale=scale) for jt in base_types]
    scaled = [jt.scaled_nodes(scale) for jt in base_types]
    qos = QoSConstraint(limit=5.0, probability=0.9)
    tracking = TrackingConstraint(max_error=0.30, probability=0.90)
    average_power = num_nodes * 150.0
    reserve = num_nodes * 15.0

    def objective(weights) -> float:
        generator = PoissonScheduleGenerator(
            scaled, utilization=0.75, total_nodes=num_nodes, seed=seed
        )
        schedule = generator.generate(duration)
        signal = BoundedRandomWalkSignal(duration * 4, seed=seed + 1)
        sim = TabularClusterSimulator(
            sim_types,
            schedule,
            signal,
            SimConfig(
                num_nodes=num_nodes,
                average_power=average_power,
                reserve=reserve,
                seed=seed + 2,
            ),
            queue_weights=dict(weights),
        )
        result = sim.run(duration, drain=True)
        q_all = np.concatenate(
            [v for v in result.qos_by_type().values() if v.size] or [np.zeros(1)]
        )
        errors = result.tracking_errors(t_start=300.0, t_end=duration)
        # Cost: energy paid minus reserve credit, plus constraint penalties.
        cost = average_power - 1.6 * reserve
        if not qos.satisfied(q_all):
            cost += 1e6 * (qos.percentile_value(q_all) - qos.limit)
        if not tracking.satisfied(errors):
            cost += 1e6
        # Secondary: prefer lower total QoS degradation (tie-breaker).
        cost += 1e3 * float(np.mean(q_all))
        return cost

    return objective, [t.name for t in sim_types]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=25)
    parser.add_argument("--nodes", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    objective, names = make_objective(num_nodes=args.nodes, seed=args.seed)
    print(f"Tuning {len(names)} queue weights over {args.iterations} "
          f"{args.nodes}-node simulations...")
    result = train_queue_weights(
        objective, names, iterations=args.iterations, seed=args.seed
    )
    total = sum(result.weights.values())
    print(f"\n{'queue':>7} {'weight':>8} {'share':>7}")
    for name in names:
        w = result.weights[name]
        print(f"{name:>7} {w:>8.3f} {100 * w / total:>6.1f}%")
    print(f"\nobjective: {result.history[0]:.0f} -> {result.score:.0f} "
          f"over {result.evaluations} evaluations")


if __name__ == "__main__":
    main()
