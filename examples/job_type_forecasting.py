#!/usr/bin/env python
"""Forecast job types from queue metadata, with a confidence gate (paper §2).

The paper supplements metadata-based power forecasting ([17, 20]): a
forecaster classifies each submission before it runs, ANOR's feedback loop
repairs whatever it gets wrong.  This example trains the Naive-Bayes
forecaster on a synthetic submission stream, then shows the practical
decision an operator faces: predictions above a confidence threshold are
handed to the cluster tier as the job's claimed type, while low-confidence
submissions are treated as *unknown* (falling back to a default-model
policy, §4.4.2) — trading coverage against misclassification risk.

Run with:  python examples/job_type_forecasting.py
"""

from repro.modeling.forecasting import (
    NaiveBayesTypeForecaster,
    synthesize_submissions,
)
from repro.workloads import NAS_TYPES

TYPES = ["bt", "cg", "ft", "lu", "mg", "sp"]


def main() -> None:
    walltimes = {t: NAS_TYPES[t].t_uncapped * 1.4 for t in TYPES}
    nodes = {t: NAS_TYPES[t].nodes for t in TYPES}
    train = synthesize_submissions(
        TYPES, 1200, seed=0, crossover=0.25,
        walltime_by_type=walltimes, nodes_by_type=nodes,
    )
    test = synthesize_submissions(
        TYPES, 600, seed=1, crossover=0.25,
        walltime_by_type=walltimes, nodes_by_type=nodes,
    )
    forecaster = NaiveBayesTypeForecaster().fit(train)

    print(f"trained on {len(train)} submissions over {len(TYPES)} job types")
    print(f"hold-out accuracy: {100 * forecaster.accuracy(test):.1f}%\n")

    print(f"{'confidence gate':>16} {'coverage':>9} {'accuracy on covered':>20}")
    for gate in (0.0, 0.5, 0.7, 0.9):
        covered = [
            (m, t) for m, t in test if forecaster.confidence(m) >= gate
        ]
        coverage = len(covered) / len(test)
        accuracy = forecaster.accuracy(covered) if covered else float("nan")
        print(f"{gate:>16.1f} {100 * coverage:>8.1f}% {100 * accuracy:>19.1f}%")

    print(
        "\nAbove the gate, the prediction becomes the job's claimed type; "
        "below it, the job is\nsubmitted as *unknown* and the cluster tier "
        "falls back to a default-model policy\n(paper §4.4.2) until online "
        "epoch feedback identifies the real curve (§4.2)."
    )


if __name__ == "__main__":
    main()
