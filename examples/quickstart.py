#!/usr/bin/env python
"""Quickstart: run two jobs under a shared power budget with ANOR.

This is the smallest end-to-end use of the public API: build an emulated
4-node cluster, co-schedule a power-sensitive job (BT) and an insensitive
one (SP) under an 840 W budget, and compare the performance-aware
even-slowdown budgeter against the performance-agnostic even-power policy.

Run with:  python examples/quickstart.py
"""

from repro.budget import EvenPowerBudgeter, EvenSlowdownBudgeter
from repro.core import AnorConfig, AnorSystem, ConstantTarget
from repro.workloads import NAS_TYPES


def run_policy(budgeter, label: str) -> None:
    system = AnorSystem(
        budgeter=budgeter,
        target_source=ConstantTarget(840.0),  # 75 % of the 4-node TDP
        config=AnorConfig(num_nodes=4, seed=42),
    )
    system.submit_now("bt-demo", "bt")  # high power sensitivity, 2 nodes
    system.submit_now("sp-demo", "sp")  # low power sensitivity, 2 nodes
    result = system.run(until_idle=True, max_time=3600.0)

    print(f"\n=== {label} ===")
    for totals in result.completed:
        jt = NAS_TYPES[totals.job_type]
        reference = jt.compute_time(jt.p_max)  # uncapped compute time
        slowdown = 100.0 * (totals.runtime / reference - 1.0)
        print(
            f"  {totals.job_id:<8} runtime {totals.runtime:6.1f}s "
            f"(uncapped {reference:5.1f}s, slowdown {slowdown:+5.1f}%), "
            f"avg power {totals.average_power:5.0f} W over {totals.nodes} nodes"
        )


def main() -> None:
    print("ANOR quickstart: BT + SP sharing 840 W on 4 emulated nodes")
    run_policy(EvenPowerBudgeter(), "even power caps (performance-agnostic)")
    run_policy(EvenSlowdownBudgeter(), "even slowdown (performance-aware)")
    print(
        "\nThe performance-aware budgeter steers power toward BT, the more "
        "power-sensitive job,\nequalising the slowdowns instead of the caps "
        "(paper Fig. 6)."
    )


if __name__ == "__main__":
    main()
