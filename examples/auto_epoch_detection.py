#!/usr/bin/env python
"""Automatic epoch detection for uninstrumented jobs (paper §8).

The paper's design needs a `geopm_prof_epoch()` call in each application's
main loop; §8 proposes "automatic epoch detection (e.g., by identifying
periodic usage of system resources)" for jobs nobody instrumented.

This example runs a job whose power draw carries the natural per-iteration
signature real codes have (compute vs. halo-exchange phases), samples node
power at 1 Hz the way a monitoring daemon would, and feeds the samples to
an AutoEpochCounter.  The detected epoch count is compared against the
ground-truth count from the (here: secretly present) instrumentation.

Run with:  python examples/auto_epoch_detection.py
"""

from dataclasses import replace

from repro.geopm.signals import ControlNames
from repro.hwsim import EmulatedCluster
from repro.modeling.epoch_detect import AutoEpochCounter
from repro.workloads import NAS_TYPES


def main() -> None:
    # An uninstrumented LU-like job with ~4.7 s outer iterations (a 1 Hz
    # monitor cannot resolve sub-second loops — Nyquist — so this technique
    # targets codes with seconds-scale iterations) and a ±5 % per-iteration
    # power signature.
    job_type = replace(NAS_TYPES["lu"], epochs=60, power_wave=0.05)
    cluster = EmulatedCluster(1, seed=7)
    job = cluster.start_job("uninstrumented", job_type)
    # Cap above the job's demand so the signature is not clipped by RAPL.
    for node in job.nodes:
        node.pio.write_control(ControlNames.CPU_POWER_LIMIT_CONTROL, 280.0)

    counter = AutoEpochCounter(dt=1.0, min_strength=0.15)
    print("sampling node power at 1 Hz; detecting the iteration period...\n")
    print(f"{'time':>6} {'node power':>11} {'detected period':>16} "
          f"{'auto count':>11} {'true count':>11}")
    while cluster.running and cluster.clock.now < 600.0:
        cluster.clock.advance(1.0)
        cluster.advance(1.0)
        node_power = job.nodes[0].last_power
        auto = counter.push(node_power)
        now = cluster.clock.now
        if now % 40 == 0:
            period = f"{counter.period:.2f}s" if counter.period else "locking..."
            print(
                f"{now:>5.0f}s {node_power:>10.1f}W {period:>16} "
                f"{auto:>11} {job.profiler.epoch_count:>11}"
            )

    true_count = job.profiler.epoch_count
    auto_count = counter.epoch_count
    err = abs(auto_count - true_count) / max(true_count, 1)
    print(
        f"\nfinal: detected {auto_count} epochs vs {true_count} instrumented "
        f"({100 * err:.1f}% error) — close enough to feed the online power "
        "modeler without touching the application."
    )


if __name__ == "__main__":
    main()
