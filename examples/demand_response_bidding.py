#!/usr/bin/env python
"""Bid selection: search (average power, reserve) under QoS + tracking
constraints (paper §4.4.1–§4.4.2).

AQA bids once per hour: how much average power should the cluster request
and how much reserve can it safely offer?  More reserve earns more credit
but risks QoS and tracking violations.  This example grid-searches candidate
bids, scoring each with a short tabular-simulator run, and prints the
feasibility frontier plus the selected bid.

Run with:  python examples/demand_response_bidding.py
"""

import argparse

import numpy as np

from repro.analysis import TrackingConstraint
from repro.aqa import (
    Bid,
    BidEvaluation,
    BoundedRandomWalkSignal,
    DemandResponseBidder,
    QoSConstraint,
)
from repro.tabsim import SimConfig, SimJobType, TabularClusterSimulator
from repro.workloads import PoissonScheduleGenerator, long_running_mix


def make_evaluator(*, num_nodes: int, duration: float, seed: int):
    """Score one bid by simulating the cluster under it."""
    base_types = long_running_mix()
    sim_types = [SimJobType.from_job_type(jt, node_scale=num_nodes // 40) for jt in base_types]
    scaled = [jt.scaled_nodes(num_nodes // 40) for jt in base_types]
    qos_constraint = QoSConstraint(limit=5.0, probability=0.9)
    tracking_constraint = TrackingConstraint(max_error=0.30, probability=0.90)

    def evaluate(bid: Bid) -> BidEvaluation:
        generator = PoissonScheduleGenerator(
            scaled, utilization=0.75, total_nodes=num_nodes, seed=seed
        )
        schedule = generator.generate(duration)
        signal = BoundedRandomWalkSignal(duration * 4, seed=seed + 1)
        config = SimConfig(
            num_nodes=num_nodes,
            average_power=bid.average_power,
            reserve=max(bid.reserve, 1.0),
            seed=seed + 2,
        )
        sim = TabularClusterSimulator(sim_types, schedule, signal, config)
        result = sim.run(duration, drain=True)
        q_all = np.concatenate(
            [v for v in result.qos_by_type().values() if v.size]
        )
        # Score only the committed window: the cluster is not bidding while
        # it fills up (first 5 min) or drains after arrivals stop.
        errors = result.tracking_errors(t_start=300.0, t_end=duration)
        return BidEvaluation(
            bid=bid,
            qos_ok=qos_constraint.satisfied(q_all),
            tracking_ok=tracking_constraint.satisfied(errors),
            qos_90th=float(np.percentile(q_all, 90)) if q_all.size else 0.0,
            tracking_error_90th=float(np.percentile(errors, 90)),
        )

    return evaluate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=400)
    parser.add_argument("--minutes", type=float, default=25.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # Physically reachable band at 75 % utilization: busy nodes can be
    # capped no lower than 140 W and draw no more than ~240 W on average,
    # while idle nodes sit at 60 W either way.
    utilization = 0.75
    floor = args.nodes * (utilization * 140.0 + (1 - utilization) * 60.0)
    ceiling = args.nodes * (utilization * 240.0 + (1 - utilization) * 60.0)
    bidder = DemandResponseBidder(
        p_floor=floor,
        p_ceiling=ceiling,
        n_power_steps=4,
        n_reserve_steps=4,
    )
    evaluate = make_evaluator(
        num_nodes=args.nodes, duration=args.minutes * 60.0, seed=args.seed
    )
    print(f"Evaluating {len(bidder.candidates())} candidate bids on "
          f"{args.nodes} nodes ({args.minutes:.0f}-minute simulations)...")
    best, evaluations = bidder.select(evaluate)

    print(f"\n{'average (kW)':>13} {'reserve (kW)':>13} {'QoS90':>7} "
          f"{'err90':>7} {'feasible':>9} {'cost rate':>10}")
    for ev in evaluations:
        print(
            f"{ev.bid.average_power / 1000:>13.1f} {ev.bid.reserve / 1000:>13.1f} "
            f"{ev.qos_90th:>7.2f} {100 * ev.tracking_error_90th:>6.1f}% "
            f"{str(ev.feasible):>9} {bidder.cost_rate(ev.bid) / 1000:>10.1f}"
        )
    print(
        f"\nselected bid: {best.average_power / 1000:.1f} kW ± "
        f"{best.reserve / 1000:.1f} kW "
        f"(track targets in [{best.floor / 1000:.1f}, {best.ceiling / 1000:.1f}] kW)"
    )


if __name__ == "__main__":
    main()
