"""Event-calendar core: tick sequences, free-tick counting, stride parity.

Unit-level counterpart to ``tests/test_properties_event.py``: these tests
pin the exact arithmetic the event-driven loop relies on — ``tick_times``
matching the ``+=`` chain bit for bit, ``free_ticks`` replaying each gate's
own comparison, and the batched cluster stride reproducing per-tick physics
observable for observable.
"""

import numpy as np
import pytest

from repro.core.framework import AnorConfig
from repro.experiments.fig9 import build_demand_response_system
from repro.hwsim.cluster import EmulatedCluster
from repro.util.calendar import EventCalendar
from repro.util.clock import PeriodicGate, SimClock
from repro.workloads.nas import NAS_TYPES


class TestTickTimes:
    def test_matches_the_advance_chain_bitwise(self):
        # The stride compares these instants against gate grids, so they
        # must equal the floats repeated advance() would produce — not just
        # approximately, bit for bit, drift included.
        clock = SimClock()
        clock.advance(0.1)  # a start instant with no exact binary form
        times = clock.tick_times(50, 0.1)
        mirror = SimClock()
        mirror.advance(0.1)
        walked = [mirror.advance(0.1) for _ in range(50)]
        assert times.tolist() == walked

    def test_clock_does_not_move(self):
        clock = SimClock()
        clock.tick_times(10, 1.0)
        assert clock.now == 0.0

    def test_advance_to_lands_exactly(self):
        clock = SimClock()
        times = clock.tick_times(7, 0.1)
        clock.advance_to(float(times[-1]))
        assert clock.now == times[-1]

    def test_advance_to_rejects_backwards(self):
        clock = SimClock()
        clock.advance(5.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(1.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            SimClock().tick_times(-1, 1.0)


class TestEventCalendar:
    def test_empty_calendar_is_unbounded(self):
        cal = EventCalendar()
        assert cal.horizon() == float("inf")
        assert cal.free_ticks(np.arange(1.0, 10.0)) == 9

    def test_unanchored_gate_blocks_everything(self):
        cal = EventCalendar()
        cal.add_gate(PeriodicGate(5.0))  # fires on its very first poll
        assert cal.horizon() == float("-inf")
        assert cal.free_ticks(np.arange(1.0, 10.0)) == 0

    def test_instant_bounds_the_prefix(self):
        cal = EventCalendar()
        cal.add_instant(4.0)
        # Ticks strictly before the instant are free; t=4.0 would satisfy
        # the ``event_time <= now`` guard, so it is not.
        assert cal.free_ticks(np.array([1.0, 2.0, 3.0, 4.0, 5.0])) == 3

    @pytest.mark.parametrize("period", [2.5, 3.0, 7.7])
    def test_free_ticks_replays_gate_polling_exactly(self, period):
        # Ground truth: poll a gate tick by tick on a drift-y float grid and
        # count iterations before it fires.  The calendar must agree using
        # only the gate's phase — same comparison, vectorised.
        gate = PeriodicGate(period)
        gate.due(0.1)  # anchor at an inexact float
        clock = SimClock()
        clock.advance(0.1)
        times = clock.tick_times(64, 0.1)
        probe = PeriodicGate(period)
        probe.restore(*gate.phase)
        expected = 0
        for t in times:
            if probe.due(float(t)):
                break
            expected += 1
        cal = EventCalendar()
        cal.add_gate(gate)
        assert cal.free_ticks(times) == expected

    def test_tightest_source_wins(self):
        gate = PeriodicGate(10.0)
        gate.due(0.0)
        cal = EventCalendar()
        cal.add_gate(gate)
        cal.add_instant(3.0)
        times = np.arange(1.0, 9.0)
        assert cal.free_ticks(times) == 2  # the instant, not the gate
        assert cal.horizon() == 3.0


def _make_cluster(seed: int) -> EmulatedCluster:
    cluster = EmulatedCluster(num_nodes=6, clock=SimClock(), seed=seed)
    cluster.start_job("j-bt", NAS_TYPES["bt"])  # 2 nodes
    cluster.start_job("j-lu", NAS_TYPES["lu"])  # 1 node
    cluster.start_job("j-ft", NAS_TYPES["ft"])  # 2 nodes; 1 node stays idle
    return cluster


def _observables(cluster: EmulatedCluster):
    return {
        "energy": [n.total_energy for n in cluster.nodes],
        "last_power": [n.last_power for n in cluster.nodes],
        "history": cluster.power_history().tolist(),
        "progress": {
            j.job_id: (j.phase, j.phase_elapsed, j._rank_progress.tolist())
            for j in cluster.running.values()
        },
        "epochs": {
            j.job_id: j.profiler.epoch_count for j in cluster.running.values()
        },
        "completed": [t.job_id for t in cluster.completed],
    }


class TestStrideParity:
    def test_batched_stride_equals_per_tick_advance(self):
        # Two identically-seeded clusters; one ticks, one strides.  Every
        # observable — energies, meter history, rank progress, profiler
        # counts — must come out bit-identical.
        ticked = _make_cluster(seed=9)
        strided = _make_cluster(seed=9)
        dt = 1.0
        for _ in range(40):
            ticked.clock.advance(dt)
            ticked.advance(dt)
        remaining = 40
        while remaining > 0:
            times = strided.clock.tick_times(remaining, dt)
            assert strided.stride_ready()
            ticks, _ = strided.advance_stride(times, dt)
            assert ticks >= 1
            strided.clock.advance_to(float(times[ticks - 1]))
            remaining -= ticks
        assert _observables(ticked) == _observables(strided)

    def test_stride_truncates_at_phase_transitions(self):
        # Setup lasts 5 s: a 20-tick request must stop on the transition
        # tick so the next stride starts in the new phase.
        cluster = _make_cluster(seed=1)
        times = cluster.clock.tick_times(20, 1.0)
        ticks, _ = cluster.advance_stride(times, 1.0)
        assert ticks == 5
        assert all(j.phase.name == "COMPUTE" for j in cluster.running.values())


class TestFrameworkEquivalence:
    def test_multirate_run_identical_between_modes(self):
        results = {}
        for event_driven in (True, False):
            config = AnorConfig(
                seed=3,
                agent_period=5.0,
                endpoint_period=10.0,
                manager_period=30.0,
                event_driven=event_driven,
            )
            system = build_demand_response_system(
                duration=240.0, seed=3, config=config
            )
            results[event_driven] = system.run(240.0)
        event, tick = results[True], results[False]
        assert np.array_equal(event.power_trace, tick.power_trace)
        assert event.warnings == tick.warnings
        assert [t.job_id for t in event.completed] == [
            t.job_id for t in tick.completed
        ]

    def test_event_driven_is_the_default(self):
        assert AnorConfig().event_driven is True
