"""Properties of the predictive planner (DESIGN.md §9).

Two contracts that must hold for *any* forecaster behaviour:

1. **Safety** — with planning active and a forecaster that is arbitrarily
   wrong (any constant bias), every budget round's planned draw stays
   inside the ceiling the reactive controller enforces.  The envelope's
   min-clamp plus the dispatch-time pool check make this true by
   construction; hypothesis hunts for a bias that breaks it.

2. **Neutrality** — with planning off (the default), runs are bit-identical
   whether the plan knobs are spelled out or absent, in tick and in
   event-driven mode, healthy or faulted: the subsystem costs nothing when
   unused.  With planning *on*, tick and event-driven stepping still agree
   exactly — plan instants are calendar events, not wall-clock surprises.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.core.framework import AnorConfig  # noqa: E402
from repro.core.targets import SteppedTarget  # noqa: E402
from repro.experiments.fig9 import build_demand_response_system  # noqa: E402
from repro.faults.schedule import FaultSchedule  # noqa: E402
from repro.plan.forecast import PersistenceForecaster  # noqa: E402

DURATION = 120.0


def _stepped_target(kind: int) -> SteppedTarget:
    times = [4.0 * k for k in range(80)]
    if kind == 0:  # square wave
        watts = [3000.0 + 500.0 * (-1) ** k for k in range(80)]
    elif kind == 1:  # ramp up then down
        watts = [2500.0 + 30.0 * min(k, 79 - k) for k in range(80)]
    else:  # mostly flat with dips
        watts = [3200.0 - (600.0 if k % 7 == 0 else 0.0) for k in range(80)]
    return SteppedTarget(times, watts)


class BiasedForecaster(PersistenceForecaster):
    """Persistence plus an arbitrary constant offset — a tunable liar."""

    name = "biased"

    def __init__(self, offset: float) -> None:
        super().__init__(error_window=8)
        self.offset = float(offset)

    def predict(self, now: float, t: float) -> float:
        return super().predict(now, t) + self.offset


@settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    bias=st.floats(min_value=-2000.0, max_value=2000.0),
    target_kind=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=10),
)
def test_planned_draw_never_exceeds_ceiling_for_any_forecast_bias(
    bias, target_kind, seed
):
    cfg = AnorConfig(
        num_nodes=16,
        seed=seed,
        manager_period=4.0,
        plan_enabled=True,
        plan_forecaster="persistence",
        plan_shadow_rounds=0,
        plan_error_bound_watts=150.0,
    )
    system = build_demand_response_system(
        duration=DURATION, seed=seed, target_source=_stepped_target(target_kind),
        config=cfg,
    )
    system.manager.planner.forecaster = BiasedForecaster(bias)
    rows = []
    for _ in range(int(DURATION) + 60):
        system.step()
        rnd = system.manager.last_round
        if rnd is not None and (not rows or rows[-1][0] != rnd.time):
            ceiling = max(rnd.target + rnd.correction, rnd.floor)
            rows.append(
                (rnd.time, ceiling, rnd.idle_power + rnd.reserved + rnd.allocated)
            )
    assert rows, "no budget rounds sampled"
    overs = [(t, c, p) for t, c, p in rows if p > c + 0.1]
    assert not overs, f"planned draw exceeded ceiling: {overs[:3]}"


def _run(event_driven, *, seed, faults, plan, spell_out_knobs=True):
    kwargs = dict(
        seed=seed,
        manager_period=4.0,
        event_driven=event_driven,
        endpoint_restart_delay=15.0,
    )
    if plan or spell_out_knobs:
        kwargs.update(
            plan_enabled=plan,
            plan_forecaster="auto",
            plan_horizon_rounds=6,
            plan_hysteresis_watts=10.0,
            plan_error_bound_watts=150.0,
            plan_shadow_rounds=0,
        )
    schedule = None
    if faults is not None:
        schedule = FaultSchedule.random(DURATION, seed=seed * 31 + 7, **faults)
    system = build_demand_response_system(
        duration=DURATION,
        seed=seed,
        target_source=_stepped_target(0),
        config=AnorConfig(**kwargs),
        fault_schedule=schedule,
    )
    return system.run(DURATION)


FAULTS = st.sampled_from(
    [
        None,
        dict(node_crash_rate=1 / 90.0, node_down_time=40.0),
        dict(endpoint_crash_rate=1 / 90.0, link_burst_rate=1 / 120.0),
        dict(meter_outage_rate=1 / 90.0, corrupt_status_rate=1 / 60.0),
    ]
)


def _assert_identical(a, b):
    assert np.array_equal(a.power_trace, b.power_trace)
    assert a.warnings == b.warnings
    assert a.fault_log == b.fault_log
    assert len(a.completed) == len(b.completed)
    assert [t.job_id for t in a.completed] == [t.job_id for t in b.completed]
    assert [t.energy for t in a.completed] == [t.energy for t in b.completed]


@settings(
    max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(seed=st.integers(min_value=0, max_value=20), faults=FAULTS)
def test_plan_off_is_bit_identical_to_seed_in_both_modes(seed, faults):
    for event in (False, True):
        with_knobs = _run(event, seed=seed, faults=faults, plan=False)
        without = _run(
            event, seed=seed, faults=faults, plan=False, spell_out_knobs=False
        )
        _assert_identical(with_knobs, without)
    tick = _run(False, seed=seed, faults=faults, plan=False)
    event = _run(True, seed=seed, faults=faults, plan=False)
    _assert_identical(tick, event)


@settings(
    max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(seed=st.integers(min_value=0, max_value=20), faults=FAULTS)
def test_plan_active_tick_and_event_modes_agree(seed, faults):
    tick = _run(False, seed=seed, faults=faults, plan=True)
    event = _run(True, seed=seed, faults=faults, plan=True)
    _assert_identical(tick, event)
