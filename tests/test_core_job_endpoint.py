"""Tests for the job-tier endpoint (modeler process, paper §4.2/Fig. 2)."""

import pytest

from repro.core.job_endpoint import JobTierEndpoint
from repro.core.messages import BudgetMessage, GoodbyeMessage, HelloMessage, StatusMessage
from repro.core.transport import TcpLink
from repro.geopm.agent import AgentSample
from repro.geopm.endpoint import Endpoint
from repro.modeling.quadratic import QuadraticPowerModel


def make_endpoint(**kwargs) -> tuple[JobTierEndpoint, Endpoint, TcpLink]:
    geopm = Endpoint(job_id="j")
    link = TcpLink(latency=0.0)
    defaults = dict(
        p_min=140.0,
        p_max=280.0,
        default_model=QuadraticPowerModel.from_anchors(2.0, 1.3, 140.0, 280.0),
    )
    defaults.update(kwargs)
    endpoint = JobTierEndpoint("j", "bt", 2, geopm, link, **defaults)
    return endpoint, geopm, link


def publish(geopm, *, t, epochs, power=400.0, cap=280.0):
    geopm.publish_sample(
        AgentSample(
            timestamp=t, power=power, energy=0.0, epoch_count=epochs,
            nodes=2, applied_cap=cap,
        )
    )


class TestHandshake:
    def test_hello_sent_on_first_step(self):
        endpoint, _, link = make_endpoint()
        endpoint.step(0.0)
        msgs = link.recv_up(0.0)
        assert isinstance(msgs[0], HelloMessage)
        assert msgs[0].claimed_type == "bt"
        assert msgs[0].nodes == 2

    def test_hello_sent_once(self):
        endpoint, geopm, link = make_endpoint()
        endpoint.step(0.0)
        link.recv_up(0.0)
        endpoint.step(1.0)
        assert not any(
            isinstance(m, HelloMessage) for m in link.recv_up(1.0)
        )

    def test_goodbye_idempotent(self):
        endpoint, _, link = make_endpoint()
        endpoint.close(5.0)
        endpoint.close(6.0)
        msgs = [m for m in link.recv_up(10.0) if isinstance(m, GoodbyeMessage)]
        assert len(msgs) == 1


class TestBudgetApplication:
    def test_budget_forwarded_as_geopm_policy(self):
        endpoint, geopm, link = make_endpoint(feedback_enabled=False)
        link.send_down(BudgetMessage("j", 200.0, 0.0), 0.0)
        endpoint.step(0.0)
        policy = geopm.take_policy()
        assert policy is not None
        assert policy.power_cap_node == 200.0

    def test_last_budget_wins(self):
        endpoint, geopm, link = make_endpoint(feedback_enabled=False)
        link.send_down(BudgetMessage("j", 200.0, 0.0), 0.0)
        link.send_down(BudgetMessage("j", 250.0, 0.0), 0.0)
        endpoint.step(0.0)
        assert geopm.take_policy().power_cap_node == 250.0

    def test_dither_active_while_identifying(self):
        endpoint, geopm, link = make_endpoint(feedback_enabled=True)
        link.send_down(BudgetMessage("j", 200.0, 0.0), 0.0)
        caps = set()
        for i in range(40):
            endpoint.step(float(i))
            policy = geopm.take_policy()
            if policy is not None:
                caps.add(round(policy.power_cap_node, 1))
        assert len(caps) >= 2  # exploring both sides of the budget
        for cap in caps:
            assert abs(cap - 200.0) <= 200.0 * endpoint.explore_amplitude + 0.1

    def test_no_dither_when_feedback_disabled(self):
        endpoint, geopm, link = make_endpoint(feedback_enabled=False)
        link.send_down(BudgetMessage("j", 200.0, 0.0), 0.0)
        caps = set()
        for i in range(20):
            endpoint.step(float(i))
            policy = geopm.take_policy()
            if policy is not None:
                caps.add(policy.power_cap_node)
        assert caps == {200.0}


class TestStatusReporting:
    def test_status_carries_sample_fields(self):
        endpoint, geopm, link = make_endpoint()
        publish(geopm, t=1.0, epochs=3, power=420.0, cap=260.0)
        endpoint.step(1.0)
        statuses = [m for m in link.recv_up(1.0) if isinstance(m, StatusMessage)]
        assert statuses[0].epoch_count == 3
        assert statuses[0].measured_power == 420.0
        assert statuses[0].applied_cap == 260.0

    def test_no_status_before_first_sample(self):
        endpoint, _, link = make_endpoint()
        assert endpoint.step(0.0) is None

    def test_no_model_until_enough_samples(self):
        endpoint, geopm, link = make_endpoint()
        publish(geopm, t=1.0, epochs=2)
        endpoint.step(1.0)
        status = [m for m in link.recv_up(1.0) if isinstance(m, StatusMessage)][0]
        assert not status.has_model

    def test_model_shared_after_identification(self):
        endpoint, geopm, link = make_endpoint(
            min_feedback_epochs=6, min_feedback_samples=2
        )
        endpoint.modeler.min_sample_epochs = 2
        # Feed epochs at two clearly different caps with consistent timing.
        epochs = 0
        t = 0.0
        last_status = None
        for phase, cap in ((1, 160.0), (2, 260.0), (3, 160.0), (4, 260.0)):
            for _ in range(8):
                t += 2.0
                epochs += 1
                tau = 3.0 if cap < 200.0 else 2.0
                publish(geopm, t=t, epochs=epochs, cap=cap)
                last_status = endpoint.step(t) or last_status
        assert last_status is not None and last_status.has_model
        assert last_status.model_a is not None

    def test_feedback_disabled_never_shares(self):
        endpoint, geopm, link = make_endpoint(feedback_enabled=False)
        epochs = 0
        t = 0.0
        for cap in (160.0, 260.0) * 10:
            for _ in range(4):
                t += 2.0
                epochs += 1
                publish(geopm, t=t, epochs=epochs, cap=cap)
                status = endpoint.step(t)
        assert status is not None and not status.has_model
