"""Tests for tracking metrics and offline slowdown analyses."""

import numpy as np
import pytest

from repro.analysis.slowdown import (
    JobScenario,
    estimate_scenario_slowdowns,
    sweep_budgets,
)
from repro.analysis.tracking import (
    TrackingConstraint,
    error_percentile,
    fraction_within,
    tracking_error_series,
)
from repro.budget.even_power import EvenPowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.modeling.quadratic import QuadraticPowerModel


def trace(targets, measured, t0=0.0):
    t = np.arange(len(targets), dtype=float) + t0
    return np.column_stack([t, targets, measured])


class TestTrackingErrorSeries:
    def test_basic(self):
        tr = trace([100.0, 100.0], [90.0, 120.0])
        err = tracking_error_series(tr, reserve=100.0)
        assert err.tolist() == [0.1, 0.2]

    def test_window(self):
        tr = trace([100.0] * 10, [100.0] * 10)
        err = tracking_error_series(tr, 10.0, t_start=3.0, t_end=7.0)
        assert err.size == 5

    def test_smoothing_reduces_churn_error(self):
        # Measured alternates ±50 around a perfectly-tracked 1000 W target.
        measured = [1000.0 + (50.0 if i % 2 else -50.0) for i in range(100)]
        tr = trace([1000.0] * 100, measured)
        raw = tracking_error_series(tr, 100.0)
        smooth = tracking_error_series(tr, 100.0, smooth_samples=4)
        assert smooth.mean() < raw.mean()

    def test_validates_shape(self):
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            tracking_error_series(np.zeros((5, 2)), 10.0)

    def test_validates_reserve(self):
        with pytest.raises(ValueError, match="positive"):
            tracking_error_series(trace([1.0], [1.0]), 0.0)

    def test_validates_smooth(self):
        with pytest.raises(ValueError, match="≥ 1"):
            tracking_error_series(trace([1.0], [1.0]), 1.0, smooth_samples=0)


class TestConstraint:
    def test_paper_constraint(self):
        c = TrackingConstraint()
        assert c.max_error == 0.30
        assert c.probability == 0.90

    def test_satisfied(self):
        errors = [0.1] * 9 + [0.9]
        assert TrackingConstraint().satisfied(errors)

    def test_violated(self):
        errors = [0.1] * 8 + [0.9, 0.9]
        assert not TrackingConstraint().satisfied(errors)

    def test_observed_percentile(self):
        errors = np.linspace(0.0, 1.0, 101)
        assert TrackingConstraint().observed_percentile(errors) == pytest.approx(0.9)

    def test_helpers(self):
        errors = [0.1, 0.2, 0.4]
        assert fraction_within(errors, 0.3) == pytest.approx(2 / 3)
        assert error_percentile(errors, 50.0) == pytest.approx(0.2)

    def test_empty_errors_rejected(self):
        with pytest.raises(ValueError, match="no error samples"):
            fraction_within([], 0.3)


def scenario(job_id, nodes, sens, *, believed_sens=None):
    true = QuadraticPowerModel.from_anchors(2.0, sens, 140.0, 280.0)
    believed = (
        true
        if believed_sens is None
        else QuadraticPowerModel.from_anchors(2.0, believed_sens, 140.0, 280.0)
    )
    return JobScenario(
        job_id=job_id, nodes=nodes, true_model=true, believed_model=believed,
        p_min=140.0, p_max=280.0,
    )


class TestScenarioSlowdowns:
    def test_known_scenario_uses_same_model(self):
        s = JobScenario.known(
            "a", 2, QuadraticPowerModel.from_anchors(2.0, 1.5, 140.0, 280.0),
            140.0, 280.0,
        )
        assert s.true_model is s.believed_model

    def test_full_budget_no_slowdown(self):
        scenarios = [scenario("a", 1, 1.5), scenario("b", 1, 1.2)]
        slow = estimate_scenario_slowdowns(
            scenarios, EvenSlowdownBudgeter(), budget=560.0
        )
        assert all(v == pytest.approx(0.0, abs=1e-9) for v in slow.values())

    def test_misbelief_starves_underestimated_job(self):
        """The Fig. 5 mechanism: believing a sensitive job insensitive
        starves it relative to the ideal allocation."""
        budget = 420.0  # tight for 2 single-node jobs
        ideal = estimate_scenario_slowdowns(
            [scenario("victim", 1, 1.8), scenario("other", 1, 1.8)],
            EvenSlowdownBudgeter(), budget,
        )
        fooled = estimate_scenario_slowdowns(
            [scenario("victim", 1, 1.8, believed_sens=1.05),
             scenario("other", 1, 1.8)],
            EvenSlowdownBudgeter(), budget,
        )
        assert fooled["victim"] > ideal["victim"]
        assert fooled["other"] < ideal["other"]

    def test_sweep_shapes(self):
        scenarios = [scenario("a", 1, 1.5), scenario("b", 2, 1.2)]
        budgets = np.linspace(3 * 140.0, 3 * 280.0, 7)
        curves = sweep_budgets(scenarios, EvenPowerBudgeter(), budgets)
        assert set(curves) == {"a", "b"}
        assert all(len(v) == 7 for v in curves.values())

    def test_sweep_monotone_under_even_power(self):
        scenarios = [scenario("a", 1, 1.5)]
        budgets = np.linspace(140.0, 280.0, 10)
        curves = sweep_budgets(scenarios, EvenPowerBudgeter(), budgets)
        assert np.all(np.diff(curves["a"]) <= 1e-9)  # more budget, less slowdown
