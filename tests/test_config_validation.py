"""AnorConfig range validation: bad knobs fail loudly, naming the field."""

import pytest

from repro.core.framework import AnorConfig


class TestConfigValidation:
    def test_defaults_are_valid(self):
        AnorConfig()  # must not raise

    @pytest.mark.parametrize(
        "field, value",
        [
            ("num_nodes", 0),
            ("tick", 0.0),
            ("agent_period", -1.0),
            ("endpoint_period", 0.0),
            ("manager_period", -0.5),
            ("checkpoint_period", 0.0),
            ("recovery_timeout", 0.0),
            ("stale_status_timeout", -3.0),
            ("dead_job_timeout", 0.0),
            ("telemetry_ring_size", 0),
            ("reliable_window", 0),
            ("reliable_base_backoff", 0.0),
            ("reliable_max_backoff", -1.0),
            ("partition_attempts", 0),
            ("reconnect_backoff", 0.0),
            ("breaker_trip_rounds", 0),
            ("breaker_reset_rounds", 0),
            ("breaker_confirm_rounds", 0),
            ("audit_window", 0.0),
            ("audit_mismatch_tolerance", -0.2),
            ("audit_model_error", 0.0),
            ("audit_min_epochs", 0),
            ("audit_suspect_rounds", 0),
            ("audit_quarantine_rounds", -1),
            ("audit_clear_rounds", 0),
            ("idle_power", -1.0),
            ("lease_ramp_seconds", -5.0),
            ("max_requeues", -1),
            ("audit_tolerance", -0.1),
            ("audit_guardband", -2.0),
            ("lease_ttl", 0.0),
            ("safe_floor", -140.0),
            ("breaker_margin", 0.0),
            ("endpoint_restart_delay", -10.0),
            ("link_drop_probability", 1.0),
            ("link_drop_probability", -0.1),
            ("audit_probe_margin", 0.0),
            ("audit_probe_margin", 1.5),
        ],
    )
    def test_bad_value_names_the_field(self, field, value):
        with pytest.raises(ValueError, match=field):
            AnorConfig(**{field: value})

    def test_optional_none_disables_without_error(self):
        AnorConfig(
            lease_ttl=None, safe_floor=None, breaker_margin=None,
            endpoint_restart_delay=None,
        )

    def test_backoff_ordering_inversion_rejected(self):
        with pytest.raises(ValueError, match="reliable_max_backoff"):
            AnorConfig(reliable_base_backoff=10.0, reliable_max_backoff=1.0)

    def test_timeout_ordering_inversion_rejected(self):
        with pytest.raises(ValueError, match="dead_job_timeout"):
            AnorConfig(stale_status_timeout=60.0, dead_job_timeout=30.0)
