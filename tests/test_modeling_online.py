"""Tests for the online epoch-feedback modeler (paper §4.2)."""

import pytest

from repro.modeling.online import EpochHistory, EpochSample, OnlineModeler
from repro.modeling.quadratic import QuadraticPowerModel


def make_modeler(**kwargs) -> OnlineModeler:
    default = QuadraticPowerModel.from_anchors(2.0, 1.3, 140.0, 280.0)
    kwargs.setdefault("min_sample_epochs", 1)
    return OnlineModeler(140.0, 280.0, default, **kwargs)


def feed_epochs(modeler, *, t0=0.0, cap, seconds_per_epoch, epochs, period=1.0):
    """Simulate steady epoch progress at a fixed cap; returns end time."""
    t = t0
    count = modeler._last_epochs
    # Announce the cap, then step time in observation periods.
    modeler.observe(t, count, cap)
    total_time = seconds_per_epoch * epochs
    steps = int(total_time / period)
    for i in range(1, steps + 1):
        t = t0 + i * period
        done = count + min(epochs, int(i * period / seconds_per_epoch))
        modeler.observe(t, done, cap)
    return t


class TestEpochHistory:
    def test_append_and_len(self):
        h = EpochHistory()
        h.append(EpochSample(200.0, 1.5, 4, 0.0))
        assert len(h) == 1
        assert h.total_epochs == 4

    def test_rejects_non_positive_time(self):
        with pytest.raises(ValueError, match="non-positive"):
            EpochHistory().append(EpochSample(200.0, 0.0, 1, 0.0))

    def test_rejects_zero_epochs(self):
        with pytest.raises(ValueError, match="≥ 1"):
            EpochHistory().append(EpochSample(200.0, 1.0, 0, 0.0))

    def test_arrays(self):
        h = EpochHistory()
        h.append(EpochSample(200.0, 1.5, 4, 0.0))
        h.append(EpochSample(250.0, 1.2, 6, 10.0))
        caps, times, weights = h.arrays()
        assert caps.tolist() == [200.0, 250.0]
        assert weights.tolist() == [4.0, 6.0]


class TestObservation:
    def test_default_model_until_fit(self):
        m = make_modeler()
        assert not m.has_fit
        assert m.model is m.default_model

    def test_setup_time_excluded(self):
        """Idle time before the first epoch must not poison samples."""
        m = make_modeler()
        m.observe(0.0, 0, 280.0)
        m.observe(30.0, 0, 280.0)  # 30 s of setup, no epochs
        m.observe(31.0, 1, 200.0)  # first epoch: re-anchors only
        m.observe(33.0, 2, 200.0)
        assert len(m.history) == 1
        assert m.history.samples[0].seconds_per_epoch == pytest.approx(2.0)

    def test_fit_after_threshold_epochs(self):
        m = make_modeler(retrain_threshold=10, min_fit_epochs=10)
        feed_epochs(m, cap=180.0, seconds_per_epoch=2.0, epochs=8)
        assert not m.has_fit
        feed_epochs(m, t0=100.0, cap=260.0, seconds_per_epoch=1.5, epochs=8)
        assert m.has_fit

    def test_fitted_model_reflects_data(self):
        m = make_modeler()
        feed_epochs(m, cap=160.0, seconds_per_epoch=3.0, epochs=15)
        feed_epochs(m, t0=100.0, cap=260.0, seconds_per_epoch=2.0, epochs=15)
        fitted = m.model
        assert fitted.time_at(160.0) > fitted.time_at(260.0)

    def test_epoch_count_cannot_decrease(self):
        m = make_modeler()
        m.observe(0.0, 5, 200.0)
        with pytest.raises(ValueError, match="backwards"):
            m.observe(1.0, 3, 200.0)

    def test_time_cannot_decrease(self):
        m = make_modeler()
        m.observe(0.0, 0, 200.0)
        m.observe(1.0, 1, 200.0)  # first epoch anchor
        m.observe(2.0, 2, 200.0)
        with pytest.raises(ValueError, match="backwards"):
            m.observe(1.5, 3, 200.0)

    def test_no_epochs_keeps_default(self):
        m = make_modeler()
        for i in range(100):
            m.observe(float(i), 0, 200.0)
        assert not m.has_fit
        assert m.model is m.default_model

    def test_cap_coverage_zero_with_single_cap(self):
        m = make_modeler()
        feed_epochs(m, cap=200.0, seconds_per_epoch=2.0, epochs=12)
        assert m.cap_coverage == pytest.approx(0.0, abs=0.01)

    def test_cap_coverage_grows_with_dither(self):
        m = make_modeler()
        feed_epochs(m, cap=150.0, seconds_per_epoch=2.0, epochs=10)
        feed_epochs(m, t0=50.0, cap=270.0, seconds_per_epoch=1.5, epochs=10)
        assert m.cap_coverage > 0.5

    def test_set_cap_integrates_between_observations(self):
        m = make_modeler(min_sample_epochs=1)
        m.observe(0.0, 0, 100.0)
        m.observe(1.0, 1, 160.0)  # anchor first epoch
        # Hold 160 W for 1 s, then 240 W for 1 s; epoch completes at t=3.
        m.set_cap(2.0, 240.0)
        m.observe(3.0, 2, 240.0)
        sample = m.history.samples[-1]
        assert sample.p_cap == pytest.approx(200.0)

    def test_retrain_threshold_respected(self):
        # The first epoch is consumed as the anchor, so 12 feeds yield 11
        # recorded epochs — still short of the 20-epoch threshold.
        m = make_modeler(retrain_threshold=20, min_fit_epochs=20)
        feed_epochs(m, cap=180.0, seconds_per_epoch=2.0, epochs=12)
        assert not m.has_fit
        feed_epochs(m, t0=200.0, cap=240.0, seconds_per_epoch=2.0, epochs=12)
        assert m.has_fit

    def test_invalid_retrain_threshold(self):
        with pytest.raises(ValueError, match="≥ 1"):
            make_modeler(retrain_threshold=0)

    def test_invalid_min_sample_epochs(self):
        with pytest.raises(ValueError, match="≥ 1"):
            make_modeler(min_sample_epochs=0)


class TestSampleBatching:
    def test_samples_batched_to_min_epochs(self):
        m = make_modeler(min_sample_epochs=5)
        feed_epochs(m, cap=200.0, seconds_per_epoch=2.0, epochs=14)
        # 13 epochs after the anchor -> two 5-epoch samples, 3 pending.
        assert all(s.epochs >= 5 for s in m.history.samples)

    def test_batched_time_accuracy(self):
        m = make_modeler(min_sample_epochs=4)
        feed_epochs(m, cap=200.0, seconds_per_epoch=2.0, epochs=13)
        for s in m.history.samples:
            assert s.seconds_per_epoch == pytest.approx(2.0, rel=0.3)
