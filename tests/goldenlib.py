"""Golden-trace scenarios: fixed-seed runs whose outputs are frozen on disk.

The kernel-vectorization work (hwsim batch physics, tabsim table updates,
budgeter caching) is required to be **bit-identical** to the original
per-object implementation.  The scenarios here exercise every rewritten
path — the fig9 end-to-end control loop, the raw hwsim cluster physics with
power-wave and phased job types, and the tabular simulator under both
capping variants — and their traces are recorded to ``tests/golden/*.npz``.

``test_golden_traces.py`` re-runs each scenario and asserts
``np.array_equal`` (not ``allclose``) against the recorded fixture.  To
re-record after an *intentional* behaviour change::

    PYTHONPATH=src:. python -m tests.goldenlib

and commit the updated fixtures together with the change that explains them.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

GOLDEN_DIR = Path(__file__).parent / "golden"


def ledger_arrays(completed) -> dict[str, np.ndarray]:
    """Flatten ApplicationTotals records into comparable parallel arrays."""
    records = sorted(completed, key=lambda t: t.job_id)
    return {
        "job_id": np.array([t.job_id for t in records]),
        "job_type": np.array([t.job_type for t in records]),
        "nodes": np.array([t.nodes for t in records], dtype=np.int64),
        "runtime": np.array([t.runtime for t in records], dtype=float),
        "sojourn": np.array([t.sojourn for t in records], dtype=float),
        "energy": np.array([t.energy for t in records], dtype=float),
        "epoch_count": np.array([t.epoch_count for t in records], dtype=np.int64),
        "average_power": np.array([t.average_power for t in records], dtype=float),
    }


# --------------------------------------------------------------- scenarios


def fig9_scenario() -> dict[str, np.ndarray]:
    """Reduced fig9 end-to-end run: full control plane over the emulator."""
    from repro.experiments.fig9 import run_fig9

    fig9 = run_fig9(duration=420.0, seed=1, warmup=60.0)
    out = {"power_trace": fig9.result.power_trace}
    out.update(ledger_arrays(fig9.result.completed))
    return out


def hwsim_physics_scenario() -> dict[str, np.ndarray]:
    """Raw cluster physics: wave/phased job types, variation, cap changes.

    Drives :class:`EmulatedCluster` directly (no control plane) so the
    fixture isolates exactly the vectorized physics kernels: per-rank epoch
    progress, the epoch-periodic power wave, phased types, RAPL capping, and
    idle draw.
    """
    from dataclasses import replace

    from repro.geopm.signals import ControlNames
    from repro.hwsim.cluster import EmulatedCluster
    from repro.workloads.nas import get_job_type
    from repro.workloads.phased import make_two_phase_type

    cluster = EmulatedCluster(8, seed=7, perf_variation_std=0.05)
    wave_type = replace(get_job_type("ft"), power_wave=0.3)
    phased_type = make_two_phase_type(epochs=60, t_uncapped=120.0)
    cluster.start_job("wave-0", wave_type)
    cluster.start_job("phased-0", phased_type)
    cluster.start_job("plain-0", get_job_type("cg"))
    for tick in range(240):
        cluster.clock.advance(1.0)
        if tick == 60:
            # Cap the wave job's nodes mid-run to exercise the capped branch.
            for node in cluster.running["wave-0"].nodes:
                node.pio.write_control(ControlNames.CPU_POWER_LIMIT_CONTROL, 180.0)
        if tick == 120:
            for node in cluster.nodes:
                node.pio.write_control(ControlNames.CPU_POWER_LIMIT_CONTROL, 230.0)
        cluster.advance(1.0)
    out = {
        "power_history": cluster.power_history(),
        "node_energy": np.array([n.total_energy for n in cluster.nodes]),
        "node_caps": np.array([n.power_cap for n in cluster.nodes]),
    }
    out.update(ledger_arrays(cluster.completed))
    return out


def hwsim_wide_scenario() -> dict[str, np.ndarray]:
    """Wide-job physics: exercises the batched (numpy) emulator path.

    Jobs narrower than ``BATCH_MIN_NODES`` take the scalar per-node loop;
    this 16-node job plus a mostly-idle 24-node cluster drives the batched
    compute, batched setup/teardown idle, and batched cluster-idle kernels.
    """
    from dataclasses import replace

    from repro.geopm.signals import ControlNames
    from repro.hwsim.cluster import EmulatedCluster
    from repro.workloads.nas import get_job_type

    cluster = EmulatedCluster(24, seed=13, perf_variation_std=0.05)
    wide_type = replace(get_job_type("ft"), nodes=16, power_wave=0.2)
    cluster.start_job("wide-0", wide_type)
    for tick in range(180):
        cluster.clock.advance(1.0)
        if tick == 50:
            for node in cluster.running["wide-0"].nodes:
                node.pio.write_control(ControlNames.CPU_POWER_LIMIT_CONTROL, 210.0)
        cluster.advance(1.0)
    out = {
        "power_history": cluster.power_history(),
        "node_energy": np.array([n.total_energy for n in cluster.nodes]),
        "node_caps": np.array([n.power_cap for n in cluster.nodes]),
    }
    out.update(ledger_arrays(cluster.completed))
    return out


def _tabsim_run(
    *,
    variation_band: float,
    qos_aware: bool,
    work_conserving: bool,
    power_aware_admission: bool,
    seed: int,
) -> dict[str, np.ndarray]:
    from repro.aqa.regulation import BoundedRandomWalkSignal
    from repro.tabsim.simulator import SimConfig, TabularClusterSimulator
    from repro.tabsim.tables import SimJobType
    from repro.workloads.generator import PoissonScheduleGenerator
    from repro.workloads.nas import long_running_mix

    base_types = long_running_mix()
    sim_types = [SimJobType.from_job_type(jt, node_scale=6) for jt in base_types]
    scaled = [jt.scaled_nodes(6) for jt in base_types]
    generator = PoissonScheduleGenerator(
        scaled, utilization=0.8, total_nodes=300, seed=seed
    )
    schedule = generator.generate(900.0)
    signal = BoundedRandomWalkSignal(900.0 * 4, step=4.0, seed=seed + 1)
    config = SimConfig(
        num_nodes=300,
        average_power=54_000.0,
        reserve=7_500.0,
        variation_band=variation_band,
        qos_aware_capping=qos_aware,
        work_conserving=work_conserving,
        power_aware_admission=power_aware_admission,
        seed=seed + 2,
    )
    sim = TabularClusterSimulator(sim_types, schedule, signal, config)
    result = sim.run(900.0, drain=True)
    jobs = result.job_table.snapshot()
    return {
        "power_trace": result.power_trace,
        "job_type_idx": jobs["type_idx"],
        "job_nodes": jobs["nodes"],
        "job_submit": jobs["submit_time"],
        "job_start": jobs["start_time"],
        "job_end": jobs["end_time"],
        "job_state": jobs["state"],
        "node_progress": sim.nodes.progress,
        "node_caps": sim.nodes.cap,
    }


def tabsim_uniform_scenario() -> dict[str, np.ndarray]:
    """Variation + power-aware admission, plain uniform capping."""
    return _tabsim_run(
        variation_band=0.08,
        qos_aware=False,
        work_conserving=False,
        power_aware_admission=True,
        seed=11,
    )


def tabsim_qos_scenario() -> dict[str, np.ndarray]:
    """QoS-aware capping + work-conserving scheduler."""
    return _tabsim_run(
        variation_band=0.0,
        qos_aware=True,
        work_conserving=True,
        power_aware_admission=False,
        seed=23,
    )


SCENARIOS = {
    "fig9": fig9_scenario,
    "hwsim_physics": hwsim_physics_scenario,
    "hwsim_wide": hwsim_wide_scenario,
    "tabsim_uniform": tabsim_uniform_scenario,
    "tabsim_qos": tabsim_qos_scenario,
}


def record_all(directory: Path | None = None, names: list[str] | None = None) -> None:
    directory = directory or GOLDEN_DIR
    directory.mkdir(parents=True, exist_ok=True)
    for name in names or sorted(SCENARIOS):
        arrays = SCENARIOS[name]()
        path = directory / f"{name}.npz"
        np.savez_compressed(path, **arrays)
        print(f"recorded {path} ({path.stat().st_size} bytes, {len(arrays)} arrays)")


if __name__ == "__main__":
    import sys

    record_all(names=sys.argv[1:] or None)
