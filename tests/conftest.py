"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.modeling.quadratic import QuadraticPowerModel
from repro.workloads.nas import NAS_TYPES


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def bt_model() -> QuadraticPowerModel:
    """A realistic high-sensitivity model (BT's ground truth)."""
    return NAS_TYPES["bt"].truth


@pytest.fixture
def sp_model() -> QuadraticPowerModel:
    """A realistic low-sensitivity model (SP's ground truth)."""
    return NAS_TYPES["sp"].truth


@pytest.fixture
def simple_model() -> QuadraticPowerModel:
    """A clean synthetic model: 2 s/epoch at 280 W, 1.5× slower at 140 W."""
    return QuadraticPowerModel.from_anchors(
        t_at_max=2.0, sensitivity=1.5, p_min=140.0, p_max=280.0
    )
