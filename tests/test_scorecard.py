"""Tests for the reproduction scorecard (claims over quick experiment runs)."""

import numpy as np
import pytest

from repro.experiments import fig4, fig5
from repro.experiments.scorecard import (
    Claim,
    Scorecard,
    score_fig4,
    score_fig5,
)


class TestClaimMachinery:
    def test_passing_claim(self):
        claim = Claim("figX", "two is two", lambda r: r == 2)
        outcome = claim.evaluate(2)
        assert outcome.passed
        assert outcome.error is None

    def test_failing_claim(self):
        claim = Claim("figX", "two is three", lambda r: r == 3)
        assert not claim.evaluate(2).passed

    def test_crashing_check_is_a_failure(self):
        claim = Claim("figX", "boom", lambda r: r.no_such_attr)
        outcome = claim.evaluate(object())
        assert not outcome.passed
        assert "AttributeError" in outcome.error

    def test_scorecard_summary(self):
        claims = [
            Claim("f", "yes", lambda r: True),
            Claim("f", "no", lambda r: False),
        ]
        card = Scorecard([c.evaluate(None) for c in claims])
        assert card.passed == 1
        assert card.total == 2
        assert not card.all_passed
        text = card.render()
        assert "[PASS] f: yes" in text
        assert "[FAIL] f: no" in text
        assert "1/2" in text


class TestFigureScorecards:
    """The offline figures are cheap enough to score directly in tests."""

    def test_fig4_claims_hold(self):
        result = fig4.run_fig4(n_budgets=15)
        card = score_fig4(result)
        assert card.all_passed, card.render()

    def test_fig5_claims_hold(self):
        result = fig5.run_fig5(n_budgets=12)
        card = score_fig5(result)
        assert card.all_passed, card.render()

    def test_fig4_scorecard_detects_breakage(self):
        """Corrupting the result must flip claims to FAIL, not pass silently."""
        result = fig4.run_fig4(n_budgets=10)
        # Swap the two policies' series: even-power now looks 'better'.
        result.slowdowns["even-power"], result.slowdowns["even-slowdown"] = (
            result.slowdowns["even-slowdown"],
            result.slowdowns["even-power"],
        )
        card = score_fig4(result)
        assert not card.all_passed

    def test_fig5_scorecard_detects_breakage(self):
        result = fig5.run_fig5(n_budgets=10)
        for case in result.slowdowns.values():
            case["mischaracterized"] = {
                k: np.zeros_like(v) for k, v in case["mischaracterized"].items()
            }
        card = score_fig5(result)
        assert not card.all_passed
