"""Tests for the target forecasters behind the predictive planner."""

import math

import numpy as np
import pytest

from repro.aqa.regulation import BoundedRandomWalkSignal, SinusoidSignal
from repro.core.targets import (
    ConstantTarget,
    HoldLastGoodTarget,
    RegulationTarget,
    SteppedTarget,
)
from repro.plan.forecast import (
    AR1Forecaster,
    ForecastErrorWindow,
    InvertedRampForecaster,
    PersistenceForecaster,
    RampForecaster,
    ScheduleForecaster,
    make_forecaster,
    unwrap_target_source,
)


class TestErrorWindow:
    def test_mae_and_bias(self):
        w = ForecastErrorWindow(4)
        for e in (10.0, -10.0, 20.0):
            w.push(e)
        assert w.count == 3
        assert w.mae == pytest.approx(40.0 / 3)
        assert w.bias == pytest.approx(20.0 / 3)

    def test_window_slides(self):
        w = ForecastErrorWindow(2)
        for e in (100.0, 1.0, 2.0):
            w.push(e)
        assert w.count == 2
        assert w.mae == pytest.approx(1.5)

    def test_empty_is_zero(self):
        w = ForecastErrorWindow(4)
        assert w.mae == 0.0
        assert w.bias == 0.0

    def test_reset(self):
        w = ForecastErrorWindow(4)
        w.push(5.0)
        w.reset()
        assert w.count == 0

    def test_window_size_validated(self):
        with pytest.raises(ValueError, match="≥ 1"):
            ForecastErrorWindow(0)


class TestPersistence:
    def test_predicts_last_observation(self):
        f = PersistenceForecaster()
        f.observe(0.0, 3000.0)
        f.observe(4.0, 3100.0)
        assert f.predict(4.0, 20.0) == 3100.0

    def test_requires_observation(self):
        with pytest.raises(ValueError, match="no observations"):
            PersistenceForecaster().predict(0.0, 4.0)

    def test_confidence_decays_with_lookahead(self):
        f = PersistenceForecaster(confidence_tau=60.0)
        assert f.confidence(0.0, 0.0) == pytest.approx(1.0)
        assert f.confidence(0.0, 60.0) == pytest.approx(math.exp(-1.0))
        assert f.confidence(0.0, 120.0) < f.confidence(0.0, 60.0)

    def test_forecast_emits_points(self):
        f = PersistenceForecaster()
        f.observe(0.0, 2000.0)
        pts = f.forecast(0.0, [4.0, 8.0])
        assert [p.time for p in pts] == [4.0, 8.0]
        assert all(p.value == 2000.0 for p in pts)
        assert pts[0].confidence > pts[1].confidence


class TestRamp:
    def test_recovers_exact_slope(self):
        f = RampForecaster(fit_points=4)
        for k in range(4):
            f.observe(4.0 * k, 1000.0 + 50.0 * k)  # 12.5 W/s ramp
        assert f.slope() == pytest.approx(12.5)
        assert f.predict(12.0, 20.0) == pytest.approx(1150.0 + 12.5 * 8.0)

    def test_single_sample_falls_back_to_persistence(self):
        f = RampForecaster()
        f.observe(0.0, 2000.0)
        assert f.predict(0.0, 100.0) == 2000.0

    def test_max_slope_clamps(self):
        f = RampForecaster(fit_points=2, max_slope=1.0)
        f.observe(0.0, 0.0 + 1000.0)
        f.observe(1.0, 1000.0 + 1000.0)  # true slope 1000 W/s
        assert f.slope() == pytest.approx(1.0)

    def test_inverted_ramp_negates_slope(self):
        f = InvertedRampForecaster(fit_points=4)
        for k in range(4):
            f.observe(4.0 * k, 1000.0 + 50.0 * k)
        assert f.slope() == pytest.approx(-12.5)

    def test_fit_points_validated(self):
        with pytest.raises(ValueError, match="≥ 2"):
            RampForecaster(fit_points=1)


class TestAR1:
    def test_reverts_to_mean(self):
        f = AR1Forecaster(mean_power=3000.0, rho=0.5, step=4.0)
        f.observe(0.0, 3400.0)
        assert f.predict(0.0, 4.0) == pytest.approx(3200.0)
        assert f.predict(0.0, 8.0) == pytest.approx(3100.0)
        # far lookahead converges to the mean
        assert f.predict(0.0, 4000.0) == pytest.approx(3000.0, abs=1e-6)

    def test_confidence_is_rho_power(self):
        f = AR1Forecaster(mean_power=3000.0, rho=0.5, step=4.0)
        assert f.confidence(0.0, 4.0) == pytest.approx(0.5)
        assert f.confidence(0.0, 8.0) == pytest.approx(0.25)

    def test_fit_recovers_signal_statistics(self):
        signal = BoundedRandomWalkSignal(3600.0, step=4.0, rho=0.9, seed=5)
        target = RegulationTarget(3400.0, 1050.0, signal, update_period=4.0)
        f = AR1Forecaster.fit_regulation(target, fit_duration=3600.0)
        assert 0.8 <= f.rho <= 0.999
        assert abs(f.mean_power - 3400.0) < 300.0
        assert f.step == 4.0

    def test_fit_duration_validated(self):
        signal = SinusoidSignal(period=600.0)
        target = RegulationTarget(3400.0, 1050.0, signal, update_period=4.0)
        with pytest.raises(ValueError, match="fit_duration"):
            AR1Forecaster.fit_regulation(target, fit_duration=4.0)

    def test_rho_range_validated(self):
        with pytest.raises(ValueError, match="rho"):
            AR1Forecaster(mean_power=3000.0, rho=1.0)


class TestSchedule:
    def test_exact_prediction(self):
        stepped = SteppedTarget([0.0, 10.0, 20.0], [1000.0, 2000.0, 3000.0])
        f = ScheduleForecaster(stepped)
        f.observe(5.0, 1000.0)
        assert f.predict(5.0, 15.0) == 2000.0
        assert f.confidence(5.0, 1e6) == 1.0

    def test_breakpoints_from_window(self):
        stepped = SteppedTarget([0.0, 10.0, 20.0, 30.0], [1.0, 2.0, 3.0, 4.0])
        f = ScheduleForecaster(stepped)
        assert f.breakpoints(5.0, 20.0) == (10.0, 20.0)

    def test_requires_window_capable_source(self):
        with pytest.raises(ValueError, match="window"):
            ScheduleForecaster(ConstantTarget(840.0))


class TestMakeForecaster:
    def test_auto_picks_schedule_for_stepped(self):
        f = make_forecaster("auto", SteppedTarget([0.0], [1000.0]))
        assert isinstance(f, ScheduleForecaster)

    def test_auto_picks_ar1_for_regulation(self):
        signal = BoundedRandomWalkSignal(600.0, step=4.0, seed=1)
        target = RegulationTarget(3400.0, 1050.0, signal, update_period=4.0)
        assert isinstance(make_forecaster("auto", target), AR1Forecaster)

    def test_auto_falls_back_to_persistence(self):
        assert isinstance(
            make_forecaster("auto", ConstantTarget(840.0)), PersistenceForecaster
        )

    def test_unwraps_hold_last_good(self):
        stepped = SteppedTarget([0.0], [1000.0])
        wrapped = HoldLastGoodTarget(stepped, floor=500.0)
        f = make_forecaster("auto", wrapped)
        assert isinstance(f, ScheduleForecaster)
        assert f.source is stepped
        assert unwrap_target_source(wrapped) is stepped

    def test_adversarial_kind(self):
        f = make_forecaster("adversarial", ConstantTarget(840.0))
        assert isinstance(f, InvertedRampForecaster)

    def test_ar1_needs_regulation_target(self):
        with pytest.raises(ValueError, match="RegulationTarget"):
            make_forecaster("ar1", ConstantTarget(840.0))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown forecaster"):
            make_forecaster("oracle", ConstantTarget(840.0))


class TestErrorTracking:
    def test_record_error_feeds_mae(self):
        f = PersistenceForecaster(error_window=4)
        f.observe(0.0, 1000.0)
        f.record_error(50.0)
        f.record_error(-30.0)
        assert f.mae == pytest.approx(40.0)
        assert f.bias == pytest.approx(10.0)

    def test_series_based_fit_matches_scalar_sampling(self):
        # The vectorised series() path the fit uses must agree with scalar
        # value() reads — a mismatch would silently skew rho.
        signal = BoundedRandomWalkSignal(600.0, step=4.0, seed=3)
        times = np.arange(0.0, 600.0, 4.0)
        assert signal.series(times).tolist() == [
            signal.value(float(t)) for t in times
        ]
