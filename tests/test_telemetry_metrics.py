"""Tests for the metrics registry: instruments, caching, null no-ops."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_set_total_adopts_running_total(self):
        c = Counter()
        c.set_total(10.0)
        c.set_total(10.0)  # equal is fine
        c.set_total(12.0)
        assert c.value == 12.0

    def test_set_total_refuses_regression(self):
        c = Counter()
        c.set_total(10.0)
        with pytest.raises(ValueError):
            c.set_total(9.0)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(5.0)
        g.inc(2.0)
        g.dec()
        assert g.value == 6.0


class TestHistogram:
    def test_rejects_empty_and_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((0.2, 0.1))
        with pytest.raises(ValueError):
            Histogram((0.1, 0.1))

    def test_nan_observation_ignored(self):
        h = Histogram((1.0,))
        h.observe(math.nan)
        assert h.count == 0
        assert h.sum == 0.0

    def test_quantile_of_empty_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    @given(st.lists(st.floats(0.0, 2.0, allow_nan=False), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_counts_are_cumulative_and_exact(self, values):
        h = Histogram(DEFAULT_BUCKETS)
        for v in values:
            h.observe(v)
        assert h.count == len(values)
        assert h.sum == pytest.approx(sum(values))
        for bound, cum in zip(h.buckets, h.counts):
            assert cum == sum(1 for v in values if v <= bound)
        # Cumulative form: never decreasing, capped by the total count.
        assert all(a <= b for a, b in zip(h.counts, h.counts[1:]))
        assert h.counts[-1] <= h.count

    @given(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=100),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantile_bounded_and_monotone(self, values, q):
        h = Histogram(DEFAULT_BUCKETS)
        for v in values:
            h.observe(v)
        est = h.quantile(q)
        assert 0.0 <= est <= h.buckets[-1]
        assert h.quantile(0.0) <= h.quantile(1.0)


class TestRegistry:
    def test_same_name_and_labels_return_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b

    def test_label_sets_address_distinct_instruments(self):
        reg = MetricsRegistry()
        a = reg.gauge("cap_watts", job="a")
        b = reg.gauge("cap_watts", job="b")
        assert a is not b
        a.set(100.0)
        assert reg.get_value("cap_watts", job="a") == 100.0
        assert reg.get_value("cap_watts", job="b") == 0.0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("c_total", x="1", y="2")
        b = reg.counter("c_total", y="2", x="1")
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")

    def test_histogram_bucket_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1.0, 3.0))

    @pytest.mark.parametrize("name", ["", "1starts_with_digit", "has space", "has-dash"])
    def test_invalid_names_rejected(self, name):
        with pytest.raises(ValueError):
            MetricsRegistry().counter(name)

    def test_get_value_missing_is_none(self):
        reg = MetricsRegistry()
        assert reg.get_value("nope") is None
        reg.counter("c_total", job="a")
        assert reg.get_value("c_total", job="b") is None

    def test_get_value_histogram_is_none(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        assert reg.get_value("h") is None

    def test_families_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("b_total", "bees").inc(3)
        reg.gauge("a_watts", "amps").set(7.0)
        fams = reg.families()
        assert [f[0] for f in fams] == ["a_watts", "b_total"]
        name, kind, help_text, rows = fams[1]
        assert (kind, help_text) == ("counter", "bees")
        assert rows[0][1].value == 3.0


class TestDisabled:
    def test_disabled_registry_hands_out_shared_nulls(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("x_total") is NULL_COUNTER
        assert reg.gauge("y") is NULL_GAUGE
        assert reg.histogram("z") is NULL_HISTOGRAM
        assert reg.families() == []

    def test_null_instruments_never_accumulate(self):
        NULL_COUNTER.inc(5.0)
        NULL_COUNTER.set_total(99.0)
        NULL_GAUGE.set(3.0)
        NULL_GAUGE.inc()
        NULL_HISTOGRAM.observe(0.5)
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0

    def test_shared_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.counter("anything") is NULL_COUNTER
