"""Property test: budget conservation under arbitrary trust churn.

Whatever sequence of quarantine/rehabilitation verdicts the auditor (or an
operator override) produces, every budget round's planned draw — idle +
reserved (including quarantine envelopes) + allocated — must stay within
the round's ceiling ``max(target + correction, floor)``.  Hypothesis drives
the trust state machine through arbitrary forced sequences while a real
system runs, in both the ticking and event-calendar modes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.audit import TRUST_STATES
from repro.core.framework import AnorConfig, AnorSystem, precharacterized_models
from repro.core.targets import ConstantTarget
from repro.modeling.classifier import JobClassifier

JOB_IDS = ("bt-0", "sp-1", "cg-2")

# A churn script: (settle rounds before acting, which job, forced state).
churn = st.lists(
    st.tuples(
        st.integers(1, 25),
        st.integers(0, len(JOB_IDS) - 1),
        st.sampled_from(sorted(TRUST_STATES)),
    ),
    min_size=1,
    max_size=6,
)


def build(event_driven: bool) -> AnorSystem:
    system = AnorSystem(
        budgeter=EvenSlowdownBudgeter(),
        target_source=ConstantTarget(5 * 170.0),
        classifier=JobClassifier(precharacterized_models()),
        config=AnorConfig(
            num_nodes=5, seed=2, feedback_enabled=True,
            audit_enabled=True, event_driven=event_driven,
        ),
    )
    for job_id in JOB_IDS:
        system.submit_now(job_id, job_id.split("-")[0])
    return system


def assert_round_conserves(system, seen: set) -> None:
    round_ = system.manager.last_round
    if round_ is None or round_.time in seen:
        return
    seen.add(round_.time)
    planned = round_.idle_power + round_.reserved + round_.allocated
    ceiling = max(round_.target + round_.correction, round_.floor)
    # 0.1 W slack: the even-slowdown water-fill solves caps numerically, so
    # sums carry sub-milliwatt float noise (same slack the soak monitor uses).
    assert planned <= ceiling + 0.1, (
        f"t={round_.time}: planned {planned:.2f}W exceeds ceiling "
        f"{ceiling:.2f}W (quarantined={round_.quarantined_jobs})"
    )


class TestBudgetConservationUnderTrustChurn:
    @pytest.mark.parametrize("event_driven", [False, True])
    @given(script=churn)
    @settings(max_examples=12, deadline=None)
    def test_planned_draw_never_exceeds_ceiling(self, event_driven, script):
        system = build(event_driven)
        seen: set = set()
        # Warm up past job setup so caps and envelopes are in play.
        for _ in range(40):
            system.step()
            assert_round_conserves(system, seen)
        for settle, job_idx, state in script:
            system.manager.auditor.force_state(
                JOB_IDS[job_idx], state, now=system.cluster.clock.now)
            for _ in range(settle):
                system.step()
                assert_round_conserves(system, seen)
        # Quarantine churn must also never wedge the run: release all
        # overrides and let the cluster drain.
        for job_id in JOB_IDS:
            system.manager.auditor.force_state(
                job_id, "trusted", now=system.cluster.clock.now)
        result = system.run(until_idle=True, max_time=7200.0)
        assert_round_conserves(system, seen)
        assert result.unstarted_jobs == 0
        assert len(result.completed) == len(JOB_IDS)
