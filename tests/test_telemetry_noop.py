"""Telemetry-off must be free: bit-identical runs, null wiring, link ledger.

The subsystem's core contract (DESIGN.md §8): with telemetry disabled — the
default — no instrumented path allocates, draws RNG, or perturbs a single
number.  These tests pin that by running the same seeded scenario with and
without telemetry and comparing traces bitwise, and by checking the
transport-layer accounting that feeds the link counters.
"""

import numpy as np
import pytest

from repro.core.framework import AnorConfig
from repro.core.transport import LatencyChannel, TcpLink
from repro.experiments.fig9 import build_demand_response_system
from repro.faults.schedule import FaultSchedule
from repro.telemetry import NULL_TELEMETRY


def run_traces(duration=120.0, *, telemetry_enabled, fault_schedule=None, seed=0):
    cfg = AnorConfig(seed=seed, telemetry_enabled=telemetry_enabled)
    system = build_demand_response_system(
        duration=duration, seed=seed, config=cfg, fault_schedule=fault_schedule
    )
    result = system.run(duration)
    return result.power_trace, result


class TestDisabledIsNoop:
    def test_default_config_gets_the_shared_null(self):
        system = build_demand_response_system(duration=10.0, seed=0)
        assert system.telemetry is NULL_TELEMETRY
        assert not system.telemetry.enabled
        assert system.metrics_server is None

    def test_power_trace_bit_identical_with_and_without_telemetry(self):
        off, _ = run_traces(telemetry_enabled=False)
        on, _ = run_traces(telemetry_enabled=True)
        assert off.shape == on.shape
        assert np.array_equal(off, on)

    def test_bit_identical_under_faults_too(self):
        # Fault paths draw RNG (loss, crash timing); incidents must not
        # shift any stream.
        schedule = FaultSchedule.standard_load(120.0)
        off, r_off = run_traces(telemetry_enabled=False, fault_schedule=schedule)
        schedule2 = FaultSchedule.standard_load(120.0)
        on, r_on = run_traces(telemetry_enabled=True, fault_schedule=schedule2)
        assert np.array_equal(off, on)
        assert r_off.fault_log == r_on.fault_log

    def test_null_telemetry_surface_is_inert(self):
        NULL_TELEMETRY.incident("cat", 0.0)
        NULL_TELEMETRY.event("e", 0.0)
        NULL_TELEMETRY.flush()
        NULL_TELEMETRY.close()
        assert NULL_TELEMETRY.incidents() == []
        assert NULL_TELEMETRY.incident_counts == {}


class TestChannelAccounting:
    """Satellite: every vanished message is counted with a reason."""

    def test_random_loss_counted_as_loss(self):
        ch = LatencyChannel(0.0, drop_probability=0.5, seed=7)
        for i in range(200):
            ch.send(i, now=0.0)
        assert ch.sent == 200
        assert ch.dropped > 0
        assert ch.drop_reasons == {"loss": ch.dropped}
        assert ch.dropped + ch.in_flight == 200

    def test_send_into_closed_channel_counted(self):
        ch = LatencyChannel(0.0)
        ch.close()
        assert ch.send("msg", now=0.0) is False
        assert ch.drop_reasons == {"closed": 1}

    def test_close_drains_in_flight_with_reason(self):
        ch = LatencyChannel(1.0)
        ch.send("a", now=0.0)
        ch.send("b", now=0.0)
        assert ch.close("head-crash") == 2
        assert ch.drop_reasons == {"head-crash": 2}
        assert ch.closed
        assert ch.close("again") == 0  # idempotent

    def test_closing_does_not_shift_the_loss_rng(self):
        # The loss draw happens before the closed check, so a closed lossy
        # channel consumes the same RNG stream as an open one — seeded runs
        # stay bit-identical whether or not links get torn down.
        a = LatencyChannel(0.0, drop_probability=0.3, seed=42)
        b = LatencyChannel(0.0, drop_probability=0.3, seed=42)
        b.close()
        lost_a = [not a.send(i, now=0.0) for i in range(100)]
        lost_b = [b.drop_reasons.get("loss", 0)]
        for i in range(100):
            b.send(i, now=0.0)
        # Same loss pattern: b's "loss" drops equal a's, the rest are "closed".
        assert b.drop_reasons.get("loss", 0) == sum(lost_a)
        assert b.drop_reasons.get("closed", 0) == 100 - sum(lost_a)
        assert lost_b == [0]

    def test_reorder_counted_when_latency_drops_midflight(self):
        ch = LatencyChannel(10.0)
        ch.send("slow", now=0.0)       # arrives at t=10
        ch.latency = 1.0
        ch.send("fast", now=0.0)       # arrives at t=1, overtaking
        assert ch.receive(5.0) == ["fast"]
        got = ch.receive(20.0)
        assert got == ["slow"]
        assert ch.reordered == 1
        assert ch.delivered == 2

    def test_in_order_delivery_counts_no_reorders(self):
        ch = LatencyChannel(0.5)
        for i in range(5):
            ch.send(i, now=float(i))
        assert ch.receive(100.0) == list(range(5))
        assert ch.reordered == 0

    def test_tcplink_close_totals_both_directions(self):
        link = TcpLink(1.0)
        link.send_down("d", now=0.0)
        link.send_up("u1", now=0.0)
        link.send_up("u2", now=0.0)
        assert link.close("evicted") == 3
        assert link.closed
        assert link.down.drop_reasons == {"evicted": 1}
        assert link.up.drop_reasons == {"evicted": 2}


class TestLinkLedgerMetrics:
    def test_cluster_counters_aggregate_all_links(self):
        cfg = AnorConfig(seed=3, telemetry_enabled=True)
        system = build_demand_response_system(duration=60.0, seed=3, config=cfg)
        system.run(60.0)
        reg = system.telemetry.registry
        sent = reg.get_value("anor_link_messages_sent_total")
        delivered = reg.get_value("anor_link_messages_delivered_total")
        assert sent is not None and sent > 0
        assert delivered is not None and 0 < delivered <= sent
        # Ledger truth: the gauges must match a direct sum over every link
        # ever created, including closed/replaced ones.
        expect = sum(
            ch.sent for link in system._all_links for ch in (link.down, link.up)
        )
        assert sent == expect
