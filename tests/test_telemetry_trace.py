"""Sinks, JSONL traces, the smoke harness, and the CLI consumer surface."""

import io
import json

import pytest

from repro.cli import main
from repro.telemetry import EventBus, JsonlTraceSink, RingBufferSink
from repro.telemetry.smoke import run_smoke
from repro.telemetry.top import render_frame, run_top


class TestRingBufferSink:
    def test_bounded_and_counts_evictions(self):
        ring = RingBufferSink(3)
        for i in range(5):
            ring.emit({"name": "e", "i": i})
        assert [r["i"] for r in ring.records()] == [2, 3, 4]
        assert ring.total_emitted == 5
        assert ring.dropped == 2

    def test_incidents_filtered(self):
        ring = RingBufferSink(10)
        ring.emit({"name": "other"})
        ring.emit({"name": "incident", "attrs": {"category": "x"}})
        assert len(ring.incidents()) == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)


class TestJsonlTraceSink:
    def test_writes_sorted_key_json_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        sink.emit({"b": 2, "a": 1})
        sink.close()
        assert path.read_text() == '{"a": 1, "b": 2}\n'
        assert sink.records_written == 1

    def test_flush_cadence_bounds_loss(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path, flush_every=2)
        sink.emit({"i": 0})
        sink.emit({"i": 1})  # hits the cadence -> flushed
        sink.emit({"i": 2})  # buffered
        assert len(path.read_text().splitlines()) >= 2
        sink.flush()
        assert len(path.read_text().splitlines()) == 3
        sink.close()
        sink.close()  # idempotent

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTraceSink(tmp_path / "t.jsonl", flush_every=0)

    def test_creates_parent_directories(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "deep" / "nest" / "t.jsonl")
        sink.emit({"ok": True})
        sink.close()
        assert (tmp_path / "deep" / "nest" / "t.jsonl").exists()

    def test_wired_through_event_bus(self, tmp_path):
        path = tmp_path / "bus.jsonl"
        bus = EventBus()
        bus.add_sink(JsonlTraceSink(path, flush_every=1))
        sid = bus.begin_span("s", 0.0)
        bus.end_span(sid, 1.0)
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert [r["kind"] for r in lines] == ["span_start", "span_end"]


class TestSmokeHarness:
    def test_short_run_passes_all_gates(self, tmp_path):
        out = tmp_path / "smoke.jsonl"
        failures = run_smoke(out=str(out), duration=60.0, seed=0, verbose=False)
        assert failures == []
        assert out.exists()

    def test_main_exit_code_zero_on_pass(self, tmp_path, capsys):
        from repro.telemetry.smoke import main as smoke_main

        out = tmp_path / "smoke.jsonl"
        assert smoke_main(["--out", str(out), "--duration", "60"]) == 0
        assert "telemetry smoke: PASS" in capsys.readouterr().out


class TestTopView:
    def test_once_renders_final_frame(self):
        buf = io.StringIO()
        assert run_top(duration=60.0, once=True, stream=buf) == 0
        frame = buf.getvalue()
        assert "anor top" in frame
        assert "target" in frame and "measured" in frame
        assert "JOB" in frame and "CAP/W" in frame
        assert "\x1b[2J" not in frame  # no ANSI repaints in --once mode

    def test_render_frame_handles_head_down(self):
        snap = {
            "t": 10.0, "head_up": False, "target": 100.0, "measured": 90.0,
            "policy": "even-slowdown", "jobs": [], "queued": 0, "pending": 0,
            "running": 0, "completed": 0, "round": None,
            "incident_counts": {"head-crash": 1}, "recent_incidents": [],
        }
        frame = render_frame(snap)
        assert "head=DOWN" in frame
        assert "(no connected jobs)" in frame
        assert "head-crash" in frame


class TestCli:
    def test_trace_export_then_summary(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "export", "--out", str(out), "--duration", "60"]) == 0
        assert "trace records" in capsys.readouterr().out
        assert main(["trace", "summary", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "control-round" in printed
        assert "schema    : valid" in printed

    def test_trace_summary_flags_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"kind": "span_end", "name": null, "t": 0.0, "id": 9, '
            '"parent": null, "attrs": {}}\n'
        )
        assert main(["trace", "summary", str(bad)]) == 1

    def test_top_cli_runs_once(self, capsys):
        assert main(["top", "--once", "--duration", "30"]) == 0
        assert "anor top" in capsys.readouterr().out


class TestJsonlSinkContextManager:
    def test_context_manager_flushes_on_exit(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path, flush_every=1000) as sink:
            for i in range(5):
                sink.emit({"name": "event", "i": i})
            # Under the flush cadence: nothing is guaranteed on disk yet.
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        assert sink.records_written == 5
        assert sink._fh.closed

    def test_context_manager_flushes_when_body_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with pytest.raises(RuntimeError):
            with JsonlTraceSink(path, flush_every=1000) as sink:
                sink.emit({"name": "event"})
                raise RuntimeError("interrupted run")
        assert len(path.read_text().splitlines()) == 1  # not truncated

    def test_enter_returns_the_sink(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        with sink as entered:
            assert entered is sink
