"""End-to-end head-node crash recovery tests (checkpoint/journal + warm restart)."""

import numpy as np
import pytest

from repro.core.framework import AnorConfig, AnorSystem
from repro.core.targets import ConstantTarget
from repro.durable.state import capture_state
from repro.durable.store import DurableStore
from repro.faults.events import (
    EndpointCrash,
    HeadNodeCrash,
    HeadNodeRestart,
    MeterOutage,
    NodeCrash,
)
from repro.faults.schedule import FaultSchedule
from repro.workloads.trace import JobRequest, Schedule

TYPES = ["bt", "cg", "ft", "lu", "mg", "sp"]


def build_system(
    *,
    checkpoint_dir=None,
    fault_schedule=None,
    seed=3,
    n_jobs=6,
    target=16 * 170.0,
    checkpoint_period=20.0,
    recovery_timeout=25.0,
    **cfg_kwargs,
):
    schedule = Schedule(
        [
            JobRequest(
                submit_time=float(i),
                job_id=f"j{i:02d}",
                type_name=TYPES[i % len(TYPES)],
                nodes=4,
            )
            for i in range(n_jobs)
        ]
    )
    cfg = AnorConfig(
        seed=seed,
        checkpoint_dir=checkpoint_dir,
        checkpoint_period=checkpoint_period,
        recovery_timeout=recovery_timeout,
        **cfg_kwargs,
    )
    return AnorSystem(
        target_source=ConstantTarget(target),
        schedule=schedule,
        config=cfg,
        fault_schedule=fault_schedule,
    )


def drive_collecting_rounds(system, *, max_time=6000.0):
    """Run to drain, collecting (ceiling, planned) per budgeting round."""
    rows = []
    last = None
    while (
        system._pending or system._queue or system.cluster.running
    ) and system.cluster.clock.now < max_time:
        system.step()
        mgr = system.manager
        rnd = mgr.last_round if mgr is not None else None
        if rnd is not None and rnd.time != last:
            last = rnd.time
            rows.append(
                (
                    max(rnd.target + rnd.correction, rnd.floor),
                    rnd.idle_power + rnd.reserved + rnd.allocated,
                )
            )
    return system.run(0.0), rows


class TestCrashRecoveryEndToEnd:
    def test_recovery_preserves_jobs_and_budget_invariant(self, tmp_path):
        crash = FaultSchedule([HeadNodeCrash(time=120.0, down_for=30.0)])
        system = build_system(
            checkpoint_dir=str(tmp_path / "store"), fault_schedule=crash
        )
        result, rounds = drive_collecting_rounds(system)
        # Every submitted job drains despite the outage.
        assert result.unstarted_jobs == 0
        assert len(result.completed) == 6
        assert result.head_crashes == 1
        # The planned draw invariant holds through crash, outage, and
        # recovery (0.1 W absorbs the budgeter's bisection slop).
        assert all(planned <= ceiling + 0.1 for ceiling, planned in rounds)
        # Warm restart: the checkpoint+journal brought jobs back.
        assert any("restarted warm" in line for line in result.recovery_log)

    def test_live_jobs_reconcile_with_precrash_models(self, tmp_path):
        system = build_system(checkpoint_dir=str(tmp_path / "store"))
        # Run until the manager has accepted online models.
        for _ in range(200):
            system.step()
        pre = {
            jid: (r.online_model.a, r.online_model.b, r.online_model.c)
            for jid, r in system.manager.jobs.items()
            if r.online_model is not None
        }
        assert pre, "no online models accepted in 200 s — setup is wrong"
        system.crash_head_node()
        for _ in range(10):
            system.step()
        system.restart_head_node()
        # Before any re-HELLO lands, the restored recovery entries carry the
        # exact pre-crash coefficients out of the checkpoint+journal.
        assert system.manager.in_recovery
        for jid, coeffs in pre.items():
            recovered = system.manager.recovered_job(jid)
            assert recovered is not None and recovered.online_model is not None
            m = recovered.online_model
            assert (m.a, m.b, m.c) == pytest.approx(coeffs)
        # Re-HELLOs then merge that state warm (models keep refitting live
        # afterwards, so we assert the merge event, not frozen coefficients).
        for _ in range(10):
            system.step()
        assert system.manager.recovery_merges > 0
        assert any("model restored" in e for e in system.manager.events)

    def test_warm_endpoint_restart_seeds_modeler(self, tmp_path):
        system = build_system(
            checkpoint_dir=str(tmp_path / "store"), endpoint_restart_delay=10.0
        )
        for _ in range(200):
            system.step()
        candidates = [
            jid
            for jid, r in system.manager.jobs.items()
            if r.online_model is not None and jid in system.cluster.running
        ]
        assert candidates
        victim = candidates[0]
        model = system.manager.jobs[victim].online_model
        system.crash_endpoint(victim)
        for _ in range(15):
            system.step()
        endpoint = system.endpoints[victim]
        assert endpoint.modeler.seeded
        assert endpoint.modeler.model.a == pytest.approx(model.a)
        assert endpoint.modeler.model.c == pytest.approx(model.c)

    def test_node_crash_during_outage_requeues_via_orphan_path(self, tmp_path):
        system = build_system(checkpoint_dir=str(tmp_path / "store"))
        for _ in range(100):
            system.step()
        system.crash_head_node()
        victim = sorted(system.cluster.running)[0]
        node_id = system.cluster.running[victim].nodes[0].node_id
        system.crash_node(node_id)
        for _ in range(20):
            system.step()
        system.restart_head_node()
        result = system.run(until_idle=True, max_time=6000.0)
        assert victim in result.orphaned
        assert victim in result.requeued
        assert any(
            t.job_id == victim for t in result.completed
        ), "orphan-requeued job never completed"

    def test_cold_restart_without_checkpointing(self):
        system = build_system(checkpoint_dir=None)
        for _ in range(100):
            system.step()
        running_before = set(system.cluster.running)
        system.crash_head_node()
        for _ in range(10):
            system.step()
        system.restart_head_node()
        result = system.run(until_idle=True, max_time=6000.0)
        assert any("restarted cold" in line for line in result.recovery_log)
        # Surviving jobs still drain: their endpoints re-HELLO into the
        # fresh manager even though all learned state was lost.
        done = {t.job_id for t in result.completed}
        assert running_before <= done

    def test_corrupt_checkpoint_cold_starts_with_incident(self, tmp_path):
        store_dir = tmp_path / "store"
        system = build_system(checkpoint_dir=str(store_dir))
        for _ in range(60):
            system.step()
        system.crash_head_node()
        ck = store_dir / DurableStore.CHECKPOINT_NAME
        assert ck.exists()
        ck.write_bytes(ck.read_bytes()[:-25])  # truncate: checksum/length fail
        for _ in range(5):
            system.step()
        system.restart_head_node()
        assert any("checkpoint rejected" in line for line in system.recovery_log)
        assert any("cold start" in line for line in system.recovery_log)
        result = system.run(until_idle=True, max_time=6000.0)
        assert result.unstarted_jobs == 0

    def test_crash_on_checkpoint_cadence_boundary(self, tmp_path):
        # Gates anchor at the first tick (t=1), so with period 20 the
        # checkpoint fires at 1, 21, 41...  Crash exactly at a boundary:
        # the fault tick runs before the cadence, so the would-be write is
        # lost and recovery replays the previous checkpoint + journal tail.
        crash = FaultSchedule([HeadNodeCrash(time=41.0, down_for=20.0)])
        system = build_system(
            checkpoint_dir=str(tmp_path / "store"), fault_schedule=crash
        )
        result = system.run(until_idle=True, max_time=6000.0)
        assert result.head_crashes == 1
        assert result.unstarted_jobs == 0
        assert len(result.completed) == 6
        assert any("restarted warm" in line for line in result.recovery_log)

    def test_watchdog_restart_deferred_while_head_down(self, tmp_path):
        schedule = FaultSchedule(
            [
                EndpointCrash(time=100.0),
                HeadNodeCrash(time=105.0, down_for=30.0),
            ]
        )
        system = build_system(
            checkpoint_dir=str(tmp_path / "store"),
            fault_schedule=schedule,
            endpoint_restart_delay=10.0,
        )
        result = system.run(until_idle=True, max_time=6000.0)
        restart_lines = [
            w for w in result.warnings if "endpoint for job" in w and "restarted" in w
        ]
        assert restart_lines, "watchdog restart never happened"
        # Due at t=110 while the head was down (105–135): must fire after.
        t = float(restart_lines[0].split("t=")[1].split(":")[0])
        assert t >= 135.0


class TestRestartCancelledIncidents:
    def test_cancelled_when_job_no_longer_running(self):
        system = build_system()
        for _ in range(50):
            system.step()
        system._endpoint_restarts.append((system.cluster.clock.now + 1.0, "ghost-job"))
        for _ in range(3):
            system.step()
        assert any(
            "restart-cancelled for job ghost-job (job no longer running)" in w
            for w in system.warnings
        )

    def test_cancelled_when_endpoint_already_attached(self):
        system = build_system()
        for _ in range(50):
            system.step()
        jid = sorted(system.cluster.running)[0]
        assert jid in system.endpoints
        system._endpoint_restarts.append((system.cluster.clock.now + 1.0, jid))
        for _ in range(3):
            system.step()
        assert any(
            f"restart-cancelled for job {jid} (endpoint already attached)" in w
            for w in system.warnings
        )


class TestDeterminism:
    MIXED = [
        NodeCrash(time=60.0, node_id=2, down_for=120.0),
        EndpointCrash(time=80.0),
        HeadNodeCrash(time=120.0, down_for=30.0),
        MeterOutage(time=170.0, duration=40.0),
        HeadNodeCrash(time=260.0, down_for=float("inf")),
        HeadNodeRestart(time=300.0),
    ]

    def _run(self, tmp_path, tag):
        system = build_system(
            checkpoint_dir=str(tmp_path / tag),
            fault_schedule=FaultSchedule(self.MIXED),
        )
        return system.run(until_idle=True, max_time=6000.0)

    def test_same_seed_and_schedule_is_bit_identical(self, tmp_path):
        a = self._run(tmp_path, "a")
        b = self._run(tmp_path, "b")
        assert a.fault_log == b.fault_log
        assert a.recovery_log == b.recovery_log
        assert a.warnings == b.warnings
        assert a.power_trace.tobytes() == b.power_trace.tobytes()
        assert [t.job_id for t in a.completed] == [t.job_id for t in b.completed]

    def test_double_crash_with_scripted_restart(self, tmp_path):
        result = self._run(tmp_path, "c")
        assert result.head_crashes == 2
        assert result.unstarted_jobs == 0


class TestLiveStateRoundTrip:
    def test_capture_save_load_replay_equality(self, tmp_path):
        store_dir = tmp_path / "store"
        system = build_system(checkpoint_dir=str(store_dir))
        for _ in range(90):
            system.step()
        now = system.cluster.clock.now
        snap = capture_state(system, now)
        system.durable.save_checkpoint({"state": snap})
        system.durable.close()
        payload, replay = DurableStore(store_dir).load()
        assert payload["state"] == snap
        # The embedded watermark covers the whole journal: nothing replays.
        assert replay.records == []

    def test_checkpointing_off_means_no_store_touched(self, tmp_path):
        system = build_system(checkpoint_dir=None)
        for _ in range(50):
            system.step()
        assert system.durable is None
        assert list(tmp_path.iterdir()) == []
