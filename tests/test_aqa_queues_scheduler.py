"""Tests for work queues and the weight-proportional scheduler (§4.4.2)."""

import pytest

from repro.aqa.queues import QueuedJob, QueueSet, WorkQueue
from repro.aqa.scheduler import WeightedScheduler


def qj(job_id, type_name, nodes=1, submit=0.0):
    return QueuedJob(job_id=job_id, type_name=type_name, nodes=nodes, submit_time=submit)


class TestWorkQueue:
    def test_fifo(self):
        q = WorkQueue("bt")
        q.push(qj("a", "bt"))
        q.push(qj("b", "bt"))
        assert q.pop().job_id == "a"
        assert q.peek().job_id == "b"

    def test_wrong_type_rejected(self):
        q = WorkQueue("bt")
        with pytest.raises(ValueError, match="pushed to queue"):
            q.push(qj("a", "sp"))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="≥ 0"):
            WorkQueue("bt", weight=-1.0)

    def test_empty_peek(self):
        assert WorkQueue("bt").peek() is None


class TestQueueSet:
    def test_submit_routes_by_type(self):
        qs = QueueSet([WorkQueue("bt"), WorkQueue("sp")])
        qs.submit(qj("a", "sp"))
        assert len(qs["sp"]) == 1
        assert len(qs["bt"]) == 0

    def test_unknown_type_rejected(self):
        qs = QueueSet([WorkQueue("bt")])
        with pytest.raises(KeyError, match="no queue"):
            qs.submit(qj("a", "xx"))

    def test_node_shares_proportional(self):
        qs = QueueSet([WorkQueue("a", weight=3.0), WorkQueue("b", weight=1.0)])
        shares = qs.node_shares(100)
        assert shares["a"] == pytest.approx(75.0)
        assert shares["b"] == pytest.approx(25.0)

    def test_all_zero_weights_degrade_to_equal(self):
        qs = QueueSet([WorkQueue("a", weight=0.0), WorkQueue("b", weight=0.0)])
        shares = qs.node_shares(10)
        assert shares["a"] == shares["b"] == 5.0

    def test_set_weights(self):
        qs = QueueSet([WorkQueue("a"), WorkQueue("b")])
        qs.set_weights({"a": 2.0})
        assert qs["a"].weight == 2.0

    def test_set_weights_validates(self):
        qs = QueueSet([WorkQueue("a")])
        with pytest.raises(KeyError):
            qs.set_weights({"zz": 1.0})
        with pytest.raises(ValueError, match="≥ 0"):
            qs.set_weights({"a": -1.0})

    def test_total_pending(self):
        qs = QueueSet([WorkQueue("a"), WorkQueue("b")])
        qs.submit(qj("x", "a"))
        qs.submit(qj("y", "b"))
        assert qs.total_pending == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            QueueSet([])


class TestWeightedScheduler:
    def test_starts_within_share(self):
        qs = QueueSet([WorkQueue("a", weight=1.0), WorkQueue("b", weight=1.0)])
        qs.submit(qj("a1", "a", nodes=4))
        qs.submit(qj("b1", "b", nodes=4))
        sched = WeightedScheduler(qs)
        decision = sched.schedule(idle_nodes=8)
        started = {j.job_id for j in decision.to_start}
        assert started == {"a1", "b1"}
        assert decision.idle_nodes_after == 0

    def test_share_limits_hungry_queue(self):
        """A queue cannot exceed its weight share even with idle nodes."""
        qs = QueueSet([WorkQueue("a", weight=1.0), WorkQueue("b", weight=1.0)])
        for i in range(4):
            qs.submit(qj(f"a{i}", "a", nodes=4))
        sched = WeightedScheduler(qs)
        decision = sched.schedule(idle_nodes=8)
        # Share of queue a = 4 nodes: only one 4-node job may start.
        assert len(decision.to_start) == 1
        assert decision.idle_nodes_after == 4

    def test_work_conserving_lends_spare_share(self):
        qs = QueueSet([WorkQueue("a", weight=1.0), WorkQueue("b", weight=1.0)])
        for i in range(4):
            qs.submit(qj(f"a{i}", "a", nodes=4, submit=float(i)))
        sched = WeightedScheduler(qs, work_conserving=True)
        decision = sched.schedule(idle_nodes=8)
        assert len(decision.to_start) == 2

    def test_heavier_queue_gets_more(self):
        qs = QueueSet([WorkQueue("a", weight=3.0), WorkQueue("b", weight=1.0)])
        for i in range(3):
            qs.submit(qj(f"a{i}", "a", nodes=2))
            qs.submit(qj(f"b{i}", "b", nodes=2))
        decision = WeightedScheduler(qs).schedule(idle_nodes=8)
        starts = [j.type_name for j in decision.to_start]
        assert starts.count("a") == 3
        assert starts.count("b") == 1

    def test_job_larger_than_free_nodes_waits(self):
        qs = QueueSet([WorkQueue("a", weight=1.0)])
        qs.submit(qj("a1", "a", nodes=10))
        decision = WeightedScheduler(qs).schedule(idle_nodes=4)
        assert decision.to_start == []

    def test_finish_releases_share(self):
        qs = QueueSet([WorkQueue("a", weight=1.0), WorkQueue("b", weight=1.0)])
        qs.submit(qj("a1", "a", nodes=4))
        sched = WeightedScheduler(qs)
        sched.schedule(idle_nodes=8)
        assert qs["a"].running_nodes == 4
        sched.job_finished("a", 4)
        assert qs["a"].running_nodes == 0

    def test_finish_underflow_rejected(self):
        qs = QueueSet([WorkQueue("a")])
        with pytest.raises(ValueError, match="releasing"):
            WeightedScheduler(qs).job_finished("a", 1)

    def test_negative_idle_rejected(self):
        qs = QueueSet([WorkQueue("a")])
        with pytest.raises(ValueError, match="≥ 0"):
            WeightedScheduler(qs).schedule(-1)
