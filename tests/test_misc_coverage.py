"""Cross-cutting coverage: public behaviours not pinned elsewhere."""

import numpy as np
import pytest

import repro
from repro.core.framework import AnorResult
from repro.experiments.fig9 import build_demand_response_system
from repro.facility.coordinator import ClusterMember, FacilityCoordinator, MutableTarget
from repro.geopm.agent import AgentPolicy
from repro.geopm.endpoint import Endpoint
from repro.geopm.report import ApplicationTotals
from repro.modeling.quadratic import QuadraticPowerModel
from repro.core.targets import SteppedTarget


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_symbols_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_snippet_runs(self):
        system = repro.AnorSystem(
            budgeter=repro.EvenSlowdownBudgeter(),
            target_source=repro.ConstantTarget(280.0),
            config=repro.AnorConfig(num_nodes=1, seed=0),
        )
        system.submit_now("is-0", "is")
        result = system.run(until_idle=True, max_time=600.0)
        assert len(result.completed) == 1


class TestFig9Builder:
    def test_misclassification_option_rewires_classifier(self):
        system = build_demand_response_system(
            duration=60.0, misclassify_bt_as_is=True
        )
        believed = system.classifier.model_for("bt")
        is_truth = repro.NAS_TYPES["is"].truth
        assert believed.sensitivity == pytest.approx(is_truth.sensitivity)

    def test_default_is_truthful(self):
        system = build_demand_response_system(duration=60.0)
        believed = system.classifier.model_for("bt")
        assert believed.sensitivity == pytest.approx(
            repro.NAS_TYPES["bt"].truth.sensitivity
        )

    def test_schedule_excludes_short_types(self):
        system = build_demand_response_system(duration=600.0)
        types = {r.type_name for r in system.schedule}
        assert "is" not in types and "ep" not in types


class TestAnorResultHelpers:
    def make_result(self):
        totals = ApplicationTotals(
            job_id="x-0", job_type="x", nodes=1, runtime=110.0,
            sojourn=150.0, energy=1e4, epoch_count=10, average_power=200.0,
        )
        return AnorResult(
            completed=[totals], power_trace=np.zeros((0, 3)),
            unstarted_jobs=0, duration=150.0,
        )

    def test_unknown_reference_types_skipped(self):
        result = self.make_result()
        assert result.slowdowns_by_type({"other": 100.0}) == {}
        assert result.qos_by_type({"other": 100.0}) == {}

    def test_slowdown_computation(self):
        result = self.make_result()
        slow = result.slowdowns_by_type({"x": 100.0})
        assert slow["x"][0] == pytest.approx(0.10)
        qos = result.qos_by_type({"x": 100.0})
        assert qos["x"][0] == pytest.approx(0.50)


class TestFacilityWithMovingFeed:
    def test_shares_follow_facility_target(self):
        model = QuadraticPowerModel.from_anchors(1.0, 1.5, 500.0, 1000.0)
        members = [
            ClusterMember(
                name=f"c{i}",
                target=MutableTarget(1000.0),
                p_min=500.0,
                p_max=1000.0,
                model=model,
            )
            for i in range(2)
        ]
        feed = SteppedTarget([0.0, 100.0], [1400.0, 1900.0])
        fac = FacilityCoordinator(facility_target=feed)
        for m in members:
            fac.add_member(m)
        early = fac.step(0.0)
        late = fac.step(150.0)
        assert sum(late.values()) > sum(early.values())
        for m in members:
            assert m.target.target(0.0) == pytest.approx(late[m.name])


class TestEndpointCounters:
    def test_counts_policies_and_samples(self):
        ep = Endpoint("j")
        ep.write_policy(AgentPolicy(power_cap_node=200.0))
        ep.write_policy(AgentPolicy(power_cap_node=210.0))
        assert ep.policies_written == 2
        ep.take_policy()
        assert not ep.has_pending_policy
