"""Property: event-driven stepping is observationally identical to ticking.

The event-calendar core (DESIGN.md §7) batches control-free ticks into
analytic strides.  Its contract is not statistical similarity but bitwise
equality: for *any* configuration — multi-rate control periods, random
fault schedules (node/endpoint/head crashes, link bursts, meter outages,
corrupt statuses), cap leases, reliable messaging — the power trace and
every incident log must match the per-tick loop exactly.  Hypothesis
explores that configuration space; one counterexample is a real bug, not
noise.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.core.framework import AnorConfig  # noqa: E402
from repro.experiments.fig9 import build_demand_response_system  # noqa: E402
from repro.faults.schedule import FaultSchedule  # noqa: E402

DURATION = 180.0

# Multi-rate control planes: (agent, endpoint, manager) periods in seconds.
PERIODS = st.sampled_from(
    [
        (1.0, 1.0, 1.0),
        (2.0, 2.0, 4.0),
        (5.0, 5.0, 10.0),
        (5.0, 10.0, 30.0),
        (30.0, 30.0, 60.0),
    ]
)

# Poisson fault rates, including none at all and a head-node crash.
FAULTS = st.sampled_from(
    [
        None,
        dict(node_crash_rate=1 / 90.0, node_down_time=40.0),
        dict(endpoint_crash_rate=1 / 90.0, link_burst_rate=1 / 120.0),
        dict(meter_outage_rate=1 / 90.0, corrupt_status_rate=1 / 60.0),
        dict(head_crash_rate=1 / 150.0, head_down_time=25.0),
        dict(
            node_crash_rate=1 / 120.0,
            endpoint_crash_rate=1 / 120.0,
            head_crash_rate=1 / 180.0,
            link_burst_rate=1 / 150.0,
            meter_outage_rate=1 / 150.0,
            corrupt_status_rate=1 / 90.0,
            node_down_time=30.0,
            head_down_time=20.0,
        ),
    ]
)


def _run(event_driven, *, seed, periods, faults, lease, reliable):
    agent, endpoint, manager = periods
    config = AnorConfig(
        seed=seed,
        agent_period=agent,
        endpoint_period=endpoint,
        manager_period=manager,
        event_driven=event_driven,
        lease_ttl=20.0 if lease else None,
        reliable_messaging=reliable,
        endpoint_restart_delay=15.0,
    )
    schedule = None
    if faults is not None:
        schedule = FaultSchedule.random(DURATION, seed=seed * 31 + 7, **faults)
    system = build_demand_response_system(
        duration=DURATION, seed=seed, config=config, fault_schedule=schedule
    )
    return system.run(DURATION)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=40),
    periods=PERIODS,
    faults=FAULTS,
    lease=st.booleans(),
    reliable=st.booleans(),
)
def test_event_mode_bit_identical_to_tick_mode(seed, periods, faults, lease, reliable):
    kwargs = dict(
        seed=seed, periods=periods, faults=faults, lease=lease, reliable=reliable
    )
    event = _run(True, **kwargs)
    tick = _run(False, **kwargs)
    assert np.array_equal(event.power_trace, tick.power_trace)
    assert event.warnings == tick.warnings
    assert event.fault_log == tick.fault_log
    assert event.recovery_log == tick.recovery_log
    assert event.partition_events == tick.partition_events
    assert len(event.completed) == len(tick.completed)
    assert [t.job_id for t in event.completed] == [t.job_id for t in tick.completed]
    assert [t.energy for t in event.completed] == [t.energy for t in tick.completed]
