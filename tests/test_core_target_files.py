"""Tests for file-backed power targets (paper §4.1)."""

import pytest

from repro.aqa.regulation import SinusoidSignal
from repro.core.targets import (
    ConstantTarget,
    RegulationTarget,
    load_target_file,
    save_target_file,
)


class TestRoundTrip:
    def test_constant_roundtrip(self, tmp_path):
        path = tmp_path / "targets.csv"
        save_target_file(ConstantTarget(840.0), path, duration=60.0, step=4.0)
        loaded = load_target_file(path)
        assert loaded.target(0.0) == pytest.approx(840.0)
        assert loaded.target(37.0) == pytest.approx(840.0)

    def test_regulation_roundtrip_matches_samples(self, tmp_path):
        source = RegulationTarget(
            3400.0, 1050.0, SinusoidSignal(period=120.0), update_period=4.0
        )
        path = tmp_path / "targets.csv"
        save_target_file(source, path, duration=240.0, step=4.0)
        loaded = load_target_file(path)
        for t in (0.0, 4.0, 100.0, 236.0):
            assert loaded.target(t) == pytest.approx(source.target(t), abs=0.01)

    def test_holds_between_file_rows(self, tmp_path):
        source = RegulationTarget(
            1000.0, 200.0, SinusoidSignal(period=40.0), update_period=4.0
        )
        path = tmp_path / "targets.csv"
        save_target_file(source, path, duration=40.0, step=4.0)
        loaded = load_target_file(path)
        assert loaded.target(5.5) == loaded.target(4.0)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("oops\n1,2\n")
        with pytest.raises(ValueError, match="not a power-target file"):
            load_target_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time_s,target_w\n")
        with pytest.raises(ValueError, match="no target rows"):
            load_target_file(path)

    def test_invalid_save_args(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            save_target_file(ConstantTarget(1.0), tmp_path / "x.csv", duration=0.0)
