"""System-level property tests: invariances the design promises."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.budget.base import JobBudgetRequest
from repro.budget.even_power import EvenPowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.job_endpoint import JobTierEndpoint
from repro.core.messages import BudgetMessage
from repro.core.transport import TcpLink
from repro.geopm.agent import AgentSample
from repro.geopm.endpoint import Endpoint
from repro.modeling.quadratic import QuadraticPowerModel
from repro.workloads.generator import PoissonScheduleGenerator
from repro.workloads.nas import NAS_TYPES


def request(job_id, nodes, sens):
    model = QuadraticPowerModel.from_anchors(2.0, sens, 140.0, 280.0)
    return JobBudgetRequest(job_id, nodes, model, 140.0, 280.0)


job_specs = st.lists(
    st.tuples(st.integers(1, 6), st.floats(1.0, 2.2)), min_size=2, max_size=6
)


class TestBudgeterInvariances:
    @given(job_specs, st.floats(0.2, 0.8), st.randoms(use_true_random=False))
    @settings(max_examples=40)
    def test_allocation_order_invariant(self, specs, frac, shuffler):
        """Caps must not depend on the order jobs are presented in."""
        jobs = [request(f"j{i}", n, s) for i, (n, s) in enumerate(specs)]
        lo = sum(j.p_min * j.nodes for j in jobs)
        hi = sum(j.p_max * j.nodes for j in jobs)
        budget = lo + frac * (hi - lo)
        for budgeter in (EvenPowerBudgeter(), EvenSlowdownBudgeter()):
            base = budgeter.allocate(jobs, budget).caps
            shuffled = list(jobs)
            shuffler.shuffle(shuffled)
            again = budgeter.allocate(shuffled, budget).caps
            for job in jobs:
                assert again[job.job_id] == pytest.approx(base[job.job_id], abs=1e-6)

    @given(job_specs, st.floats(0.2, 0.8))
    @settings(max_examples=40)
    def test_identical_jobs_get_identical_caps(self, specs, frac):
        """Symmetry: two jobs with the same model/nodes get the same cap."""
        nodes, sens = specs[0]
        jobs = [request("a", nodes, sens), request("b", nodes, sens)] + [
            request(f"j{i}", n, s) for i, (n, s) in enumerate(specs[1:])
        ]
        lo = sum(j.p_min * j.nodes for j in jobs)
        hi = sum(j.p_max * j.nodes for j in jobs)
        budget = lo + frac * (hi - lo)
        for budgeter in (EvenPowerBudgeter(), EvenSlowdownBudgeter()):
            caps = budgeter.allocate(jobs, budget).caps
            assert caps["a"] == pytest.approx(caps["b"], abs=1e-6)


class TestScheduleProperties:
    @given(st.integers(0, 10_000), st.floats(0.3, 0.95))
    @settings(max_examples=25, deadline=None)
    def test_generator_respects_window_and_ordering(self, seed, util):
        types = [NAS_TYPES["mg"], NAS_TYPES["cg"]]
        gen = PoissonScheduleGenerator(types, util, 64, seed=seed)
        sched = gen.generate(500.0, start_time=10.0)
        times = [r.submit_time for r in sched]
        assert times == sorted(times)
        assert all(10.0 <= t < 510.0 for t in times)
        assert len({r.job_id for r in sched}) == len(sched)


class TestDitherProperties:
    def test_dither_is_zero_mean_around_budget(self):
        """Exploration must not steal or add power on average."""
        geopm = Endpoint("j")
        link = TcpLink(latency=0.0)
        endpoint = JobTierEndpoint(
            "j", "bt", 2, geopm, link,
            p_min=140.0, p_max=280.0,
            default_model=QuadraticPowerModel.from_anchors(2.0, 1.3, 140.0, 280.0),
            feedback_enabled=True,
        )
        link.send_down(BudgetMessage("j", 200.0, 0.0), 0.0)
        applied = []
        for i in range(96):  # multiple full dither cycles
            # Starve the modeler of epochs so exploration never stops.
            geopm.publish_sample(
                AgentSample(float(i), 400.0, 0.0, 0, 2, 200.0)
            )
            endpoint.step(float(i))
            policy = geopm.take_policy()
            if policy is not None:
                applied.append(policy.power_cap_node)
        assert len(applied) > 50
        assert np.mean(applied) == pytest.approx(200.0, rel=0.01)

    def test_dither_stays_in_platform_range(self):
        geopm = Endpoint("j")
        link = TcpLink(latency=0.0)
        endpoint = JobTierEndpoint(
            "j", "bt", 2, geopm, link,
            p_min=140.0, p_max=280.0,
            default_model=QuadraticPowerModel.from_anchors(2.0, 1.3, 140.0, 280.0),
        )
        link.send_down(BudgetMessage("j", 142.0, 0.0), 0.0)  # near the floor
        for i in range(30):
            geopm.publish_sample(AgentSample(float(i), 280.0, 0.0, 0, 2, 142.0))
            endpoint.step(float(i))
            policy = geopm.take_policy()
            if policy is not None:
                assert 140.0 <= policy.power_cap_node <= 280.0
