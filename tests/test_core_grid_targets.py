"""Tests for carbon- and tariff-aware power targets (paper §3 scenarios)."""

import pytest

from repro.core.targets import CarbonAwareTarget, TariffAwareTarget


class TestCarbonAware:
    def make(self, intensity):
        return CarbonAwareTarget(
            1000.0, 2000.0, intensity,
            clean_intensity=100.0, dirty_intensity=500.0, update_period=300.0,
        )

    def test_clean_grid_full_power(self):
        assert self.make(lambda t: 100.0).target(0.0) == 2000.0

    def test_dirty_grid_min_power(self):
        assert self.make(lambda t: 500.0).target(0.0) == 1000.0

    def test_linear_in_between(self):
        assert self.make(lambda t: 300.0).target(0.0) == pytest.approx(1500.0)

    def test_clamped_outside_band(self):
        assert self.make(lambda t: 10.0).target(0.0) == 2000.0
        assert self.make(lambda t: 900.0).target(0.0) == 1000.0

    def test_holds_within_update_period(self):
        target = self.make(lambda t: 100.0 + t)  # intensity rises over time
        assert target.target(0.0) == target.target(299.0)
        assert target.target(300.0) != target.target(299.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="p_min < p_max"):
            CarbonAwareTarget(2000.0, 1000.0, lambda t: 100.0)
        with pytest.raises(ValueError, match="clean_intensity"):
            CarbonAwareTarget(1.0, 2.0, lambda t: 0.0,
                              clean_intensity=500.0, dirty_intensity=100.0)


class TestTariffAware:
    def make(self):
        prices = [0.10] * 24
        for h in (17, 18, 19, 20):  # evening peak
            prices[h] = 0.40
        return TariffAwareTarget(
            1000.0, 2000.0, prices, expensive_threshold=0.25
        )

    def test_cheap_hours_full_power(self):
        assert self.make().target(3 * 3600.0) == 2000.0

    def test_peak_hours_throttle(self):
        assert self.make().target(18 * 3600.0) == 1000.0

    def test_wraps_daily(self):
        target = self.make()
        assert target.target(18 * 3600.0) == target.target((24 + 18) * 3600.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="24 hourly"):
            TariffAwareTarget(1.0, 2.0, [0.1] * 23, expensive_threshold=0.2)
        with pytest.raises(ValueError, match="non-negative"):
            TariffAwareTarget(1.0, 2.0, [-0.1] + [0.1] * 23, expensive_threshold=0.2)
