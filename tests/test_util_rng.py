"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import derive_rng, ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = ensure_rng(7).integers(0, 1_000_000, size=10)
        b = ensure_rng(7).integers(0, 1_000_000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, size=10)
        b = ensure_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen


class TestSpawnRng:
    def test_children_are_independent(self):
        parent = ensure_rng(0)
        kids = spawn_rng(parent, 3)
        draws = [k.integers(0, 2**31, size=100) for k in kids]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_reproducible_from_same_parent_seed(self):
        a = spawn_rng(ensure_rng(5), 2)
        b = spawn_rng(ensure_rng(5), 2)
        assert a[0].integers(0, 2**31) == b[0].integers(0, 2**31)
        assert a[1].integers(0, 2**31) == b[1].integers(0, 2**31)

    def test_zero_children(self):
        assert spawn_rng(ensure_rng(0), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rng(ensure_rng(0), -1)

    def test_parent_usable_after_spawn(self):
        parent = ensure_rng(0)
        spawn_rng(parent, 4)
        assert 0 <= parent.random() < 1


class TestDeriveRng:
    def test_same_tags_same_stream(self):
        a = derive_rng(ensure_rng(3), "node", 7)
        b = derive_rng(ensure_rng(3), "node", 7)
        assert a.integers(0, 2**31) == b.integers(0, 2**31)

    def test_different_tags_differ(self):
        a = derive_rng(ensure_rng(3), "node", 7)
        b = derive_rng(ensure_rng(3), "node", 8)
        assert not np.array_equal(
            a.integers(0, 2**31, size=50), b.integers(0, 2**31, size=50)
        )

    def test_derivation_does_not_consume_parent(self):
        p1, p2 = ensure_rng(9), ensure_rng(9)
        derive_rng(p1, "x")
        assert p1.random() == p2.random()
