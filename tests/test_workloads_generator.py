"""Tests for Poisson schedule generation (paper §5.3)."""

import numpy as np
import pytest

from repro.workloads.generator import (
    PoissonScheduleGenerator,
    arrival_rates_for_utilization,
)
from repro.workloads.nas import NAS_TYPES, long_running_mix


class TestArrivalRates:
    def test_utilization_identity(self):
        """Σ λ_j · n_j · T_j must equal η · N (the paper's §5.3 relation)."""
        types = long_running_mix()
        rates = arrival_rates_for_utilization(types, 0.75, 100)
        total = sum(rates[jt.name] * jt.nodes * jt.t_min for jt in types)
        assert total == pytest.approx(0.75 * 100)

    def test_equal_shares_by_default(self):
        types = long_running_mix()
        rates = arrival_rates_for_utilization(types, 0.6, 50)
        node_seconds = {
            jt.name: rates[jt.name] * jt.nodes * jt.t_min for jt in types
        }
        values = list(node_seconds.values())
        assert max(values) == pytest.approx(min(values))

    def test_custom_shares(self):
        types = [NAS_TYPES["bt"], NAS_TYPES["sp"]]
        rates = arrival_rates_for_utilization(types, 0.5, 10, shares=[3.0, 1.0])
        bt_demand = rates["bt"] * types[0].nodes * types[0].t_min
        sp_demand = rates["sp"] * types[1].nodes * types[1].t_min
        assert bt_demand == pytest.approx(3.0 * sp_demand)

    def test_rejects_bad_inputs(self):
        types = [NAS_TYPES["bt"]]
        with pytest.raises(ValueError, match="at least one"):
            arrival_rates_for_utilization([], 0.5, 10)
        with pytest.raises(ValueError, match="positive"):
            arrival_rates_for_utilization(types, 0.0, 10)
        with pytest.raises(ValueError, match="≥ 1"):
            arrival_rates_for_utilization(types, 0.5, 0)
        with pytest.raises(ValueError, match="shares"):
            arrival_rates_for_utilization(types, 0.5, 10, shares=[1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            arrival_rates_for_utilization(types, 0.5, 10, shares=[-1.0])


class TestGenerator:
    def test_reproducible(self):
        types = long_running_mix()
        a = PoissonScheduleGenerator(types, 0.75, 100, seed=3).generate(600.0)
        b = PoissonScheduleGenerator(types, 0.75, 100, seed=3).generate(600.0)
        assert [r.job_id for r in a] == [r.job_id for r in b]
        assert [r.submit_time for r in a] == [r.submit_time for r in b]

    def test_different_seeds_differ(self):
        types = long_running_mix()
        a = PoissonScheduleGenerator(types, 0.75, 100, seed=1).generate(600.0)
        b = PoissonScheduleGenerator(types, 0.75, 100, seed=2).generate(600.0)
        assert [r.submit_time for r in a] != [r.submit_time for r in b]

    def test_submissions_sorted_and_within_window(self):
        gen = PoissonScheduleGenerator(long_running_mix(), 0.9, 64, seed=0)
        sched = gen.generate(1000.0, start_time=50.0)
        times = [r.submit_time for r in sched]
        assert times == sorted(times)
        assert all(50.0 <= t < 1050.0 for t in times)

    def test_expected_count_close_to_realised(self):
        gen = PoissonScheduleGenerator(long_running_mix(), 0.8, 1000, seed=5)
        duration = 3600.0
        sched = gen.generate(duration)
        expected = gen.expected_jobs(duration)
        # Poisson: realised within ~5 sigma of expectation.
        assert abs(len(sched) - expected) < 5.0 * np.sqrt(expected)

    def test_all_types_appear_in_long_schedule(self):
        gen = PoissonScheduleGenerator(long_running_mix(), 0.9, 500, seed=0)
        counts = gen.generate(3600.0).type_counts()
        assert set(counts) == {jt.name for jt in long_running_mix()}

    def test_oversized_job_rejected(self):
        big = NAS_TYPES["bt"].with_nodes(100)
        with pytest.raises(ValueError, match="larger than the cluster"):
            PoissonScheduleGenerator([big], 0.5, 10, seed=0)

    def test_non_positive_duration_rejected(self):
        gen = PoissonScheduleGenerator(long_running_mix(), 0.5, 100, seed=0)
        with pytest.raises(ValueError, match="positive"):
            gen.generate(0.0)

    def test_job_ids_unique(self):
        gen = PoissonScheduleGenerator(long_running_mix(), 0.9, 200, seed=0)
        sched = gen.generate(1800.0)
        ids = [r.job_id for r in sched]
        assert len(ids) == len(set(ids))
