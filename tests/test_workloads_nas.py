"""Tests for the NAS job-type catalog (paper §5.1, Fig. 3)."""

import numpy as np
import pytest

from repro.workloads.nas import (
    NAS_TYPES,
    P_NODE_MAX,
    P_NODE_MIN,
    default_mix,
    get_job_type,
    long_running_mix,
    misclassification_trio,
)


class TestCatalog:
    def test_eight_types(self):
        assert len(NAS_TYPES) == 8
        assert set(NAS_TYPES) == {"bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"}

    def test_ep_most_sensitive_is_least(self):
        """§6.1.2 relies on EP being the most and IS the least sensitive."""
        sens = {n: jt.sensitivity for n, jt in NAS_TYPES.items()}
        assert max(sens, key=sens.get) == "ep"
        assert min(sens, key=sens.get) == "is"

    def test_bt_sensitive_sp_insensitive(self):
        """Figs. 6–8 pair BT (high) with SP (low)."""
        assert NAS_TYPES["bt"].sensitivity > 1.5
        assert NAS_TYPES["sp"].sensitivity < 1.2

    def test_is_and_ep_are_short(self):
        """§7.2: IS and EP run for less than half a minute."""
        assert NAS_TYPES["is"].t_uncapped < 30.0
        assert NAS_TYPES["ep"].t_uncapped < 30.0

    def test_cap_range_matches_platform(self):
        assert P_NODE_MIN == 140.0  # 2 × 70 W package floor
        assert P_NODE_MAX == 280.0  # 2 × 140 W TDP

    def test_nas_names(self):
        assert NAS_TYPES["bt"].nas_name == "bt.D.x"


class TestLookups:
    def test_short_name(self):
        assert get_job_type("bt") is NAS_TYPES["bt"]

    def test_full_paper_name(self):
        assert get_job_type("bt.D.x") is NAS_TYPES["bt"]

    def test_case_insensitive(self):
        assert get_job_type("BT.D.81") is NAS_TYPES["bt"]

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown job type"):
            get_job_type("xx")

    def test_default_mix_has_all(self):
        assert len(default_mix()) == 8

    def test_long_running_excludes_short(self):
        names = {jt.name for jt in long_running_mix()}
        assert names == {"bt", "cg", "ft", "lu", "mg", "sp"}

    def test_trio_ordering(self):
        low, mid, high = misclassification_trio()
        assert low.sensitivity < mid.sensitivity < high.sensitivity


class TestTruthCurves:
    @pytest.mark.parametrize("name", sorted(NAS_TYPES))
    def test_monotone(self, name):
        jt = NAS_TYPES[name]
        caps = np.linspace(jt.p_min, jt.p_max, 50)
        times = jt.time_per_epoch(caps)
        assert np.all(np.diff(times) <= 1e-12)

    @pytest.mark.parametrize("name", sorted(NAS_TYPES))
    def test_sensitivity_anchored(self, name):
        jt = NAS_TYPES[name]
        assert float(jt.relative_time(jt.p_min)) == pytest.approx(
            jt.sensitivity, rel=1e-9
        )

    @pytest.mark.parametrize("name", sorted(NAS_TYPES))
    def test_uncapped_compute_time(self, name):
        jt = NAS_TYPES[name]
        assert jt.compute_time(jt.p_max) == pytest.approx(jt.t_uncapped, rel=1e-9)

    def test_total_time_includes_overheads(self):
        jt = NAS_TYPES["bt"]
        assert jt.total_time(jt.p_max) == pytest.approx(
            jt.t_uncapped + jt.setup_time + jt.teardown_time
        )

    def test_cap_above_demand_not_binding(self):
        jt = NAS_TYPES["is"]  # p_demand = 235 W
        assert jt.compute_time(250.0) == jt.compute_time(jt.p_max)

    def test_power_at_cap_clamps(self):
        jt = NAS_TYPES["sp"]
        assert jt.power_at_cap(1000.0) == jt.p_demand
        assert jt.power_at_cap(100.0) == jt.p_min

    def test_slowdown_non_negative(self):
        jt = NAS_TYPES["lu"]
        for cap in (140.0, 200.0, 280.0):
            assert jt.slowdown(cap) >= -1e-12


class TestDerivedTypes:
    def test_scaled_nodes(self):
        big = NAS_TYPES["bt"].scaled_nodes(25)
        assert big.nodes == NAS_TYPES["bt"].nodes * 25
        assert big.sensitivity == NAS_TYPES["bt"].sensitivity

    def test_scaled_rejects_zero(self):
        with pytest.raises(ValueError, match="≥ 1"):
            NAS_TYPES["bt"].scaled_nodes(0)

    def test_with_nodes(self):
        pinned = NAS_TYPES["ft"].with_nodes(8)
        assert pinned.nodes == 8
        assert pinned.truth.sensitivity == NAS_TYPES["ft"].truth.sensitivity
