"""Tests for Application Totals reports (paper §5.4)."""

import pytest

from repro.geopm.report import ApplicationTotals, render_report


def make_totals(**overrides):
    defaults = dict(
        job_id="bt-0",
        job_type="bt",
        nodes=2,
        runtime=300.0,
        sojourn=320.0,
        energy=120_000.0,
        epoch_count=200,
        average_power=400.0,
    )
    defaults.update(overrides)
    return ApplicationTotals(**defaults)


class TestValidation:
    def test_valid(self):
        assert make_totals().runtime == 300.0

    def test_sojourn_cannot_undercut_runtime(self):
        with pytest.raises(ValueError, match="sojourn"):
            make_totals(sojourn=100.0)

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_totals(runtime=-1.0, sojourn=10.0)


class TestMetrics:
    def test_slowdown(self):
        assert make_totals().slowdown_vs(300.0) == pytest.approx(0.0)
        assert make_totals(runtime=330.0, sojourn=340.0).slowdown_vs(300.0) == pytest.approx(0.1)

    def test_slowdown_requires_positive_reference(self):
        with pytest.raises(ValueError, match="positive"):
            make_totals().slowdown_vs(0.0)

    def test_qos_degradation(self):
        totals = make_totals(sojourn=640.0)
        assert totals.qos_degradation(320.0) == pytest.approx(1.0)

    def test_qos_requires_positive_t_min(self):
        with pytest.raises(ValueError, match="positive"):
            make_totals().qos_degradation(0.0)


class TestRender:
    def test_contains_application_totals_section(self):
        text = render_report(make_totals())
        assert "Application Totals:" in text
        assert "runtime (s): 300" in text
        assert "epoch-count: 200" in text
        assert "Profile: bt-0" in text
