"""Tests for epoch profiling (geopm_prof_epoch semantics, paper §4.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.geopm.profiler import EpochProfiler


class TestBarrierSemantics:
    def test_single_rank_counts_directly(self):
        p = EpochProfiler(num_ranks=1)
        assert p.prof_epoch(0) == 1
        assert p.prof_epoch(0) == 2

    def test_global_count_waits_for_slowest(self):
        """'incremented each time all processes ... reach' the call (§4.3)."""
        p = EpochProfiler(num_ranks=3)
        p.prof_epoch(0)
        p.prof_epoch(1)
        assert p.epoch_count == 0  # rank 2 has not arrived
        p.prof_epoch(2)
        assert p.epoch_count == 1

    def test_fast_rank_running_ahead(self):
        p = EpochProfiler(num_ranks=2)
        for _ in range(5):
            p.prof_epoch(0)
        assert p.epoch_count == 0
        p.prof_epoch(1)
        assert p.epoch_count == 1
        assert p.rank_counts == (5, 1)

    def test_rank_out_of_range(self):
        p = EpochProfiler(num_ranks=2)
        with pytest.raises(IndexError):
            p.prof_epoch(2)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError, match="≥ 1"):
            EpochProfiler(num_ranks=0)

    @given(st.lists(st.integers(0, 2), min_size=1, max_size=60))
    def test_property_count_is_min_of_ranks(self, calls):
        p = EpochProfiler(num_ranks=3)
        for rank in calls:
            p.prof_epoch(rank)
        assert p.epoch_count == min(p.rank_counts)


class TestSetRankProgress:
    def test_direct_set(self):
        p = EpochProfiler(num_ranks=2)
        p.set_rank_progress(0, 4)
        p.set_rank_progress(1, 3)
        assert p.epoch_count == 3

    def test_cannot_go_backwards(self):
        p = EpochProfiler(num_ranks=1)
        p.set_rank_progress(0, 5)
        with pytest.raises(ValueError, match="backwards"):
            p.set_rank_progress(0, 4)

    def test_out_of_range_rank(self):
        with pytest.raises(IndexError):
            EpochProfiler(num_ranks=1).set_rank_progress(1, 1)


class TestEpochTimes:
    def test_timestamps_recorded_per_global_epoch(self):
        p = EpochProfiler(num_ranks=2)
        p.prof_epoch(0, timestamp=1.0)
        p.prof_epoch(1, timestamp=2.0)  # global epoch completes at t=2
        assert p.epoch_times == (2.0,)

    def test_multiple_epochs_at_once(self):
        p = EpochProfiler(num_ranks=2)
        p.set_rank_progress(0, 3, timestamp=1.0)
        p.set_rank_progress(1, 3, timestamp=4.0)
        assert p.epoch_times == (4.0, 4.0, 4.0)

    def test_seconds_per_epoch(self):
        p = EpochProfiler(num_ranks=1)
        for i in range(5):
            p.prof_epoch(0, timestamp=float(2 * i))
        assert p.seconds_per_epoch() == pytest.approx(2.0)

    def test_seconds_per_epoch_last_n(self):
        p = EpochProfiler(num_ranks=1)
        times = [0.0, 1.0, 2.0, 10.0, 18.0]
        for t in times:
            p.prof_epoch(0, timestamp=t)
        assert p.seconds_per_epoch(last_n=2) == pytest.approx(8.0)

    def test_seconds_per_epoch_needs_two(self):
        p = EpochProfiler(num_ranks=1)
        p.prof_epoch(0, timestamp=0.0)
        with pytest.raises(ValueError, match="two"):
            p.seconds_per_epoch()
