"""Tests for the cluster-tier power manager."""

import pytest

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.cluster_manager import ClusterPowerManager
from repro.core.messages import BudgetMessage, GoodbyeMessage, HelloMessage, StatusMessage
from repro.core.targets import ConstantTarget
from repro.core.transport import TcpLink
from repro.modeling.classifier import JobClassifier
from repro.modeling.quadratic import QuadraticPowerModel


def models():
    mk = lambda s, p=280.0: QuadraticPowerModel.from_anchors(2.0, s, 140.0, p)
    return {"bt": mk(1.65, 272.0), "is": mk(1.08, 235.0), "sp": mk(1.12, 240.0)}


def make_manager(*, target=840.0, total_nodes=4, **kwargs):
    return ClusterPowerManager(
        budgeter=EvenSlowdownBudgeter(),
        target_source=ConstantTarget(target),
        classifier=JobClassifier(models()),
        total_nodes=total_nodes,
        **kwargs,
    )


def connect_job(manager, job_id, claimed, nodes, *, now=0.0):
    link = TcpLink(latency=0.0)
    manager.register_link(link)
    link.send_up(HelloMessage(job_id, claimed, nodes, now), now)
    return link


def send_status(link, job_id, *, t, epochs=5, power=400.0, cap=200.0, **model):
    link.send_up(
        StatusMessage(
            job_id=job_id, timestamp=t, epoch_count=epochs,
            measured_power=power, applied_cap=cap, **model,
        ),
        t,
    )


class TestRegistration:
    def test_hello_registers_job(self):
        manager = make_manager()
        connect_job(manager, "j1", "bt", 2)
        manager.step(0.0)
        assert "j1" in manager.jobs
        assert manager.jobs["j1"].believed_model.sensitivity == pytest.approx(1.65)

    def test_misclassified_claim_uses_wrong_model(self):
        manager = make_manager()
        connect_job(manager, "j1", "is", 2)  # truly BT, claims IS
        manager.step(0.0)
        assert manager.jobs["j1"].believed_model.sensitivity == pytest.approx(1.08)

    def test_goodbye_unregisters(self):
        manager = make_manager()
        link = connect_job(manager, "j1", "bt", 2)
        manager.step(0.0)
        link.send_up(GoodbyeMessage("j1", 1.0), 1.0)
        manager.step(1.0)
        assert "j1" not in manager.jobs

    def test_status_for_unknown_job_ignored(self):
        manager = make_manager()
        link = TcpLink(latency=0.0)
        manager.register_link(link)
        send_status(link, "ghost", t=0.0)
        manager.step(0.0)  # must not raise
        assert manager.jobs == {}


class TestBudgeting:
    def test_caps_sent_to_jobs(self):
        manager = make_manager()
        link1 = connect_job(manager, "a", "bt", 2)
        link2 = connect_job(manager, "b", "sp", 2)
        manager.step(0.0)
        caps1 = [m for m in link1.recv_down(0.0) if isinstance(m, BudgetMessage)]
        caps2 = [m for m in link2.recv_down(0.0) if isinstance(m, BudgetMessage)]
        assert caps1[0].job_id == "a"
        assert caps2[0].job_id == "b"

    def test_idle_nodes_reduce_available_budget(self):
        tight = make_manager(target=840.0, total_nodes=8)  # 6 idle nodes
        loose = make_manager(target=840.0, total_nodes=2)
        for manager in (tight, loose):
            link = connect_job(manager, "a", "bt", 2)
            send_status(link, "a", t=0.0, power=400.0)
            caps = manager.step(0.0)
        # Placeholder to keep caps in scope; compare the two managers:
        link_t = connect_job(tight, "b", "bt", 2)
        send_status(link_t, "b", t=1.0, power=400.0)
        caps_tight = tight.step(1.0)
        link_l = connect_job(loose, "c", "bt", 2)
        send_status(link_l, "c", t=1.0, power=400.0)
        caps_loose = loose.step(1.0)
        assert max(caps_tight.values()) < max(caps_loose.values())

    def test_dormant_job_budgeted_at_floor(self):
        """Jobs at idle power (setup/teardown) release slack (§7.2)."""
        manager = make_manager(target=840.0, total_nodes=4)
        active = connect_job(manager, "a", "bt", 2)
        dormant = connect_job(manager, "d", "sp", 2)
        send_status(active, "a", t=0.0, power=400.0)
        send_status(dormant, "d", t=0.0, power=120.0)  # idle-level draw
        caps = manager.step(0.0)
        assert caps["d"] == manager.p_node_min
        # The active job inherits the slack: (840 - 120) / 2 nodes = 360 W,
        # clamped to its believed ceiling.
        assert caps["a"] == pytest.approx(272.0, abs=1.0)

    def test_no_jobs_returns_empty(self):
        manager = make_manager()
        assert manager.step(0.0) == {}


class TestFeedback:
    def test_online_model_replaces_believed(self):
        manager = make_manager(use_feedback=True)
        link = connect_job(manager, "a", "is", 2)
        send_status(
            link, "a", t=0.0, power=400.0,
            model_a=0.0, model_b=-0.01, model_c=5.0, model_r2=0.9,
        )
        manager.step(0.0)
        record = manager.jobs["a"]
        assert record.online_model is not None
        assert record.active_model is record.online_model

    def test_feedback_disabled_ignores_model(self):
        manager = make_manager(use_feedback=False)
        link = connect_job(manager, "a", "is", 2)
        send_status(
            link, "a", t=0.0, power=400.0,
            model_a=0.0, model_b=-0.01, model_c=5.0, model_r2=0.9,
        )
        manager.step(0.0)
        assert manager.jobs["a"].online_model is None

    def test_low_r2_model_rejected(self):
        manager = make_manager(use_feedback=True, min_feedback_r2=0.5)
        link = connect_job(manager, "a", "is", 2)
        send_status(
            link, "a", t=0.0, power=400.0,
            model_a=0.0, model_b=-0.01, model_c=5.0, model_r2=0.1,
        )
        manager.step(0.0)
        assert manager.jobs["a"].online_model is None


class TestTrackingAndCorrection:
    def test_tracking_samples_recorded(self):
        manager = make_manager(meter=lambda: 800.0)
        manager.step(0.0)
        manager.step(1.0)
        assert len(manager.tracking) == 2
        assert manager.tracking[0].target == 840.0
        assert manager.tracking[0].measured == 800.0

    def test_integral_correction_raises_budget_when_under(self):
        manager = make_manager(meter=lambda: 700.0, correction_gain=0.5)
        link = connect_job(manager, "a", "bt", 2)
        send_status(link, "a", t=0.0, power=400.0)
        caps1 = manager.step(0.0)
        send_status(link, "a", t=1.0, power=400.0)
        caps2 = manager.step(1.0)
        assert caps2["a"] >= caps1["a"]

    def test_correction_clamped(self):
        manager = make_manager(
            meter=lambda: 0.0, correction_gain=1.0, correction_limit_fraction=0.1
        )
        for i in range(20):
            manager.step(float(i))
        assert manager._correction <= 0.1 * 840.0 + 1e-9


class TestJobCapGaugeCache:
    """The per-job cap gauge is a cached child instrument (hot path)."""

    def _enabled_manager(self):
        from repro.telemetry import Telemetry

        return make_manager(telemetry=Telemetry(enabled=True))

    def test_cap_dispatch_exports_and_caches_child_gauges(self):
        manager = self._enabled_manager()
        link_a = connect_job(manager, "a", "bt", 2)
        link_b = connect_job(manager, "b", "sp", 2)
        manager.step(0.0)
        send_status(link_a, "a", t=1.0)
        send_status(link_b, "b", t=1.0)
        manager.step(1.0)

        reg = manager.telemetry.registry
        for job_id in ("a", "b"):
            exported = reg.get_value("anor_job_cap_watts", job=job_id)
            assert exported == pytest.approx(manager.jobs[job_id].last_cap)
            # The cached handle IS the registry's instrument, so later
            # rounds update the same exported child without re-resolving.
            assert manager._mx_job_cap[job_id] is reg.gauge(
                "anor_job_cap_watts", job=job_id
            )

    def test_repeated_rounds_reuse_the_cached_handle(self):
        manager = self._enabled_manager()
        link = connect_job(manager, "a", "bt", 2)
        manager.step(0.0)
        send_status(link, "a", t=1.0)
        manager.step(1.0)
        handle = manager._mx_job_cap["a"]
        send_status(link, "a", t=2.0)
        manager.step(2.0)
        assert manager._mx_job_cap["a"] is handle
        reg = manager.telemetry.registry
        assert reg.get_value("anor_job_cap_watts", job="a") == pytest.approx(
            manager.jobs["a"].last_cap
        )

    def test_goodbye_drops_the_cache_entry(self):
        manager = self._enabled_manager()
        link = connect_job(manager, "a", "bt", 2)
        manager.step(0.0)
        send_status(link, "a", t=1.0)
        manager.step(1.0)
        assert "a" in manager._mx_job_cap
        link.send_up(GoodbyeMessage("a", 2.0), 2.0)
        manager.step(2.0)
        assert "a" not in manager._mx_job_cap

    def test_disabled_manager_never_builds_instruments(self):
        # Allocation-free when disabled: the metric handles (including the
        # per-job gauge cache) must never exist on the default null path.
        manager = make_manager()
        link = connect_job(manager, "a", "bt", 2)
        manager.step(0.0)
        send_status(link, "a", t=1.0)
        manager.step(1.0)
        assert not manager.telemetry.enabled
        assert not hasattr(manager, "_mx_job_cap")
        assert not hasattr(manager, "_mx_caps_sent")
