"""Tests for the three power budgeters (paper §4.4.3), incl. invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.budget.base import BudgetAllocation, JobBudgetRequest
from repro.budget.even_power import EvenPowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.budget.uniform import UniformCapBudgeter
from repro.modeling.quadratic import QuadraticPowerModel
from repro.workloads.nas import NAS_TYPES


def request(job_id, nodes, sensitivity, *, p_max=280.0):
    model = QuadraticPowerModel.from_anchors(2.0, sensitivity, 140.0, p_max)
    return JobBudgetRequest(
        job_id=job_id, nodes=nodes, model=model, p_min=140.0, p_max=p_max
    )


JOBS = [request("low", 2, 1.1), request("mid", 1, 1.4), request("high", 2, 1.9)]
TOTAL_MAX = sum(j.p_max * j.nodes for j in JOBS)
TOTAL_MIN = sum(j.p_min * j.nodes for j in JOBS)


class TestRequestValidation:
    def test_nodes_positive(self):
        with pytest.raises(ValueError, match="≥ 1"):
            request("x", 0, 1.5)

    def test_power_range_ordered(self):
        model = QuadraticPowerModel.from_anchors(2.0, 1.5, 140.0, 280.0)
        with pytest.raises(ValueError, match="p_min < p_max"):
            JobBudgetRequest("x", 1, model, p_min=280.0, p_max=140.0)

    def test_duplicate_ids_rejected(self):
        dup = [request("a", 1, 1.2), request("a", 1, 1.4)]
        with pytest.raises(ValueError, match="duplicate"):
            EvenPowerBudgeter().allocate(dup, 500.0)

    def test_budget_positive(self):
        with pytest.raises(ValueError, match="positive"):
            EvenPowerBudgeter().allocate(JOBS, 0.0)


class TestEvenPower:
    def test_full_budget_gives_max_caps(self):
        alloc = EvenPowerBudgeter().allocate(JOBS, TOTAL_MAX)
        for j in JOBS:
            assert alloc.caps[j.job_id] == pytest.approx(j.p_max)

    def test_starved_budget_gives_min_caps(self):
        alloc = EvenPowerBudgeter().allocate(JOBS, TOTAL_MIN * 0.5)
        for j in JOBS:
            assert alloc.caps[j.job_id] == pytest.approx(j.p_min)

    def test_gamma_uniform_across_jobs(self):
        budget = 0.5 * (TOTAL_MIN + TOTAL_MAX)
        alloc = EvenPowerBudgeter().allocate(JOBS, budget)
        gammas = [
            (alloc.caps[j.job_id] - j.p_min) / (j.p_max - j.p_min) for j in JOBS
        ]
        assert max(gammas) == pytest.approx(min(gammas))

    def test_budget_exactly_consumed_midrange(self):
        budget = 0.6 * TOTAL_MIN + 0.4 * TOTAL_MAX
        alloc = EvenPowerBudgeter().allocate(JOBS, budget)
        assert alloc.total_power(JOBS) == pytest.approx(budget)

    def test_empty_jobs(self):
        alloc = EvenPowerBudgeter().allocate([], 100.0)
        assert alloc.caps == {}

    @given(st.floats(100.0, 3000.0))
    @settings(max_examples=50)
    def test_property_caps_within_ranges(self, budget):
        alloc = EvenPowerBudgeter().allocate(JOBS, budget)
        for j in JOBS:
            assert j.p_min - 1e-9 <= alloc.caps[j.job_id] <= j.p_max + 1e-9


class TestEvenSlowdown:
    def test_equal_predicted_slowdown_midrange(self):
        budget = 0.5 * (TOTAL_MIN + TOTAL_MAX)
        alloc = EvenSlowdownBudgeter().allocate(JOBS, budget)
        slowdowns = [
            j.model.slowdown_at(alloc.caps[j.job_id])
            for j in JOBS
            if j.p_min < alloc.caps[j.job_id] < j.p_max  # not saturated
        ]
        assert len(slowdowns) >= 2
        assert max(slowdowns) - min(slowdowns) < 1e-3

    def test_low_sensitivity_saturates_first(self):
        """§6.1.1: low-sensitivity jobs level off at the minimum cap."""
        budget = TOTAL_MIN * 1.15
        alloc = EvenSlowdownBudgeter().allocate(JOBS, budget)
        assert alloc.caps["low"] == pytest.approx(140.0, abs=1.0)
        assert alloc.caps["high"] > 150.0

    def test_sensitive_job_gets_more_power(self):
        budget = 0.5 * (TOTAL_MIN + TOTAL_MAX)
        alloc = EvenSlowdownBudgeter().allocate(JOBS, budget)
        assert alloc.caps["high"] > alloc.caps["low"]

    def test_full_budget_gives_max_caps(self):
        alloc = EvenSlowdownBudgeter().allocate(JOBS, TOTAL_MAX * 1.1)
        for j in JOBS:
            assert alloc.caps[j.job_id] == pytest.approx(j.p_max)
        assert alloc.meta["slowdown"] == 1.0

    def test_budget_consumed_midrange(self):
        budget = 0.5 * (TOTAL_MIN + TOTAL_MAX)
        alloc = EvenSlowdownBudgeter().allocate(JOBS, budget)
        assert alloc.total_power(JOBS) == pytest.approx(budget, rel=1e-3)

    def test_bt_sp_matches_paper_scenario(self):
        """840 W across BT+SP (2 nodes each) — the Fig. 6 working point."""
        bt, sp = NAS_TYPES["bt"], NAS_TYPES["sp"]
        jobs = [
            JobBudgetRequest("bt", 2, bt.truth, 140.0, bt.p_demand),
            JobBudgetRequest("sp", 2, sp.truth, 140.0, sp.p_demand),
        ]
        alloc = EvenSlowdownBudgeter().allocate(jobs, 840.0)
        assert bt.truth.slowdown_at(alloc.caps["bt"]) == pytest.approx(
            sp.truth.slowdown_at(alloc.caps["sp"]), abs=1e-3
        )
        assert alloc.caps["bt"] > alloc.caps["sp"]

    def test_empty_jobs(self):
        alloc = EvenSlowdownBudgeter().allocate([], 100.0)
        assert alloc.caps == {}

    @given(st.floats(100.0, 3000.0))
    @settings(max_examples=50)
    def test_property_caps_within_ranges(self, budget):
        alloc = EvenSlowdownBudgeter().allocate(JOBS, budget)
        for j in JOBS:
            assert j.p_min - 1e-9 <= alloc.caps[j.job_id] <= j.p_max + 1e-9

    @given(st.floats(TOTAL_MIN * 1.02, TOTAL_MAX * 0.98))
    @settings(max_examples=50)
    def test_property_budget_met_when_feasible(self, budget):
        alloc = EvenSlowdownBudgeter().allocate(JOBS, budget)
        assert alloc.total_power(JOBS) == pytest.approx(budget, rel=5e-3)

    @given(
        st.lists(
            st.tuples(st.integers(1, 8), st.floats(1.0, 2.5)),
            min_size=1,
            max_size=6,
        ),
        st.floats(0.1, 0.9),
    )
    @settings(max_examples=40)
    def test_property_monotone_in_budget(self, specs, frac):
        jobs = [
            request(f"j{i}", nodes, sens) for i, (nodes, sens) in enumerate(specs)
        ]
        lo = sum(j.p_min * j.nodes for j in jobs)
        hi = sum(j.p_max * j.nodes for j in jobs)
        b1 = lo + frac * (hi - lo)
        b2 = min(hi, b1 * 1.1)
        a1 = EvenSlowdownBudgeter().allocate(jobs, b1)
        a2 = EvenSlowdownBudgeter().allocate(jobs, b2)
        for j in jobs:
            assert a2.caps[j.job_id] >= a1.caps[j.job_id] - 1e-6


class TestUniform:
    def test_same_cap_everywhere(self):
        alloc = UniformCapBudgeter().allocate(JOBS, 1000.0)
        caps = set(round(c, 6) for c in alloc.caps.values())
        assert len(caps) == 1

    def test_cap_is_budget_over_nodes(self):
        total_nodes = sum(j.nodes for j in JOBS)
        alloc = UniformCapBudgeter().allocate(JOBS, 200.0 * total_nodes)
        assert alloc.meta["node_cap"] == pytest.approx(200.0)

    def test_clamped_to_job_range(self):
        jobs = [request("a", 1, 1.5, p_max=240.0)]
        alloc = UniformCapBudgeter().allocate(jobs, 1000.0)
        assert alloc.caps["a"] == 240.0

    def test_empty_jobs(self):
        assert UniformCapBudgeter().allocate([], 100.0).caps == {}


class TestBudgetAllocation:
    def test_total_power(self):
        alloc = BudgetAllocation(caps={"a": 100.0}, budget=300.0)
        jobs = [request("a", 3, 1.5)]
        assert alloc.total_power(jobs) == 300.0
