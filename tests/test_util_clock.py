"""Tests for the simulation clock and periodic-task scheduler."""

import pytest

from repro.util.clock import PeriodicTask, SimClock, TaskScheduler


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_advance_default_tick(self):
        clock = SimClock(tick=0.5)
        assert clock.advance() == 0.5
        assert clock.now == 0.5

    def test_advance_explicit(self):
        clock = SimClock(start=10.0)
        assert clock.advance(2.5) == 12.5

    def test_cannot_go_backwards(self):
        with pytest.raises(ValueError, match="backwards"):
            SimClock().advance(-1.0)

    def test_tick_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            SimClock(tick=0.0)


class TestTaskScheduler:
    def test_fires_at_period(self):
        clock = SimClock()
        sched = TaskScheduler(clock)
        fired = []
        sched.add("t", 2.0, lambda now: fired.append(now))
        sched.step(1.0)
        assert fired == []  # first firing is one period after registration
        sched.step(1.0)
        assert fired == [2.0]
        sched.step(2.0)
        assert fired == [2.0, 4.0]

    def test_priority_orders_same_tick_firings(self):
        clock = SimClock()
        sched = TaskScheduler(clock)
        order = []
        sched.add("late", 1.0, lambda now: order.append("late"), priority=5)
        sched.add("early", 1.0, lambda now: order.append("early"), priority=1)
        sched.step(1.0)
        assert order == ["early", "late"]

    def test_multiple_periods_catch_up(self):
        clock = SimClock()
        sched = TaskScheduler(clock)
        fired = []
        sched.add("t", 1.0, lambda now: fired.append(now), phase=1.0)
        sched.step(3.5)  # jumped past several periods
        assert len(fired) == 3  # due at 1, 2, 3

    def test_disabled_task_does_not_fire(self):
        clock = SimClock()
        sched = TaskScheduler(clock)
        fired = []
        task = sched.add("t", 1.0, lambda now: fired.append(now))
        task.enabled = False
        sched.step(5.0)
        assert fired == []

    def test_remove(self):
        clock = SimClock()
        sched = TaskScheduler(clock)
        task = sched.add("t", 1.0, lambda now: None)
        sched.remove(task)
        assert sched.step(2.0) == 0

    def test_non_positive_period_rejected(self):
        sched = TaskScheduler(SimClock())
        with pytest.raises(ValueError, match="positive"):
            sched.add("t", 0.0, lambda now: None)

    def test_task_ordering_dataclass(self):
        a = PeriodicTask(next_fire=1.0, priority=0, name="a")
        b = PeriodicTask(next_fire=1.0, priority=1, name="b")
        c = PeriodicTask(next_fire=0.5, priority=9, name="c")
        assert sorted([b, a, c]) == [c, a, b]
