"""Tests for the simulation clock and periodic-task scheduler."""

import pytest

from repro.util.clock import PeriodicGate, PeriodicTask, SimClock, TaskScheduler


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_advance_default_tick(self):
        clock = SimClock(tick=0.5)
        assert clock.advance() == 0.5
        assert clock.now == 0.5

    def test_advance_explicit(self):
        clock = SimClock(start=10.0)
        assert clock.advance(2.5) == 12.5

    def test_cannot_go_backwards(self):
        with pytest.raises(ValueError, match="backwards"):
            SimClock().advance(-1.0)

    def test_tick_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            SimClock(tick=0.0)


class TestTaskScheduler:
    def test_fires_at_period(self):
        clock = SimClock()
        sched = TaskScheduler(clock)
        fired = []
        sched.add("t", 2.0, lambda now: fired.append(now))
        sched.step(1.0)
        assert fired == []  # first firing is one period after registration
        sched.step(1.0)
        assert fired == [2.0]
        sched.step(2.0)
        assert fired == [2.0, 4.0]

    def test_priority_orders_same_tick_firings(self):
        clock = SimClock()
        sched = TaskScheduler(clock)
        order = []
        sched.add("late", 1.0, lambda now: order.append("late"), priority=5)
        sched.add("early", 1.0, lambda now: order.append("early"), priority=1)
        sched.step(1.0)
        assert order == ["early", "late"]

    def test_multiple_periods_catch_up(self):
        clock = SimClock()
        sched = TaskScheduler(clock)
        fired = []
        sched.add("t", 1.0, lambda now: fired.append(now), phase=1.0)
        sched.step(3.5)  # jumped past several periods
        assert len(fired) == 3  # due at 1, 2, 3

    def test_disabled_task_does_not_fire(self):
        clock = SimClock()
        sched = TaskScheduler(clock)
        fired = []
        task = sched.add("t", 1.0, lambda now: fired.append(now))
        task.enabled = False
        sched.step(5.0)
        assert fired == []

    def test_remove(self):
        clock = SimClock()
        sched = TaskScheduler(clock)
        task = sched.add("t", 1.0, lambda now: None)
        sched.remove(task)
        assert sched.step(2.0) == 0

    def test_non_positive_period_rejected(self):
        sched = TaskScheduler(SimClock())
        with pytest.raises(ValueError, match="positive"):
            sched.add("t", 0.0, lambda now: None)

    def test_task_ordering_dataclass(self):
        a = PeriodicTask(next_fire=1.0, priority=0, name="a")
        b = PeriodicTask(next_fire=1.0, priority=1, name="b")
        c = PeriodicTask(next_fire=0.5, priority=9, name="c")
        assert sorted([b, a, c]) == [c, a, b]


class TestPeriodicGate:
    def test_first_poll_fires_and_anchors(self):
        gate = PeriodicGate(5.0)
        assert gate.due(3.0)
        assert gate.next_due == 8.0
        assert not gate.due(7.0)

    def test_period_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            PeriodicGate(0.0)

    def test_integer_grid_exact_count(self):
        gate = PeriodicGate(5.0)
        fires = sum(gate.due(float(t)) for t in range(1, 1001))
        # Anchored at t=1, due at 1, 6, 11, ..., 996.
        assert fires == 200

    def test_period_not_a_multiple_of_the_poll_interval(self):
        # The defect this gate replaces: ``next = now + period - 1e-9``
        # re-anchored at the actual fire time rounds a 2.5 s period polled
        # every 1 s up to an effective 3 s (33% fewer firings).  The grid
        # anchor keeps the long-run rate exact.
        gate = PeriodicGate(2.5)
        fires = sum(gate.due(float(t)) for t in range(1, 10001))
        assert fires == 4000  # 10000 s horizon / 2.5 s period

    def test_accumulated_float_ticks_do_not_drift(self):
        # ``now`` built by summing 0.1 ticks is inexact; the relative
        # tolerance must absorb that without ever double-firing.
        gate = PeriodicGate(1.0)
        now, fires = 0.0, 0
        for _ in range(20000):  # 2000 s of 0.1 s ticks
            now += 0.1
            fires += gate.due(now)
        assert fires == 2000

    def test_missed_instants_collapse_into_one_firing(self):
        gate = PeriodicGate(1.0)
        assert gate.due(0.0)
        assert gate.due(100.0)  # slept through 99 instants: one late firing
        assert not gate.due(100.5)
        assert gate.due(101.0)  # grid preserved: next instants stay integral

    def test_next_due_before_first_firing(self):
        assert PeriodicGate(2.0).next_due == float("-inf")
