"""Tests for the emulated cluster: allocation, metering, lifecycle."""

import numpy as np
import pytest

from repro.hwsim.cluster import EmulatedCluster
from repro.workloads.nas import NAS_TYPES


class TestAllocation:
    def test_allocates_requested_nodes(self):
        cluster = EmulatedCluster(4, seed=0)
        job = cluster.start_job("j", NAS_TYPES["ft"])  # 2 nodes
        assert len(job.nodes) == 2
        assert len(cluster.idle_nodes()) == 2

    def test_duplicate_job_id_rejected(self):
        cluster = EmulatedCluster(4, seed=0)
        cluster.start_job("j", NAS_TYPES["is"])
        with pytest.raises(ValueError, match="already running"):
            cluster.start_job("j", NAS_TYPES["is"])

    def test_insufficient_nodes_rejected(self):
        cluster = EmulatedCluster(1, seed=0)
        with pytest.raises(RuntimeError, match="not enough idle"):
            cluster.start_job("j", NAS_TYPES["ft"])  # needs 2

    def test_explicit_nodes(self):
        cluster = EmulatedCluster(4, seed=0)
        chosen = [cluster.nodes[3]]
        job = cluster.start_job("j", NAS_TYPES["is"], nodes=chosen)
        assert job.nodes == chosen
        assert cluster.nodes[3].job_id == "j"

    def test_busy_node_cannot_be_reallocated(self):
        cluster = EmulatedCluster(2, seed=0)
        cluster.start_job("a", NAS_TYPES["is"], nodes=[cluster.nodes[0]])
        with pytest.raises(RuntimeError, match="already allocated"):
            cluster.start_job("b", NAS_TYPES["is"], nodes=[cluster.nodes[0]])

    def test_nodes_released_after_completion(self):
        cluster = EmulatedCluster(1, seed=0)
        cluster.start_job("j", NAS_TYPES["is"])
        while cluster.running:
            cluster.clock.advance(1.0)
            cluster.advance(1.0)
        assert len(cluster.idle_nodes()) == 1
        assert cluster.completed[0].job_id == "j"


class TestPowerRange:
    def test_cluster_band_matches_paper(self):
        """16 nodes span 2.24–4.48 kW — Fig. 9's target band."""
        cluster = EmulatedCluster(16, seed=0)
        assert cluster.min_cluster_power == pytest.approx(2240.0)
        assert cluster.max_cluster_power == pytest.approx(4480.0)

    def test_idle_cluster_power(self):
        cluster = EmulatedCluster(4, seed=0)
        cluster.clock.advance(1.0)
        power = cluster.advance(1.0)
        assert power == pytest.approx(4 * 60.0, rel=0.1)

    def test_power_history_accumulates(self):
        cluster = EmulatedCluster(2, seed=0)
        for _ in range(5):
            cluster.clock.advance(1.0)
            cluster.advance(1.0)
        hist = cluster.power_history()
        assert hist.shape == (5, 2)
        assert np.all(np.diff(hist[:, 0]) > 0)

    def test_measured_power_latest_tick(self):
        cluster = EmulatedCluster(2, seed=0)
        cluster.clock.advance(1.0)
        power = cluster.advance(1.0)
        assert cluster.measured_power == power


class TestVariation:
    def test_no_variation_by_default(self):
        cluster = EmulatedCluster(8, seed=0)
        assert all(n.perf_multiplier == 1.0 for n in cluster.nodes)

    def test_variation_draws_differ(self):
        cluster = EmulatedCluster(32, seed=0, perf_variation_std=0.1)
        mults = [n.perf_multiplier for n in cluster.nodes]
        assert np.std(mults) > 0.0
        assert np.mean(mults) == pytest.approx(1.0, abs=0.1)

    def test_variation_reproducible(self):
        a = EmulatedCluster(8, seed=9, perf_variation_std=0.2)
        b = EmulatedCluster(8, seed=9, perf_variation_std=0.2)
        assert [n.perf_multiplier for n in a.nodes] == [
            n.perf_multiplier for n in b.nodes
        ]

    def test_multiplier_floor(self):
        cluster = EmulatedCluster(200, seed=0, perf_variation_std=1.0)
        assert all(n.perf_multiplier >= 0.05 for n in cluster.nodes)


class TestAggregation:
    def test_totals_by_type(self):
        cluster = EmulatedCluster(2, seed=0)
        cluster.start_job("a", NAS_TYPES["is"])
        cluster.start_job("b", NAS_TYPES["is"])
        while cluster.running:
            cluster.clock.advance(1.0)
            cluster.advance(1.0)
        by_type = cluster.totals_by_type()
        assert len(by_type["is"]) == 2

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="≥ 1"):
            EmulatedCluster(0)
