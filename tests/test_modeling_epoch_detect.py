"""Tests for automatic epoch detection (paper §8)."""

import numpy as np
import pytest

from repro.modeling.epoch_detect import AutoEpochCounter, detect_epoch_period


def periodic(period, n, *, dt=1.0, noise=0.0, seed=0):
    t = np.arange(n) * dt
    sig = np.sin(2 * np.pi * t / period)
    if noise:
        sig = sig + np.random.default_rng(seed).normal(0, noise, n)
    return sig


class TestDetectPeriod:
    def test_clean_sinusoid(self):
        assert detect_epoch_period(periodic(8.0, 200), 1.0) == pytest.approx(8.0, abs=1.0)

    def test_noisy_sinusoid(self):
        sig = periodic(12.0, 400, noise=0.3)
        assert detect_epoch_period(sig, 1.0) == pytest.approx(12.0, abs=1.5)

    def test_square_wave(self):
        t = np.arange(300)
        sig = (t % 10 < 5).astype(float)  # period 10
        assert detect_epoch_period(sig, 1.0) == pytest.approx(10.0, abs=1.0)

    def test_dt_scales_period(self):
        sig = periodic(8.0, 200)
        assert detect_epoch_period(sig, 0.5) == pytest.approx(4.0, abs=0.5)

    def test_white_noise_returns_none(self):
        sig = np.random.default_rng(0).normal(size=300)
        assert detect_epoch_period(sig, 1.0, min_strength=0.3) is None

    def test_constant_signal_returns_none(self):
        assert detect_epoch_period(np.ones(100), 1.0) is None

    def test_too_short_returns_none(self):
        assert detect_epoch_period(np.ones(4), 1.0) is None

    def test_period_bounds_respected(self):
        sig = periodic(8.0, 200)
        # Force the search window past the true period.
        result = detect_epoch_period(sig, 1.0, min_period=20.0, max_period=40.0)
        assert result is None or result >= 20.0

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="1-D"):
            detect_epoch_period(np.ones((3, 3)), 1.0)
        with pytest.raises(ValueError, match="positive"):
            detect_epoch_period(np.ones(50), 0.0)


class TestAutoEpochCounter:
    def test_counts_epochs_from_power_signature(self):
        counter = AutoEpochCounter(dt=1.0)
        sig = periodic(7.0, 210, noise=0.1)
        count = 0
        for v in sig:
            count = counter.push(v)
        assert count == pytest.approx(210 / 7.0, abs=4)

    def test_zero_before_lock(self):
        counter = AutoEpochCounter(dt=1.0, min_cycles=4)
        sig = periodic(10.0, 15)
        for v in sig:
            counter.push(v)
        assert counter.epoch_count == 0  # fewer than 4 cycles seen

    def test_aperiodic_never_counts(self):
        counter = AutoEpochCounter(dt=1.0, min_strength=0.35)
        rng = np.random.default_rng(1)
        for _ in range(300):
            counter.push(float(rng.normal()))
        assert counter.epoch_count == 0

    def test_count_monotone(self):
        counter = AutoEpochCounter(dt=1.0)
        counts = [counter.push(v) for v in periodic(6.0, 180)]
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="positive"):
            AutoEpochCounter(dt=0.0)
        with pytest.raises(ValueError, match="≥ 2"):
            AutoEpochCounter(dt=1.0, min_cycles=1)
