"""Cap-compliance auditor: evidence windows, trust state machine, envelope.

Unit tests drive :class:`~repro.core.audit.CapComplianceAuditor` directly
with a synthetic metering plane (no simulator), so every edge of the state
machine is pinned without multi-second runs; a small integration test then
checks the manager wiring end-to-end against a real stuck actuator.
"""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.audit import (
    QUARANTINED,
    REHABILITATING,
    SUSPECT,
    TRUST_STATES,
    TRUSTED,
    CapComplianceAuditor,
)
from repro.faults.events import ByzantineModel, MeterDrift, StuckActuator
from repro.faults.schedule import FaultSchedule

P_MIN, P_MAX = 140.0, 280.0


class FakeMeter:
    """Cumulative per-job energy counter the tests control directly."""

    def __init__(self, nodes=(0, 1)):
        self.energy = 0.0
        self.nodes = tuple(nodes)
        self.power = 0.0  # W over all the job's nodes
        self.offline = False

    def advance(self, dt):
        self.energy += self.power * dt

    def __call__(self, job_id):
        if self.offline:
            return None
        return self.energy, self.nodes


def make_auditor(meter, **overrides):
    kwargs = dict(
        job_meter=meter,
        p_node_min=P_MIN,
        p_node_max=P_MAX,
        window=4.0,
        suspect_rounds=2,
        quarantine_rounds=3,
        clear_rounds=3,
    )
    kwargs.update(overrides)
    return CapComplianceAuditor(**kwargs)


def make_record(job_id="j0", nodes=2, last_cap=150.0, **extra):
    return SimpleNamespace(
        job_id=job_id,
        nodes=nodes,
        last_cap=last_cap,
        last_status=None,
        online_model=None,
        believed_p_max=P_MAX,
        **extra,
    )


def make_status(now, epochs, cap, power):
    return SimpleNamespace(
        timestamp=now, epoch_count=epochs, applied_cap=cap,
        measured_power=power,
    )


def drive(auditor, meter, record, rounds, *, start=0.0, dt=1.0, status=None):
    """Advance ``rounds`` control rounds; returns the final time."""
    now = start
    for _ in range(rounds):
        now += dt
        meter.advance(dt)
        if status is not None:
            record.last_status = status(now)
        auditor.audit_round(now, {record.job_id: record})
    return now


class TestKnobValidation:
    @pytest.mark.parametrize(
        "knob, value",
        [
            ("window", 0.0),
            ("tolerance", -0.1),
            ("guardband", -1.0),
            ("mismatch_tolerance", 0.0),
            ("model_error", -0.5),
            ("min_epochs", 0),
            ("suspect_rounds", 0),
            ("quarantine_rounds", 0),
            ("clear_rounds", 0),
            ("probe_margin", 0.0),
            ("probe_margin", 1.0),
        ],
    )
    def test_bad_knob_names_field(self, knob, value):
        with pytest.raises(ValueError, match=knob):
            make_auditor(FakeMeter(), **{knob: value})

    def test_force_state_rejects_unknown(self):
        auditor = make_auditor(FakeMeter())
        with pytest.raises(ValueError, match="unknown trust state"):
            auditor.force_state("j0", "parole")


class TestStateMachine:
    def test_compliant_job_stays_trusted(self):
        meter, record = FakeMeter(), make_record(last_cap=150.0)
        meter.power = 150.0 * 2  # exactly at cap
        auditor = make_auditor(meter)
        drive(auditor, meter, record, 20)
        assert auditor.state("j0") == TRUSTED
        assert auditor.transitions == []
        assert auditor.violations_total == 0

    def test_warmup_window_tolerates_cold_start(self):
        """No verdicts before a full evidence window, however bad the draw."""
        meter, record = FakeMeter(), make_record(last_cap=150.0)
        meter.power = P_MAX * 2  # flagrant overdraw from the first second
        auditor = make_auditor(meter, window=10.0)
        drive(auditor, meter, record, 9)
        assert auditor.state("j0") == TRUSTED
        assert auditor.violations_total == 0

    def test_overdraw_escalates_to_quarantine(self):
        meter, record = FakeMeter(), make_record(last_cap=150.0)
        meter.power = P_MAX * 2  # wedged-open actuator
        auditor = make_auditor(meter)
        drive(auditor, meter, record, 12)
        assert auditor.state("j0") == QUARANTINED
        states = [(t.old, t.new) for t in auditor.transitions]
        assert states == [(TRUSTED, SUSPECT), (SUSPECT, QUARANTINED)]
        assert all(t.reason == "cap-overdraw" for t in auditor.transitions)
        assert auditor.quarantines_total == 1

    def test_setup_phase_underdraw_never_violates(self):
        """Idle-level draw far below the cap is setup/teardown, not fraud."""
        meter, record = FakeMeter(), make_record(last_cap=250.0)
        meter.power = 60.0  # idle draw, both nodes together
        auditor = make_auditor(meter)
        drive(auditor, meter, record, 20)
        assert auditor.state("j0") == TRUSTED
        assert auditor.violations_total == 0

    def test_transient_spike_clears_back_to_trusted(self):
        """A short excursion reaches suspect but never quarantine."""
        meter, record = FakeMeter(), make_record(last_cap=150.0)
        meter.power = 150.0 * 2
        auditor = make_auditor(meter, suspect_rounds=5)
        drive(auditor, meter, record, 8)
        meter.power = P_MAX * 2
        now = drive(auditor, meter, record, 2, start=8.0)
        meter.power = 150.0 * 2
        drive(auditor, meter, record, 15, start=now)
        assert auditor.state("j0") == TRUSTED
        kinds = [(t.old, t.new) for t in auditor.transitions]
        assert kinds == [(TRUSTED, SUSPECT), (SUSPECT, TRUSTED)]

    def test_lowered_cap_is_not_retroactive(self):
        """Draw legal under the old cap must not convict after a cut."""
        meter, record = FakeMeter(), make_record(last_cap=250.0)
        meter.power = 250.0 * 2
        auditor = make_auditor(meter)
        now = drive(auditor, meter, record, 10)
        # The manager cuts the cap; the job follows within one round.
        record.last_cap = 150.0
        meter.power = 150.0 * 2
        drive(auditor, meter, record, 10, start=now)
        assert auditor.state("j0") == TRUSTED
        assert auditor.violations_total == 0

    def test_compliant_probe_rehabilitates(self):
        meter, record = FakeMeter(), make_record(last_cap=150.0)
        meter.power = P_MAX * 2
        auditor = make_auditor(meter)
        now = drive(auditor, meter, record, 12)
        assert auditor.state("j0") == QUARANTINED
        # The actuator heals: it now follows the probe ratchet down.
        _, probe = auditor.envelope(record)
        record.last_cap = probe
        meter.power = probe * 2 * 0.95
        drive(auditor, meter, record, 12, start=now)
        assert auditor.state("j0") == TRUSTED
        states = [t.new for t in auditor.transitions]
        assert states == [SUSPECT, QUARANTINED, REHABILITATING, TRUSTED]

    def test_stuck_actuator_never_rehabilitates(self):
        meter, record = FakeMeter(), make_record(last_cap=150.0)
        meter.power = P_MAX * 2
        auditor = make_auditor(meter)
        now = drive(auditor, meter, record, 12)
        _, probe = auditor.envelope(record)
        record.last_cap = probe  # probe dispatched, but the draw never moves
        drive(auditor, meter, record, 30, start=now)
        assert auditor.state("j0") == QUARANTINED
        assert auditor.transitions[-1].new == QUARANTINED

    def test_relapse_during_rehabilitation_requarantines(self):
        meter, record = FakeMeter(), make_record(last_cap=150.0)
        meter.power = P_MAX * 2
        auditor = make_auditor(meter)
        now = drive(auditor, meter, record, 12)
        _, probe = auditor.envelope(record)
        record.last_cap = probe
        meter.power = probe * 2 * 0.95
        # Exactly enough compliant rounds to reach rehabilitating…
        while auditor.state("j0") != REHABILITATING:
            now = drive(auditor, meter, record, 1, start=now)
        # …then the actuator wedges open again.
        meter.power = P_MAX * 2
        drive(auditor, meter, record, 8, start=now)
        assert auditor.state("j0") == QUARANTINED

    def test_completed_job_is_forgotten(self):
        meter, record = FakeMeter(), make_record(last_cap=150.0)
        meter.power = P_MAX * 2
        auditor = make_auditor(meter)
        drive(auditor, meter, record, 12)
        assert auditor.state("j0") == QUARANTINED
        auditor.audit_round(13.0, {})  # job left the cluster
        assert auditor.state("j0") == TRUSTED  # unknown ⇒ trusted

    def test_requeue_onto_new_nodes_resets_evidence(self):
        meter, record = FakeMeter(), make_record(last_cap=150.0)
        meter.power = P_MAX * 2
        auditor = make_auditor(meter)
        drive(auditor, meter, record, 3)
        meter.nodes = (2, 3)  # requeued elsewhere: counters incomparable
        meter.energy = 0.0
        drive(auditor, meter, record, 3, start=3.0)
        assert auditor.violations_total == 0  # both windows still cold

    def test_meter_gap_resets_evidence(self):
        meter, record = FakeMeter(), make_record(last_cap=150.0)
        meter.power = P_MAX * 2
        auditor = make_auditor(meter)
        drive(auditor, meter, record, 3)
        meter.offline = True
        drive(auditor, meter, record, 2, start=3.0)
        meter.offline = False
        drive(auditor, meter, record, 3, start=5.0)
        assert auditor.violations_total == 0


class TestMeterCrossCheck:
    def test_underreporting_meter_is_caught(self):
        meter, record = FakeMeter(), make_record(last_cap=160.0)
        meter.power = 160.0 * 2  # true draw: at cap, demonstrably active
        auditor = make_auditor(meter)
        drive(
            auditor, meter, record, 12,
            status=lambda now: make_status(now, 0, 160.0, 100.0),  # claims 100W
        )
        assert auditor.state("j0") != TRUSTED
        assert any("meter-mismatch" in t.reason for t in auditor.transitions)

    def test_no_meter_check_at_idle_draw(self):
        """Relative comparison at setup/teardown draw is meaningless."""
        meter, record = FakeMeter(), make_record(last_cap=160.0)
        meter.power = 80.0  # idle-ish: below p_node_min per node
        auditor = make_auditor(meter)
        drive(
            auditor, meter, record, 12,
            status=lambda now: make_status(now, 0, 160.0, 5.0),
        )
        assert auditor.state("j0") == TRUSTED


class TestModelPlausibility:
    def _status_factory(self, cap, tpe):
        def factory(now):
            return make_status(now, int(now / tpe), cap, cap * 2)
        return factory

    def test_fabricated_fast_model_is_caught(self):
        """A model claiming half the observed time loses everywhere."""
        meter, record = FakeMeter(), make_record(last_cap=160.0)
        meter.power = 160.0 * 2
        record.online_model = SimpleNamespace(time_per_epoch=lambda p: 0.5)
        auditor = make_auditor(meter)
        drive(auditor, meter, record, 15,
              status=self._status_factory(160.0, 1.0))
        assert any(
            "model-implausible" in t.reason for t in auditor.transitions)

    def test_stale_but_honest_model_keeps_its_alibi(self):
        """Accurate in a visited regime ⇒ regime veto blocks conviction.

        The fit was trained (and is accurate) at 250 W; the job is then
        squeezed to 150 W where the same fit is ~50 % off in absolute
        seconds/epoch — the shape of an honest stale model, not a lie.
        """
        meter, record = FakeMeter(), make_record(last_cap=250.0)
        meter.power = 250.0 * 2
        record.online_model = SimpleNamespace(time_per_epoch=lambda p: 1.0)
        auditor = make_auditor(meter)
        now = drive(auditor, meter, record, 10,
                    status=self._status_factory(250.0, 1.0))
        record.last_cap = 150.0
        meter.power = 150.0 * 2
        # Observed tpe doubles at the lower cap; the model still says 1.0.
        def squeezed(t):
            return make_status(t, int(now / 1.0 + (t - now) / 2.0),
                               150.0, 300.0)
        drive(auditor, meter, record, 15, start=now, status=squeezed)
        assert not any(
            "model-implausible" in t.reason for t in auditor.transitions)

    def test_no_conviction_without_progress_evidence(self):
        """min_epochs gates the replay: too few epochs ⇒ no verdict."""
        meter, record = FakeMeter(), make_record(last_cap=160.0)
        meter.power = 160.0 * 2
        record.online_model = SimpleNamespace(time_per_epoch=lambda p: 0.01)
        auditor = make_auditor(meter, min_epochs=50)
        drive(auditor, meter, record, 15,
              status=self._status_factory(160.0, 1.0))
        assert not any(
            "model-implausible" in t.reason for t in auditor.transitions)


class TestEnvelope:
    def test_envelope_uses_metered_draw_plus_guardband(self):
        meter, record = FakeMeter(), make_record(last_cap=150.0)
        meter.power = 400.0
        auditor = make_auditor(meter, guardband=20.0)
        drive(auditor, meter, record, 10)
        reserved, cap = auditor.envelope(record)
        assert reserved == pytest.approx(400.0 + 20.0 * 2, rel=0.05)
        assert cap == pytest.approx(200.0 * 0.85, rel=0.05)  # probe shave

    def test_envelope_probe_clamps_to_platform_floor(self):
        meter, record = FakeMeter(), make_record(last_cap=P_MIN)
        meter.power = P_MIN * 2 * 0.9
        auditor = make_auditor(meter)
        drive(auditor, meter, record, 10)
        _, cap = auditor.envelope(record)
        assert cap == P_MIN  # never probes below the platform minimum

    def test_envelope_without_evidence_falls_back_to_last_cap(self):
        auditor = make_auditor(FakeMeter())
        record = make_record(last_cap=200.0)
        reserved, _ = auditor.envelope(record)
        assert reserved == pytest.approx(200.0 * 2 + 20.0 * 2)


class TestRogueFaultVocabulary:
    def test_byzantine_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            ByzantineModel(time=10.0, mode="sneaky")

    def test_rogue_durations_validated(self):
        for event in (ByzantineModel, StuckActuator, MeterDrift):
            with pytest.raises(ValueError, match="duration"):
                event(time=10.0, duration=0.0)

    def test_meter_drift_rates_validated(self):
        with pytest.raises(ValueError, match="factor_rate"):
            MeterDrift(time=10.0, factor_rate=math.nan)
        with pytest.raises(ValueError, match="offset_rate"):
            MeterDrift(time=10.0, offset_rate=math.inf)

    def test_random_schedule_rogue_knobs_validated(self):
        for knob in ("byzantine_rate", "stuck_actuator_rate",
                     "meter_drift_rate"):
            with pytest.raises(ValueError, match=knob):
                FaultSchedule.random(100.0, seed=0, **{knob: -0.1})
        with pytest.raises(ValueError, match="rogue_duration"):
            FaultSchedule.random(
                100.0, seed=0, byzantine_rate=0.1, rogue_duration=0.0)
        with pytest.raises(ValueError, match="drift_ramp"):
            FaultSchedule.random(
                100.0, seed=0, meter_drift_rate=0.1, drift_ramp=-1.0)

    def test_random_schedule_draws_rogue_events(self):
        sched = FaultSchedule.random(
            2000.0, seed=5, byzantine_rate=1 / 200.0,
            stuck_actuator_rate=1 / 200.0, meter_drift_rate=1 / 200.0,
            rogue_duration=90.0,
        )
        byz = sched.events_of(ByzantineModel)
        stuck = sched.events_of(StuckActuator)
        drift = sched.events_of(MeterDrift)
        assert byz and stuck and drift
        assert all(e.duration == 90.0 for e in byz + stuck + drift)
        # The same seed must redraw the same schedule (replayability).
        again = FaultSchedule.random(
            2000.0, seed=5, byzantine_rate=1 / 200.0,
            stuck_actuator_rate=1 / 200.0, meter_drift_rate=1 / 200.0,
            rogue_duration=90.0,
        )
        assert again == sched


class TestManagerIntegration:
    def _run(self, *, audit_enabled, fault_schedule=None, seed=0):
        from repro.budget.even_slowdown import EvenSlowdownBudgeter
        from repro.core.framework import (
            AnorConfig, AnorSystem, precharacterized_models)
        from repro.core.targets import ConstantTarget
        from repro.modeling.classifier import JobClassifier

        system = AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(4 * 170.0),
            classifier=JobClassifier(precharacterized_models()),
            config=AnorConfig(
                num_nodes=4, seed=seed, feedback_enabled=True,
                audit_enabled=audit_enabled,
            ),
            fault_schedule=fault_schedule,
        )
        system.submit_now("bt-0", "bt")
        system.submit_now("sp-1", "sp")
        result = system.run(until_idle=True, max_time=7200.0)
        return system, result

    def test_stuck_actuator_is_quarantined_and_contained(self):
        schedule = FaultSchedule([StuckActuator(time=60.0)])
        system, result = self._run(
            audit_enabled=True, fault_schedule=schedule)
        auditor = system.manager.auditor
        quarantines = [
            t for t in auditor.transitions if t.new == QUARANTINED]
        assert quarantines, "the wedged actuator was never quarantined"
        assert quarantines[0].time <= 60.0 + 60.0  # bounded detection
        assert len(result.completed) == 2  # quarantine ≠ starvation
        round_ = system.manager.last_round
        assert round_ is not None  # manager ran; accounting field exists
        assert hasattr(round_, "quarantined_jobs")

    def test_clean_run_never_quarantines(self):
        system, result = self._run(audit_enabled=True)
        assert system.manager.auditor.transitions == []
        assert len(result.completed) == 2

    def test_audit_off_builds_no_auditor(self):
        system, _ = self._run(audit_enabled=False)
        assert system.manager.auditor is None


class TestBitIdentity:
    def _trace(self, *, audit_enabled, event_driven, fault_schedule=None):
        from repro.budget.even_slowdown import EvenSlowdownBudgeter
        from repro.core.framework import (
            AnorConfig, AnorSystem, precharacterized_models)
        from repro.core.targets import ConstantTarget
        from repro.modeling.classifier import JobClassifier

        system = AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(4 * 170.0),
            classifier=JobClassifier(precharacterized_models()),
            config=AnorConfig(
                num_nodes=4, seed=7, feedback_enabled=True,
                audit_enabled=audit_enabled, event_driven=event_driven,
            ),
            fault_schedule=fault_schedule,
        )
        system.submit_now("bt-0", "bt")
        system.submit_now("cg-1", "cg")
        return system.run(until_idle=True, max_time=7200.0).power_trace

    def test_observing_auditor_leaves_clean_runs_bit_identical(self):
        """With nothing to quarantine the auditor must be a pure observer."""
        off = self._trace(audit_enabled=False, event_driven=True)
        on = self._trace(audit_enabled=True, event_driven=True)
        assert np.array_equal(off, on)

    def test_tick_and_event_modes_agree_with_audit_on_under_attack(self):
        schedule = FaultSchedule([StuckActuator(time=60.0)])
        tick = self._trace(
            audit_enabled=True, event_driven=False, fault_schedule=schedule)
        event = self._trace(
            audit_enabled=True, event_driven=True, fault_schedule=schedule)
        assert np.array_equal(tick, event)
