"""Tests for total-node power modeling (paper §7.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hwsim.platform_power import ClusterPowerModel, NodePowerModel


class TestNodePowerModel:
    def test_static_floor(self):
        model = NodePowerModel(static=90.0)
        assert model.wall_power(0.0) == 90.0

    def test_wall_exceeds_cpu_plus_static(self):
        model = NodePowerModel(static=90.0, fan_coeff=0.08)
        assert model.wall_power(280.0) > 90.0 + 280.0

    def test_fan_term_at_reference(self):
        model = NodePowerModel(static=0.0, fan_coeff=0.08, cpu_ref=280.0)
        assert model.wall_power(280.0) == pytest.approx(280.0 * 1.08)

    def test_vectorized(self):
        model = NodePowerModel()
        wall = model.wall_power(np.array([0.0, 140.0, 280.0]))
        assert wall.shape == (3,)
        assert np.all(np.diff(wall) > 0)

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            NodePowerModel().wall_power(-1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="≥ 0"):
            NodePowerModel(static=-1.0)
        with pytest.raises(ValueError, match="positive"):
            NodePowerModel(cpu_ref=0.0)

    @given(st.floats(0.0, 500.0))
    @settings(max_examples=60)
    def test_property_inverse_roundtrip(self, cpu):
        model = NodePowerModel()
        wall = float(model.wall_power(cpu))
        assert model.cpu_power_for_wall(wall) == pytest.approx(cpu, abs=1e-3)

    def test_wall_below_static_rejected(self):
        model = NodePowerModel(static=90.0)
        with pytest.raises(ValueError, match="below static"):
            model.cpu_power_for_wall(50.0)


class TestClusterPowerModel:
    def test_wall_scales_with_nodes(self):
        cluster = ClusterPowerModel(NodePowerModel(), num_nodes=16)
        one = ClusterPowerModel(NodePowerModel(), num_nodes=1)
        assert cluster.wall_power(16 * 200.0) == pytest.approx(
            16 * one.wall_power(200.0)
        )

    def test_cpu_budget_roundtrip(self):
        cluster = ClusterPowerModel(NodePowerModel(), num_nodes=16)
        cpu_total = 16 * 210.0
        wall = cluster.wall_power(cpu_total)
        assert cluster.cpu_budget_for_wall(wall) == pytest.approx(cpu_total, rel=1e-4)

    def test_static_wall_power(self):
        cluster = ClusterPowerModel(NodePowerModel(static=90.0), num_nodes=10)
        assert cluster.static_wall_power == 900.0

    def test_paper_scale_sanity(self):
        """16 nodes at full CPU: wall ≈ 4.48 kW CPU + 1.44 kW static + fans."""
        cluster = ClusterPowerModel(NodePowerModel(), num_nodes=16)
        wall = cluster.wall_power(16 * 280.0)
        assert 5800.0 < wall < 6400.0

    def test_invalid_nodes(self):
        with pytest.raises(ValueError, match="≥ 1"):
            ClusterPowerModel(NodePowerModel(), num_nodes=0)
