"""Tests for power-target sources (paper §4.4.1)."""

import pytest

from repro.aqa.regulation import SinusoidSignal, TabulatedSignal
from repro.core.targets import ConstantTarget, RegulationTarget, SteppedTarget


class TestConstant:
    def test_constant(self):
        t = ConstantTarget(840.0)
        assert t.target(0.0) == 840.0
        assert t(1e6) == 840.0

    def test_positive_required(self):
        with pytest.raises(ValueError, match="positive"):
            ConstantTarget(0.0)


class TestStepped:
    def test_holds_between_breakpoints(self):
        t = SteppedTarget([0.0, 10.0, 20.0], [100.0, 200.0, 300.0])
        assert t.target(5.0) == 100.0
        assert t.target(10.0) == 200.0
        assert t.target(15.0) == 200.0

    def test_before_first_and_after_last(self):
        t = SteppedTarget([10.0, 20.0], [100.0, 200.0])
        assert t.target(0.0) == 100.0
        assert t.target(99.0) == 200.0

    def test_times_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            SteppedTarget([0.0, 0.0], [1.0, 2.0])

    def test_positive_targets_required(self):
        with pytest.raises(ValueError, match="positive"):
            SteppedTarget([0.0], [0.0])

    def test_shapes_must_match(self):
        with pytest.raises(ValueError, match="matching"):
            SteppedTarget([0.0, 1.0], [1.0])


class TestRegulation:
    def test_target_formula(self):
        signal = TabulatedSignal([0.0], [0.5])
        t = RegulationTarget(1000.0, 200.0, signal, update_period=4.0)
        assert t.target(0.0) == pytest.approx(1100.0)  # P̄ + R·y

    def test_holds_within_update_period(self):
        signal = SinusoidSignal(period=100.0)
        t = RegulationTarget(1000.0, 200.0, signal, update_period=4.0)
        assert t.target(4.0) == t.target(7.9)
        assert t.target(8.0) != t.target(7.9)

    def test_range_bounded_by_reserve(self):
        signal = SinusoidSignal(period=40.0)
        t = RegulationTarget(1000.0, 200.0, signal, update_period=4.0)
        values = [t.target(float(s)) for s in range(0, 200)]
        assert min(values) >= 800.0 - 1e-9
        assert max(values) <= 1200.0 + 1e-9

    def test_out_of_range_signal_rejected(self):
        t = RegulationTarget(1000.0, 200.0, lambda now: 1.5, update_period=4.0)
        with pytest.raises(ValueError, match="out of range"):
            t.target(0.0)

    def test_reserve_below_average_required(self):
        with pytest.raises(ValueError, match="reach zero"):
            RegulationTarget(100.0, 100.0, lambda now: 0.0)

    def test_negative_reserve_rejected(self):
        with pytest.raises(ValueError, match="≥ 0"):
            RegulationTarget(100.0, -1.0, lambda now: 0.0)


class TestSteppedWindow:
    def test_window_returns_breakpoints_in_range(self):
        t = SteppedTarget([0.0, 10.0, 20.0, 30.0], [100.0, 200.0, 300.0, 400.0])
        assert t.window(5.0, 20.0) == ((10.0, 200.0), (20.0, 300.0))

    def test_window_excludes_now_includes_endpoint(self):
        # The planner already knows the value *at* now; the window is the
        # strictly-future view (now, now + horizon].
        t = SteppedTarget([0.0, 10.0, 20.0], [100.0, 200.0, 300.0])
        assert t.window(10.0, 10.0) == ((20.0, 300.0),)

    def test_window_empty_when_no_breakpoints_ahead(self):
        t = SteppedTarget([0.0, 10.0], [100.0, 200.0])
        assert t.window(50.0, 100.0) == ()

    def test_window_zero_horizon(self):
        t = SteppedTarget([0.0, 10.0], [100.0, 200.0])
        assert t.window(0.0, 0.0) == ()

    def test_negative_horizon_rejected(self):
        t = SteppedTarget([0.0], [100.0])
        with pytest.raises(ValueError, match="≥ 0"):
            t.window(0.0, -1.0)


class TestMutableWindow:
    def test_window_always_empty(self):
        from repro.facility.coordinator import MutableTarget

        t = MutableTarget(500.0)
        t.set(600.0)
        assert t.window(0.0, 1e6) == ()

    def test_negative_horizon_rejected(self):
        from repro.facility.coordinator import MutableTarget

        with pytest.raises(ValueError, match="≥ 0"):
            MutableTarget(500.0).window(0.0, -1.0)
