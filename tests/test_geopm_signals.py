"""Tests for the PlatformIO signal/control layer."""

import pytest

from repro.geopm.msr import MsrBank
from repro.geopm.profiler import EpochProfiler
from repro.geopm.signals import ControlNames, PlatformIO, SignalNames


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def node():
    clock = FakeClock()
    banks = [MsrBank(), MsrBank()]
    pio = PlatformIO(banks, clock_fn=clock)
    return clock, banks, pio


class TestSignals:
    def test_time_signal(self, node):
        clock, _, pio = node
        clock.now = 42.0
        assert pio.read_signal(SignalNames.TIME) == 42.0

    def test_energy_sums_packages(self, node):
        _, banks, pio = node
        banks[0].accumulate_energy(10.0)
        banks[1].accumulate_energy(5.0)
        assert pio.read_signal(SignalNames.CPU_ENERGY) == pytest.approx(15.0, rel=1e-4)

    def test_energy_survives_counter_wrap(self, node):
        _, banks, pio = node
        pio.read_signal(SignalNames.CPU_ENERGY)  # baseline
        wrap = (1 << 32) / (1 << 16)  # joules per wraparound
        banks[0].accumulate_energy(wrap / 2)
        pio.read_signal(SignalNames.CPU_ENERGY)  # intermediate read
        banks[0].accumulate_energy(wrap / 2 + 7.0)
        assert pio.read_signal(SignalNames.CPU_ENERGY) == pytest.approx(
            wrap + 7.0, rel=1e-3
        )

    def test_power_is_energy_over_time(self, node):
        clock, banks, pio = node
        pio.read_signal(SignalNames.CPU_POWER)  # establish baseline at t=0
        banks[0].accumulate_energy(100.0)
        banks[1].accumulate_energy(100.0)
        clock.now = 2.0
        assert pio.read_signal(SignalNames.CPU_POWER) == pytest.approx(100.0, rel=1e-3)

    def test_power_first_read_is_zero(self, node):
        _, _, pio = node
        assert pio.read_signal(SignalNames.CPU_POWER) == 0.0

    def test_power_same_instant_returns_last(self, node):
        clock, banks, pio = node
        pio.read_signal(SignalNames.CPU_POWER)
        banks[0].accumulate_energy(50.0)
        clock.now = 1.0
        first = pio.read_signal(SignalNames.CPU_POWER)
        again = pio.read_signal(SignalNames.CPU_POWER)  # dt == 0
        assert again == first

    def test_epoch_count_requires_profiler(self, node):
        _, _, pio = node
        with pytest.raises(KeyError, match="no profiler"):
            pio.read_signal(SignalNames.EPOCH_COUNT)

    def test_epoch_count_with_profiler(self, node):
        _, _, pio = node
        profiler = EpochProfiler(num_ranks=1)
        profiler.prof_epoch(0)
        pio.attach_profiler(profiler)
        assert pio.read_signal(SignalNames.EPOCH_COUNT) == 1.0
        pio.detach_profiler()
        with pytest.raises(KeyError):
            pio.read_signal(SignalNames.EPOCH_COUNT)

    def test_unknown_signal(self, node):
        _, _, pio = node
        with pytest.raises(KeyError, match="unknown signal"):
            pio.read_signal("BOGUS")


class TestControls:
    def test_power_limit_split_across_packages(self, node):
        _, banks, pio = node
        pio.write_control(ControlNames.CPU_POWER_LIMIT_CONTROL, 200.0)
        assert banks[0].power_limit_watts == 100.0
        assert banks[1].power_limit_watts == 100.0

    def test_read_control_sums_packages(self, node):
        _, _, pio = node
        pio.write_control(ControlNames.CPU_POWER_LIMIT_CONTROL, 220.0)
        assert pio.read_control(ControlNames.CPU_POWER_LIMIT_CONTROL) == pytest.approx(
            220.0, abs=0.25
        )

    def test_unknown_control(self, node):
        _, _, pio = node
        with pytest.raises(KeyError, match="unknown control"):
            pio.write_control("BOGUS", 1.0)
        with pytest.raises(KeyError, match="unknown control"):
            pio.read_control("BOGUS")

    def test_needs_at_least_one_package(self):
        with pytest.raises(ValueError, match="at least one"):
            PlatformIO([], clock_fn=lambda: 0.0)

    def test_num_packages(self, node):
        _, _, pio = node
        assert pio.num_packages == 2
