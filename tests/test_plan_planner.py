"""Tests for the safety envelope and the receding-horizon planner."""

import numpy as np
import pytest

from repro.budget.base import JobBudgetRequest
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig
from repro.core.targets import SteppedTarget
from repro.experiments.fig9 import build_demand_response_system
from repro.modeling.quadratic import QuadraticPowerModel
from repro.plan.envelope import (
    PLAN_ACTIVE,
    PLAN_FALLBACK,
    PLAN_SHADOW,
    SafetyEnvelope,
)
from repro.plan.forecast import PersistenceForecaster, ScheduleForecaster
from repro.plan.planner import RecedingHorizonPlanner


def request(job_id, nodes=1, sensitivity=1.5):
    model = QuadraticPowerModel.from_anchors(2.0, sensitivity, 140.0, 280.0)
    return JobBudgetRequest(
        job_id=job_id, nodes=nodes, model=model, p_min=140.0, p_max=280.0
    )


JOBS = [request("a", 2), request("b", 1, 1.2)]


class TestEnvelope:
    def test_starts_shadow_by_default(self):
        env = SafetyEnvelope(error_bound_watts=100.0, promote_rounds=4)
        assert env.state == PLAN_SHADOW

    def test_zero_promote_rounds_starts_active(self):
        env = SafetyEnvelope(error_bound_watts=100.0, promote_rounds=0)
        assert env.state == PLAN_ACTIVE

    def test_promotion_needs_consecutive_ok_rounds(self):
        env = SafetyEnvelope(error_bound_watts=100.0, promote_rounds=3)
        assert env.update(0.0, 50.0, 1) == PLAN_SHADOW
        assert env.update(4.0, 50.0, 2) == PLAN_SHADOW
        assert env.update(8.0, 50.0, 3) == PLAN_ACTIVE

    def test_bad_round_resets_promotion_streak(self):
        env = SafetyEnvelope(error_bound_watts=100.0, promote_rounds=2)
        env.update(0.0, 50.0, 1)
        env.update(4.0, 500.0, 2)  # streak broken
        assert env.update(8.0, 50.0, 3) == PLAN_SHADOW
        assert env.update(12.0, 50.0, 4) == PLAN_ACTIVE

    def test_trip_requires_min_samples(self):
        env = SafetyEnvelope(
            error_bound_watts=100.0, promote_rounds=0, min_trip_samples=4
        )
        # over bound but too few scored samples: stays active
        assert env.update(0.0, 500.0, 2) == PLAN_ACTIVE
        assert env.update(4.0, 500.0, 4) == PLAN_FALLBACK
        assert env.fallbacks == 1
        assert env.first_fallback_time() == 4.0

    def test_fallback_recovery(self):
        env = SafetyEnvelope(error_bound_watts=100.0, promote_rounds=2)
        env.state = PLAN_FALLBACK
        env.update(0.0, 50.0, 8)
        assert env.state == PLAN_FALLBACK
        env.update(4.0, 50.0, 8)
        assert env.state == PLAN_SHADOW  # re-earns trust through shadow

    def test_bound_is_min(self):
        assert SafetyEnvelope.bound(3000.0, 2800.0) == 2800.0
        assert SafetyEnvelope.bound(2500.0, 2800.0) == 2500.0

    def test_transitions_recorded(self):
        env = SafetyEnvelope(error_bound_watts=100.0, promote_rounds=1)
        env.update(0.0, 50.0, 1)
        assert env.transitions == [(0.0, PLAN_SHADOW, PLAN_ACTIVE)]
        assert env.first_active_time() == 0.0


def make_planner(forecaster=None, **kwargs):
    f = forecaster or PersistenceForecaster()
    defaults = dict(
        budgeter=EvenSlowdownBudgeter(),
        forecaster=f,
        envelope=SafetyEnvelope(error_bound_watts=100.0, promote_rounds=0),
        horizon_rounds=4,
        period=4.0,
        hysteresis_watts=8.0,
        # unit tests inspect the solved trajectory right after rebuild
        eager_rounds=8,
    )
    defaults.update(kwargs)
    return RecedingHorizonPlanner(**defaults)


class TestPlannerRebuild:
    def test_plan_covers_horizon(self):
        p = make_planner()
        p.observe(0.0, 3000.0)
        plan = p.rebuild(
            0.0, JOBS, observed_target=3000.0, idle_power=100.0,
            reserved=0.0, correction=0.0,
        )
        assert [r.time for r in plan.rounds] == [0.0, 4.0, 8.0, 12.0, 16.0]
        assert p.plans_built == 1

    def test_schedule_breakpoints_join_the_grid(self):
        stepped = SteppedTarget([0.0, 6.0], [3000.0, 2500.0])
        p = make_planner(ScheduleForecaster(stepped))
        p.observe(0.0, 3000.0)
        plan = p.rebuild(
            0.0, JOBS, observed_target=3000.0, idle_power=100.0,
            reserved=0.0, correction=0.0,
        )
        assert 6.0 in [r.time for r in plan.rounds]
        assert p.next_instant() == 6.0

    def test_envelope_clamps_planned_budget(self):
        # Forecast says 3000 W but we only observed 500 W: every horizon
        # budget must be solved against the min.
        stepped = SteppedTarget([0.0], [3000.0])
        p = make_planner(ScheduleForecaster(stepped))
        p.observe(0.0, 500.0)
        plan = p.rebuild(
            0.0, JOBS, observed_target=500.0, idle_power=100.0,
            reserved=0.0, correction=0.0,
        )
        for rnd in plan.rounds:
            assert rnd.effective_target == 500.0
            assert rnd.budget == pytest.approx(400.0)

    def test_lazy_default_defers_solves_until_warm_dispatch(self):
        # Default eager_rounds=0: rebuild costs no budgeter solves; caps
        # materialize only when a dispatch warm-hits the round's budget.
        p = make_planner(eager_rounds=0)
        p.observe(0.0, 3000.0)
        plan = p.rebuild(
            0.0, JOBS, observed_target=3000.0, idle_power=100.0,
            reserved=0.0, correction=0.0,
        )
        assert all(r.caps is None and r.planned_watts is None for r in plan.rounds)
        assert p.lazy_solves == 0
        alloc = p.dispatch(0.0, JOBS, plan.rounds[0].budget, {})
        assert alloc.meta["plan_warm"] == 1.0
        assert p.lazy_solves == 1
        assert p.plan.rounds[0].caps is not None

    def test_clear_drops_plan_and_instants(self):
        stepped = SteppedTarget([0.0, 6.0], [3000.0, 2500.0])
        p = make_planner(ScheduleForecaster(stepped))
        p.observe(0.0, 3000.0)
        p.rebuild(
            0.0, JOBS, observed_target=3000.0, idle_power=100.0,
            reserved=0.0, correction=0.0,
        )
        p.clear()
        assert p.plan is None
        assert p.next_instant() is None


class TestPlannerInstants:
    def test_instants_hidden_unless_active(self):
        stepped = SteppedTarget([0.0, 6.0], [3000.0, 2500.0])
        p = make_planner(
            ScheduleForecaster(stepped),
            envelope=SafetyEnvelope(error_bound_watts=100.0, promote_rounds=4),
        )
        p.observe(0.0, 3000.0)
        p.rebuild(
            0.0, JOBS, observed_target=3000.0, idle_power=100.0,
            reserved=0.0, correction=0.0,
        )
        assert p.state == "shadow"
        assert p.next_instant() is None  # shadow must stay reactive
        assert p.take_due_instants(6.0) is False

    def test_take_due_instants_pops(self):
        stepped = SteppedTarget([0.0, 6.0, 10.0], [3000.0, 2500.0, 2600.0])
        p = make_planner(ScheduleForecaster(stepped))
        p.observe(0.0, 3000.0)
        p.rebuild(
            0.0, JOBS, observed_target=3000.0, idle_power=100.0,
            reserved=0.0, correction=0.0,
        )
        assert p.take_due_instants(5.0) is False
        assert p.take_due_instants(6.0) is True
        assert p.next_instant() == 10.0


class TestPlannerDispatch:
    def _build(self, target=3000.0):
        stepped = SteppedTarget([0.0], [target])
        p = make_planner(ScheduleForecaster(stepped))
        p.observe(0.0, target)
        p.rebuild(
            0.0, JOBS, observed_target=target, idle_power=100.0,
            reserved=0.0, correction=0.0,
        )
        return p

    def test_warm_hit_reuses_planned_caps(self):
        p = self._build()
        planned = p.plan.rounds[0]
        alloc = p.dispatch(0.0, JOBS, planned.budget, {"a": None, "b": None})
        assert alloc.meta["plan_warm"] == 1.0
        assert alloc.caps == dict(planned.caps)
        assert p.warm_hits == 1

    def test_pool_mismatch_forces_fresh_solve(self):
        p = self._build()
        alloc = p.dispatch(0.0, JOBS, 450.0, {"a": None, "b": None})
        assert alloc.meta["plan_warm"] == 0.0
        assert p.fresh_solves == 1

    def test_job_set_change_forces_fresh_solve(self):
        p = self._build()
        jobs = JOBS + [request("c", 1)]
        planned = p.plan.rounds[0]
        alloc = p.dispatch(0.0, jobs, planned.budget, {})
        assert alloc.meta["plan_warm"] == 0.0

    def test_inactive_returns_none(self):
        p = make_planner(
            envelope=SafetyEnvelope(error_bound_watts=100.0, promote_rounds=4)
        )
        p.observe(0.0, 3000.0)
        assert p.dispatch(0.0, JOBS, 1000.0, {}) is None

    def test_hysteresis_holds_small_moves(self):
        # target 700 W keeps the solved caps mid-range, not pinned at p_max
        p = self._build(target=700.0)
        planned = p.plan.rounds[0]
        last = {j.job_id: planned.caps[j.job_id] - 3.0 for j in JOBS}
        alloc = p.dispatch(0.0, JOBS, planned.budget, last)
        assert alloc.meta.get("plan_held_caps") == len(JOBS)
        for j in JOBS:
            assert alloc.caps[j.job_id] == last[j.job_id]

    def test_hysteresis_rejected_when_held_total_overflows_pool(self):
        p = self._build(target=700.0)
        planned = p.plan.rounds[0]
        # previous caps 3 W higher per node but pool is exactly the planned
        # total: holding would over-commit, so the fresh caps must win.
        last = {j.job_id: planned.caps[j.job_id] + 3.0 for j in JOBS}
        alloc = p.dispatch(0.0, JOBS, planned.planned_watts, last)
        for j in JOBS:
            assert alloc.caps[j.job_id] == pytest.approx(planned.caps[j.job_id], abs=0.5)

    def test_observe_scores_pending_points(self):
        p = self._build()
        assert p.forecaster.errors.count == 0
        p.observe(4.0, 2900.0)  # plan predicted 3000 at t=4
        assert p.forecaster.errors.count == 1
        assert p.forecaster.mae == pytest.approx(100.0)
        assert p.deviations == [(4.0, 3000.0, 2900.0)]


class TestSystemIntegration:
    """Plan-enabled end-to-end runs: invariants, metrics, cadence."""

    def _system(self, duration=120.0, **plan_kwargs):
        times = [4.0 * k for k in range(int(duration) // 2)]
        watts = [3000.0 + 400.0 * ((k % 3) - 1) for k in range(len(times))]
        stepped = SteppedTarget(times, watts)
        cfg = AnorConfig(
            num_nodes=16,
            seed=0,
            manager_period=4.0,
            plan_enabled=True,
            plan_forecaster="auto",
            plan_shadow_rounds=0,
            telemetry_enabled=True,
            **plan_kwargs,
        )
        return build_demand_response_system(
            duration=duration, seed=0, target_source=stepped, config=cfg
        )

    def test_budget_round_invariant_holds(self):
        system = self._system()
        rows = []
        for _ in range(240):
            system.step()
            rnd = system.manager.last_round
            if rnd is not None and (not rows or rows[-1][0] != rnd.time):
                ceiling = max(rnd.target + rnd.correction, rnd.floor)
                rows.append(
                    (rnd.time, ceiling, rnd.idle_power + rnd.reserved + rnd.allocated)
                )
        assert rows, "no budget rounds sampled"
        overs = [r for r in rows if r[2] > r[1] + 0.1]
        assert not overs

    def test_plan_metrics_exported(self):
        system = self._system()
        for _ in range(120):
            system.step()
        reg = system.telemetry.registry
        assert reg.get_value("anor_plan_state") == 1.0  # active
        assert reg.get_value("anor_forecast_error_watts") is not None
        assert reg.get_value("anor_plan_fallbacks_total") == 0.0
        assert reg.get_value("anor_cap_rewrites_total") == system.manager.cap_rewrites

    def test_planner_builds_plans_and_fires_instants(self):
        system = self._system()
        for _ in range(120):
            system.step()
        planner = system.manager.planner
        assert planner.plans_built > 0
        assert planner.active
        # the schedule forecaster surfaced breakpoints and the manager
        # consumed them: rounds happened at exact 4 s target steps
        times = {rnd for rnd in (system.manager.last_round.time,) if rnd}
        assert times

    def test_plan_rounds_land_on_target_breakpoints(self):
        system = self._system()
        seen = []
        for _ in range(120):
            system.step()
            rnd = system.manager.last_round
            if rnd is not None and (not seen or seen[-1] != rnd.time):
                seen.append(rnd.time)
        # after the first instant consumed (t=12), active-plan rounds
        # re-anchor to the 4 s breakpoint grid
        later = [t for t in seen if t >= 12.0]
        assert later
        assert all(t % 4.0 == 0.0 for t in later)

    def test_plan_off_manager_has_no_planner(self):
        cfg = AnorConfig(num_nodes=16, seed=0)
        system = build_demand_response_system(duration=60.0, seed=0, config=cfg)
        assert system.manager.planner is None
        assert system.manager.next_plan_instant() is None
        assert system.manager.plan_instant_due(1.0) is False
