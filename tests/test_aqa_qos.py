"""Tests for QoS metrics, constraints, and the queue-trace justification."""

import pytest
from hypothesis import given, strategies as st

from repro.aqa.qos import (
    QoSConstraint,
    generate_queue_trace,
    qos_degradation,
)
from repro.aqa.qos import wait_exec_ratio_percentile


class TestQosDegradation:
    def test_no_wait_no_cap(self):
        assert qos_degradation(100.0, 100.0) == 0.0

    def test_doubled_sojourn(self):
        assert qos_degradation(200.0, 100.0) == 1.0

    def test_paper_formula(self):
        # Q = (T_so - T_min) / T_min
        assert qos_degradation(600.0, 100.0) == 5.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="positive"):
            qos_degradation(10.0, 0.0)
        with pytest.raises(ValueError, match="≥ 0"):
            qos_degradation(-1.0, 10.0)

    @given(st.floats(0.1, 1e5), st.floats(0.1, 1e5))
    def test_property_sign(self, sojourn, t_min):
        q = qos_degradation(sojourn, t_min)
        assert (q >= 0) == (sojourn >= t_min)


class TestQoSConstraint:
    def test_paper_default(self):
        c = QoSConstraint()
        assert c.limit == 5.0
        assert c.probability == 0.9

    def test_satisfied_exactly_at_probability(self):
        c = QoSConstraint(limit=5.0, probability=0.9)
        samples = [1.0] * 9 + [10.0]  # 90 % within limit
        assert c.satisfied(samples)

    def test_violated(self):
        c = QoSConstraint(limit=5.0, probability=0.9)
        samples = [1.0] * 8 + [10.0, 10.0]  # only 80 %
        assert not c.satisfied(samples)

    def test_empty_vacuously_satisfied(self):
        assert QoSConstraint().satisfied([])

    def test_percentile_value(self):
        c = QoSConstraint(limit=5.0, probability=0.5)
        assert c.percentile_value([1.0, 2.0, 3.0]) == 2.0

    def test_margin_positive_when_ok(self):
        c = QoSConstraint(limit=5.0, probability=0.5)
        assert c.margin([1.0, 2.0, 3.0]) == 3.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="≥ 0"):
            QoSConstraint(limit=-1.0)
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            QoSConstraint(probability=0.0)


class TestQueueTrace:
    def test_shape(self):
        trace = generate_queue_trace(100, seed=0)
        assert trace.shape == (100, 2)
        assert (trace > 0).all()

    def test_reproducible(self):
        a = generate_queue_trace(50, seed=1)
        b = generate_queue_trace(50, seed=1)
        assert (a == b).all()

    def test_90th_ratio_exceeds_22(self):
        """§5.2: the real trace's 90th-pct wait/exec ratio is > 22, making
        the Q=5 constraint aggressive by comparison."""
        trace = generate_queue_trace(5000, seed=0)
        assert wait_exec_ratio_percentile(trace, 90.0) > 22.0

    def test_ratio_percentile_validates_shape(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            wait_exec_ratio_percentile(generate_queue_trace(10)[:, 0])

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError, match="≥ 1"):
            generate_queue_trace(0)
