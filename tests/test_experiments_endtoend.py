"""Slimmed-down end-to-end experiment checks (Figs. 3, 6, 9, 10, 11).

These run the real harnesses at reduced scale so the suite stays fast while
still pinning the paper's qualitative results.
"""

import numpy as np
import pytest

from repro.experiments import fig3, fig6, fig9, fig10, fig11


@pytest.fixture(scope="module")
def char_result():
    return fig3.characterize_job_types(
        caps=[140.0, 180.0, 220.0, 260.0, 280.0], runs_per_cap=3, seed=0, tick=0.5
    )


class TestFig3:
    def test_all_types_characterized(self, char_result):
        assert set(char_result.runtimes) == set(fig3.PAPER_R2)

    def test_relative_time_ordering(self, char_result):
        """EP must look most sensitive, IS least, in the measured curves."""
        rel = {
            name: char_result.relative_times(name)[0][0]  # at 140 W
            for name in char_result.runtimes
        }
        assert rel["ep"] == max(rel.values())
        assert rel["is"] == min(rel.values())

    def test_fit_r2_reasonable(self, char_result):
        """Sensitive types fit tightly; SP is the loosest (paper: 0.84)."""
        assert char_result.r2["bt"] > 0.95
        assert char_result.r2["ep"] > 0.95
        assert char_result.r2["sp"] < char_result.r2["bt"]

    def test_relative_time_at_280_is_one(self, char_result):
        for name in char_result.runtimes:
            mean, _ = char_result.relative_times(name)
            assert mean[-1] == pytest.approx(1.0, abs=0.05)

    def test_fitted_models_trend_downward(self, char_result):
        # Types whose true curve flattens below 280 W (the cap stops binding
        # at p_demand) can yield fits that tick up slightly near the top of
        # the range; the overall trend must still be downward.
        for name, model in char_result.models.items():
            assert model.time_at(140.0) > model.time_at(280.0), name

    def test_table_renders(self, char_result):
        table = fig3.format_table(char_result)
        assert "paper R²" in table

    def test_measure_run_respects_cap(self):
        from repro.workloads.nas import NAS_TYPES
        slow = fig3.measure_run(NAS_TYPES["mg"], 140.0, seed=0, tick=0.5)
        fast = fig3.measure_run(NAS_TYPES["mg"], 280.0, seed=0, tick=0.5)
        assert slow / fast == pytest.approx(NAS_TYPES["mg"].sensitivity, rel=0.1)


@pytest.fixture(scope="module")
def fig6_result():
    return fig6.run_fig6(trials=2, seed=0, tick=1.0)


class TestFig6:
    def test_all_policies_present(self, fig6_result):
        assert len(fig6_result.slowdowns) == 6

    def test_agnostic_hurts_bt_more_than_sp(self, fig6_result):
        jobs = fig6_result.slowdowns["Performance Agnostic"]
        assert np.mean(jobs["bt"]) > np.mean(jobs["sp"]) + 0.03

    def test_aware_narrows_gap(self, fig6_result):
        agnostic = fig6_result.slowdowns["Performance Agnostic"]
        aware = fig6_result.slowdowns["Performance Aware"]
        gap_agnostic = np.mean(agnostic["bt"]) - np.mean(agnostic["sp"])
        gap_aware = abs(np.mean(aware["bt"]) - np.mean(aware["sp"]))
        assert gap_aware < gap_agnostic

    def test_misclassification_slows_bt(self, fig6_result):
        aware = np.mean(fig6_result.slowdowns["Performance Aware"]["bt"])
        mis = np.mean(fig6_result.slowdowns["Under-estimate bt"]["bt=is"])
        assert mis > aware + 0.05

    def test_feedback_recovers(self, fig6_result):
        """The paper's central claim: feedback recovers lost performance."""
        without = np.mean(fig6_result.slowdowns["Under-estimate bt"]["bt=is"])
        with_fb = np.mean(
            fig6_result.slowdowns["Under-estimate bt, with feedback"]["bt=is"]
        )
        assert with_fb < without

    def test_overestimate_sp_hurts_bt(self, fig6_result):
        aware = np.mean(fig6_result.slowdowns["Performance Aware"]["bt"])
        over = np.mean(fig6_result.slowdowns["Over-estimate sp"]["bt"])
        assert over > aware + 0.05

    def test_table_renders(self, fig6_result):
        assert "with feedback" in fig6.format_table(fig6_result)


class TestFig7And8Smoke:
    def test_fig7_feedback_recovers(self):
        result = fig6.run_fig7(trials=1, seed=0, tick=1.0)
        without = np.mean(result.slowdowns["Under-estimate bt"]["bt=is"])
        with_fb = np.mean(
            result.slowdowns["Under-estimate bt, with feedback"]["bt=is"]
        )
        assert with_fb <= without + 0.02

    def test_fig8_same_type_pair_agnostic_equals_aware(self):
        """Figs. 7–8: identical jobs ⇒ both policies make the same choice."""
        result = fig6.run_fig8(trials=1, seed=0, tick=1.0)
        agnostic = np.mean(result.slowdowns["Performance Agnostic"]["sp"])
        aware = np.mean(result.slowdowns["Performance Aware"]["sp"])
        assert agnostic == pytest.approx(aware, abs=0.04)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run_fig9(duration=600.0, seed=0, warmup=240.0)

    def test_errors_within_constraint_band(self, result):
        # Short run: allow some slack vs the full-hour behaviour.
        assert result.error_at_90th() < 0.45

    def test_measured_tracks_target_mean(self, result):
        trace = result.result.power_trace
        late = trace[trace[:, 0] >= 240.0]
        assert late[:, 2].mean() == pytest.approx(late[:, 1].mean(), rel=0.1)

    def test_target_stays_in_committed_band(self, result):
        trace = result.result.power_trace
        assert trace[:, 1].min() >= result.average_power - result.reserve - 1e-6
        assert trace[:, 1].max() <= result.average_power + result.reserve + 1e-6

    def test_table_renders(self, result):
        assert "tracking error" in fig9.format_table(result)


class TestFig10Smoke:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run_fig10(duration=900.0, trials=1, seed=0, warmup=240.0)

    def test_uniform_hurts_sensitive_types_most(self, result):
        means = result.mean_slowdown("Uniform")
        sensitive = np.mean([means["bt"], means["lu"], means["ft"]])
        insensitive = np.mean([means["sp"], means["mg"]])
        assert sensitive > insensitive

    def test_characterized_improves_worst_type(self, result):
        _, worst_uniform = result.slowest_type("Uniform")
        _, worst_char = result.slowest_type("Characterized")
        assert worst_char < worst_uniform

    def test_misclassified_hurts_bt(self, result):
        assert (
            result.mean_slowdown("Misclassified")["bt"]
            > result.mean_slowdown("Characterized")["bt"]
        )

    def test_adjusted_recovers(self, result):
        assert (
            result.mean_slowdown("Adjusted")["bt"]
            < result.mean_slowdown("Misclassified")["bt"]
        )

    def test_table_renders(self, result):
        assert "slowest type" in fig10.format_table(result)


class TestFig11Smoke:
    @pytest.fixture(scope="class")
    def result(self):
        # Bid scaled down with the cluster (defaults are for 1000 nodes).
        return fig11.run_fig11(
            bands=(0.0, 0.15, 0.30), trials=2, num_nodes=400, node_scale=10,
            duration=1500.0, seed=0,
            average_power=60_000.0, reserve=6_000.0,
        )

    def test_variation_worsens_qos(self, result):
        """§6.4: more variation ⇒ more QoS degradation (averaged over types)."""
        mean_by_band = np.array(
            [np.mean([result.qos90[n][bi].mean() for n in result.qos90])
             for bi in range(len(result.bands))]
        )
        assert mean_by_band[-1] > mean_by_band[0]

    def test_tracking_within_constraint(self, result):
        """§6.4: tracking stays within 30 % at 90th pct at every level."""
        assert result.tracking90.mean(axis=1).max() < 0.30

    def test_mean_and_band_shapes(self, result):
        mean, half = result.mean_and_band("bt")
        assert mean.shape == (3,)
        assert (half >= 0).all()

    def test_table_renders(self, result):
        assert "QoS limit" in fig11.format_table(result)
