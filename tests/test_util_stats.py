"""Tests for streaming statistics and interval estimates."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import RunningStats, confidence_interval_95, percentile


class TestRunningStats:
    def test_mean_matches_numpy(self, rng):
        xs = rng.normal(5.0, 2.0, size=100)
        stats = RunningStats()
        stats.extend(xs)
        assert stats.mean == pytest.approx(float(np.mean(xs)))

    def test_variance_matches_numpy(self, rng):
        xs = rng.normal(0.0, 3.0, size=50)
        stats = RunningStats()
        stats.extend(xs)
        assert stats.variance == pytest.approx(float(np.var(xs, ddof=1)))

    def test_min_max(self):
        stats = RunningStats()
        stats.extend([3.0, -1.0, 7.0])
        assert stats.min == -1.0
        assert stats.max == 7.0

    def test_count(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0])
        assert stats.count == 2

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError, match="no samples"):
            RunningStats().mean

    def test_variance_needs_two(self):
        stats = RunningStats()
        stats.push(1.0)
        with pytest.raises(ValueError, match="at least 2"):
            stats.variance

    def test_merge_equals_combined(self, rng):
        xs, ys = rng.normal(size=30), rng.normal(size=70)
        a, b = RunningStats(), RunningStats()
        a.extend(xs)
        b.extend(ys)
        merged = a.merge(b)
        combined = np.concatenate([xs, ys])
        assert merged.count == 100
        assert merged.mean == pytest.approx(float(np.mean(combined)))
        assert merged.variance == pytest.approx(float(np.var(combined, ddof=1)))

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        merged = a.merge(RunningStats())
        assert merged.count == 2
        assert merged.mean == 1.5

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_property_matches_numpy(self, xs):
        stats = RunningStats()
        stats.extend(xs)
        assert stats.mean == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-6)


class TestConfidenceInterval:
    def test_single_sample_zero_width(self):
        mean, half = confidence_interval_95([4.2])
        assert mean == 4.2
        assert half == 0.0

    def test_width_shrinks_with_samples(self, rng):
        small = confidence_interval_95(rng.normal(size=10))[1]
        large = confidence_interval_95(rng.normal(size=1000))[1]
        assert large < small

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no samples"):
            confidence_interval_95([])

    def test_constant_samples_zero_width(self):
        mean, half = confidence_interval_95([2.0, 2.0, 2.0])
        assert mean == 2.0
        assert half == 0.0


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no samples"):
            percentile([], 50.0)
