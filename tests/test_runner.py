"""The parallel experiment runner: ordering, determinism, error capture."""

import pytest

from repro.runner import ExperimentTask, run_tasks


def _render(seed: int) -> str:
    # Stand-in for a figure runner: deterministic in its explicit seed.
    return f"table(seed={seed}, value={seed * seed})"


def _boom(seed: int) -> str:
    raise ValueError(f"bad seed {seed}")


def _tasks(n: int) -> list[ExperimentTask]:
    return [
        ExperimentTask(key=f"t{i}", fn=_render, kwargs={"seed": i}) for i in range(n)
    ]


class TestRunTasks:
    def test_serial_outcomes_in_task_order(self):
        outcomes = run_tasks(_tasks(5), jobs=1)
        assert [o.key for o in outcomes] == [f"t{i}" for i in range(5)]
        assert all(o.ok for o in outcomes)

    def test_parallel_outcomes_in_task_order(self):
        outcomes = run_tasks(_tasks(6), jobs=3)
        assert [o.key for o in outcomes] == [f"t{i}" for i in range(6)]

    def test_parallel_matches_serial(self):
        serial = run_tasks(_tasks(6), jobs=1)
        parallel = run_tasks(_tasks(6), jobs=4)
        assert [o.table for o in parallel] == [o.table for o in serial]

    def test_failure_is_captured_not_raised(self):
        tasks = _tasks(3) + [ExperimentTask(key="bad", fn=_boom, kwargs={"seed": 9})]
        outcomes = run_tasks(tasks, jobs=2)
        assert [o.ok for o in outcomes] == [True, True, True, False]
        assert "bad seed 9" in outcomes[-1].error
        assert outcomes[-1].table is None

    def test_elapsed_is_recorded(self):
        (outcome,) = run_tasks(_tasks(1), jobs=1)
        assert outcome.elapsed >= 0.0

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_tasks(_tasks(2), jobs=0)

    def test_single_task_skips_pool(self):
        # jobs > 1 with one task must not spin up workers needlessly; the
        # observable contract is simply a correct, ordered result.
        (outcome,) = run_tasks(_tasks(1), jobs=8)
        assert outcome.ok and outcome.key == "t0"


class TestWorkerPool:
    def test_reused_pool_across_batches_matches_serial(self):
        from repro.runner import WorkerPool

        serial_a = run_tasks(_tasks(5), jobs=1)
        serial_b = run_tasks(_tasks(3), jobs=1)
        with WorkerPool(3) as pool:
            batch_a = run_tasks(_tasks(5), pool=pool)
            batch_b = run_tasks(_tasks(3), pool=pool)
        assert [o.table for o in batch_a] == [o.table for o in serial_a]
        assert [o.table for o in batch_b] == [o.table for o in serial_b]

    def test_chunked_sweep_preserves_order_and_tables(self):
        # Many more tasks than workers forces multi-task chunks; the merged
        # outcome order and contents must still be byte-identical to serial.
        tasks = _tasks(37)
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=2)
        assert [o.key for o in parallel] == [o.key for o in serial]
        assert [o.table for o in parallel] == [o.table for o in serial]

    def test_chunksize_scales_with_batch(self):
        from repro.runner import _chunksize

        assert _chunksize(3, 8) == 1  # small batches: one task per message
        assert _chunksize(100, 4) == 6  # 4 workers × 4 chunks each, rounded
        assert _chunksize(1, 1) == 1

    def test_serial_pool_runs_inline(self):
        from repro.runner import WorkerPool

        with WorkerPool(1) as pool:
            outcomes = run_tasks(_tasks(4), pool=pool)
        assert [o.key for o in outcomes] == [f"t{i}" for i in range(4)]

    def test_pool_rejects_zero_jobs(self):
        from repro.runner import WorkerPool

        with pytest.raises(ValueError, match="jobs"):
            WorkerPool(0)
