"""Tests for default-model policies for unknown job types (paper §6.1.2)."""

import pytest

from repro.modeling.default_models import (
    LeastSensitivePolicy,
    MostSensitivePolicy,
    NamedTypePolicy,
    RandomKnownTypePolicy,
)
from repro.modeling.quadratic import QuadraticPowerModel


@pytest.fixture
def known_models():
    mk = lambda s: QuadraticPowerModel.from_anchors(2.0, s, 140.0, 280.0)
    return {"low": mk(1.1), "mid": mk(1.4), "high": mk(1.8)}


class TestLeastSensitive:
    def test_picks_lowest(self, known_models):
        model = LeastSensitivePolicy().model_for(known_models)
        assert model is known_models["low"]

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError, match="no known"):
            LeastSensitivePolicy().model_for({})


class TestMostSensitive:
    def test_picks_highest(self, known_models):
        model = MostSensitivePolicy().model_for(known_models)
        assert model is known_models["high"]

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError, match="no known"):
            MostSensitivePolicy().model_for({})


class TestNamedType:
    def test_picks_named(self, known_models):
        model = NamedTypePolicy("mid").model_for(known_models)
        assert model is known_models["mid"]

    def test_unknown_name_rejected(self, known_models):
        with pytest.raises(KeyError, match="not in known models"):
            NamedTypePolicy("nope").model_for(known_models)


class TestRandomKnownType:
    def test_deterministic_per_job(self, known_models):
        policy = RandomKnownTypePolicy(seed=3)
        first = policy.model_for(known_models, job_name="job-a")
        again = policy.model_for(known_models, job_name="job-a")
        assert first is again

    def test_same_seed_same_assignment(self, known_models):
        a = RandomKnownTypePolicy(seed=3).model_for(known_models, job_name="x")
        b = RandomKnownTypePolicy(seed=3).model_for(known_models, job_name="x")
        assert a is b

    def test_assignments_vary_across_jobs(self, known_models):
        policy = RandomKnownTypePolicy(seed=0)
        picks = {
            id(policy.model_for(known_models, job_name=f"job-{i}"))
            for i in range(50)
        }
        assert len(picks) > 1  # not everything maps to one type

    def test_picks_come_from_catalog(self, known_models):
        policy = RandomKnownTypePolicy(seed=1)
        for i in range(10):
            model = policy.model_for(known_models, job_name=f"j{i}")
            assert model in known_models.values()
