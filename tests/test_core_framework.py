"""Integration tests for the end-to-end ANOR system (Figs. 6–10 harness)."""

import numpy as np
import pytest

from repro.budget.even_power import EvenPowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorSystem, precharacterized_models
from repro.core.targets import ConstantTarget
from repro.modeling.classifier import JobClassifier, Misclassification
from repro.workloads.generator import PoissonScheduleGenerator
from repro.workloads.nas import NAS_TYPES


def make_system(*, budgeter=None, target=840.0, nodes=4, seed=0, feedback=False,
                classifier=None):
    return AnorSystem(
        budgeter=budgeter or EvenSlowdownBudgeter(),
        target_source=ConstantTarget(target),
        classifier=classifier,
        config=AnorConfig(num_nodes=nodes, seed=seed, feedback_enabled=feedback),
    )


class TestSingleJob:
    def test_job_completes_and_reports(self):
        system = make_system(target=280.0, nodes=1)
        system.submit_now("is-0", "is")
        result = system.run(until_idle=True, max_time=600.0)
        assert len(result.completed) == 1
        assert result.completed[0].epoch_count == NAS_TYPES["is"].epochs
        assert result.unstarted_jobs == 0

    def test_power_trace_columns(self):
        system = make_system(target=280.0, nodes=1)
        system.submit_now("is-0", "is")
        result = system.run(until_idle=True, max_time=600.0)
        trace = result.power_trace
        assert trace.shape[1] == 3
        assert np.all(trace[:, 1] == 280.0)  # constant target column

    def test_uncapped_budget_no_slowdown(self):
        system = make_system(target=2000.0, nodes=2)
        system.submit_now("mg-0", "mg", nodes=1)
        result = system.run(until_idle=True, max_time=600.0)
        ref = NAS_TYPES["mg"].compute_time(280.0)
        assert result.completed[0].runtime == pytest.approx(ref, rel=0.1)


class TestSharedBudget:
    def test_even_power_hurts_sensitive_job_more(self):
        system = make_system(budgeter=EvenPowerBudgeter())
        system.submit_now("bt-0", "bt")
        system.submit_now("sp-1", "sp")
        result = system.run(until_idle=True, max_time=3600.0)
        slow = {
            t.job_type: t.runtime / NAS_TYPES[t.job_type].compute_time(280.0) - 1
            for t in result.completed
        }
        assert slow["bt"] > slow["sp"] + 0.03

    def test_even_slowdown_narrows_gap(self):
        agnostic = make_system(budgeter=EvenPowerBudgeter(), seed=1)
        aware = make_system(budgeter=EvenSlowdownBudgeter(), seed=1)
        gaps = {}
        for name, system in (("agnostic", agnostic), ("aware", aware)):
            system.submit_now("bt-0", "bt")
            system.submit_now("sp-1", "sp")
            result = system.run(until_idle=True, max_time=3600.0)
            slow = {
                t.job_type: t.runtime / NAS_TYPES[t.job_type].compute_time(280.0) - 1
                for t in result.completed
            }
            gaps[name] = slow["bt"] - slow["sp"]
        assert gaps["aware"] < gaps["agnostic"]

    def test_queueing_when_cluster_full(self):
        system = make_system(nodes=2, target=560.0)
        system.submit_now("a", "ft")  # takes both nodes
        system.submit_now("b", "ft")  # must queue
        result = system.run(until_idle=True, max_time=3600.0)
        assert len(result.completed) == 2
        sojourns = {t.job_id: t.sojourn for t in result.completed}
        assert sojourns["b"] > sojourns["a"]


class TestMisclassificationAndFeedback:
    def test_misclassified_bt_slows_down(self):
        correct = make_system(seed=2)
        correct.submit_now("bt-0", "bt")
        correct.submit_now("sp-1", "sp")
        r_correct = correct.run(until_idle=True, max_time=3600.0)

        mis = make_system(seed=2)
        mis.submit_now("bt-0", "bt", claimed_type="is")
        mis.submit_now("sp-1", "sp")
        r_mis = mis.run(until_idle=True, max_time=3600.0)

        def bt_runtime(result):
            return [t for t in result.completed if t.job_type == "bt"][0].runtime

        assert bt_runtime(r_mis) > bt_runtime(r_correct)

    def test_feedback_recovers_some_performance(self):
        runtimes = {}
        for feedback in (False, True):
            agg = 0.0
            for seed in (3, 4, 5):
                system = make_system(seed=seed, feedback=feedback)
                system.submit_now("bt-0", "bt", claimed_type="is")
                system.submit_now("sp-1", "sp")
                result = system.run(until_idle=True, max_time=3600.0)
                agg += [t for t in result.completed if t.job_type == "bt"][0].runtime
            runtimes[feedback] = agg / 3.0
        assert runtimes[True] < runtimes[False]

    def test_type_level_misclassification_via_classifier(self):
        classifier = JobClassifier(
            precharacterized_models(),
            misclassifications=[Misclassification("bt", "is")],
        )
        system = make_system(seed=6, classifier=classifier)
        system.submit_now("bt-0", "bt")
        system.run(until_idle=True, max_time=3600.0)
        # The manager believed the (now finished) job was IS-shaped: we can
        # only check indirectly that the run completed under that belief.
        assert len(system.cluster.completed) == 1


class TestScheduledRuns:
    def test_poisson_schedule_executes(self):
        types = {k: NAS_TYPES[k] for k in ("mg", "cg")}
        gen = PoissonScheduleGenerator(
            list(types.values()), utilization=0.6, total_nodes=4, seed=0
        )
        schedule = gen.generate(400.0)
        system = AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(1120.0),
            schedule=schedule,
            job_types=types,
            config=AnorConfig(num_nodes=4, seed=0),
        )
        result = system.run(400.0, until_idle=True, max_time=3000.0)
        assert len(result.completed) == len(schedule)

    def test_run_requires_duration_or_until_idle(self):
        system = make_system()
        with pytest.raises(ValueError, match="duration"):
            system.run()

    def test_max_time_bounds_run(self):
        system = make_system(nodes=1, target=280.0)
        system.submit_now("lu-0", "lu")
        result = system.run(until_idle=True, max_time=10.0)
        assert result.duration <= 11.0


class TestResultHelpers:
    def test_slowdowns_by_type(self):
        system = make_system(target=1120.0)
        system.submit_now("mg-0", "mg", nodes=1)
        result = system.run(until_idle=True, max_time=600.0)
        ref = {"mg": NAS_TYPES["mg"].compute_time(280.0)}
        slow = result.slowdowns_by_type(ref)
        assert "mg" in slow and len(slow["mg"]) == 1

    def test_qos_by_type(self):
        system = make_system(target=1120.0)
        system.submit_now("mg-0", "mg", nodes=1)
        result = system.run(until_idle=True, max_time=600.0)
        t_min = {"mg": NAS_TYPES["mg"].total_time(280.0)}
        qos = result.qos_by_type(t_min)
        assert qos["mg"][0] >= -0.2  # ran immediately: Q near zero


class TestControlPeriods:
    def test_default_periods_fire_every_tick(self):
        system = make_system(nodes=1)
        calls = []
        system.manager.step = lambda now: calls.append(now)
        for _ in range(50):
            system.step()
        assert calls == [float(t) for t in range(1, 51)]

    def test_non_tick_multiple_period_fires_exactly_duration_over_period(self):
        # Regression for the old ``next = now + period - 1e-9`` re-anchor:
        # a 2.5 s manager period polled at 1 s ticks fired every 3 s,
        # losing a quarter of the control updates over a long run.
        from repro.core.targets import ConstantTarget

        system = AnorSystem(
            target_source=ConstantTarget(280.0),
            config=AnorConfig(num_nodes=1, tick=1.0, manager_period=2.5),
        )
        calls = []
        system.manager.step = lambda now: calls.append(now)
        for _ in range(2000):
            system.step()
        assert len(calls) == 800  # 2000 s horizon / 2.5 s period, exactly
