"""Tests for regulation-signal generators (paper §5.6)."""

import numpy as np
import pytest

from repro.aqa.regulation import (
    BoundedRandomWalkSignal,
    RegulationSignal,
    SinusoidSignal,
    TabulatedSignal,
)


class TestSinusoid:
    def test_bounds(self):
        sig = SinusoidSignal(period=60.0)
        values = sig.series(np.linspace(0, 600, 500))
        assert values.min() >= -1.0
        assert values.max() <= 1.0

    def test_period(self):
        sig = SinusoidSignal(period=60.0)
        assert sig.value(0.0) == pytest.approx(sig.value(60.0), abs=1e-9)

    def test_amplitude(self):
        sig = SinusoidSignal(period=4.0, amplitude=0.5)
        assert sig.value(1.0) == pytest.approx(0.5)

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            SinusoidSignal(amplitude=1.5)

    def test_invalid_period(self):
        with pytest.raises(ValueError, match="positive"):
            SinusoidSignal(period=0.0)


class TestBoundedRandomWalk:
    def test_bounds_always(self):
        sig = BoundedRandomWalkSignal(3600.0, sigma=0.5, seed=0)
        values = sig.series(np.arange(0, 3600, 4.0))
        assert values.min() >= -1.0
        assert values.max() <= 1.0

    def test_deterministic_function_of_time(self):
        """Reading out of order must not change values (precomputed walk)."""
        sig = BoundedRandomWalkSignal(600.0, seed=3)
        late = sig.value(500.0)
        early = sig.value(10.0)
        assert sig.value(500.0) == late
        assert sig.value(10.0) == early

    def test_reproducible_across_instances(self):
        a = BoundedRandomWalkSignal(600.0, seed=7)
        b = BoundedRandomWalkSignal(600.0, seed=7)
        ts = np.arange(0, 600, 4.0)
        assert (a.series(ts) == b.series(ts)).all()

    def test_starts_at_zero(self):
        assert BoundedRandomWalkSignal(100.0, seed=0).value(0.0) == 0.0

    def test_steps_hold_within_interval(self):
        sig = BoundedRandomWalkSignal(100.0, step=4.0, seed=0)
        assert sig.value(4.0) == sig.value(7.9)

    def test_mean_reversion_keeps_mean_small(self):
        sig = BoundedRandomWalkSignal(36000.0, rho=0.9, sigma=0.2, seed=1)
        values = sig.series(np.arange(0, 36000, 4.0))
        assert abs(values.mean()) < 0.2

    def test_beyond_duration_holds_last(self):
        sig = BoundedRandomWalkSignal(100.0, seed=0)
        assert sig.value(1e6) == sig.value(100.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="≥ 0"):
            BoundedRandomWalkSignal(100.0, seed=0).value(-1.0)

    def test_invalid_rho(self):
        with pytest.raises(ValueError, match="rho"):
            BoundedRandomWalkSignal(100.0, rho=1.5)


class TestTabulated:
    def test_zero_order_hold(self):
        sig = TabulatedSignal([0.0, 10.0], [0.2, -0.4])
        assert sig.value(5.0) == 0.2
        assert sig.value(10.0) == -0.4
        assert sig.value(99.0) == -0.4

    def test_before_first_breakpoint(self):
        sig = TabulatedSignal([10.0], [0.3])
        assert sig.value(0.0) == 0.3

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ValueError, match=r"\[-1, 1\]"):
            TabulatedSignal([0.0], [1.5])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            TabulatedSignal([0.0, 0.0], [0.1, 0.2])


class TestSeries:
    def test_sinusoid_series_matches_scalar(self):
        sig = SinusoidSignal(period=120.0, amplitude=0.8, phase=0.3)
        times = [0.0, 1.5, 37.0, 119.9, 240.0]
        out = sig.series(times)
        assert out.tolist() == pytest.approx([sig.value(t) for t in times])

    def test_random_walk_series_matches_scalar(self):
        sig = BoundedRandomWalkSignal(200.0, step=4.0, seed=11)
        times = np.arange(0.0, 400.0, 1.7)
        out = sig.series(times)
        assert out.tolist() == [sig.value(float(t)) for t in times]

    def test_random_walk_series_rejects_negative_times(self):
        sig = BoundedRandomWalkSignal(100.0, seed=1)
        with pytest.raises(ValueError, match="≥ 0"):
            sig.series([-1.0, 0.0])

    def test_tabulated_series_matches_scalar(self):
        sig = TabulatedSignal([0.0, 5.0, 10.0], [0.2, -0.4, 0.9])
        times = [0.0, 2.5, 5.0, 7.0, 10.0, 50.0]
        out = sig.series(times)
        assert out.tolist() == [sig.value(t) for t in times]

    def test_tabulated_error_names_offending_index(self):
        with pytest.raises(ValueError, match=r"times\[1\]=5\.0"):
            TabulatedSignal([0.0, 5.0, 5.0], [0.1, 0.2, 0.3])

    def test_base_fallback_series(self):
        class Lambda(RegulationSignal):
            def value(self, t):
                return min(t / 100.0, 1.0)

        sig = Lambda()
        assert sig.series([0.0, 50.0, 200.0]).tolist() == [0.0, 0.5, 1.0]
