"""Failure injection: the control plane under lossy links and silent peers.

The ANOR tiers always resend *current state* (latest cap, latest status)
rather than deltas, so a dropped message should only delay convergence, not
corrupt it.  These tests run the system over links built lossy from
:class:`AnorConfig` (no subclass surgery on channels), and pin the manager's
hardening behaviors: heartbeat staleness fallback, dead-job eviction closing
the dropped-goodbye leak, strict model validation, and the budget-sum
invariant across seeds.
"""

import math

import numpy as np
import pytest

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.cluster_manager import ClusterPowerManager
from repro.core.framework import AnorConfig, AnorSystem, precharacterized_models
from repro.core.job_endpoint import JobTierEndpoint
from repro.core.messages import GoodbyeMessage, HelloMessage, StatusMessage
from repro.core.targets import ConstantTarget, HoldLastGoodTarget
from repro.core.transport import TcpLink
from repro.geopm.endpoint import Endpoint
from repro.modeling.classifier import JobClassifier
from repro.modeling.quadratic import QuadraticPowerModel
from repro.workloads.nas import NAS_TYPES


def run_lossy(drop: float, *, seed: int = 0):
    system = AnorSystem(
        budgeter=EvenSlowdownBudgeter(),
        target_source=ConstantTarget(840.0),
        classifier=JobClassifier(precharacterized_models()),
        config=AnorConfig(
            num_nodes=4, seed=seed, feedback_enabled=True,
            link_drop_probability=drop,
        ),
    )
    system.submit_now("bt-0", "bt")
    system.submit_now("sp-1", "sp")
    return system.run(until_idle=True, max_time=7200.0)


class TestLossyLinks:
    def test_jobs_complete_under_30pct_loss(self):
        result = run_lossy(0.30)
        assert len(result.completed) == 2
        assert all(t.epoch_count > 0 for t in result.completed)

    def test_budget_still_respected_under_loss(self):
        """Dropped caps delay convergence but the budget holds on average."""
        result = run_lossy(0.30)
        trace = result.power_trace
        steady = trace[(trace[:, 0] > 60) & (trace[:, 2] > 500)]
        assert steady[:, 2].mean() <= 840.0 * 1.10

    def test_performance_similar_to_lossless(self):
        lossless = run_lossy(0.0, seed=3)
        lossy = run_lossy(0.30, seed=3)
        for job_type in ("bt", "sp"):
            t0 = [t for t in lossless.completed if t.job_type == job_type][0]
            t1 = [t for t in lossy.completed if t.job_type == job_type][0]
            # Resent-state protocol: loss costs at most a few control periods.
            assert t1.runtime <= t0.runtime * 1.15 + 10.0

    def test_hello_eventually_arrives(self):
        """Even the handshake survives: the endpoint resends nothing, but
        the cluster manager only needs ONE hello to get through — with 30 %
        loss over repeated statuses the job is registered within seconds."""
        result = run_lossy(0.30, seed=9)
        assert len(result.completed) == 2

    def test_per_direction_latency_override(self):
        link = TcpLink(0.1, latency_up=2.0, latency_down=0.5)
        assert link.up.latency == pytest.approx(2.0)
        assert link.down.latency == pytest.approx(0.5)


def make_manager(*, target=840.0, total_nodes=4, **kwargs):
    return ClusterPowerManager(
        budgeter=EvenSlowdownBudgeter(),
        target_source=ConstantTarget(target),
        classifier=JobClassifier(precharacterized_models()),
        total_nodes=total_nodes,
        **kwargs,
    )


def connect_job(manager, job_id, claimed, nodes, *, now=0.0):
    link = TcpLink(latency=0.0)
    manager.register_link(link)
    link.send_up(HelloMessage(job_id, claimed, nodes, now), now)
    return link


def send_status(link, job_id, *, t, epochs=5, power=400.0, cap=200.0, **model):
    link.send_up(
        StatusMessage(
            job_id=job_id, timestamp=t, epoch_count=epochs,
            measured_power=power, applied_cap=cap, **model,
        ),
        t,
    )


class TestManagerRobustness:
    def test_duplicate_hello_is_idempotent(self):
        manager = make_manager()
        link = TcpLink(latency=0.0)
        manager.register_link(link)
        link.send_up(HelloMessage("j", "bt", 2, 0.0), 0.0)
        link.send_up(HelloMessage("j", "bt", 2, 0.1), 0.1)
        manager.step(0.2)
        assert len(manager.jobs) == 1

    def test_endpoint_survives_missing_budget(self):
        """No budget ever arrives: the endpoint keeps running uncapped."""
        geopm = Endpoint(job_id="j")
        link = TcpLink(latency=0.0)
        endpoint = JobTierEndpoint(
            "j", "bt", 2, geopm, link,
            p_min=140.0, p_max=280.0,
            default_model=QuadraticPowerModel.from_anchors(2.0, 1.3, 140.0, 280.0),
        )
        for i in range(10):
            endpoint.step(float(i))
        assert endpoint.current_cap == 280.0


class TestHeartbeatStaleness:
    def test_stale_job_budgeted_conservatively(self):
        """A silent job gets the floor cap and its last cap stays reserved."""
        manager = make_manager(stale_status_timeout=15.0, dead_job_timeout=60.0)
        talker = connect_job(manager, "a", "bt", 2)
        quiet = connect_job(manager, "b", "bt", 2)  # speaks once, then silence
        send_status(talker, "a", t=0.0, power=400.0)
        send_status(quiet, "b", t=0.0, power=400.0)
        caps0 = manager.step(0.0)
        assert caps0["b"] > manager.p_node_min  # budgeted normally at first
        send_status(talker, "a", t=20.0, power=400.0)
        caps = manager.step(20.0)
        assert caps["b"] == manager.p_node_min
        rnd = manager.last_round
        assert rnd.stale_jobs == 1
        # Reserved = the stale job's last sent cap x nodes: it may still be
        # drawing that much, so it cannot be handed to anyone else.
        assert rnd.reserved == pytest.approx(2 * caps0["b"])

    def test_recovery_from_staleness(self):
        manager = make_manager()
        talker = connect_job(manager, "a", "bt", 2)
        silent = connect_job(manager, "b", "bt", 2)
        send_status(talker, "a", t=0.0, power=400.0)
        manager.step(0.0)
        send_status(talker, "a", t=20.0, power=400.0)
        caps = manager.step(20.0)
        assert caps["b"] == manager.p_node_min
        # The job speaks again: budgeted normally on the very next round.
        send_status(talker, "a", t=21.0, power=400.0)
        send_status(silent, "b", t=21.0, power=400.0)
        caps = manager.step(21.0)
        assert caps["b"] > manager.p_node_min
        assert manager.last_round.stale_jobs == 0

    def test_dropped_goodbye_evicts_after_timeout(self):
        """The ghost-record leak: a goodbye that never arrives used to leave
        a JobRecord (and its link) behind forever.  The dead-job timeout
        closes it."""
        manager = make_manager(stale_status_timeout=5.0, dead_job_timeout=20.0)
        link = connect_job(manager, "a", "bt", 2)
        send_status(link, "a", t=0.0, power=400.0)
        manager.step(0.0)
        assert "a" in manager.jobs
        # The endpoint sends its goodbye... onto a link that eats it.
        link.up.drop_probability = 0.999999999
        link.send_up(GoodbyeMessage("a", 1.0), 1.0)
        manager.step(10.0)
        assert "a" in manager.jobs  # silent but not yet presumed dead
        manager.step(25.0)
        assert manager.jobs == {}
        assert manager.evictions == 1
        assert link not in manager._links  # link garbage-collected too

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            make_manager(stale_status_timeout=0.0)
        with pytest.raises(ValueError):
            make_manager(stale_status_timeout=30.0, dead_job_timeout=10.0)


class TestModelValidation:
    @pytest.mark.parametrize(
        "coeffs",
        [
            dict(model_a=math.nan, model_b=-0.01, model_c=5.0, model_r2=0.9),
            dict(model_a=0.0, model_b=math.inf, model_c=5.0, model_r2=0.9),
            dict(model_a=0.0, model_b=-0.01, model_c=math.nan, model_r2=0.9),
            dict(model_a=0.0, model_b=-0.01, model_c=5.0, model_r2=math.nan),
            # Non-physical: time *rising* with power.
            dict(model_a=0.0, model_b=0.05, model_c=0.1, model_r2=0.9),
        ],
    )
    def test_bad_model_rejected(self, coeffs):
        manager = make_manager(use_feedback=True)
        link = connect_job(manager, "a", "is", 2)
        send_status(link, "a", t=0.0, power=400.0, **coeffs)
        manager.step(0.0)
        assert manager.jobs["a"].online_model is None
        assert manager.rejected_models == 1

    def test_nonfinite_power_rejected_without_eviction(self):
        manager = make_manager()
        link = connect_job(manager, "a", "bt", 2)
        send_status(link, "a", t=0.0, power=math.nan)
        manager.step(0.0)
        assert manager.rejected_statuses == 1
        assert manager.jobs["a"].last_status is None
        # The arrival still counted as a heartbeat.
        assert manager.jobs["a"].last_heard == 0.0
        caps = manager.step(1.0)
        assert caps["a"] > 0


class TestMeterFaults:
    def test_nan_meter_skips_sample_and_holds_correction(self):
        readings = iter([800.0, math.nan, math.nan, 800.0])
        manager = make_manager(meter=lambda: next(readings), correction_gain=0.5)
        for t in range(4):
            manager.step(float(t))
        assert manager.meter_faults == 2
        assert len(manager.tracking) == 2

    def test_raising_meter_is_a_fault_not_a_crash(self):
        def broken():
            raise OSError("ipmi timeout")

        manager = make_manager(meter=broken)
        manager.step(0.0)  # must not raise
        assert manager.meter_faults == 1


class TestHoldLastGoodTarget:
    def test_manager_wraps_target_source(self):
        manager = make_manager()
        assert isinstance(manager.target_source, HoldLastGoodTarget)

    def test_holds_then_decays_to_floor(self):
        class Dying:
            def target(self, now):
                return 1000.0 if now < 10.0 else math.nan

        hold = HoldLastGoodTarget(Dying(), floor=300.0, grace=30.0, decay_rate=0.01)
        assert hold.target(5.0) == 1000.0
        assert hold.target(20.0) == 1000.0  # within grace: hold flat
        decayed = hold.target(100.0)
        assert 300.0 < decayed < 1000.0  # past grace: decaying
        assert hold.target(10_000.0) == 300.0  # eventually the floor
        assert hold.degraded_reads == 3

    def test_serves_floor_before_first_good_read(self):
        class NeverUp:
            def target(self, now):
                raise ConnectionError("facility feed down")

        hold = HoldLastGoodTarget(NeverUp(), floor=250.0)
        assert hold.target(0.0) == 250.0


class TestBudgetSumProperty:
    @pytest.mark.parametrize("seed", range(8))
    def test_planned_draw_never_exceeds_target_or_floor(self, seed):
        """Property: over random job mixes, silences, and dormancy, the
        manager's planned draw (idle + reserved + allocated) stays within
        max(target + correction, enforceable floor)."""
        rng = np.random.default_rng(seed)
        target = float(rng.uniform(900.0, 2500.0))
        manager = make_manager(target=target, total_nodes=16)
        links = {}
        types = list(NAS_TYPES)
        for i in range(int(rng.integers(2, 6))):
            job_id = f"j{i}"
            nodes = int(rng.integers(1, 5))
            claimed = types[int(rng.integers(0, len(types)))]
            links[job_id] = (connect_job(manager, job_id, claimed, nodes), nodes)
        silent = {j for j in links if rng.random() < 0.3}
        for t in range(0, 40, 2):
            for job_id, (link, nodes) in links.items():
                if job_id in silent and t > 4:
                    continue
                power = float(rng.uniform(80.0, 280.0)) * nodes
                send_status(link, job_id, t=float(t), power=power)
            manager.step(float(t))
            rnd = manager.last_round
            assert rnd is not None
            planned = rnd.idle_power + rnd.reserved + rnd.allocated
            # 0.5 W of slack: the budgeter's bisection converges to a
            # tolerance, not to machine epsilon.
            bound = max(rnd.target + rnd.correction, rnd.floor) + 0.5
            assert planned <= bound, (
                f"t={t}: planned {planned:.1f} exceeds bound {bound:.1f} "
                f"({rnd})"
            )


class TestHelloLossEdge:
    def test_hello_dropped_forever_means_no_budget_but_no_crash(self):
        """Pathological: the one-and-only hello is lost.  The manager never
        budgets the job (it runs uncapped at TDP) but nothing breaks."""
        system = AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(560.0),
            config=AnorConfig(
                num_nodes=2, seed=0, feedback_enabled=False,
                link_drop_probability=0.999999,  # effectively everything drops
            ),
        )
        system.submit_now("mg-0", "mg", nodes=1)
        result = system.run(until_idle=True, max_time=600.0)
        assert len(result.completed) == 1
        ref = NAS_TYPES["mg"].compute_time(280.0)
        # Ran at TDP the whole time: no slowdown beyond noise.
        assert result.completed[0].runtime == pytest.approx(ref, rel=0.1)
