"""Failure injection: the control plane under lossy tier-to-tier links.

The ANOR tiers always resend *current state* (latest cap, latest status)
rather than deltas, so a dropped message should only delay convergence, not
corrupt it.  These tests inject heavy message loss into the TCP links and
check the system still completes jobs, enforces budgets, and recovers
feedback.
"""

import numpy as np
import pytest

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.cluster_manager import ClusterPowerManager
from repro.core.framework import AnorConfig, AnorSystem, precharacterized_models
from repro.core.job_endpoint import JobTierEndpoint
from repro.core.messages import HelloMessage
from repro.core.targets import ConstantTarget
from repro.core.transport import TcpLink
from repro.geopm.endpoint import Endpoint
from repro.modeling.classifier import JobClassifier
from repro.modeling.quadratic import QuadraticPowerModel
from repro.workloads.nas import NAS_TYPES


class LossySystem(AnorSystem):
    """AnorSystem whose job links drop a fraction of messages."""

    def __init__(self, *args, drop_probability: float = 0.0, **kwargs):
        self._drop_probability = drop_probability
        super().__init__(*args, **kwargs)

    def _launch(self, head):  # inject drops into every new link
        super()._launch(head)
        endpoint = self.endpoints[head.request.job_id]
        endpoint.link.down.drop_probability = self._drop_probability
        endpoint.link.up.drop_probability = self._drop_probability


def run_lossy(drop: float, *, seed: int = 0):
    system = LossySystem(
        budgeter=EvenSlowdownBudgeter(),
        target_source=ConstantTarget(840.0),
        classifier=JobClassifier(precharacterized_models()),
        config=AnorConfig(num_nodes=4, seed=seed, feedback_enabled=True),
        drop_probability=drop,
    )
    system.submit_now("bt-0", "bt")
    system.submit_now("sp-1", "sp")
    return system.run(until_idle=True, max_time=7200.0)


class TestLossyLinks:
    def test_jobs_complete_under_30pct_loss(self):
        result = run_lossy(0.30)
        assert len(result.completed) == 2
        assert all(t.epoch_count > 0 for t in result.completed)

    def test_budget_still_respected_under_loss(self):
        """Dropped caps delay convergence but the budget holds on average."""
        result = run_lossy(0.30)
        trace = result.power_trace
        steady = trace[(trace[:, 0] > 60) & (trace[:, 2] > 500)]
        assert steady[:, 2].mean() <= 840.0 * 1.10

    def test_performance_similar_to_lossless(self):
        lossless = run_lossy(0.0, seed=3)
        lossy = run_lossy(0.30, seed=3)
        for job_type in ("bt", "sp"):
            t0 = [t for t in lossless.completed if t.job_type == job_type][0]
            t1 = [t for t in lossy.completed if t.job_type == job_type][0]
            # Resent-state protocol: loss costs at most a few control periods.
            assert t1.runtime <= t0.runtime * 1.15 + 10.0

    def test_hello_eventually_arrives(self):
        """Even the handshake survives: the endpoint resends nothing, but
        the cluster manager only needs ONE hello to get through — with 30 %
        loss over repeated statuses the job is registered within seconds."""
        result = run_lossy(0.30, seed=9)
        assert len(result.completed) == 2


class TestManagerRobustness:
    def test_duplicate_hello_is_idempotent(self):
        manager = ClusterPowerManager(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(840.0),
            classifier=JobClassifier(precharacterized_models()),
            total_nodes=4,
        )
        link = TcpLink(latency=0.0)
        manager.register_link(link)
        link.send_up(HelloMessage("j", "bt", 2, 0.0), 0.0)
        link.send_up(HelloMessage("j", "bt", 2, 0.1), 0.1)
        manager.step(0.2)
        assert len(manager.jobs) == 1

    def test_endpoint_survives_missing_budget(self):
        """No budget ever arrives: the endpoint keeps running uncapped."""
        geopm = Endpoint(job_id="j")
        link = TcpLink(latency=0.0)
        endpoint = JobTierEndpoint(
            "j", "bt", 2, geopm, link,
            p_min=140.0, p_max=280.0,
            default_model=QuadraticPowerModel.from_anchors(2.0, 1.3, 140.0, 280.0),
        )
        for i in range(10):
            endpoint.step(float(i))
        assert endpoint.current_cap == 280.0


class TestHelloLossEdge:
    def test_hello_dropped_forever_means_no_budget_but_no_crash(self):
        """Pathological: the one-and-only hello is lost.  The manager never
        budgets the job (it runs uncapped at TDP) but nothing breaks."""
        system = LossySystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(560.0),
            config=AnorConfig(num_nodes=2, seed=0, feedback_enabled=False),
            drop_probability=0.999999,  # effectively everything drops
        )
        system.submit_now("mg-0", "mg", nodes=1)
        result = system.run(until_idle=True, max_time=600.0)
        assert len(result.completed) == 1
        ref = NAS_TYPES["mg"].compute_time(280.0)
        # Ran at TDP the whole time: no slowdown beyond noise.
        assert result.completed[0].runtime == pytest.approx(ref, rel=0.1)
