"""End-to-end performance variation on the emulated cluster (§6.4 at 16-node
scale): the control plane must keep working when nodes are heterogeneous."""

import numpy as np
import pytest

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorSystem
from repro.core.targets import ConstantTarget
from repro.workloads.nas import NAS_TYPES


def run_pair(perf_std: float, *, seed: int = 5):
    system = AnorSystem(
        budgeter=EvenSlowdownBudgeter(),
        target_source=ConstantTarget(840.0),
        config=AnorConfig(
            num_nodes=4, seed=seed, feedback_enabled=True,
            perf_variation_std=perf_std, run_noise=False,
        ),
    )
    system.submit_now("bt-0", "bt")
    system.submit_now("sp-1", "sp")
    return system, system.run(until_idle=True, max_time=7200.0)


class TestVariationEndToEnd:
    def test_all_jobs_complete_with_variation(self):
        _, result = run_pair(0.10)
        assert len(result.completed) == 2
        for totals in result.completed:
            assert totals.epoch_count == NAS_TYPES[totals.job_type].epochs

    def test_slow_nodes_stretch_runtimes(self):
        """A uniformly slow node pool must show up in job runtimes."""
        _, base = run_pair(0.0)
        slow_system = AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(840.0),
            config=AnorConfig(num_nodes=4, seed=5, feedback_enabled=True,
                              run_noise=False),
        )
        for node in slow_system.cluster.nodes:
            node.perf_multiplier = 0.8
        slow_system.submit_now("bt-0", "bt")
        slow_system.submit_now("sp-1", "sp")
        slow = slow_system.run(until_idle=True, max_time=7200.0)
        base_bt = [t for t in base.completed if t.job_type == "bt"][0]
        slow_bt = [t for t in slow.completed if t.job_type == "bt"][0]
        assert slow_bt.runtime > base_bt.runtime * 1.1

    def test_feedback_learns_the_slow_pool(self):
        """On uniformly slow nodes the online model's absolute times shift,
        but its *sensitivity* stays near the true curve's — the feedback
        channel normalises out node speed (§6.4's premise)."""
        system = AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(840.0),
            config=AnorConfig(num_nodes=4, seed=11, feedback_enabled=True,
                              run_noise=False),
        )
        for node in system.cluster.nodes:
            node.perf_multiplier = 0.75
        system.submit_now("bt-0", "bt")
        system.submit_now("sp-1", "sp")
        sens = None
        while system.cluster.running or system._queue:
            system.step()
            record = system.manager.jobs.get("bt-0")
            if record is not None and record.online_model is not None:
                sens = record.online_model.sensitivity
            if system.cluster.clock.now > 7200.0:
                break
        assert sens is not None
        assert sens == pytest.approx(NAS_TYPES["bt"].truth.sensitivity, rel=0.4)

    def test_variation_increases_runtime_spread(self):
        """Across seeds, heterogeneous pools spread runtimes more."""
        def spread(perf_std):
            runtimes = []
            for seed in range(4):
                _, result = run_pair(perf_std, seed=seed)
                bt = [t for t in result.completed if t.job_type == "bt"][0]
                runtimes.append(bt.runtime)
            return float(np.std(runtimes))

        assert spread(0.12) > spread(0.0)
