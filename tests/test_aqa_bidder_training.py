"""Tests for the demand-response bidder and AQA training utilities."""

import pytest

from repro.aqa.bidder import Bid, BidEvaluation, DemandResponseBidder
from repro.aqa.training import sample_unknown_type, train_queue_weights


class TestBid:
    def test_floor_ceiling(self):
        bid = Bid(average_power=1000.0, reserve=200.0)
        assert bid.floor == 800.0
        assert bid.ceiling == 1200.0

    def test_reserve_below_average(self):
        with pytest.raises(ValueError, match="below average"):
            Bid(average_power=100.0, reserve=100.0)

    def test_non_positive_average(self):
        with pytest.raises(ValueError, match="positive"):
            Bid(average_power=0.0, reserve=0.0)


class TestBidder:
    def test_candidates_within_physical_band(self):
        bidder = DemandResponseBidder(1000.0, 2000.0)
        for bid in bidder.candidates():
            assert bid.floor >= 1000.0 - 1e-9
            assert bid.ceiling <= 2000.0 + 1e-9

    def test_cost_rewards_reserve(self):
        bidder = DemandResponseBidder(
            1000.0, 2000.0, energy_price=1.0, reserve_credit=1.6
        )
        cheap = Bid(1500.0, 400.0)
        pricey = Bid(1500.0, 0.0)
        assert bidder.cost_rate(cheap) < bidder.cost_rate(pricey)

    def test_select_picks_cheapest_feasible(self):
        bidder = DemandResponseBidder(1000.0, 2000.0)

        def evaluate(bid):
            # Feasible only when the reserve is modest.
            ok = bid.reserve <= 100.0
            return BidEvaluation(
                bid=bid, qos_ok=ok, tracking_ok=True,
                qos_90th=1.0, tracking_error_90th=0.1,
            )

        best, evaluations = bidder.select(evaluate)
        assert best.reserve <= 100.0
        feasible = [e for e in evaluations if e.feasible]
        assert bidder.cost_rate(best) == min(bidder.cost_rate(e.bid) for e in feasible)

    def test_select_raises_when_nothing_feasible(self):
        bidder = DemandResponseBidder(1000.0, 2000.0)

        def evaluate(bid):
            return BidEvaluation(
                bid=bid, qos_ok=False, tracking_ok=False,
                qos_90th=99.0, tracking_error_90th=9.0,
            )

        with pytest.raises(RuntimeError, match="no feasible"):
            bidder.select(evaluate)

    def test_invalid_band(self):
        with pytest.raises(ValueError, match="floor < ceiling"):
            DemandResponseBidder(2000.0, 1000.0)


class TestTrainQueueWeights:
    def test_improves_simple_objective(self):
        # Objective: queue "a" should have twice queue "b"'s weight.
        def evaluate(weights):
            ratio = weights["a"] / weights["b"]
            return abs(ratio - 2.0)

        result = train_queue_weights(
            evaluate, ["a", "b"], iterations=200, seed=0
        )
        assert result.score < evaluate({"a": 1.0, "b": 1.0})
        assert result.weights["a"] / result.weights["b"] == pytest.approx(2.0, rel=0.3)

    def test_history_monotone_non_increasing(self):
        result = train_queue_weights(
            lambda w: sum(w.values()), ["a", "b", "c"], iterations=50, seed=1
        )
        assert all(
            later <= earlier
            for earlier, later in zip(result.history, result.history[1:])
        )

    def test_deterministic(self):
        f = lambda w: abs(w["a"] - 3.0)
        r1 = train_queue_weights(f, ["a"], iterations=30, seed=5)
        r2 = train_queue_weights(f, ["a"], iterations=30, seed=5)
        assert r1.weights == r2.weights

    def test_init_weights(self):
        f = lambda w: abs(w["a"] - 3.0)
        result = train_queue_weights(
            f, ["a"], iterations=1, seed=0, init={"a": 3.0}
        )
        assert result.score == pytest.approx(0.0)

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="at least one"):
            train_queue_weights(lambda w: 0.0, [], iterations=1)
        with pytest.raises(ValueError, match="≥ 1"):
            train_queue_weights(lambda w: 0.0, ["a"], iterations=0)
        with pytest.raises(KeyError):
            train_queue_weights(lambda w: 0.0, ["a"], init={"zz": 1.0})


class TestSampleUnknownType:
    def test_samples_from_known_properties(self):
        """§4.4.2: unknown types get power range and slowdown from known ones."""
        ranges = [(140.0, 240.0), (140.0, 272.0)]
        slowdowns = [0.12, 0.65]
        props = sample_unknown_type(120.0, ranges, slowdowns, seed=0)
        assert (props.p_min, props.p_max) in ranges
        assert props.max_slowdown in slowdowns
        assert props.t_min == 120.0

    def test_deterministic_with_seed(self):
        ranges = [(140.0, 240.0), (140.0, 272.0)]
        a = sample_unknown_type(60.0, ranges, [0.1, 0.2], seed=4)
        b = sample_unknown_type(60.0, ranges, [0.1, 0.2], seed=4)
        assert a == b

    def test_requires_known_types(self):
        with pytest.raises(ValueError, match="at least one known"):
            sample_unknown_type(60.0, [], [])

    def test_requires_positive_t_min(self):
        with pytest.raises(ValueError, match="positive"):
            sample_unknown_type(0.0, [(1.0, 2.0)], [0.1])
