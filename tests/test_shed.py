"""Tests for the graceful-degradation ladder (DESIGN.md §10)."""

import pytest

from repro.core.framework import AnorConfig, AnorSystem
from repro.facility.shed import (
    SEVERITY_LEVELS,
    SHED_CLASSES,
    SHED_PLANS,
    ShedController,
    ShedLadder,
)
from repro.faults.events import (
    DemandResponseEmergency,
    FeederLoss,
    ThermalDerate,
)
from repro.faults.schedule import FaultSchedule


class TestPlanTable:
    def test_protected_never_evicted(self):
        """The headline guarantee is structural: no severity maps the
        protected class to preempt or kill."""
        for severity, plan in SHED_PLANS.items():
            assert plan["protected"] in ("none", "cap-to-floor"), severity

    def test_every_severity_covers_every_class(self):
        for plan in SHED_PLANS.values():
            assert set(plan) == set(SHED_CLASSES)

    def test_normal_is_a_noop(self):
        assert all(a == "none" for a in SHED_PLANS["normal"].values())

    def test_escalation_is_monotone_per_class(self):
        """Walking down the ladder never softens any class's action."""
        from repro.facility.shed import SHED_ACTIONS

        rank = {a: i for i, a in enumerate(SHED_ACTIONS)}
        for cls in SHED_CLASSES:
            actions = [SHED_PLANS[s][cls] for s in SEVERITY_LEVELS]
            assert actions == sorted(actions, key=rank.__getitem__)


class TestShedLadder:
    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            ShedLadder(brownout1_deficit=0.3, brownout2_deficit=0.2)
        with pytest.raises(ValueError, match="in \\(0, 1\\)"):
            ShedLadder(brownout1_deficit=0.0)
        with pytest.raises(ValueError, match="ramp_watts_per_round"):
            ShedLadder(ramp_watts_per_round=0.0)
        with pytest.raises(ValueError, match="escalate_rounds"):
            ShedLadder(escalate_rounds=0)

    def test_one_bad_round_never_escalates(self):
        ladder = ShedLadder(escalate_rounds=2)
        assert ladder.observe(700.0, 1000.0) == "normal"
        assert ladder.observe(1000.0, 1000.0) == "normal"
        assert ladder.escalations == 0

    def test_sustained_deficit_jumps_to_indicated_severity(self):
        """A deep deficit must not dwell in brownout-1 on the way down."""
        ladder = ShedLadder(escalate_rounds=2)
        ladder.observe(400.0, 1000.0)  # deficit 0.6 indicates blackstart
        assert ladder.observe(400.0, 1000.0) == "blackstart"
        assert ladder.escalations == 1

    def test_recovery_steps_down_one_level_per_clear_window(self):
        ladder = ShedLadder(escalate_rounds=1, clear_rounds=3)
        ladder.observe(300.0, 1000.0)  # 0.7 deficit -> blackstart
        assert ladder.severity == "blackstart"
        seen = []
        for _ in range(9):
            seen.append(ladder.observe(1000.0, 1000.0))
        assert seen == (
            ["blackstart"] * 2 + ["brownout-2"]
            + ["brownout-2"] * 2 + ["brownout-1"]
            + ["brownout-1"] * 2 + ["normal"]
        )

    def test_round_at_current_severity_resets_recovery(self):
        ladder = ShedLadder(escalate_rounds=1, clear_rounds=3)
        ladder.observe(800.0, 1000.0)  # brownout-1
        ladder.observe(1000.0, 1000.0)
        ladder.observe(1000.0, 1000.0)
        ladder.observe(800.0, 1000.0)  # back at brownout-1: streak resets
        ladder.observe(1000.0, 1000.0)
        ladder.observe(1000.0, 1000.0)
        assert ladder.severity == "brownout-1"
        assert ladder.observe(1000.0, 1000.0) == "normal"

    def test_oscillating_feed_does_not_flap(self):
        """Alternating good/bad rounds never complete either streak."""
        ladder = ShedLadder(escalate_rounds=2, clear_rounds=2)
        for i in range(40):
            ladder.observe(700.0 if i % 2 else 1000.0, 1000.0)
        assert ladder.severity == "normal"
        assert ladder.escalations == 0

    def test_ceiling_follows_supply_down_instantly(self):
        ladder = ShedLadder()
        ladder.observe(1000.0, 1000.0)
        ladder.observe(400.0, 1000.0)
        assert ladder.ceiling == 400.0

    def test_ceiling_recovers_at_ramp_rate(self):
        ladder = ShedLadder(ramp_watts_per_round=100.0)
        ladder.observe(1000.0, 1000.0)
        ladder.observe(400.0, 1000.0)
        assert ladder.observe(1000.0, 1000.0) == ladder.severity
        assert ladder.ceiling == 500.0
        ladder.observe(1000.0, 1000.0)
        assert ladder.ceiling == 600.0
        for _ in range(10):
            ladder.observe(1000.0, 1000.0)
        assert ladder.ceiling == 1000.0  # clamped at supply, never beyond

    def test_zero_demand_leaves_severity_untouched(self):
        ladder = ShedLadder()
        assert ladder.observe(500.0, 0.0) == "normal"
        assert ladder.ceiling == 500.0

    def test_transition_log_bounded(self, monkeypatch):
        import repro.facility.shed as shed_mod

        monkeypatch.setattr(shed_mod, "TRANSITION_LOG_LIMIT", 4)
        ladder = ShedLadder(escalate_rounds=1, clear_rounds=1)
        for _ in range(10):
            ladder.observe(800.0, 1000.0)  # up to brownout-1
            ladder.observe(1000.0, 1000.0)  # back down
        assert len(ladder.transitions) == 4
        assert ladder.transitions_dropped == 20 - 4


class TestShedController:
    def make(self, **kwargs):
        return ShedController(
            ladder=ShedLadder(escalate_rounds=1, clear_rounds=1),
            classes={"cg": "preemptible", "ft": "protected"},
            **kwargs,
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="default_class"):
            self.make(default_class="vip")
        with pytest.raises(ValueError, match="shed class"):
            ShedController(ladder=ShedLadder(), classes={"cg": "soft"})

    def test_class_lookup_with_default(self):
        ctl = self.make()
        assert ctl.class_of("cg") == "preemptible"
        assert ctl.class_of("ft") == "protected"
        assert ctl.class_of("bt") == "checkpointable"

    def test_action_follows_severity(self):
        ctl = self.make()
        assert ctl.action_for("cg") == "none"
        ctl.observe(600.0)  # learn high water
        ctl.observe(100.0)  # 0.83 deficit -> blackstart (escalate_rounds=1)
        assert ctl.severity == "blackstart"
        assert ctl.action_for("cg") == "kill"
        assert ctl.action_for("ft") == "cap-to-floor"

    def test_request_shed_idempotent_per_episode(self):
        ctl = self.make()
        assert ctl.request_shed("j1", "preempt")
        assert not ctl.request_shed("j1", "kill")
        assert ctl.pending_actions == [("j1", "preempt")]
        assert (ctl.preempts, ctl.kills) == (1, 0)
        with pytest.raises(ValueError, match="not a shedding action"):
            ctl.request_shed("j2", "cap-to-floor")

    def test_restore_clears_episode_and_counts(self):
        ctl = self.make()
        ctl.observe(1000.0)
        ctl.observe(100.0)
        ctl.request_shed("j1", "preempt")
        assert ctl.active
        for _ in range(6):
            ctl.observe(1000.0)
        assert not ctl.active
        assert ctl.restores == 1
        assert ctl.request_shed("j1", "preempt")  # next episode may re-shed

    def test_fixed_nominal_overrides_high_water(self):
        ctl = ShedController(
            ladder=ShedLadder(escalate_rounds=1), nominal_watts=2000.0
        )
        ctl.observe(1000.0)  # 0.5 deficit against the fixed nominal
        assert ctl.severity == "blackstart"

    def test_observe_returns_ramped_ceiling(self):
        ctl = ShedController(ladder=ShedLadder(ramp_watts_per_round=50.0))
        assert ctl.observe(1000.0) == 1000.0
        assert ctl.observe(400.0) == 400.0
        assert ctl.observe(1000.0) == 450.0


class TestConfigValidation:
    def test_defaults_pass(self):
        AnorConfig(shed_enabled=True)

    def test_bad_threshold_order(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            AnorConfig(shed_brownout1_deficit=0.4, shed_brownout2_deficit=0.3)

    def test_threshold_range(self):
        with pytest.raises(ValueError, match="shed_blackstart_deficit"):
            AnorConfig(shed_blackstart_deficit=1.0)

    def test_bad_default_class(self):
        with pytest.raises(ValueError, match="shed_default_class"):
            AnorConfig(shed_default_class="vip")

    def test_bad_class_map(self):
        with pytest.raises(ValueError, match="shed_classes"):
            AnorConfig(shed_classes={"cg": "soft"})

    def test_knob_ranges(self):
        with pytest.raises(ValueError, match="shed_ramp_watts"):
            AnorConfig(shed_ramp_watts=0.0)
        with pytest.raises(ValueError, match="shed_nominal_watts"):
            AnorConfig(shed_nominal_watts=-1.0)

    def test_off_by_default_builds_no_controller(self):
        system = AnorSystem(config=AnorConfig())
        assert system.manager.shed is None


class TestFacilityIncidents:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="magnitude"):
            FeederLoss(time=0.0, magnitude=1.0)
        with pytest.raises(ValueError, match="magnitude"):
            ThermalDerate(time=0.0, magnitude=0.0)
        with pytest.raises(ValueError, match="duration"):
            DemandResponseEmergency(time=0.0, duration=0.0)

    def test_zero_rates_keep_schedules_bit_identical(self):
        """Appending the new rate knobs at 0.0 must not perturb the RNG
        stream of schedules built before they existed."""
        old = FaultSchedule.random(600.0, seed=42, byzantine_rate=1 / 200.0)
        new = FaultSchedule.random(
            600.0,
            seed=42,
            byzantine_rate=1 / 200.0,
            feeder_loss_rate=0.0,
            thermal_derate_rate=0.0,
            demand_response_rate=0.0,
        )
        assert list(old) == list(new)

    def test_random_schedule_draws_facility_incidents(self):
        schedule = FaultSchedule.random(
            3600.0,
            seed=5,
            feeder_loss_rate=1 / 600.0,
            thermal_derate_rate=1 / 600.0,
            demand_response_rate=1 / 600.0,
        )
        kinds = {type(e) for e in schedule}
        assert kinds & {FeederLoss, ThermalDerate, DemandResponseEmergency}

    def test_overlapping_incidents_compose_multiplicatively(self):
        """Two open feed windows scale the manager's target by the product
        of their magnitudes; each restores independently."""
        system = AnorSystem(
            config=AnorConfig(num_nodes=4),
            fault_schedule=FaultSchedule(
                [
                    FeederLoss(time=5.0, magnitude=0.3, duration=30.0),
                    ThermalDerate(time=10.0, magnitude=0.2, duration=10.0),
                ]
            ),
        )
        nominal = system.target_source.target(0.0)
        seen = {}
        for _ in range(50):
            system.step()
            now = system.cluster.clock.now
            seen[now] = system.manager.target_source.target(now)
        assert seen[3.0] == pytest.approx(nominal)
        assert seen[8.0] == pytest.approx(nominal * 0.7)
        assert seen[15.0] == pytest.approx(nominal * 0.7 * 0.8)
        assert seen[25.0] == pytest.approx(nominal * 0.7)
        assert seen[40.0] == pytest.approx(nominal)
        log = system.faults.log_lines()
        assert any("feeder-loss start" in line for line in log)
        assert any("feeder-loss end" in line for line in log)
        assert any("thermal-derate" in line for line in log)

    def test_end_to_end_ladder_rides_a_feeder_loss(self):
        """A 40 % feeder loss walks the ladder up and, after the window
        closes, recovery steps back to normal."""
        system = AnorSystem(
            config=AnorConfig(num_nodes=4, shed_enabled=True,
                              shed_ramp_watts=200.0),
            fault_schedule=FaultSchedule(
                [FeederLoss(time=10.0, magnitude=0.4, duration=20.0)]
            ),
        )
        system.submit_now("j1", "bt", nodes=4)
        system.run(duration=90.0, max_time=3600.0)
        shed = system.manager.shed
        assert shed.ladder.escalations >= 1
        assert any("brownout-2" in line for line in shed.ladder.transitions)
        assert shed.severity == "normal"
