"""Partition-tolerance invariants (DESIGN.md §4e).

Covers the whole fail-safe chain: the agent-level cap lease
(:class:`AgentPolicy`), the endpoint dead-man switch and degraded autonomy
(:class:`JobTierEndpoint`), the ack/retry :class:`ReliableLink` with its
partition detector, the overshoot :class:`PowerBreaker`, and the end-to-end
safety bound — a full head↔endpoint partition injected *mid-downward-ramp*
may leave measured power over the enforceable limit for at most
``lease_ttl + lease_ramp`` (plus scheduling slack) seconds.
"""

import numpy as np
import pytest

from repro.core import AnorConfig, AnorSystem
from repro.core.job_endpoint import JobTierEndpoint
from repro.core.messages import BudgetMessage, HelloMessage
from repro.core.reliable import Ack, Envelope, ReliableLink
from repro.core.targets import SteppedTarget
from repro.core.transport import TcpLink
from repro.facility.breaker import PowerBreaker
from repro.faults.events import NetworkPartition, PartitionEnd, PartitionStart
from repro.faults.schedule import FaultSchedule
from repro.geopm.agent import AgentPolicy, AgentSample
from repro.geopm.endpoint import Endpoint
from repro.modeling.quadratic import QuadraticPowerModel
from repro.workloads.nas import P_NODE_MIN


def make_endpoint(**kwargs):
    geopm = Endpoint(job_id="j")
    link = TcpLink(latency=0.0)
    defaults = dict(
        p_min=140.0,
        p_max=280.0,
        default_model=QuadraticPowerModel.from_anchors(2.0, 1.3, 140.0, 280.0),
        feedback_enabled=False,
    )
    defaults.update(kwargs)
    endpoint = JobTierEndpoint("j", "bt", 2, geopm, link, **defaults)
    return endpoint, geopm, link


def leased_budget(cap, *, t=0.0, ttl=10.0, floor=None):
    return BudgetMessage("j", cap, t, lease_ttl=ttl, safe_floor=floor)


# --------------------------------------------------------------------------
# Agent tier: AgentPolicy is itself a lease.
# --------------------------------------------------------------------------


class TestAgentPolicyLease:
    def test_no_lease_means_constant_cap(self):
        policy = AgentPolicy(power_cap_node=200.0, issued_at=0.0)
        for now in (0.0, 100.0, 1e6):
            assert policy.effective_cap(now) == 200.0

    def test_cap_holds_until_expiry(self):
        policy = AgentPolicy(
            power_cap_node=200.0, issued_at=0.0, lease_ttl=10.0,
            safe_floor=140.0, ramp_seconds=30.0,
        )
        assert policy.effective_cap(9.9) == 200.0
        assert policy.effective_cap(10.0) == 200.0

    def test_linear_ramp_to_floor(self):
        policy = AgentPolicy(
            power_cap_node=200.0, issued_at=0.0, lease_ttl=10.0,
            safe_floor=140.0, ramp_seconds=30.0,
        )
        # 15 s past expiry = halfway down the 30 s ramp.
        assert policy.effective_cap(25.0) == pytest.approx(170.0)
        assert policy.effective_cap(40.0) == 140.0
        assert policy.effective_cap(1e6) == 140.0

    def test_decay_is_monotone_nonincreasing(self):
        policy = AgentPolicy(
            power_cap_node=220.0, issued_at=5.0, lease_ttl=8.0,
            safe_floor=150.0, ramp_seconds=20.0,
        )
        caps = [policy.effective_cap(t) for t in np.linspace(0.0, 60.0, 241)]
        assert all(b <= a for a, b in zip(caps, caps[1:]))

    def test_floor_above_cap_never_raises(self):
        policy = AgentPolicy(
            power_cap_node=180.0, issued_at=0.0, lease_ttl=5.0,
            safe_floor=250.0, ramp_seconds=10.0,
        )
        for now in (0.0, 7.0, 100.0):
            assert policy.effective_cap(now) == 180.0

    def test_zero_ramp_drops_straight_to_floor(self):
        policy = AgentPolicy(
            power_cap_node=200.0, issued_at=0.0, lease_ttl=5.0,
            safe_floor=140.0, ramp_seconds=0.0,
        )
        assert policy.effective_cap(5.0) == 200.0
        assert policy.effective_cap(5.1) == 140.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AgentPolicy(power_cap_node=200.0, lease_ttl=0.0)
        with pytest.raises(ValueError):
            AgentPolicy(power_cap_node=200.0, ramp_seconds=-1.0)


# --------------------------------------------------------------------------
# Job tier: the endpoint dead-man switch and degraded autonomy.
# --------------------------------------------------------------------------


class TestEndpointLease:
    def test_leased_budget_arms_agent_policies(self):
        endpoint, geopm, link = make_endpoint(lease_ramp_seconds=20.0)
        link.send_down(leased_budget(200.0, ttl=10.0), 0.0)
        endpoint.step(0.0)
        policy = geopm.take_policy()
        assert policy.power_cap_node == 200.0
        assert policy.lease_ttl == 10.0
        assert policy.ramp_seconds == 20.0
        assert policy.safe_floor == 140.0  # defaults to p_min

    def test_leaseless_budget_leaves_legacy_policy(self):
        endpoint, geopm, link = make_endpoint()
        link.send_down(BudgetMessage("j", 200.0, 0.0), 0.0)
        endpoint.step(0.0)
        policy = geopm.take_policy()
        assert policy.lease_ttl is None
        assert not endpoint.degraded

    def test_policy_refreshed_every_step_while_leased(self):
        # The agents' own dead-man stays armed-but-quiet only if the
        # endpoint re-stamps issued_at every control period.
        endpoint, geopm, link = make_endpoint()
        link.send_down(leased_budget(200.0, ttl=30.0), 0.0)
        endpoint.step(0.0)
        geopm.take_policy()
        endpoint.step(5.0)
        policy = geopm.take_policy()
        assert policy is not None and policy.issued_at == 5.0

    def test_expiry_enters_degraded_and_decays_to_floor(self):
        endpoint, geopm, link = make_endpoint(lease_ramp_seconds=20.0)
        link.send_down(leased_budget(200.0, ttl=10.0), 0.0)
        caps = {}
        for t in np.arange(0.0, 41.0, 1.0):
            endpoint.step(float(t))
            policy = geopm.take_policy()
            if policy is not None:
                caps[float(t)] = policy.power_cap_node
        assert endpoint.degraded
        assert endpoint.lease_expiries == 1
        # Still at the budget through expiry, at the floor after the ramp.
        assert caps[10.0] == 200.0
        assert caps[max(caps)] == 140.0
        # Never raises on the way down.
        ordered = [caps[t] for t in sorted(caps)]
        assert all(b <= a for a, b in zip(ordered, ordered[1:]))
        # Fully decayed within ttl + ramp of the last contact.
        decayed_by = min(t for t, c in caps.items() if c == 140.0)
        assert decayed_by <= 10.0 + 20.0 + 1.0

    def test_per_message_floor_takes_precedence(self):
        endpoint, geopm, link = make_endpoint(
            lease_ramp_seconds=5.0, safe_floor=150.0
        )
        link.send_down(leased_budget(200.0, ttl=5.0, floor=160.0), 0.0)
        last = None
        for t in np.arange(0.0, 20.0, 1.0):
            endpoint.step(float(t))
            policy = geopm.take_policy()
            if policy is not None:
                last = policy.power_cap_node
        assert last == 160.0  # message floor, not the configured 150 or p_min

    def test_budget_receipt_exits_degraded(self):
        endpoint, geopm, link = make_endpoint(lease_ramp_seconds=10.0)
        link.send_down(leased_budget(200.0, ttl=5.0), 0.0)
        for t in range(0, 20):
            endpoint.step(float(t))
            geopm.take_policy()
        assert endpoint.degraded
        link.send_down(leased_budget(210.0, t=20.0, ttl=5.0), 20.0)
        endpoint.step(20.0)
        assert not endpoint.degraded
        assert endpoint.degraded_seconds > 0.0
        assert geopm.take_policy().power_cap_node == 210.0

    def test_armed_from_birth_without_any_budget(self):
        # An endpoint admitted mid-partition never hears from the head: it
        # must still decay from p_max rather than sit uncapped forever.
        endpoint, geopm, link = make_endpoint(
            lease_ttl=5.0, lease_ramp_seconds=10.0
        )
        last = None
        for t in range(0, 25):
            endpoint.step(float(t))
            policy = geopm.take_policy()
            if policy is not None:
                last = policy.power_cap_node
        assert endpoint.degraded
        assert last == 140.0

    def test_degraded_suppresses_dither(self):
        endpoint, geopm, link = make_endpoint(
            feedback_enabled=True, lease_ramp_seconds=5.0
        )
        link.send_down(leased_budget(200.0, ttl=5.0), 0.0)
        caps = []
        for t in range(0, 40):
            endpoint.step(float(t))
            policy = geopm.take_policy()
            if policy is not None:
                caps.append(policy.power_cap_node)
        # Once fully decayed the cap pins to the floor — no ±6 % excitation.
        assert caps[-1] == 140.0
        tail = [c for c in caps if c == 140.0]
        assert len(tail) >= 1 and max(caps[caps.index(140.0):]) == 140.0

    def test_rehello_reports_degraded_history(self):
        endpoint, geopm, link = make_endpoint(lease_ramp_seconds=5.0)
        link.send_down(leased_budget(200.0, ttl=5.0), 0.0)
        for t in range(0, 15):
            endpoint.step(float(t))
        link.recv_up(15.0)  # drain the original HELLO + statuses
        fresh = TcpLink(latency=0.0)
        endpoint.reconnect(fresh)
        endpoint.step(16.0)
        hello = [m for m in fresh.recv_up(16.0) if isinstance(m, HelloMessage)]
        assert len(hello) == 1
        assert hello[0].degraded_seconds > 0.0

    def test_lease_clears_when_head_stops_leasing(self):
        endpoint, geopm, link = make_endpoint()
        link.send_down(leased_budget(200.0, ttl=5.0), 0.0)
        endpoint.step(0.0)
        link.send_down(BudgetMessage("j", 190.0, 1.0), 1.0)  # no lease_ttl
        endpoint.step(1.0)
        for t in range(2, 30):
            endpoint.step(float(t))
        assert not endpoint.degraded  # lease cleared; legacy hold-last rules


# --------------------------------------------------------------------------
# Reliable messaging: ack/retry, dedupe, and the partition detector.
# --------------------------------------------------------------------------


def make_reliable_pair(**kwargs):
    link = TcpLink(latency=0.0)
    defaults = dict(jitter=0.0, base_backoff=2.0, partition_attempts=3)
    defaults.update(kwargs)
    cluster = ReliableLink(link, "cluster", seed=1, name="L", **defaults)
    job = ReliableLink(link, "job", seed=2, name="L", **defaults)
    return cluster, job, link


class TestReliableLink:
    def test_round_trip_and_ack_clears_outstanding(self):
        cluster, job, _ = make_reliable_pair()
        cluster.send_down("cap", 0.0)
        assert job.recv_down(0.0) == ["cap"]
        cluster.recv_up(0.0)  # consumes the batched ack
        assert cluster.acked == 1
        assert not cluster._outstanding

    def test_duplicates_are_suppressed_but_reacked(self):
        cluster, job, link = make_reliable_pair()
        link.send_down(Envelope(seq=0, payload="x"), 0.0)
        link.send_down(Envelope(seq=0, payload="x"), 0.0)
        assert job.recv_down(0.0) == ["x"]
        assert job.duplicates == 1
        # Both copies were acked — the original ack may be the lost frame.
        acks = [f for f in link.recv_up(0.0) if isinstance(f, Ack)]
        assert acks and acks[0].seqs == (0, 0)

    def test_bare_payload_passthrough(self):
        cluster, job, link = make_reliable_pair()
        link.send_down("legacy", 0.0)
        assert job.recv_down(0.0) == ["legacy"]

    def test_out_of_order_delivery_dedupes_by_floor_and_set(self):
        cluster, job, link = make_reliable_pair()
        for seq in (2, 0, 1, 2, 0):
            link.send_down(Envelope(seq=seq, payload=seq), 0.0)
        assert job.recv_down(0.0) == [2, 0, 1]
        assert job.duplicates == 2
        assert job._cum_floor == 2 and not job._seen

    def test_retransmit_until_partition_declared_then_heal(self):
        cluster, job, link = make_reliable_pair()
        link.down.partitioned = True
        link.up.partitioned = True
        cluster.send_down("cap", 0.0)
        t = 0.0
        while cluster.partitioned_since is None and t < 120.0:
            t += 2.0
            cluster.recv_up(t)
        assert cluster.partitioned_since is not None
        assert cluster.retransmits >= 3
        assert isinstance(cluster.faults[0], PartitionStart)
        declared_at = cluster.partitioned_since
        # Heal the wire; the next retransmit + ack round closes the outage.
        link.down.partitioned = False
        link.up.partitioned = False
        healed_at = None
        while healed_at is None and t < 300.0:
            t += 2.0
            cluster.recv_up(t)
            assert job.recv_down(t) in ([], ["cap"])
            if cluster.partitioned_since is None and len(cluster.faults) == 2:
                healed_at = t
        end = cluster.faults[1]
        assert isinstance(end, PartitionEnd)
        assert end.outage_seconds == pytest.approx(healed_at - declared_at)

    def test_window_wrap_inherits_delivery_debt(self):
        # A sender busy enough to supersede every envelope before it reaches
        # partition_attempts must still declare the partition: the
        # replacement inherits the evicted envelope's attempts.
        cluster, job, link = make_reliable_pair(window=2)
        link.down.partitioned = True
        link.up.partitioned = True
        t = 0.0
        while cluster.partitioned_since is None and t < 120.0:
            cluster.send_down(f"cap@{t}", t)
            t += 2.0
            cluster.recv_up(t)
        assert cluster.superseded > 0
        assert cluster.partitioned_since is not None

    def test_ack_resets_partition_evidence(self):
        # Baseline loss accumulates attempts; an ack for *any* envelope
        # proves the link alive and must zero the evidence on the rest.
        cluster, job, link = make_reliable_pair()
        cluster.send_down("a", 0.0)
        cluster.send_down("b", 0.0)
        for entry in cluster._outstanding.values():
            entry.attempts = 2  # one retransmit away from a declaration
        link.send_up(Ack(seqs=(0,)), 1.0)
        cluster.recv_up(1.0)
        assert [e.attempts for e in cluster._outstanding.values()] == [0]

    def test_window_bounds_outstanding(self):
        cluster, job, link = make_reliable_pair(window=4)
        link.down.partitioned = True
        for i in range(10):
            cluster.send_down(i, float(i))
        assert len(cluster._outstanding) == 4
        assert cluster.superseded == 6

    def test_side_verb_guards(self):
        cluster, job, _ = make_reliable_pair()
        with pytest.raises(RuntimeError):
            cluster.send_up("x", 0.0)
        with pytest.raises(RuntimeError):
            cluster.recv_down(0.0)
        with pytest.raises(RuntimeError):
            job.send_down("x", 0.0)
        with pytest.raises(RuntimeError):
            job.recv_up(0.0)

    def test_parameter_validation(self):
        link = TcpLink(latency=0.0)
        with pytest.raises(ValueError):
            ReliableLink(link, "sideways")
        with pytest.raises(ValueError):
            ReliableLink(link, "cluster", window=0)
        with pytest.raises(ValueError):
            ReliableLink(link, "cluster", base_backoff=0.0)
        with pytest.raises(ValueError):
            ReliableLink(link, "cluster", jitter=1.0)
        with pytest.raises(ValueError):
            ReliableLink(link, "cluster", partition_attempts=0)

    def test_backoff_is_exponential_and_capped(self):
        cluster, _, _ = make_reliable_pair(max_backoff=10.0)
        assert cluster._backoff(0) == 2.0
        assert cluster._backoff(1) == 4.0
        assert cluster._backoff(2) == 8.0
        assert cluster._backoff(5) == 10.0  # capped

    def test_seeded_jitter_is_reproducible(self):
        link = TcpLink(latency=0.0)
        a = ReliableLink(link, "cluster", seed=9, jitter=0.25)
        b = ReliableLink(TcpLink(latency=0.0), "cluster", seed=9, jitter=0.25)
        assert [a._backoff(i) for i in range(5)] == [b._backoff(i) for i in range(5)]


# --------------------------------------------------------------------------
# The overshoot breaker state machine.
# --------------------------------------------------------------------------


class TestPowerBreaker:
    def test_trips_only_on_consecutive_strikes(self):
        b = PowerBreaker(margin=0.1, trip_rounds=3)
        b.observe(1200.0, 1000.0)
        b.observe(1200.0, 1000.0)
        b.observe(1000.0, 1000.0)  # clean round resets the streak
        b.observe(1200.0, 1000.0)
        b.observe(1200.0, 1000.0)
        assert b.state == "closed" and not b.tripped
        b.observe(1200.0, 1000.0)
        assert b.state == "open" and b.tripped and b.trips == 1

    def test_margin_is_respected(self):
        b = PowerBreaker(margin=0.1, trip_rounds=1)
        b.observe(1099.0, 1000.0)  # under target*(1+margin): clean
        assert b.state == "closed"
        b.observe(1101.0, 1000.0)
        assert b.state == "open"

    def test_open_to_half_open_to_closed(self):
        b = PowerBreaker(margin=0.1, trip_rounds=1, reset_rounds=2, confirm_rounds=2)
        b.observe(2000.0, 1000.0)
        assert b.state == "open"
        b.observe(900.0, 1000.0)
        b.observe(900.0, 1000.0)
        assert b.state == "half-open"
        b.observe(900.0, 1000.0)
        b.observe(900.0, 1000.0)
        assert b.state == "closed"
        assert b.trips == 1

    def test_half_open_strike_reopens_immediately(self):
        b = PowerBreaker(margin=0.1, trip_rounds=1, reset_rounds=1)
        b.observe(2000.0, 1000.0)
        b.observe(900.0, 1000.0)
        assert b.state == "half-open"
        b.observe(2000.0, 1000.0)
        assert b.state == "open" and b.trips == 2

    def test_dirty_rounds_reset_reset_progress(self):
        b = PowerBreaker(margin=0.1, trip_rounds=1, reset_rounds=2)
        b.observe(2000.0, 1000.0)
        b.observe(900.0, 1000.0)
        b.observe(2000.0, 1000.0)  # violation while open: start over
        b.observe(900.0, 1000.0)
        assert b.state == "open"
        b.observe(900.0, 1000.0)
        assert b.state == "half-open"

    def test_nonpositive_target_is_ignored(self):
        b = PowerBreaker(margin=0.0, trip_rounds=1)
        b.observe(1e9, 0.0)
        b.observe(1e9, -5.0)
        assert b.state == "closed" and b.strikes == 0

    def test_gauge_values(self):
        b = PowerBreaker(margin=0.1, trip_rounds=1, reset_rounds=1)
        assert b.gauge_value == 0
        b.observe(2000.0, 1000.0)
        assert b.gauge_value == 2
        b.observe(900.0, 1000.0)
        assert b.gauge_value == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerBreaker(margin=-0.1)
        with pytest.raises(ValueError):
            PowerBreaker(trip_rounds=0)
        with pytest.raises(ValueError):
            PowerBreaker(reset_rounds=0)
        with pytest.raises(ValueError):
            PowerBreaker(confirm_rounds=0)


# --------------------------------------------------------------------------
# Cluster tier: degraded re-HELLO warm merge.
# --------------------------------------------------------------------------


class TestDegradedRejoin:
    def test_hello_with_model_warm_merges(self):
        from repro.budget import EvenSlowdownBudgeter
        from repro.core.cluster_manager import ClusterPowerManager
        from repro.core.targets import ConstantTarget
        from repro.modeling.classifier import JobClassifier
        from repro.core.framework import precharacterized_models

        manager = ClusterPowerManager(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(840.0),
            classifier=JobClassifier(precharacterized_models()),
            total_nodes=4,
        )
        link = TcpLink(latency=0.0)
        manager.register_link(link)
        m = QuadraticPowerModel.from_anchors(2.0, 1.4, 140.0, 280.0)
        link.send_up(
            HelloMessage(
                "j1", "bt", 2, 0.0,
                model_a=m.a, model_b=m.b, model_c=m.c, model_r2=0.97,
                degraded_seconds=120.0,
            ),
            0.0,
        )
        manager.step(0.0)
        assert manager.hello_merges == 1
        assert manager.jobs["j1"].online_model is not None
        assert any("warm-merged" in e for e in manager.events)

    def test_plain_hello_does_not_merge(self):
        from repro.budget import EvenSlowdownBudgeter
        from repro.core.cluster_manager import ClusterPowerManager
        from repro.core.targets import ConstantTarget
        from repro.modeling.classifier import JobClassifier
        from repro.core.framework import precharacterized_models

        manager = ClusterPowerManager(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(840.0),
            classifier=JobClassifier(precharacterized_models()),
            total_nodes=4,
        )
        link = TcpLink(latency=0.0)
        manager.register_link(link)
        link.send_up(HelloMessage("j1", "bt", 2, 0.0), 0.0)
        manager.step(0.0)
        assert manager.hello_merges == 0


# --------------------------------------------------------------------------
# Fault vocabulary and schedule validation.
# --------------------------------------------------------------------------


class TestScheduleValidation:
    def test_negative_rate_names_the_field(self):
        with pytest.raises(ValueError, match="node_crash_rate"):
            FaultSchedule.random(3600.0, seed=0, node_crash_rate=-1.0)
        with pytest.raises(ValueError, match="meter_outage_rate"):
            FaultSchedule.random(3600.0, seed=0, meter_outage_rate=-0.5)

    def test_nonpositive_duration_names_the_field(self):
        with pytest.raises(ValueError, match="burst_duration"):
            FaultSchedule.random(
                3600.0, seed=0, link_burst_rate=0.01, burst_duration=0.0
            )

    def test_burst_drop_bounds(self):
        with pytest.raises(ValueError, match="burst_drop"):
            FaultSchedule.random(3600.0, seed=0, burst_drop=1.5)

    def test_bad_node_count(self):
        with pytest.raises(ValueError, match="num_nodes"):
            FaultSchedule.random(3600.0, seed=0, num_nodes=0)

    def test_partition_event_validation(self):
        with pytest.raises(ValueError):
            NetworkPartition(time=10.0, duration=0.0)


# --------------------------------------------------------------------------
# End to end: the safety bound under a partition injected mid-downward-ramp.
# --------------------------------------------------------------------------

LEASE_TTL = 15.0
LEASE_RAMP = 20.0
SLACK = 15.0  # control-period discretisation + agent-tree propagation
NUM_NODES = 4


def run_partitioned_system(*, partition, seed=11, lease=True):
    from repro.budget import EvenSlowdownBudgeter

    cfg = AnorConfig(
        num_nodes=NUM_NODES,
        seed=seed,
        lease_ttl=LEASE_TTL if lease else None,
        lease_ramp_seconds=LEASE_RAMP,
        reliable_messaging=lease,
    )
    # The dangerous direction: the target steps DOWN while the head is
    # unreachable, so stale caps are sized for the higher, stale target.
    target = SteppedTarget([0.0, 150.0, 180.0], [840.0, 760.0, 680.0])
    schedule = (
        FaultSchedule([partition]) if partition is not None else None
    )
    system = AnorSystem(
        budgeter=EvenSlowdownBudgeter(),
        target_source=target,
        config=cfg,
        fault_schedule=schedule,
    )
    system.submit_now("bt-0", "bt")
    system.submit_now("sp-0", "sp")
    return system.run(until_idle=True, max_time=7200.0), target


def longest_over_limit(trace, *, start, floor_power, tol=0.10):
    """Longest contiguous over-limit stretch (seconds) at or after ``start``."""
    time, target, measured = trace[:, 0], trace[:, 1], trace[:, 2]
    if time.size < 2:
        return 0.0
    dt = float(np.median(np.diff(time)))
    limit = np.maximum(target, floor_power) * (1.0 + tol)
    over = (measured > limit) & (time >= start)
    worst = run = 0
    for flag in over:
        run = run + 1 if flag else 0
        worst = max(worst, run)
    return worst * dt


class TestPartitionSafetyBound:
    def test_overshoot_bounded_through_mid_ramp_partition(self):
        # Partition opens at t=160 — inside the 150→180 downward staircase —
        # and outlasts both remaining steps.
        partition = NetworkPartition(time=160.0, duration=180.0)
        result, _ = run_partitioned_system(partition=partition)
        floor_power = NUM_NODES * P_NODE_MIN
        overshoot = longest_over_limit(
            result.power_trace, start=160.0, floor_power=floor_power
        )
        assert overshoot <= LEASE_TTL + LEASE_RAMP + SLACK
        # The drill actually exercised the machinery: the reliable layer
        # declared the partition, and every job still finished.
        assert any(isinstance(f, PartitionStart) for f in result.partition_events)
        assert {t.job_id for t in result.completed} == {"bt-0", "sp-0"}

    def test_partition_heals_and_link_recovers(self):
        partition = NetworkPartition(time=160.0, duration=120.0)
        result, _ = run_partitioned_system(partition=partition)
        starts = [f for f in result.partition_events if isinstance(f, PartitionStart)]
        ends = [f for f in result.partition_events if isinstance(f, PartitionEnd)]
        assert starts and ends
        assert all(e.outage_seconds > 0 for e in ends)

    def test_partitioned_run_is_deterministic(self):
        partition = NetworkPartition(time=160.0, duration=120.0)
        a, _ = run_partitioned_system(partition=partition, seed=11)
        b, _ = run_partitioned_system(partition=partition, seed=11)
        assert np.array_equal(a.power_trace, b.power_trace)
        assert [t.job_id for t in a.completed] == [t.job_id for t in b.completed]

    def test_knobs_off_produces_no_partition_events(self):
        result, _ = run_partitioned_system(partition=None, lease=False)
        assert result.partition_events == []
        assert {t.job_id for t in result.completed} == {"bt-0", "sp-0"}
