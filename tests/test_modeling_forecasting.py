"""Tests for job-type forecasting from submission metadata (paper §2)."""

import pytest

from repro.modeling.forecasting import (
    NaiveBayesTypeForecaster,
    SubmissionMetadata,
    synthesize_submissions,
)


def meta(user="u", account="a", executable="bt.x", nodes=2, walltime=600.0):
    return SubmissionMetadata(
        user=user, account=account, executable=executable,
        nodes=nodes, walltime_request=walltime,
    )


class TestFeatures:
    def test_bucketing(self):
        f = meta(nodes=1, walltime=30.0).features()
        assert f["nodes_bucket"] == "1"
        assert f["walltime_bucket"] == "<1m"
        f = meta(nodes=6, walltime=7200.0).features()
        assert f["nodes_bucket"] == "3-8"
        assert f["walltime_bucket"] == ">1h"


class TestForecaster:
    def test_learns_clear_association(self):
        forecaster = NaiveBayesTypeForecaster()
        for i in range(20):
            forecaster.observe(meta(user=f"alice{i % 2}", executable="bt.x"), "bt")
            forecaster.observe(meta(user=f"bob{i % 2}", executable="sp.x"), "sp")
        assert forecaster.predict(meta(user="alice0", executable="bt.x")) == "bt"
        assert forecaster.predict(meta(user="bob1", executable="sp.x")) == "sp"

    def test_probabilities_normalised(self):
        forecaster = NaiveBayesTypeForecaster()
        forecaster.observe(meta(executable="bt.x"), "bt")
        forecaster.observe(meta(executable="sp.x"), "sp")
        proba = forecaster.predict_proba(meta(executable="bt.x"))
        assert sum(proba.values()) == pytest.approx(1.0)
        assert proba["bt"] > proba["sp"]

    def test_confidence_low_on_ambiguous_input(self):
        forecaster = NaiveBayesTypeForecaster()
        for _ in range(10):
            forecaster.observe(meta(user="x", executable="shared.sh"), "bt")
            forecaster.observe(meta(user="x", executable="shared.sh"), "sp")
        assert forecaster.confidence(meta(user="x", executable="shared.sh")) < 0.6

    def test_unseen_values_survive_smoothing(self):
        forecaster = NaiveBayesTypeForecaster()
        forecaster.observe(meta(executable="bt.x"), "bt")
        # Entirely novel metadata must not crash or produce NaNs.
        prediction = forecaster.predict(meta(user="stranger", executable="new.x"))
        assert prediction == "bt"

    def test_untrained_rejects(self):
        with pytest.raises(ValueError, match="no training data"):
            NaiveBayesTypeForecaster().predict(meta())

    def test_accuracy_requires_data(self):
        forecaster = NaiveBayesTypeForecaster()
        forecaster.observe(meta(), "bt")
        with pytest.raises(ValueError, match="no submissions"):
            forecaster.accuracy([])


class TestSyntheticStream:
    def test_high_accuracy_at_low_crossover(self):
        data = synthesize_submissions(
            ["bt", "sp", "ft"], 600, seed=0, crossover=0.05
        )
        train, test = data[:400], data[400:]
        forecaster = NaiveBayesTypeForecaster().fit(train)
        assert forecaster.accuracy(test) > 0.9

    def test_accuracy_degrades_with_crossover(self):
        accuracies = {}
        for crossover in (0.05, 0.5):
            data = synthesize_submissions(
                ["bt", "sp", "ft"], 600, seed=1, crossover=crossover
            )
            forecaster = NaiveBayesTypeForecaster().fit(data[:400])
            accuracies[crossover] = forecaster.accuracy(data[400:])
        assert accuracies[0.5] < accuracies[0.05]

    def test_reproducible(self):
        a = synthesize_submissions(["bt", "sp"], 50, seed=3)
        b = synthesize_submissions(["bt", "sp"], 50, seed=3)
        assert a == b

    def test_walltime_and_nodes_hints_help(self):
        """Distinct walltime/node signatures are usable features even when
        users fully overlap."""
        data = synthesize_submissions(
            ["is", "lu"], 600, seed=2, crossover=1.0,  # user/account useless
            walltime_by_type={"is": 30.0, "lu": 3000.0},
            nodes_by_type={"is": 1, "lu": 8},
        )
        forecaster = NaiveBayesTypeForecaster().fit(data[:400])
        assert forecaster.accuracy(data[400:]) > 0.8

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            synthesize_submissions([], 10)
        with pytest.raises(ValueError, match="≥ 1"):
            synthesize_submissions(["bt"], 0)
        with pytest.raises(ValueError, match="crossover"):
            synthesize_submissions(["bt"], 10, crossover=2.0)
