"""Tests for GEOPM-style trace files and their framework integration."""

import numpy as np
import pytest

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorSystem
from repro.core.targets import ConstantTarget
from repro.geopm.agent import AgentSample
from repro.geopm.tracer import TRACE_FIELDS, JobTracer, read_trace
from repro.workloads.nas import NAS_TYPES


def sample(t, power=400.0, epochs=3, cap=200.0):
    return AgentSample(
        timestamp=t, power=power, energy=power * t, epoch_count=epochs,
        nodes=2, applied_cap=cap,
    )


class TestJobTracer:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "job.trace.csv"
        with JobTracer(path, job_id="j1") as tracer:
            tracer.record(sample(1.0))
            tracer.record(sample(2.0, power=410.0, epochs=4))
        data = read_trace(path)
        assert data.shape == (2, len(TRACE_FIELDS))
        assert data[0, 0] == 1.0
        assert data[1, 1] == 410.0
        assert data[1, 3] == 4.0

    def test_rows_written_counter(self, tmp_path):
        tracer = JobTracer(tmp_path / "t.csv")
        tracer.record(sample(1.0))
        tracer.close()
        assert tracer.rows_written == 1

    def test_empty_trace_reads_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        with JobTracer(path, job_id="x"):
            pass
        assert read_trace(path).shape == (0, len(TRACE_FIELDS))

    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("hello\n")
        with pytest.raises(ValueError, match="not a trace file"):
            read_trace(path)


class TestFrameworkArtifacts:
    def test_trace_and_report_written(self, tmp_path):
        system = AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(280.0),
            config=AnorConfig(
                num_nodes=1, seed=0, output_dir=str(tmp_path / "out")
            ),
        )
        system.submit_now("is-0", "is")
        system.run(until_idle=True, max_time=600.0)
        trace_path = tmp_path / "out" / "is-0.trace.csv"
        report_path = tmp_path / "out" / "is-0.report"
        assert trace_path.exists()
        assert report_path.exists()
        data = read_trace(trace_path)
        assert data.shape[0] > 5  # one row per agent control period
        assert np.all(np.diff(data[:, 0]) > 0)  # time strictly increases
        report = report_path.read_text()
        assert "Application Totals:" in report
        assert f"epoch-count: {NAS_TYPES['is'].epochs}" in report

    def test_no_artifacts_without_output_dir(self, tmp_path):
        system = AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(280.0),
            config=AnorConfig(num_nodes=1, seed=0),
        )
        system.submit_now("is-0", "is")
        system.run(until_idle=True, max_time=600.0)
        assert system._tracers == {}
