"""Tests for the tabular simulator's state logging (paper §5.6)."""

import pytest

from repro.aqa.regulation import TabulatedSignal
from repro.tabsim.output import StateLogger, read_state_log
from repro.tabsim.simulator import SimConfig, TabularClusterSimulator
from repro.tabsim.tables import SimJobType
from repro.workloads.trace import JobRequest, Schedule


def make_sim(logger):
    types = [SimJobType("x", 2, 140.0, 260.0, t_at_p_max=40.0, t_at_p_min=80.0)]
    schedule = Schedule(requests=[JobRequest(0.0, "j0", "x", 2)], duration=10.0)
    return TabularClusterSimulator(
        types,
        schedule,
        TabulatedSignal([0.0], [0.0]),
        SimConfig(num_nodes=6, average_power=1500.0, reserve=100.0, seed=0),
        state_logger=logger,
    )


class TestStateLogger:
    def test_cadence(self, tmp_path):
        path = tmp_path / "state.jsonl"
        with StateLogger(path, every=10) as logger:
            sim = make_sim(logger)
            sim.run(50.0, drain=True, max_time=200.0)
        records = list(read_state_log(path))
        assert logger.records_written == len(records)
        assert len(records) >= 4

    def test_record_contents(self, tmp_path):
        path = tmp_path / "state.jsonl"
        with StateLogger(path, every=5) as logger:
            sim = make_sim(logger)
            sim.run(20.0)
        first = next(read_state_log(path))
        assert first["busy_nodes"] + first["idle_nodes"] == 6
        assert first["total_power"] > 0
        assert first["jobs_running"] + first["jobs_done"] + first["jobs_queued"] == 1

    def test_per_node_detail(self, tmp_path):
        path = tmp_path / "detail.jsonl"
        with StateLogger(path, every=5, include_per_node=True) as logger:
            sim = make_sim(logger)
            sim.run(10.0)
        first = next(read_state_log(path))
        assert len(first["node_cap"]) == 6
        assert len(first["node_job"]) == 6

    def test_times_increase(self, tmp_path):
        path = tmp_path / "state.jsonl"
        with StateLogger(path, every=7) as logger:
            sim = make_sim(logger)
            sim.run(60.0, drain=True, max_time=200.0)
        times = [r["time"] for r in read_state_log(path)]
        assert times == sorted(times)
        assert all(t2 - t1 == 7.0 for t1, t2 in zip(times, times[1:]))

    def test_invalid_cadence(self, tmp_path):
        with pytest.raises(ValueError, match="≥ 1"):
            StateLogger(tmp_path / "x.jsonl", every=0)
