"""Tests for numeric helpers, including property-based bisection checks."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.maths import bisect_scalar, clamp, monotone_decreasing, weighted_percentile


class TestClamp:
    def test_inside(self):
        assert clamp(5.0, 0.0, 10.0) == 5.0

    def test_below(self):
        assert clamp(-1.0, 0.0, 10.0) == 0.0

    def test_above(self):
        assert clamp(11.0, 0.0, 10.0) == 10.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError, match="empty interval"):
            clamp(0.0, 2.0, 1.0)

    @given(st.floats(-1e9, 1e9), st.floats(-1e6, 0.0), st.floats(0.0, 1e6))
    def test_result_always_inside(self, x, lo, hi):
        assert lo <= clamp(x, lo, hi) <= hi


class TestBisectScalar:
    def test_finds_root_of_linear(self):
        root = bisect_scalar(lambda x: x - 3.0, 0.0, 10.0)
        assert abs(root - 3.0) < 1e-6

    def test_decreasing_function(self):
        root = bisect_scalar(lambda x: 5.0 - x, 0.0, 10.0)
        assert abs(root - 5.0) < 1e-6

    def test_no_sign_change_returns_best_endpoint(self):
        # Both positive; lo is closer to zero.
        assert bisect_scalar(lambda x: x + 1.0, 0.0, 10.0) == 0.0
        # Both negative; hi is closer to zero.
        assert bisect_scalar(lambda x: x - 100.0, 0.0, 10.0) == 10.0

    def test_root_at_endpoint(self):
        assert bisect_scalar(lambda x: x, 0.0, 10.0) == 0.0

    def test_invalid_bracket(self):
        with pytest.raises(ValueError, match="empty bracket"):
            bisect_scalar(lambda x: x, 5.0, 1.0)

    @given(st.floats(-100.0, 100.0))
    def test_property_root_recovered(self, r):
        root = bisect_scalar(lambda x: x - r, -200.0, 200.0, tol=1e-9)
        assert abs(root - r) < 1e-6

    def test_unconvergeable_objective_raises_at_iteration_cap(self):
        # A sign-changing step never evaluates to zero, and with tol=0 the
        # bracket-width exit can never trigger: the cap must raise rather
        # than hand back an unconverged midpoint.
        step = lambda x: -1.0 if x < 0.5 else 1.0  # noqa: E731
        with pytest.raises(RuntimeError, match="max_iter=50"):
            bisect_scalar(step, 0.0, 1.0, tol=0.0, max_iter=50)

    def test_flat_plateau_converges_by_tolerance(self):
        # A wide flat-zero plateau: bisection lands inside it and returns
        # immediately, never touching the iteration cap.
        plateau = lambda x: -1.0 if x < 4.0 else (0.0 if x <= 6.0 else 1.0)  # noqa: E731
        root = bisect_scalar(plateau, 0.0, 10.0, max_iter=10)
        assert 4.0 <= root <= 6.0


class TestMonotoneDecreasing:
    def test_decreasing(self):
        assert monotone_decreasing([3.0, 2.0, 1.0])

    def test_flat_allowed_when_not_strict(self):
        assert monotone_decreasing([2.0, 2.0, 1.0])

    def test_flat_rejected_when_strict(self):
        assert not monotone_decreasing([2.0, 2.0, 1.0], strict=True)

    def test_increasing_rejected(self):
        assert not monotone_decreasing([1.0, 2.0])

    def test_short_sequences_trivially_monotone(self):
        assert monotone_decreasing([])
        assert monotone_decreasing([1.0])


class TestWeightedPercentile:
    def test_equal_weights_median(self):
        v = [1.0, 2.0, 3.0, 4.0, 5.0]
        w = [1.0] * 5
        assert weighted_percentile(v, w, 50.0) == 3.0

    def test_heavy_weight_dominates(self):
        assert weighted_percentile([1.0, 100.0], [99.0, 1.0], 50.0) == 1.0

    def test_bounds(self):
        v, w = [1.0, 2.0, 3.0], [1.0, 1.0, 1.0]
        assert weighted_percentile(v, w, 0.0) == 1.0
        assert weighted_percentile(v, w, 100.0) == 3.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            weighted_percentile([1.0], [1.0, 2.0], 50.0)

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            weighted_percentile([], [], 50.0)

    def test_zero_weights(self):
        with pytest.raises(ValueError, match="zero"):
            weighted_percentile([1.0], [0.0], 50.0)

    def test_q_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            weighted_percentile([1.0], [1.0], 101.0)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
        st.floats(0.0, 100.0),
    )
    def test_result_is_one_of_the_values(self, values, q):
        w = np.ones(len(values))
        result = weighted_percentile(values, w, q)
        assert result in values
