"""Tests for the ``anor`` command-line interface."""

import pytest

from repro.cli import _COMMANDS, main


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_all_figures_registered(self):
        expected = {f"fig{i}" for i in (3, 4, 5, 6, 7, 8, 9, 10, 11)} | {
            "resilience",
            "all",
        }
        assert set(_COMMANDS) == expected

    def test_help_lists_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "fig4" in out


class TestExecution:
    def test_fig4_quick_runs(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "even-power" in out
        assert "completed in" in out

    def test_fig5_quick_runs(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "ft(unknown)" in out
