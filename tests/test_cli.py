"""Tests for the ``anor`` command-line interface."""

import pytest

from repro.cli import _COMMANDS, main


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_all_figures_registered(self):
        expected = {f"fig{i}" for i in (3, 4, 5, 6, 7, 8, 9, 10, 11)} | {
            "resilience",
            "all",
        }
        assert set(_COMMANDS) == expected

    def test_help_lists_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "fig4" in out


class TestExecution:
    def test_fig4_quick_runs(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "even-power" in out
        assert "completed in" in out

    def test_fig5_quick_runs(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "ft(unknown)" in out


def _fake_fig(quick: bool, seed: int) -> str:
    # Module-level so the pool can pickle it by qualified name.
    return f"fake(quick={quick}, seed={seed}, value={seed * 11})"


class TestRunAllSeedSweep:
    def test_sweep_matches_serial_and_labels_seeds(self, monkeypatch):
        from repro import cli

        monkeypatch.setattr(
            cli, "_COMMANDS", {"figx": (_fake_fig, "fake"), "all": (None, "")}
        )
        serial = cli._run_all(True, 0, None, jobs=1, seeds=[0, 1, 2])
        parallel = cli._run_all(True, 0, None, jobs=2, seeds=[0, 1, 2])

        def tables(text: str) -> list[str]:
            # Header lines carry wall-clock timings; everything else must
            # be byte-identical between serial and pooled runs.
            return [ln for ln in text.splitlines() if not ln.startswith("===")]

        assert tables(serial) == tables(parallel)
        assert "[seed=2] figx" in parallel
        assert "fake(quick=True, seed=2, value=22)" in parallel

    def test_single_seed_output_unchanged(self, monkeypatch):
        from repro import cli

        monkeypatch.setattr(
            cli, "_COMMANDS", {"figx": (_fake_fig, "fake"), "all": (None, "")}
        )
        out = cli._run_all(True, 5, None, jobs=1)
        assert "=== figx" in out and "[seed=" not in out


class TestProfileCommand:
    def test_profile_prints_hot_functions(self, capsys, tmp_path):
        out_file = tmp_path / "report.txt"
        assert main(
            ["profile", "fig4", "--quick", "--top", "5", "--out", str(out_file)]
        ) == 0
        printed = capsys.readouterr().out
        assert "profile: fig4" in printed
        assert "cumulative" in printed
        assert "ncalls" in printed
        assert out_file.read_text().rstrip("\n") == printed.rstrip("\n")

    def test_profile_rejects_all(self):
        with pytest.raises(SystemExit):
            main(["profile", "all"])

    def test_profile_sort_key(self, capsys):
        assert main(["profile", "fig4", "--quick", "--sort", "tottime"]) == 0
        assert "sorted by tottime" in capsys.readouterr().out
