"""Tests for power-governor agents and the multi-node agent group."""

import pytest

from repro.geopm.agent import AgentPolicy, AgentSample, JobAgentGroup, PowerGovernorAgent
from repro.geopm.endpoint import Endpoint
from repro.geopm.msr import MsrBank
from repro.geopm.profiler import EpochProfiler
from repro.geopm.signals import ControlNames, PlatformIO


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_pio(clock):
    return PlatformIO([MsrBank(), MsrBank()], clock_fn=clock)


def make_group(num_nodes, *, fanout=8):
    clock = FakeClock()
    pios = [make_pio(clock) for _ in range(num_nodes)]
    profiler = EpochProfiler(num_ranks=num_nodes)
    endpoint = Endpoint(job_id="test")
    group = JobAgentGroup(pios, profiler, endpoint, fanout=fanout)
    return clock, pios, profiler, endpoint, group


class TestAgentPolicy:
    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError, match="positive"):
            AgentPolicy(power_cap_node=0.0)


class TestSingleAgent:
    def test_applies_delivered_policy(self):
        clock = FakeClock()
        pio = make_pio(clock)
        agent = PowerGovernorAgent(pio, tree_index=0)
        agent.deliver_policy(AgentPolicy(power_cap_node=200.0))
        sample = agent.step(0.0)
        assert pio.read_control(ControlNames.CPU_POWER_LIMIT_CONTROL) == 200.0
        assert sample.applied_cap == 200.0

    def test_no_policy_keeps_defaults(self):
        clock = FakeClock()
        pio = make_pio(clock)
        agent = PowerGovernorAgent(pio, tree_index=0)
        agent.step(0.0)
        assert pio.read_control(ControlNames.CPU_POWER_LIMIT_CONTROL) == 280.0

    def test_root_reports_epochs(self):
        clock = FakeClock()
        profiler = EpochProfiler(num_ranks=1)
        profiler.prof_epoch(0)
        agent = PowerGovernorAgent(make_pio(clock), tree_index=0, profiler=profiler)
        assert agent.step(0.0).epoch_count == 1

    def test_non_root_reports_zero_epochs(self):
        clock = FakeClock()
        agent = PowerGovernorAgent(make_pio(clock), tree_index=1)
        assert agent.step(0.0).epoch_count == 0


class TestGroupPolicyPropagation:
    def test_policy_reaches_all_nodes_within_height_steps(self):
        clock, pios, _, endpoint, group = make_group(16, fanout=8)
        endpoint.write_policy(AgentPolicy(power_cap_node=180.0))
        # Height-2 tree: root applies at step 1, leaves by step 3.
        for step in range(1 + group.tree.height):
            clock.now += 1.0
            group.step(clock.now)
        assert all(cap == pytest.approx(180.0, abs=0.5) for cap in group.applied_caps())

    def test_staleness_one_hop_per_level(self):
        clock, pios, _, endpoint, group = make_group(3, fanout=2)
        endpoint.write_policy(AgentPolicy(power_cap_node=150.0))
        clock.now = 1.0
        group.step(clock.now)
        # Root applied it; children receive it for the next step.
        caps = group.applied_caps()
        assert caps[0] == pytest.approx(150.0, abs=0.5)
        assert caps[1] == 280.0
        clock.now = 2.0
        group.step(clock.now)
        assert group.applied_caps()[1] == pytest.approx(150.0, abs=0.5)

    def test_last_policy_wins(self):
        clock, _, _, endpoint, group = make_group(1)
        endpoint.write_policy(AgentPolicy(power_cap_node=150.0))
        endpoint.write_policy(AgentPolicy(power_cap_node=260.0))
        clock.now = 1.0
        group.step(clock.now)
        assert group.applied_caps()[0] == pytest.approx(260.0, abs=0.5)


class TestGroupSampling:
    def test_root_sample_published_to_endpoint(self):
        clock, _, _, endpoint, group = make_group(2, fanout=2)
        clock.now = 1.0
        sample = group.step(clock.now)
        assert endpoint.read_sample() is sample

    def test_aggregated_nodes_count_converges(self):
        clock, _, _, endpoint, group = make_group(4, fanout=2)
        for i in range(4):  # allow child samples to propagate up
            clock.now += 1.0
            group.step(clock.now)
        assert endpoint.read_sample().nodes == 4

    def test_power_aggregates_subtree(self):
        clock, pios, _, endpoint, group = make_group(2, fanout=2)
        # Deposit energy on both nodes, then step twice so the child's
        # sample reaches the root aggregate.
        for step in range(3):
            for pio in pios:
                for bank in pio._banks:
                    bank.accumulate_energy(50.0)
            clock.now += 1.0
            group.step(clock.now)
        sample = endpoint.read_sample()
        # Each node dissipates 100 J/s => two nodes ≈ 200 W (child lags 1 step).
        assert sample.power == pytest.approx(200.0, rel=0.2)

    def test_epoch_count_comes_from_root_profiler(self):
        clock, _, profiler, endpoint, group = make_group(2, fanout=2)
        profiler.set_rank_progress(0, 3)
        profiler.set_rank_progress(1, 2)
        clock.now = 1.0
        sample = group.step(clock.now)
        assert sample.epoch_count == 2

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            JobAgentGroup([], EpochProfiler(1), Endpoint())


class TestEndpoint:
    def test_take_policy_consumes(self):
        ep = Endpoint()
        ep.write_policy(AgentPolicy(power_cap_node=100.0))
        assert ep.has_pending_policy
        assert ep.take_policy().power_cap_node == 100.0
        assert ep.take_policy() is None

    def test_sample_overwrites(self):
        ep = Endpoint()
        s1 = AgentSample(1.0, 10.0, 5.0, 1, 1, 280.0)
        s2 = AgentSample(2.0, 20.0, 15.0, 2, 1, 280.0)
        ep.publish_sample(s1)
        ep.publish_sample(s2)
        assert ep.read_sample() is s2
        assert ep.samples_published == 2
