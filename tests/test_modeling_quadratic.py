"""Tests for the quadratic power-performance model (paper §4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.modeling.quadratic import QuadraticPowerModel


class TestFromAnchors:
    def test_anchors_hit(self, simple_model):
        assert simple_model.time_at(280.0) == pytest.approx(2.0)
        assert simple_model.time_at(140.0) == pytest.approx(3.0)

    def test_monotone_decreasing(self, simple_model):
        assert simple_model.is_monotone_decreasing()

    def test_sensitivity(self, simple_model):
        assert simple_model.sensitivity == pytest.approx(1.5)

    def test_flat_curve_when_sensitivity_one(self):
        m = QuadraticPowerModel.from_anchors(2.0, 1.0, 140.0, 280.0)
        assert m.time_at(140.0) == pytest.approx(m.time_at(280.0))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            QuadraticPowerModel.from_anchors(-1.0, 1.5, 140.0, 280.0)

    def test_sub_unity_sensitivity_rejected(self):
        with pytest.raises(ValueError, match="≥ 1"):
            QuadraticPowerModel.from_anchors(2.0, 0.9, 140.0, 280.0)

    def test_degenerate_range_rejected(self):
        with pytest.raises(ValueError):
            QuadraticPowerModel.from_anchors(2.0, 1.5, 280.0, 140.0)

    @given(
        t=st.floats(0.01, 100.0),
        s=st.floats(1.0, 3.0),
        frac=st.floats(0.0, 0.9),
    )
    @settings(max_examples=60)
    def test_property_monotone_and_anchored(self, t, s, frac):
        m = QuadraticPowerModel.from_anchors(
            t, s, 140.0, 280.0, end_slope_fraction=frac
        )
        assert m.is_monotone_decreasing()
        assert m.time_at(280.0) == pytest.approx(t, rel=1e-9)
        assert m.time_at(140.0) == pytest.approx(s * t, rel=1e-9)


class TestEvaluation:
    def test_clamps_below_range(self, simple_model):
        assert simple_model.time_at(100.0) == simple_model.time_at(140.0)

    def test_clamps_above_range(self, simple_model):
        assert simple_model.time_at(400.0) == simple_model.time_at(280.0)

    def test_vectorized(self, simple_model):
        ps = np.array([140.0, 210.0, 280.0])
        ts = simple_model.time_per_epoch(ps)
        assert ts.shape == (3,)
        assert ts[0] > ts[1] > ts[2]

    def test_slowdown_at_max_is_zero(self, simple_model):
        assert simple_model.slowdown_at(280.0) == pytest.approx(0.0)

    def test_slowdown_at_min(self, simple_model):
        assert simple_model.slowdown_at(140.0) == pytest.approx(0.5)

    def test_t_min_t_max(self, simple_model):
        assert simple_model.t_min == pytest.approx(2.0)
        assert simple_model.t_max == pytest.approx(3.0)


class TestInverse:
    @given(st.floats(140.0, 280.0))
    @settings(max_examples=60)
    def test_roundtrip(self, p):
        m = QuadraticPowerModel.from_anchors(2.0, 1.5, 140.0, 280.0)
        t = m.time_at(p)
        p_back = m.power_for_time(t)
        assert m.time_at(p_back) == pytest.approx(t, rel=1e-6)

    def test_too_fast_target_gives_max_power(self, simple_model):
        assert simple_model.power_for_time(0.1) == 280.0

    def test_too_slow_target_gives_min_power(self, simple_model):
        assert simple_model.power_for_time(100.0) == 140.0

    def test_power_for_slowdown_one_is_max(self, simple_model):
        assert simple_model.power_for_slowdown(1.0) == 280.0

    def test_power_for_slowdown_rejects_below_one(self, simple_model):
        with pytest.raises(ValueError, match="≥ 1"):
            simple_model.power_for_slowdown(0.5)

    def test_linear_model_inverse(self):
        m = QuadraticPowerModel(a=0.0, b=-0.01, c=5.0, p_min=140.0, p_max=280.0)
        t = m.time_at(200.0)
        assert m.power_for_time(t) == pytest.approx(200.0)

    def test_constant_model_inverse(self):
        m = QuadraticPowerModel(a=0.0, b=0.0, c=2.0, p_min=140.0, p_max=280.0)
        # Any cap achieves the constant time; inverse reports max power.
        assert m.power_for_time(2.0) == 280.0

    @given(st.floats(1.0, 2.0))
    @settings(max_examples=40)
    def test_slowdown_roundtrip(self, s):
        m = QuadraticPowerModel.from_anchors(2.0, 2.0, 140.0, 280.0)
        p = m.power_for_slowdown(s)
        if 140.0 < p < 280.0:
            assert m.time_at(p) / m.t_min == pytest.approx(s, rel=1e-6)


class TestFit:
    def test_exact_quadratic_recovered(self):
        truth = QuadraticPowerModel.from_anchors(2.0, 1.6, 140.0, 280.0)
        ps = np.linspace(140.0, 280.0, 20)
        ts = truth.time_per_epoch(ps)
        fit = QuadraticPowerModel.fit(ps, ts, 140.0, 280.0)
        assert fit.r2 == pytest.approx(1.0, abs=1e-12)
        assert fit.model.a == pytest.approx(truth.a, rel=1e-6)
        assert fit.model.b == pytest.approx(truth.b, rel=1e-6)
        assert fit.model.c == pytest.approx(truth.c, rel=1e-6)

    def test_noisy_fit_r2_below_one(self, rng):
        truth = QuadraticPowerModel.from_anchors(2.0, 1.6, 140.0, 280.0)
        ps = np.repeat(np.linspace(140.0, 280.0, 8), 5)
        ts = truth.time_per_epoch(ps) * (1.0 + rng.normal(0, 0.05, ps.size))
        fit = QuadraticPowerModel.fit(ps, ts, 140.0, 280.0)
        assert 0.5 < fit.r2 < 1.0

    def test_two_distinct_caps_degrade_to_linear(self):
        ps = np.array([140.0, 140.0, 280.0, 280.0])
        ts = np.array([3.0, 3.0, 2.0, 2.0])
        fit = QuadraticPowerModel.fit(ps, ts, 140.0, 280.0)
        assert fit.model.a == 0.0
        assert fit.model.time_at(140.0) == pytest.approx(3.0)

    def test_single_cap_degrades_to_constant(self):
        ps = np.array([200.0, 200.0])
        ts = np.array([2.0, 2.2])
        fit = QuadraticPowerModel.fit(ps, ts, 140.0, 280.0)
        assert fit.model.a == 0.0
        assert fit.model.b == 0.0
        assert fit.model.c == pytest.approx(2.1)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="zero samples"):
            QuadraticPowerModel.fit(np.array([]), np.array([]), 140.0, 280.0)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="matching"):
            QuadraticPowerModel.fit(np.array([1.0]), np.array([1.0, 2.0]), 140.0, 280.0)


class TestTransforms:
    def test_scaled(self, simple_model):
        doubled = simple_model.scaled(2.0)
        assert doubled.time_at(200.0) == pytest.approx(2.0 * simple_model.time_at(200.0))
        assert doubled.sensitivity == pytest.approx(simple_model.sensitivity)

    def test_scaled_rejects_non_positive(self, simple_model):
        with pytest.raises(ValueError, match="positive"):
            simple_model.scaled(0.0)

    def test_with_range(self, simple_model):
        narrowed = simple_model.with_range(160.0, 240.0)
        assert narrowed.p_min == 160.0
        assert narrowed.time_at(200.0) == simple_model.time_at(200.0)
