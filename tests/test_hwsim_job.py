"""Tests for the emulated running job (phases, progress, totals)."""

import numpy as np
import pytest

from repro.hwsim.cluster import EmulatedCluster
from repro.hwsim.job import JobPhase
from repro.workloads.nas import NAS_TYPES


def run_to_completion(cluster, cap=None, max_time=7200.0):
    job = list(cluster.running.values())[0]
    if cap is not None:
        for node in job.nodes:
            node.pio.write_control("CPU_POWER_LIMIT_CONTROL", cap)
    while cluster.running and cluster.clock.now < max_time:
        cluster.clock.advance(1.0)
        cluster.advance(1.0)
    assert not cluster.running, "job did not finish"
    return cluster.completed[-1]


class TestPhases:
    def test_starts_in_setup(self):
        cluster = EmulatedCluster(1, seed=0)
        job = cluster.start_job("j", NAS_TYPES["is"])
        assert job.phase is JobPhase.SETUP

    def test_setup_draws_idle_power(self):
        cluster = EmulatedCluster(1, seed=0)
        cluster.start_job("j", NAS_TYPES["is"])
        cluster.clock.advance(1.0)
        power = cluster.advance(1.0)
        assert power < 100.0  # idle-ish, far below any cap

    def test_progress_zero_through_setup(self):
        cluster = EmulatedCluster(1, seed=0)
        job = cluster.start_job("j", NAS_TYPES["bt"].with_nodes(1))
        for _ in range(int(job.job_type.setup_time) - 1):
            cluster.clock.advance(1.0)
            cluster.advance(1.0)
        assert job.progress == 0.0

    def test_full_lifecycle(self):
        cluster = EmulatedCluster(1, seed=1)
        cluster.start_job("j", NAS_TYPES["is"])
        totals = run_to_completion(cluster)
        assert totals.epoch_count == NAS_TYPES["is"].epochs
        assert totals.runtime > 0
        assert totals.sojourn >= totals.runtime


class TestTiming:
    def test_uncapped_runtime_close_to_truth(self):
        cluster = EmulatedCluster(1, seed=2, run_noise=False)
        cluster.start_job("j", NAS_TYPES["mg"])
        totals = run_to_completion(cluster)
        expected = NAS_TYPES["mg"].compute_time(280.0)
        assert totals.runtime == pytest.approx(expected, rel=0.05)

    def test_capped_runtime_slower(self):
        results = {}
        for cap in (140.0, 280.0):
            cluster = EmulatedCluster(1, seed=3, run_noise=False)
            cluster.start_job("j", NAS_TYPES["mg"])
            results[cap] = run_to_completion(cluster, cap=cap).runtime
        ratio = results[140.0] / results[280.0]
        assert ratio == pytest.approx(NAS_TYPES["mg"].sensitivity, rel=0.08)

    def test_run_noise_produces_variance(self):
        runtimes = []
        for seed in range(8):
            cluster = EmulatedCluster(1, seed=seed, run_noise=True)
            cluster.start_job("j", NAS_TYPES["mg"])
            runtimes.append(run_to_completion(cluster).runtime)
        assert np.std(runtimes) > 0.0

    def test_slow_node_gates_multi_node_job(self):
        """The job-global epoch count waits for the slowest node (§5.6)."""
        fast = EmulatedCluster(2, seed=4, run_noise=False)
        fast.start_job("j", NAS_TYPES["ft"])
        t_fast = run_to_completion(fast).runtime

        slow = EmulatedCluster(2, seed=4, run_noise=False)
        slow.nodes[1].perf_multiplier = 0.5  # one straggler node
        slow.start_job("j", NAS_TYPES["ft"])
        t_slow = run_to_completion(slow).runtime
        assert t_slow == pytest.approx(2.0 * t_fast, rel=0.1)


class TestTotals:
    def test_totals_before_done_rejected(self):
        cluster = EmulatedCluster(1, seed=0)
        job = cluster.start_job("j", NAS_TYPES["is"])
        with pytest.raises(RuntimeError, match="not completed"):
            job.totals()

    def test_average_power_respects_cap(self):
        cluster = EmulatedCluster(1, seed=5, run_noise=False)
        cluster.start_job("j", NAS_TYPES["lu"])
        totals = run_to_completion(cluster, cap=180.0)
        assert totals.average_power == pytest.approx(180.0, rel=0.05)

    def test_energy_accounted(self):
        cluster = EmulatedCluster(1, seed=6)
        cluster.start_job("j", NAS_TYPES["is"])
        totals = run_to_completion(cluster)
        # Energy over the job's residency must at least cover idle draw and
        # at most full cap draw.
        assert totals.energy > 0.5 * totals.sojourn * 60.0
        assert totals.energy < totals.sojourn * 300.0
