"""Tests for the emulated compute node."""

import numpy as np
import pytest

from repro.hwsim.node import Node


@pytest.fixture
def node():
    clock = {"now": 0.0}
    n = Node(0, clock_fn=lambda: clock["now"])
    return clock, n


class TestCapRange:
    def test_default_caps(self, node):
        _, n = node
        assert n.power_cap == 280.0
        assert n.max_power_cap == 280.0
        assert n.min_power_cap == 140.0

    def test_cap_reflects_written_control(self, node):
        _, n = node
        n.pio.write_control("CPU_POWER_LIMIT_CONTROL", 200.0)
        assert n.power_cap == pytest.approx(200.0, abs=0.25)


class TestConsume:
    def test_draw_capped(self, node, rng):
        _, n = node
        n.pio.write_control("CPU_POWER_LIMIT_CONTROL", 160.0)
        power = n.consume(250.0, 1.0, rng)
        assert power <= 160.5  # cap plus quantisation

    def test_draw_limited_by_demand(self, node, rng):
        _, n = node
        draws = [n.consume(200.0, 1.0, rng) for _ in range(50)]
        assert np.mean(draws) == pytest.approx(200.0, rel=0.02)

    def test_idle_floor(self, node, rng):
        _, n = node
        assert n.consume(0.0, 1.0, rng) >= n.idle_power * 0.9

    def test_energy_deposited(self, node, rng):
        _, n = node
        before = n.total_energy
        n.consume(200.0, 2.0, rng)
        assert n.total_energy - before == pytest.approx(2.0 * n.last_power, rel=1e-6)

    def test_energy_split_across_packages(self, node, rng):
        _, n = node
        n.consume(200.0, 1.0, rng)
        energies = [b.total_energy_joules for b in n.banks]
        assert energies[0] == pytest.approx(energies[1])

    def test_non_positive_dt_rejected(self, node, rng):
        _, n = node
        with pytest.raises(ValueError, match="positive"):
            n.consume(100.0, 0.0, rng)

    def test_consume_idle(self, node, rng):
        _, n = node
        draws = [n.consume_idle(1.0, rng) for _ in range(50)]
        assert np.mean(draws) == pytest.approx(n.idle_power, rel=0.05)


class TestConstruction:
    def test_perf_multiplier_positive(self):
        with pytest.raises(ValueError, match="positive"):
            Node(0, clock_fn=lambda: 0.0, perf_multiplier=0.0)

    def test_packages_at_least_one(self):
        with pytest.raises(ValueError, match="≥ 1"):
            Node(0, clock_fn=lambda: 0.0, packages=0)

    def test_idle_by_default(self):
        n = Node(3, clock_fn=lambda: 0.0)
        assert n.is_idle
        n.job_id = "j"
        assert not n.is_idle
