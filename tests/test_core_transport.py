"""Tests for latency-modelled message channels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.transport import LatencyChannel, TcpLink


class TestLatencyChannel:
    def test_delivery_after_latency(self):
        ch = LatencyChannel(latency=0.5)
        ch.send("msg", now=1.0)
        assert ch.receive(1.2) == []
        assert ch.receive(1.5) == ["msg"]

    def test_fifo_order_preserved(self):
        ch = LatencyChannel(latency=0.1)
        for i in range(5):
            ch.send(i, now=float(i))
        assert ch.receive(10.0) == [0, 1, 2, 3, 4]

    def test_zero_latency_same_instant(self):
        ch = LatencyChannel(latency=0.0)
        ch.send("x", now=2.0)
        assert ch.receive(2.0) == ["x"]

    def test_messages_not_redelivered(self):
        ch = LatencyChannel(latency=0.0)
        ch.send("x", now=0.0)
        assert ch.receive(0.0) == ["x"]
        assert ch.receive(1.0) == []

    def test_in_flight_count(self):
        ch = LatencyChannel(latency=1.0)
        ch.send("a", now=0.0)
        ch.send("b", now=0.0)
        assert ch.in_flight == 2
        ch.receive(1.0)
        assert ch.in_flight == 0

    def test_counters(self):
        ch = LatencyChannel(latency=0.0)
        ch.send("a", now=0.0)
        ch.receive(0.0)
        assert ch.sent == 1
        assert ch.delivered == 1
        assert ch.dropped == 0

    def test_drops_with_probability_one_ish(self):
        ch = LatencyChannel(latency=0.0, drop_probability=0.999, seed=0)
        results = [ch.send("x", now=0.0) for _ in range(200)]
        assert sum(results) < 10  # nearly everything dropped
        assert ch.dropped > 180

    def test_deliver_at_order_when_latency_lowered(self):
        # A message sent later over a faster link arrives first; the old
        # FIFO queue would have held it hostage behind the slow one.
        ch = LatencyChannel(latency=5.0)
        ch.send("slow", now=0.0)  # arrives t=5
        ch.latency = 1.0
        ch.send("fast", now=0.0)  # arrives t=1
        assert ch.receive(1.0) == ["fast"]
        assert ch.receive(5.0) == ["slow"]

    def test_deliver_at_ties_preserve_send_order(self):
        ch = LatencyChannel(latency=2.0)
        ch.send("first", now=0.0)
        ch.latency = 1.0
        ch.send("second", now=1.0)  # same arrival instant, t=2
        assert ch.receive(2.0) == ["first", "second"]

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="≥ 0"):
            LatencyChannel(latency=-1.0)

    def test_bad_drop_probability_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            LatencyChannel(drop_probability=1.0)


class TestTcpLink:
    def test_duplex_independence(self):
        link = TcpLink(latency=0.0)
        link.send_down("cap", now=0.0)
        link.send_up("status", now=0.0)
        assert link.recv_down(0.0) == ["cap"]
        assert link.recv_up(0.0) == ["status"]

    def test_down_not_visible_on_up(self):
        link = TcpLink(latency=0.0)
        link.send_down("cap", now=0.0)
        assert link.recv_up(0.0) == []

    def test_latency_applies_both_ways(self):
        link = TcpLink(latency=0.2)
        link.send_down("a", now=0.0)
        link.send_up("b", now=0.0)
        assert link.recv_down(0.1) == []
        assert link.recv_up(0.1) == []
        assert link.recv_down(0.2) == ["a"]
        assert link.recv_up(0.2) == ["b"]


# One op per simulated second: sends, receives, partition toggles, hard
# closes, and full channel replacement (the reconnect path tears the old
# channel down mid-flight and dials a new one).
_LEDGER_OPS = st.lists(
    st.one_of(
        st.just(("send",)),
        st.just(("recv",)),
        st.tuples(st.just("partition"), st.booleans()),
        st.just(("close",)),
        st.just(("replace",)),
    ),
    max_size=60,
)


class TestNoSilentLossLedger:
    """Every message is accounted for: sent == delivered + dropped + in_flight.

    The observability contract (see LatencyChannel): a message can only be
    in the queue, delivered, or dropped with a named reason — there is no
    fourth bucket.  The property must survive partition start/end, lossy
    retries, hard closes, and channel replacement.
    """

    @given(
        ops=_LEDGER_OPS,
        drop=st.sampled_from([0.0, 0.3, 0.6]),
        seed=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=60, deadline=None)
    def test_ledger_balances_after_every_operation(self, ops, drop, seed):
        def fresh():
            return LatencyChannel(latency=1.5, drop_probability=drop, seed=seed)

        channels = [fresh()]

        def check():
            for ch in channels:
                assert ch.sent == ch.delivered + ch.dropped + ch.in_flight
                assert ch.dropped == sum(ch.drop_reasons.values())

        t = 0.0
        for op in ops:
            t += 1.0
            ch = channels[-1]
            if op[0] == "send":
                ch.send(("payload", t), t)
            elif op[0] == "recv":
                ch.receive(t)
            elif op[0] == "partition":
                ch.partitioned = op[1]
            elif op[0] == "close":
                ch.close("closed")
            else:  # replace: discard in-flight mail, dial a new channel
                ch.close("reconnect")
                channels.append(fresh())
            check()
        # Shutdown drains every queue into a named drop bucket.
        for ch in channels:
            ch.close("shutdown")
        check()
        total_sent = sum(ch.sent for ch in channels)
        total_accounted = sum(ch.delivered + ch.dropped for ch in channels)
        assert total_sent == total_accounted

    def test_ledger_balances_under_reliable_retry_storm(self):
        # The ack/retry layer on top must not break the raw accounting:
        # drive a ReliableLink pair through a partition (retransmits pile
        # up, then flush on heal) and re-check both directions.
        from repro.core.reliable import ReliableLink

        link = TcpLink(latency=0.5, drop_probability=0.2, seed=3)
        cluster = ReliableLink(link, "cluster", seed=1, jitter=0.0)
        job = ReliableLink(link, "job", seed=2, jitter=0.0)
        t = 0.0
        for round_no in range(120):
            t += 1.0
            if round_no == 30:
                link.down.partitioned = link.up.partitioned = True
            if round_no == 70:
                link.down.partitioned = link.up.partitioned = False
            cluster.send_down(("cap", t), t)
            job.recv_down(t)
            job.send_up(("status", t), t)
            cluster.recv_up(t)
            for ch in (link.down, link.up):
                assert ch.sent == ch.delivered + ch.dropped + ch.in_flight
                assert ch.dropped == sum(ch.drop_reasons.values())
        assert cluster.retransmits > 0  # the storm actually happened
