"""Tests for latency-modelled message channels."""

import pytest

from repro.core.transport import LatencyChannel, TcpLink


class TestLatencyChannel:
    def test_delivery_after_latency(self):
        ch = LatencyChannel(latency=0.5)
        ch.send("msg", now=1.0)
        assert ch.receive(1.2) == []
        assert ch.receive(1.5) == ["msg"]

    def test_fifo_order_preserved(self):
        ch = LatencyChannel(latency=0.1)
        for i in range(5):
            ch.send(i, now=float(i))
        assert ch.receive(10.0) == [0, 1, 2, 3, 4]

    def test_zero_latency_same_instant(self):
        ch = LatencyChannel(latency=0.0)
        ch.send("x", now=2.0)
        assert ch.receive(2.0) == ["x"]

    def test_messages_not_redelivered(self):
        ch = LatencyChannel(latency=0.0)
        ch.send("x", now=0.0)
        assert ch.receive(0.0) == ["x"]
        assert ch.receive(1.0) == []

    def test_in_flight_count(self):
        ch = LatencyChannel(latency=1.0)
        ch.send("a", now=0.0)
        ch.send("b", now=0.0)
        assert ch.in_flight == 2
        ch.receive(1.0)
        assert ch.in_flight == 0

    def test_counters(self):
        ch = LatencyChannel(latency=0.0)
        ch.send("a", now=0.0)
        ch.receive(0.0)
        assert ch.sent == 1
        assert ch.delivered == 1
        assert ch.dropped == 0

    def test_drops_with_probability_one_ish(self):
        ch = LatencyChannel(latency=0.0, drop_probability=0.999, seed=0)
        results = [ch.send("x", now=0.0) for _ in range(200)]
        assert sum(results) < 10  # nearly everything dropped
        assert ch.dropped > 180

    def test_deliver_at_order_when_latency_lowered(self):
        # A message sent later over a faster link arrives first; the old
        # FIFO queue would have held it hostage behind the slow one.
        ch = LatencyChannel(latency=5.0)
        ch.send("slow", now=0.0)  # arrives t=5
        ch.latency = 1.0
        ch.send("fast", now=0.0)  # arrives t=1
        assert ch.receive(1.0) == ["fast"]
        assert ch.receive(5.0) == ["slow"]

    def test_deliver_at_ties_preserve_send_order(self):
        ch = LatencyChannel(latency=2.0)
        ch.send("first", now=0.0)
        ch.latency = 1.0
        ch.send("second", now=1.0)  # same arrival instant, t=2
        assert ch.receive(2.0) == ["first", "second"]

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="≥ 0"):
            LatencyChannel(latency=-1.0)

    def test_bad_drop_probability_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            LatencyChannel(drop_probability=1.0)


class TestTcpLink:
    def test_duplex_independence(self):
        link = TcpLink(latency=0.0)
        link.send_down("cap", now=0.0)
        link.send_up("status", now=0.0)
        assert link.recv_down(0.0) == ["cap"]
        assert link.recv_up(0.0) == ["status"]

    def test_down_not_visible_on_up(self):
        link = TcpLink(latency=0.0)
        link.send_down("cap", now=0.0)
        assert link.recv_up(0.0) == []

    def test_latency_applies_both_ways(self):
        link = TcpLink(latency=0.2)
        link.send_down("a", now=0.0)
        link.send_up("b", now=0.0)
        assert link.recv_down(0.1) == []
        assert link.recv_up(0.1) == []
        assert link.recv_down(0.2) == ["a"]
        assert link.recv_up(0.2) == ["b"]
