"""Tests for the hourly demand-response session (paper §4.4.1)."""

import pytest

from repro.aqa.bidder import Bid, BidEvaluation, DemandResponseBidder
from repro.aqa.session import DemandResponseSession, HourMetrics


def make_bidder(**kwargs):
    defaults = dict(n_power_steps=3, n_reserve_steps=3)
    defaults.update(kwargs)
    return DemandResponseBidder(1000.0, 2000.0, **defaults)


def ok_evaluate(bid: Bid, hour: int) -> BidEvaluation:
    return BidEvaluation(
        bid=bid, qos_ok=True, tracking_ok=True,
        qos_90th=1.0, tracking_error_90th=0.1,
    )


def plain_hour(bid: Bid, hour: int) -> HourMetrics:
    return HourMetrics(
        qos_90th=1.0, tracking_error_90th=0.12,
        mean_power=bid.average_power, jobs_completed=10,
    )


class TestSession:
    def test_runs_requested_hours(self):
        session = DemandResponseSession(make_bidder(), ok_evaluate, plain_hour)
        records = session.run(5)
        assert [r.hour for r in records] == [0, 1, 2, 3, 4]
        assert session.total_jobs == 50

    def test_picks_cheapest_feasible_each_hour(self):
        bidder = make_bidder()
        session = DemandResponseSession(bidder, ok_evaluate, plain_hour)
        session.run(1)
        best = session.records[0].bid
        feasible_costs = [bidder.cost_rate(b) for b in bidder.candidates()]
        assert bidder.cost_rate(best) == pytest.approx(min(feasible_costs))

    def test_bid_adapts_to_changing_conditions(self):
        """Hour 1 suddenly cannot support big reserves; the bid shrinks."""

        def evaluate(bid: Bid, hour: int) -> BidEvaluation:
            ok = True if hour == 0 else bid.reserve <= 100.0
            return BidEvaluation(
                bid=bid, qos_ok=ok, tracking_ok=True,
                qos_90th=1.0, tracking_error_90th=0.1,
            )

        session = DemandResponseSession(make_bidder(), evaluate, plain_hour)
        session.run(2)
        assert session.records[0].bid.reserve > session.records[1].bid.reserve

    def test_infeasible_hour_carries_previous_bid(self):
        def evaluate(bid: Bid, hour: int) -> BidEvaluation:
            ok = hour == 0  # hour 1: nothing feasible
            return BidEvaluation(
                bid=bid, qos_ok=ok, tracking_ok=ok,
                qos_90th=9.0, tracking_error_90th=0.9,
            )

        session = DemandResponseSession(make_bidder(), evaluate, plain_hour)
        records = session.run(2)
        assert records[1].bid == records[0].bid

    def test_infeasible_first_hour_raises(self):
        def evaluate(bid: Bid, hour: int) -> BidEvaluation:
            return BidEvaluation(
                bid=bid, qos_ok=False, tracking_ok=False,
                qos_90th=9.0, tracking_error_90th=0.9,
            )

        session = DemandResponseSession(make_bidder(), evaluate, plain_hour)
        with pytest.raises(RuntimeError, match="no feasible"):
            session.run(1)

    def test_carry_disabled_raises_mid_session(self):
        def evaluate(bid: Bid, hour: int) -> BidEvaluation:
            ok = hour == 0
            return BidEvaluation(
                bid=bid, qos_ok=ok, tracking_ok=ok,
                qos_90th=9.0, tracking_error_90th=0.9,
            )

        session = DemandResponseSession(
            make_bidder(), evaluate, plain_hour, carry_bid_on_failure=False
        )
        with pytest.raises(RuntimeError):
            session.run(2)

    def test_summaries(self):
        session = DemandResponseSession(make_bidder(), ok_evaluate, plain_hour)
        session.run(3)
        assert session.worst_qos() == 1.0
        assert session.worst_tracking() == 0.12
        assert session.total_cost == pytest.approx(
            3 * session.records[0].cost
        )
        assert session.bids_over_time().shape == (3, 2)

    def test_ledger_renders(self):
        session = DemandResponseSession(make_bidder(), ok_evaluate, plain_hour)
        session.run(2)
        ledger = session.format_ledger()
        assert "QoS90" in ledger
        assert ledger.count("\n") == 2  # header + 2 hours

    def test_zero_hours_rejected(self):
        session = DemandResponseSession(make_bidder(), ok_evaluate, plain_hour)
        with pytest.raises(ValueError, match="≥ 1"):
            session.run(0)

    def test_empty_summaries_raise(self):
        session = DemandResponseSession(make_bidder(), ok_evaluate, plain_hour)
        with pytest.raises(ValueError, match="no hours"):
            session.worst_qos()


class TestHourMetrics:
    def test_validation(self):
        with pytest.raises(ValueError, match="≥ 0"):
            HourMetrics(1.0, 0.1, -5.0, 0)
        with pytest.raises(ValueError, match="≥ 0"):
            HourMetrics(1.0, 0.1, 5.0, -1)
