"""Golden-trace equivalence: vectorized kernels are bit-identical to seed.

Each scenario in :mod:`tests.goldenlib` was recorded on the original
per-object implementation.  These tests re-run the scenario on the current
code and require ``np.array_equal`` — not ``allclose`` — so any reordering
of floating-point operations in the rewritten kernels is caught, not
averaged away.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.goldenlib import GOLDEN_DIR, SCENARIOS


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_matches_golden_fixture(name):
    path = GOLDEN_DIR / f"{name}.npz"
    assert path.exists(), (
        f"missing fixture {path}; record with `PYTHONPATH=src:. python -m tests.goldenlib`"
    )
    produced = SCENARIOS[name]()
    with np.load(path, allow_pickle=False) as recorded:
        assert sorted(recorded.files) == sorted(produced), (
            f"{name}: fixture arrays {sorted(recorded.files)} != produced "
            f"{sorted(produced)}"
        )
        for key in recorded.files:
            got = np.asarray(produced[key])
            want = recorded[key]
            assert got.shape == want.shape, f"{name}/{key}: shape {got.shape} != {want.shape}"
            assert np.array_equal(got, want), (
                f"{name}/{key}: values diverge from the recorded seed trace "
                f"(first mismatch at {np.argwhere(got != want)[:5].tolist()})"
            )
