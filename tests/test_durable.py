"""Tests for the crash-consistent checkpoint/journal store (repro.durable)."""

import json
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.durable.checkpoint import (
    SCHEMA_VERSION,
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.durable.journal import RECORD_TYPES, Journal
from repro.durable.state import apply_journal, empty_state
from repro.durable.store import DurableStore


class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        payload = {"state": {"queue": [1, 2], "now": 3.5}, "journal_seq": 7}
        write_checkpoint(path, payload)
        assert read_checkpoint(path) == payload

    def test_atomic_no_temp_left_behind(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, {"a": 1})
        write_checkpoint(path, {"a": 2})
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]
        assert read_checkpoint(path) == {"a": 2}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="unreadable"):
            read_checkpoint(tmp_path / "nope.json")

    def test_unknown_schema_version_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, {"a": 1}, schema=SCHEMA_VERSION + 1)
        with pytest.raises(CheckpointError, match="unknown schema version"):
            read_checkpoint(path)

    def test_corrupted_payload_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, {"a": 1})
        header, body = path.read_text().splitlines()
        path.write_text(header + "\n" + body.replace("1", "2") + "\n")
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_truncated_payload_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, {"a": 1, "b": list(range(50))})
        text = path.read_text()
        path.write_text(text[: len(text) - 40])
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)

    def test_garbage_header_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("not json at all\n{}\n")
        with pytest.raises(CheckpointError, match="header"):
            read_checkpoint(path)

    def test_empty_file_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("")
        with pytest.raises(CheckpointError):
            read_checkpoint(path)


class TestJournal:
    def test_append_and_replay(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl")
        j.append("job-admit", 1.0, {"kind": "queue", "spec": {"job_id": "a"}})
        j.append("job-evict", 2.0, {"kind": "goodbye", "job_id": "a"})
        j.close()
        replay = Journal(tmp_path / "j.jsonl").replay()
        assert [r.type for r in replay.records] == ["job-admit", "job-evict"]
        assert [r.seq for r in replay.records] == [1, 2]
        assert replay.dropped_tail == 0

    def test_unknown_record_type_rejected(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl")
        with pytest.raises(ValueError, match="unknown journal record type"):
            j.append("nonsense", 0.0, {})

    def test_seq_resumes_across_reopen(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl")
        j.append("target-change", 1.0, {})
        j.close()
        j2 = Journal(tmp_path / "j.jsonl")
        assert j2.seq == 1
        j2.append("target-change", 2.0, {})
        j2.close()
        assert [r.seq for r in j2.replay().records] == [1, 2]

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal(path)
        j.append("target-change", 1.0, {"hold": {}})
        j.append("target-change", 2.0, {"hold": {}})
        j.close()
        text = path.read_text()
        path.write_text(text[: len(text) - 15])  # tear the last record
        replay = Journal(path).replay()
        assert len(replay.records) == 1
        assert replay.dropped_tail == 1

    def test_corrupt_middle_stops_replay(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal(path)
        for t in (1.0, 2.0, 3.0):
            j.append("target-change", t, {})
        j.close()
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"seq":2', '"seq":9')  # breaks the crc
        path.write_text("\n".join(lines) + "\n")
        replay = Journal(path).replay()
        # Replay cannot trust anything after the first bad record.
        assert [r.seq for r in replay.records] == [1]
        assert replay.dropped_tail == 2

    def test_watermark_skips_covered_records(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl")
        for t in (1.0, 2.0, 3.0):
            j.append("target-change", t, {})
        replay = j.replay(min_seq=2)
        assert [r.seq for r in replay.records] == [3]
        j.close()


class TestDurableStore:
    def test_checkpoint_watermarks_journal(self, tmp_path):
        store = DurableStore(tmp_path)
        store.journal.append("job-admit", 1.0, {"kind": "queue", "spec": {}})
        store.save_checkpoint({"state": empty_state()})
        store.journal.append("job-evict", 2.0, {"kind": "goodbye", "job_id": "x"})
        store.close()
        reopened = DurableStore(tmp_path)
        payload, replay = reopened.load()
        assert payload["journal_seq"] == 1
        # Only the record past the watermark replays.
        assert [r.type for r in replay.records] == ["job-evict"]
        reopened.close()

    def test_no_checkpoint_replays_everything(self, tmp_path):
        store = DurableStore(tmp_path)
        store.journal.append("target-change", 1.0, {})
        store.close()
        payload, replay = DurableStore(tmp_path).load()
        assert payload is None
        assert len(replay.records) == 1

    def test_corrupt_checkpoint_raises_not_guesses(self, tmp_path):
        store = DurableStore(tmp_path)
        store.save_checkpoint({"state": empty_state()})
        store.close()
        ck = tmp_path / DurableStore.CHECKPOINT_NAME
        ck.write_text(ck.read_text()[:-30])
        with pytest.raises(CheckpointError):
            DurableStore(tmp_path).load()


# Strategies for the lossless round-trip property test: randomized journal
# payloads (JSON-representable scalars and containers keyed by strings).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
_payloads = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(_scalars, st.lists(_scalars, max_size=4)),
    max_size=5,
)
_records = st.lists(
    st.tuples(
        st.sampled_from(RECORD_TYPES),
        st.floats(0, 1e6, allow_nan=False),
        _payloads,
    ),
    max_size=20,
)


class TestRoundTripProperty:
    @settings(max_examples=50, deadline=None)
    @given(records=_records)
    def test_journal_round_trip_is_lossless(self, records, tmp_path_factory):
        path = tmp_path_factory.mktemp("journal") / "j.jsonl"
        j = Journal(path)
        for rtype, t, data in records:
            j.append(rtype, t, data)
        j.close()
        replay = Journal(path).replay()
        assert replay.dropped_tail == 0
        assert len(replay.records) == len(records)
        for rec, (rtype, t, data) in zip(replay.records, records):
            assert rec.type == rtype
            assert rec.time == t
            assert rec.data == json.loads(json.dumps(data))

    @settings(max_examples=25, deadline=None)
    @given(payload=_payloads)
    def test_checkpoint_round_trip_is_lossless(self, payload, tmp_path_factory):
        path = tmp_path_factory.mktemp("ck") / "ck.json"
        write_checkpoint(path, {"state": payload})
        assert read_checkpoint(path) == {"state": json.loads(json.dumps(payload))}


class TestApplyJournal:
    def _rec(self, seq, rtype, t, data):
        from repro.durable.journal import JournalRecord

        return JournalRecord(seq=seq, time=t, type=rtype, data=data)

    def test_launch_moves_queue_to_running(self):
        spec = {"job_id": "a", "type_name": "bt", "nodes": 4,
                "claimed_type": "bt", "submit_time": 0.0}
        state = apply_journal(empty_state(), [
            self._rec(1, "job-admit", 0.0, {"kind": "queue", "spec": spec}),
            self._rec(2, "job-admit", 1.0, {"kind": "launch", "spec": spec,
                                            "attempt": 1}),
        ])
        assert state["queue"] == []
        assert list(state["running"]) == ["a"]
        assert state["pending_index"] == 1

    def test_requeue_pops_running(self):
        spec = {"job_id": "a", "type_name": "bt", "nodes": 4,
                "claimed_type": "bt", "submit_time": 0.0}
        state = apply_journal(empty_state(), [
            self._rec(1, "job-admit", 1.0, {"kind": "launch", "spec": spec,
                                            "attempt": 1}),
            self._rec(2, "job-admit", 5.0, {"kind": "requeue", "spec": spec,
                                            "attempt": 2}),
        ])
        assert state["running"] == {}
        assert [s["job_id"] for s in state["queue"]] == ["a"]
        assert state["attempts"]["a"] == 2
        assert state["requeued"] == ["a"]

    def test_hello_then_model_then_evict(self):
        hello = {"kind": "hello", "job_id": "a", "claimed_type": "bt",
                 "nodes": 4, "believed_p_max": 250.0}
        state = apply_journal(empty_state(), [
            self._rec(1, "job-admit", 1.0, hello),
            self._rec(2, "model-accept", 2.0,
                      {"job_id": "a", "a": 1e-5, "b": -0.01, "c": 3.0,
                       "r2": 0.98}),
            self._rec(3, "job-evict", 9.0, {"kind": "goodbye", "job_id": "a"}),
        ])
        assert state["manager"]["jobs"] == {}

    def test_rehello_preserves_learned_state(self):
        hello = {"kind": "hello", "job_id": "a", "claimed_type": "bt",
                 "nodes": 4, "believed_p_max": 250.0}
        state = apply_journal(empty_state(), [
            self._rec(1, "job-admit", 1.0, hello),
            self._rec(2, "model-accept", 2.0,
                      {"job_id": "a", "a": 1e-5, "b": -0.01, "c": 3.0,
                       "r2": 0.98}),
            self._rec(3, "job-admit", 5.0, hello),  # reconnect
        ])
        assert state["manager"]["jobs"]["a"]["online"] == [1e-5, -0.01, 3.0]

    def test_complete_pops_running_only(self):
        spec = {"job_id": "a", "type_name": "bt", "nodes": 4,
                "claimed_type": "bt", "submit_time": 0.0}
        hello = {"kind": "hello", "job_id": "a", "claimed_type": "bt",
                 "nodes": 4, "believed_p_max": 250.0}
        state = apply_journal(empty_state(), [
            self._rec(1, "job-admit", 1.0, {"kind": "launch", "spec": spec,
                                            "attempt": 1}),
            self._rec(2, "job-admit", 1.0, hello),
            self._rec(3, "job-evict", 8.0, {"kind": "complete", "job_id": "a"}),
        ])
        assert state["running"] == {}
        # The manager's record goes separately, via the goodbye.
        assert "a" in state["manager"]["jobs"]

    def test_cap_decision_updates_caps_and_hold(self):
        hello = {"kind": "hello", "job_id": "a", "claimed_type": "bt",
                 "nodes": 4, "believed_p_max": 250.0}
        state = apply_journal(empty_state(), [
            self._rec(1, "job-admit", 1.0, hello),
            self._rec(2, "cap-decision", 2.0,
                      {"caps": {"a": 180.0}, "correction": -3.0,
                       "target": 2000.0,
                       "hold": {"last_good": 2000.0, "last_good_time": 2.0,
                                "degraded_reads": 0}}),
        ])
        entry = state["manager"]["jobs"]["a"]
        assert entry["last_cap"] == 180.0
        assert entry["caps_sent"] == 1
        assert state["manager"]["correction"] == -3.0
        assert state["target_hold"]["last_good"] == 2000.0


class TestJournalRotation:
    def test_rotate_drops_covered_records(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl")
        for t in range(1, 6):
            j.append("target-change", float(t), {"watts": 100.0 * t})
        dropped = j.rotate(3)
        assert dropped == 3
        replay = Journal(tmp_path / "j.jsonl").replay()
        assert [r.seq for r in replay.records] == [4, 5]
        assert replay.dropped_tail == 0

    def test_rotate_noop_when_nothing_covered(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl")
        j.append("target-change", 1.0, {"watts": 100.0})
        before = (tmp_path / "j.jsonl").read_bytes()
        assert j.rotate(0) == 0
        assert (tmp_path / "j.jsonl").read_bytes() == before

    def test_seq_never_resets_after_rotation(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl")
        for t in range(1, 4):
            j.append("target-change", float(t), {"watts": 1.0})
        j.rotate(3)  # journal now empty on disk
        assert j.append("target-change", 4.0, {"watts": 2.0}) == 4
        replay = Journal(tmp_path / "j.jsonl").replay()
        assert [r.seq for r in replay.records] == [4]

    def test_rotate_discards_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal(path)
        for t in range(1, 4):
            j.append("target-change", float(t), {"watts": 1.0})
        j.close()
        with open(path, "ab") as fh:
            fh.write(b'{"crc": 0, "rec":')  # torn final write
        j2 = Journal(path)
        j2.rotate(1)
        replay = Journal(path).replay()
        assert [r.seq for r in replay.records] == [2, 3]
        assert replay.dropped_tail == 0  # the torn line is gone from disk

    def test_rotated_journal_survives_reopen_and_append(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl")
        for t in range(1, 6):
            j.append("target-change", float(t), {"watts": float(t)})
        j.rotate(2)
        j.append("target-change", 6.0, {"watts": 6.0})
        j.close()
        replay = Journal(tmp_path / "j.jsonl").replay()
        assert [r.seq for r in replay.records] == [3, 4, 5, 6]

    def test_store_checkpoint_rotates_journal(self, tmp_path):
        store = DurableStore(tmp_path)
        for t in range(1, 20):
            store.journal.append("target-change", float(t), {"watts": float(t)})
        store.save_checkpoint(empty_state())
        # Everything the checkpoint covers is physically gone from disk.
        replay = Journal(store.journal.path).replay()
        assert replay.records == []
        store.journal.append("target-change", 21.0, {"watts": 1.0})
        assert Journal(store.journal.path).replay().records[0].seq == 20


class TestFsyncDir:
    def test_fsync_dir_on_real_directory(self, tmp_path):
        from repro.durable.checkpoint import fsync_dir

        fsync_dir(tmp_path)  # must not raise

    def test_fsync_dir_tolerates_missing_path(self, tmp_path):
        from repro.durable.checkpoint import fsync_dir

        fsync_dir(tmp_path / "does-not-exist")  # silently skipped
