"""Tests for the fault-injection subsystem (events, schedules, injector)."""

import math

import pytest

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorSystem, precharacterized_models
from repro.core.targets import ConstantTarget
from repro.faults import (
    CorruptStatus,
    EndpointCrash,
    FaultSchedule,
    LinkDegradation,
    MeterOutage,
    NodeCrash,
    TargetOutage,
)
from repro.modeling.classifier import JobClassifier


def make_system(schedule=None, *, num_nodes=4, seed=0, target=840.0, **cfg):
    return AnorSystem(
        budgeter=EvenSlowdownBudgeter(),
        target_source=ConstantTarget(target),
        classifier=JobClassifier(precharacterized_models()),
        config=AnorConfig(num_nodes=num_nodes, seed=seed, **cfg),
        fault_schedule=schedule,
    )


class TestEvents:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            NodeCrash(time=-1.0)

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            MeterOutage(time=math.nan)

    def test_bad_drop_probability_rejected(self):
        with pytest.raises(ValueError):
            LinkDegradation(time=0.0, drop_probability=1.0)

    def test_bad_corruption_kind_rejected(self):
        with pytest.raises(ValueError):
            CorruptStatus(time=0.0, kind="gamma-ray")

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            MeterOutage(time=0.0, duration=0.0)

    def test_events_are_frozen(self):
        event = NodeCrash(time=5.0, node_id=1)
        with pytest.raises(AttributeError):
            event.time = 9.0


class TestSchedule:
    def test_events_sorted_by_time(self):
        sched = FaultSchedule(
            [MeterOutage(time=50.0), NodeCrash(time=10.0), EndpointCrash(time=30.0)]
        )
        assert [e.time for e in sched] == [10.0, 30.0, 50.0]

    def test_equality_and_extended(self):
        a = FaultSchedule([NodeCrash(time=1.0)])
        b = FaultSchedule([NodeCrash(time=1.0)])
        assert a == b
        c = a.extended([MeterOutage(time=2.0)])
        assert len(c) == 2 and len(a) == 1

    def test_non_event_rejected(self):
        with pytest.raises(TypeError):
            FaultSchedule(["node crash at noon"])

    def test_standard_load_contents(self):
        sched = FaultSchedule.standard_load(3600.0)
        assert len(sched.events_of(NodeCrash)) == 1
        assert len(sched.events_of(EndpointCrash)) == 1
        assert len(sched.events_of(LinkDegradation)) == 1
        assert len(sched.events_of(MeterOutage)) == 1
        assert len(sched.events_of(CorruptStatus)) == 1
        link = sched.events_of(LinkDegradation)[0]
        assert link.drop_probability == pytest.approx(0.05)
        assert link.duration == pytest.approx(3600.0)

    def test_random_is_deterministic_per_seed(self):
        kwargs = dict(
            num_nodes=8,
            node_crash_rate=1 / 300.0,
            endpoint_crash_rate=1 / 300.0,
            link_burst_rate=1 / 200.0,
            meter_outage_rate=1 / 500.0,
            corrupt_status_rate=1 / 250.0,
        )
        a = FaultSchedule.random(3600.0, seed=7, **kwargs)
        b = FaultSchedule.random(3600.0, seed=7, **kwargs)
        c = FaultSchedule.random(3600.0, seed=8, **kwargs)
        assert a == b
        assert a != c

    def test_describe_one_line_per_event(self):
        sched = FaultSchedule.standard_load(600.0)
        assert len(sched.describe().splitlines()) == len(sched)


class TestInjectorMeterAndTarget:
    def test_meter_outage_recorded_and_recovers(self):
        sched = FaultSchedule([MeterOutage(time=10.0, duration=20.0)])
        system = make_system(sched)
        system.submit_now("bt-0", "bt")
        for _ in range(60):
            system.step()
        assert system.manager.meter_faults > 0
        # Samples resume after the outage window closes.
        assert any(s.time > 35.0 for s in system.manager.tracking)
        log = system.faults.render()
        assert "meter-outage start" in log and "meter-outage end" in log

    def test_target_outage_served_by_hold_last_good(self):
        sched = FaultSchedule([TargetOutage(time=10.0, duration=20.0)])
        system = make_system(sched)
        system.submit_now("bt-0", "bt")
        for _ in range(60):
            system.step()
        hold = system.manager.target_source
        assert hold.degraded_reads > 0
        # Caps kept flowing throughout: the held target budgets normally.
        assert system.endpoints["bt-0"].current_cap > 0


class TestInjectorCorruptStatus:
    @pytest.mark.parametrize("kind", ["nan", "inf", "nonphysical"])
    def test_poisoned_model_never_reaches_budgeter(self, kind):
        sched = FaultSchedule([CorruptStatus(time=5.0, job_id="bt-0", kind=kind)])
        system = make_system(sched)
        system.submit_now("bt-0", "bt")
        for _ in range(10):
            system.step()
        manager = system.manager
        assert manager.rejected_models >= 1
        record = manager.jobs["bt-0"]
        model = record.active_model
        assert model.is_monotone_decreasing()
        assert math.isfinite(model.t_min)

    def test_nan_power_status_rejected_but_counts_as_heartbeat(self):
        sched = FaultSchedule([CorruptStatus(time=5.0, job_id="bt-0", kind="nan-power")])
        system = make_system(sched)
        system.submit_now("bt-0", "bt")
        for _ in range(10):
            system.step()
        assert system.manager.rejected_statuses >= 1
        assert "bt-0" in system.manager.jobs  # not evicted: arrival = alive


class TestInjectorLink:
    def test_scoped_degradation_applies_and_restores(self):
        sched = FaultSchedule(
            [
                LinkDegradation(
                    time=5.0,
                    duration=10.0,
                    drop_probability=0.4,
                    extra_latency=0.5,
                    job_id="bt-0",
                )
            ]
        )
        system = make_system(sched)
        system.submit_now("bt-0", "bt")
        for _ in range(8):
            system.step()
        link = system.endpoints["bt-0"].link
        assert link.up.drop_probability == pytest.approx(0.4)
        assert link.up.latency == pytest.approx(0.5)
        for _ in range(12):
            system.step()
        assert link.up.drop_probability == pytest.approx(0.0)
        assert link.up.latency == pytest.approx(0.0)

    def test_global_degradation_covers_links_created_mid_window(self):
        sched = FaultSchedule(
            [LinkDegradation(time=1.0, duration=50.0, drop_probability=0.3)]
        )
        system = make_system(sched)
        system.submit_now("bt-0", "bt")
        for _ in range(5):
            system.step()
        # A job launched inside the window inherits the degraded config.
        system.submit_now("sp-1", "sp")
        for _ in range(5):
            system.step()
        assert system.endpoints["sp-1"].link.up.drop_probability == pytest.approx(0.3)
        for _ in range(55):
            system.step()
        # Window closed: config restored for any future link.
        assert system.config.link_drop_probability == pytest.approx(0.0)


class TestInjectorCrashes:
    def test_node_crash_requeues_and_completes(self):
        sched = FaultSchedule([NodeCrash(time=30.0, node_id=0, down_for=60.0)])
        system = make_system(sched, num_nodes=2)
        system.submit_now("bt-0", "bt")
        result = system.run(until_idle=True, max_time=7200.0)
        assert result.requeued == ["bt-0"]
        assert [t.job_id for t in result.completed] == ["bt-0"]
        assert (30.0, "bt-0") in system.cluster.killed
        assert "node-crash node=0 killed=bt-0" in system.faults.render()

    def test_endpoint_crash_restarts_and_manager_recovers(self):
        sched = FaultSchedule([EndpointCrash(time=30.0, job_id="bt-0")])
        system = make_system(
            sched, num_nodes=2, endpoint_restart_delay=10.0
        )
        system.submit_now("bt-0", "bt")
        result = system.run(until_idle=True, max_time=7200.0)
        assert [t.job_id for t in result.completed] == ["bt-0"]
        assert any("restarted" in w for w in result.warnings)
        # The fresh hello replaced the dead link before the dead-job timeout.
        assert any("reconnected" in e for e in system.manager.events)
        assert system.manager.evictions == 0

    def test_endpoint_crash_without_watchdog_leads_to_eviction(self):
        sched = FaultSchedule([EndpointCrash(time=30.0, job_id="bt-0")])
        system = make_system(
            sched, num_nodes=2, endpoint_restart_delay=None, dead_job_timeout=40.0
        )
        system.submit_now("bt-0", "bt")
        for _ in range(90):
            system.step()
        assert "bt-0" not in system.manager.jobs
        assert system.manager.evictions == 1


class TestDeterminism:
    def _run(self, seed):
        sched = FaultSchedule.random(
            240.0,
            seed=99,
            num_nodes=4,
            node_crash_rate=1 / 120.0,
            endpoint_crash_rate=1 / 120.0,
            link_burst_rate=1 / 100.0,
            meter_outage_rate=1 / 150.0,
            corrupt_status_rate=1 / 100.0,
        )
        system = make_system(sched, seed=seed)
        system.submit_now("bt-0", "bt")
        system.submit_now("sp-1", "sp")
        result = system.run(240.0)
        return system, result

    def test_same_seed_same_fault_log_and_trace(self):
        sys_a, res_a = self._run(5)
        sys_b, res_b = self._run(5)
        assert sys_a.faults.log_lines() == sys_b.faults.log_lines()
        assert res_a.power_trace.tobytes() == res_b.power_trace.tobytes()
        assert res_a.warnings == res_b.warnings
