"""Tests for the tabular simulator's state tables (paper §5.6)."""

import numpy as np
import pytest

from repro.tabsim.tables import JobState, JobTable, NodeTable, SimJobType
from repro.workloads.nas import NAS_TYPES


class TestSimJobType:
    def test_from_job_type(self):
        sim = SimJobType.from_job_type(NAS_TYPES["bt"])
        assert sim.nodes == NAS_TYPES["bt"].nodes
        assert sim.t_at_p_max == pytest.approx(NAS_TYPES["bt"].t_uncapped)
        assert sim.t_at_p_min > sim.t_at_p_max

    def test_node_scale(self):
        sim = SimJobType.from_job_type(NAS_TYPES["bt"], node_scale=25)
        assert sim.nodes == NAS_TYPES["bt"].nodes * 25

    def test_linear_interpolation(self):
        sim = SimJobType("x", 1, 140.0, 280.0, t_at_p_max=100.0, t_at_p_min=200.0)
        assert sim.execution_time(210.0) == pytest.approx(150.0)

    def test_clamps_outside_range(self):
        sim = SimJobType("x", 1, 140.0, 280.0, t_at_p_max=100.0, t_at_p_min=200.0)
        assert sim.execution_time(100.0) == 200.0
        assert sim.execution_time(400.0) == 100.0

    def test_progress_rate_inverse_of_time(self):
        sim = SimJobType("x", 1, 140.0, 280.0, t_at_p_max=100.0, t_at_p_min=200.0)
        assert sim.progress_rate(280.0) == pytest.approx(0.01)

    def test_vectorized(self):
        sim = SimJobType("x", 1, 140.0, 280.0, t_at_p_max=100.0, t_at_p_min=200.0)
        caps = np.array([140.0, 210.0, 280.0])
        assert sim.execution_time(caps).tolist() == [200.0, 150.0, 100.0]

    def test_more_power_cannot_be_slower(self):
        with pytest.raises(ValueError, match="cannot be slower"):
            SimJobType("x", 1, 140.0, 280.0, t_at_p_max=200.0, t_at_p_min=100.0)

    def test_positive_node_count(self):
        with pytest.raises(ValueError, match="≥ 1"):
            SimJobType("x", 0, 140.0, 280.0, 100.0, 200.0)


class TestNodeTable:
    def test_all_idle_initially(self):
        table = NodeTable(10)
        assert table.idle_mask.all()
        assert table.idle_indices().size == 10

    def test_assign_and_release(self):
        table = NodeTable(4)
        table.assign(np.array([1, 2]), job_index=0)
        assert not table.idle_mask[1]
        assert table.job_idx[2] == 0
        table.release(0)
        assert table.idle_mask.all()

    def test_assign_busy_node_rejected(self):
        table = NodeTable(4)
        table.assign(np.array([0]), 0)
        with pytest.raises(RuntimeError, match="non-idle"):
            table.assign(np.array([0]), 1)

    def test_release_resets_progress_and_cap(self):
        table = NodeTable(2)
        table.assign(np.array([0]), 0)
        table.progress[0] = 0.5
        table.cap[0] = 150.0
        table.release(0)
        assert table.progress[0] == 0.0
        assert table.cap[0] == table.p_max

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="≥ 1"):
            NodeTable(0)


class TestJobTable:
    def test_add_and_lifecycle(self):
        table = JobTable(num_types=2)
        i = table.add(1, nodes=4, submit_time=10.0)
        assert table.state[i] == JobState.QUEUED
        table.mark_started(i, 12.0)
        assert table.state[i] == JobState.RUNNING
        table.mark_done(i, 100.0)
        assert table.state[i] == JobState.DONE
        assert table.sojourn_times()[i] == pytest.approx(90.0)

    def test_grows_beyond_initial_capacity(self):
        table = JobTable(num_types=1)
        for k in range(1000):
            table.add(0, 1, float(k))
        assert table.count == 1000
        assert table.submit_time[999] == 999.0

    def test_growth_preserves_nan_sentinels(self):
        table = JobTable(num_types=1)
        for k in range(300):
            table.add(0, 1, float(k))
        assert np.isnan(table.start_time[299])

    def test_invalid_transitions(self):
        table = JobTable(num_types=1)
        i = table.add(0, 1, 0.0)
        with pytest.raises(RuntimeError, match="not running"):
            table.mark_done(i, 1.0)
        table.mark_started(i, 1.0)
        with pytest.raises(RuntimeError, match="not queued"):
            table.mark_started(i, 2.0)

    def test_type_index_validated(self):
        table = JobTable(num_types=2)
        with pytest.raises(IndexError):
            table.add(5, 1, 0.0)

    def test_completed_mask(self):
        table = JobTable(num_types=1)
        a = table.add(0, 1, 0.0)
        b = table.add(0, 1, 0.0)
        table.mark_started(a, 1.0)
        table.mark_done(a, 2.0)
        mask = table.completed_mask()
        assert mask[a] and not mask[b]

    def test_snapshot_copies(self):
        table = JobTable(num_types=1)
        table.add(0, 1, 0.0)
        snap = table.snapshot()
        snap["nodes"][0] = 99
        assert table.nodes[0] == 1
