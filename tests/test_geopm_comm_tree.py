"""Tests for the balanced agent communication tree (paper §4.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.geopm.comm_tree import AgentTree


class TestStructure:
    def test_root_has_no_parent(self):
        assert AgentTree(5).parent(0) is None

    def test_children_of_root_fanout2(self):
        tree = AgentTree(5, fanout=2)
        assert tree.children(0) == [1, 2]
        assert tree.children(1) == [3, 4]
        assert tree.children(2) == []

    def test_parent_child_consistency(self):
        tree = AgentTree(20, fanout=3)
        for i in range(1, 20):
            assert i in tree.children(tree.parent(i))

    def test_single_agent(self):
        tree = AgentTree(1)
        assert tree.height == 0
        assert tree.is_leaf(0)

    def test_fanout_one_is_a_chain(self):
        tree = AgentTree(4, fanout=1)
        assert tree.children(0) == [1]
        assert tree.height == 3

    def test_depth(self):
        tree = AgentTree(10, fanout=2)
        assert tree.depth(0) == 0
        assert tree.depth(1) == 1
        assert tree.depth(3) == 2

    def test_height_16_nodes_fanout8(self):
        """A 16-node job with GEOPM's default fanout is a 2-level tree."""
        assert AgentTree(16, fanout=8).height == 2

    def test_breadth_first_order(self):
        assert AgentTree(4).breadth_first() == [0, 1, 2, 3]

    def test_invalid_index(self):
        tree = AgentTree(3)
        with pytest.raises(IndexError):
            tree.parent(3)
        with pytest.raises(IndexError):
            tree.children(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="at least one"):
            AgentTree(0)
        with pytest.raises(ValueError, match="fanout"):
            AgentTree(3, fanout=0)


class TestProperties:
    @given(st.integers(1, 200), st.integers(1, 9))
    def test_every_non_root_has_exactly_one_parent(self, size, fanout):
        tree = AgentTree(size, fanout=fanout)
        seen = set()
        for i in range(size):
            for child in tree.children(i):
                assert child not in seen
                seen.add(child)
        assert seen == set(range(1, size))

    @given(st.integers(2, 200), st.integers(2, 9))
    def test_depth_increases_by_one_from_parent(self, size, fanout):
        tree = AgentTree(size, fanout=fanout)
        for i in range(1, size):
            assert tree.depth(i) == tree.depth(tree.parent(i)) + 1

    @given(st.integers(1, 200), st.integers(1, 9))
    def test_height_is_max_depth(self, size, fanout):
        tree = AgentTree(size, fanout=fanout)
        assert tree.height == max(tree.depth(i) for i in range(size))
