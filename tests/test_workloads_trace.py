"""Tests for schedule records and CSV round-tripping (paper §4.1)."""

import pytest

from repro.workloads.trace import JobRequest, Schedule, load_schedule, save_schedule


class TestJobRequest:
    def test_valid(self):
        req = JobRequest(10.0, "j1", "bt", 2)
        assert req.nodes == 2

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="≥ 0"):
            JobRequest(-1.0, "j1", "bt", 2)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError, match="≥ 1"):
            JobRequest(0.0, "j1", "bt", 0)


class TestSchedule:
    def test_sorts_on_construction(self):
        sched = Schedule(
            requests=[
                JobRequest(5.0, "b", "bt", 1),
                JobRequest(1.0, "a", "sp", 1),
            ]
        )
        assert [r.job_id for r in sched] == ["a", "b"]

    def test_between(self):
        sched = Schedule(
            requests=[JobRequest(float(t), f"j{t}", "bt", 1) for t in (1, 5, 9)]
        )
        assert [r.job_id for r in sched.between(2.0, 9.0)] == ["j5"]

    def test_type_counts(self):
        sched = Schedule(
            requests=[
                JobRequest(0.0, "a", "bt", 1),
                JobRequest(1.0, "b", "bt", 1),
                JobRequest(2.0, "c", "sp", 1),
            ]
        )
        assert sched.type_counts() == {"bt": 2, "sp": 1}

    def test_len_and_end_time(self):
        sched = Schedule(duration=100.0, start_time=10.0)
        assert len(sched) == 0
        assert sched.end_time == 110.0


class TestFileRoundTrip:
    def test_roundtrip(self, tmp_path):
        sched = Schedule(
            requests=[
                JobRequest(0.5, "j0", "bt", 2),
                JobRequest(7.25, "j1", "sp", 4),
            ],
            duration=3600.0,
            start_time=0.0,
        )
        path = tmp_path / "schedule.csv"
        save_schedule(sched, path)
        loaded = load_schedule(path)
        assert len(loaded) == 2
        assert loaded.duration == 3600.0
        assert loaded.requests[0].submit_time == 0.5
        assert loaded.requests[1].job_id == "j1"
        assert loaded.requests[1].nodes == 4

    def test_empty_schedule_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_schedule(Schedule(duration=60.0, start_time=5.0), path)
        loaded = load_schedule(path)
        assert len(loaded) == 0
        assert loaded.duration == 60.0
        assert loaded.start_time == 5.0

    def test_float_precision_preserved(self, tmp_path):
        t = 123.45678901234567
        sched = Schedule(requests=[JobRequest(t, "j", "bt", 1)], duration=200.0)
        path = tmp_path / "prec.csv"
        save_schedule(sched, path)
        assert load_schedule(path).requests[0].submit_time == t

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n1,2\n")
        with pytest.raises(ValueError, match="not a schedule file"):
            load_schedule(path)
