"""Integration: the hourly bidding session driving the tabular simulator."""

import numpy as np
import pytest

from repro.aqa.bidder import Bid, BidEvaluation, DemandResponseBidder
from repro.aqa.qos import QoSConstraint
from repro.aqa.regulation import BoundedRandomWalkSignal
from repro.aqa.session import DemandResponseSession, HourMetrics
from repro.analysis.tracking import TrackingConstraint
from repro.tabsim.simulator import SimConfig, TabularClusterSimulator
from repro.tabsim.tables import SimJobType
from repro.workloads.generator import PoissonScheduleGenerator
from repro.workloads.nas import long_running_mix

NUM_NODES = 120
DURATION = 500.0


def simulate(bid: Bid, seed: int):
    base = long_running_mix()
    sim_types = [SimJobType.from_job_type(t) for t in base]
    generator = PoissonScheduleGenerator(
        base, utilization=0.7, total_nodes=NUM_NODES, seed=seed
    )
    schedule = generator.generate(DURATION)
    sim = TabularClusterSimulator(
        sim_types,
        schedule,
        BoundedRandomWalkSignal(DURATION * 4, seed=seed + 1),
        SimConfig(
            num_nodes=NUM_NODES,
            average_power=bid.average_power,
            reserve=max(bid.reserve, 1.0),
            power_aware_admission=True,
            seed=seed + 2,
        ),
    )
    result = sim.run(DURATION, drain=True)
    q = np.concatenate(
        [v for v in result.qos_by_type().values() if v.size] or [np.zeros(1)]
    )
    errors = result.tracking_errors(t_start=DURATION / 2, t_end=DURATION)
    return result, q, errors


class TestSessionOverTabsim:
    @pytest.fixture(scope="class")
    def session(self):
        qos = QoSConstraint()
        tracking = TrackingConstraint()

        def evaluate(bid: Bid, hour: int) -> BidEvaluation:
            _, q, errors = simulate(bid, seed=10 + hour)
            return BidEvaluation(
                bid=bid,
                qos_ok=qos.satisfied(q),
                tracking_ok=tracking.satisfied(errors),
                qos_90th=float(np.percentile(q, 90)),
                tracking_error_90th=float(np.percentile(errors, 90)),
            )

        def run_hour(bid: Bid, hour: int) -> HourMetrics:
            result, q, errors = simulate(bid, seed=50 + hour)
            return HourMetrics(
                qos_90th=float(np.percentile(q, 90)),
                tracking_error_90th=float(np.percentile(errors, 90)),
                mean_power=float(result.power_trace[:, 2].mean()),
                jobs_completed=result.completed_jobs,
            )

        floor = NUM_NODES * (0.7 * 140.0 + 0.3 * 60.0)
        ceiling = NUM_NODES * (0.7 * 240.0 + 0.3 * 60.0)
        bidder = DemandResponseBidder(
            floor, ceiling, n_power_steps=2, n_reserve_steps=2
        )
        session = DemandResponseSession(bidder, evaluate, run_hour)
        session.run(2)
        return session

    def test_two_hours_recorded(self, session):
        assert len(session.records) == 2

    def test_bids_are_physical(self, session):
        for record in session.records:
            assert record.bid.floor > 0
            assert record.bid.ceiling <= NUM_NODES * 240.0 + NUM_NODES * 60.0

    def test_hours_completed_jobs(self, session):
        assert session.total_jobs > 0

    def test_committed_hours_respect_qos(self, session):
        assert session.worst_qos() < 5.0

    def test_ledger_renders(self, session):
        text = session.format_ledger()
        assert text.count("\n") == 2
