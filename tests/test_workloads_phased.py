"""Tests for multi-phase job types and drift detection (paper §8)."""

import pytest

from repro.geopm.signals import ControlNames
from repro.hwsim.cluster import EmulatedCluster
from repro.modeling.online import OnlineModeler
from repro.modeling.quadratic import QuadraticPowerModel
from repro.workloads.phased import PhaseSpec, PhasedJobType, make_two_phase_type


class TestPhaseSpec:
    def test_valid(self):
        assert PhaseSpec(0.5, 1.5, 250.0).fraction == 0.5

    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            PhaseSpec(0.0, 1.5, 250.0)
        with pytest.raises(ValueError, match="fraction"):
            PhaseSpec(1.2, 1.5, 250.0)

    def test_sensitivity_bound(self):
        with pytest.raises(ValueError, match="≥ 1"):
            PhaseSpec(0.5, 0.9, 250.0)


class TestPhasedJobType:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            make_two_phase_type(first=PhaseSpec(0.5, 1.7, 272.0),
                                second=PhaseSpec(0.4, 1.1, 235.0))

    def test_phase_index_by_progress(self):
        pt = make_two_phase_type()
        assert pt.phase_index(0.0) == 0
        assert pt.phase_index(0.49) == 0
        assert pt.phase_index(0.51) == 1
        assert pt.phase_index(1.0) == 1

    def test_time_per_epoch_changes_across_phases(self):
        pt = make_two_phase_type()
        sensitive = pt.time_per_epoch_at(150.0, 0.1)
        flat = pt.time_per_epoch_at(150.0, 0.9)
        assert sensitive > flat

    def test_uncapped_time_same_in_both_phases(self):
        pt = make_two_phase_type()
        assert pt.time_per_epoch_at(280.0, 0.1) == pytest.approx(
            pt.time_per_epoch_at(280.0, 0.9), rel=1e-9
        )

    def test_power_demand_per_phase(self):
        pt = make_two_phase_type()
        assert pt.power_demand_at(0.1) == 272.0
        assert pt.power_demand_at(0.9) == 235.0

    def test_needs_at_least_one_phase(self):
        with pytest.raises(ValueError, match="≥ 1 phase"):
            PhasedJobType(
                name="p", nas_name="p.D.x", nodes=1, epochs=10,
                t_uncapped=10.0, sensitivity=1.5, p_demand=250.0,
                noise=0.01, phases=(),
            )

    def test_phase_demand_within_range(self):
        with pytest.raises(ValueError, match="outside range"):
            make_two_phase_type(second=PhaseSpec(0.5, 1.1, 100.0))


class TestPhasedExecution:
    def test_emulated_runtime_matches_phase_mix(self):
        pt = make_two_phase_type()
        cluster = EmulatedCluster(pt.nodes, seed=0, run_noise=False)
        cluster.start_job("p", pt)
        for node in cluster.nodes:
            node.pio.write_control(ControlNames.CPU_POWER_LIMIT_CONTROL, 150.0)
        while cluster.running and cluster.clock.now < 5000:
            cluster.clock.advance(1.0)
            cluster.advance(1.0)
        runtime = cluster.completed[0].runtime
        half = pt.epochs // 2
        expected = half * pt.time_per_epoch_at(150.0, 0.1) + half * pt.time_per_epoch_at(150.0, 0.9)
        assert runtime == pytest.approx(expected, rel=0.05)


class TestDriftDetection:
    def make_modeler(self, **kw):
        default = QuadraticPowerModel.from_anchors(2.0, 1.3, 140.0, 280.0)
        kw.setdefault("min_sample_epochs", 1)
        kw.setdefault("detect_drift", True)
        return OnlineModeler(140.0, 280.0, default, **kw)

    def feed(self, m, *, t0, cap, tau, epochs):
        t = t0
        count = m._last_epochs
        m.observe(t, count, cap)
        for k in range(1, epochs + 1):
            t = t0 + k * tau
            m.observe(t, count + k, cap)
        return t

    def test_drift_resets_model(self):
        m = self.make_modeler(drift_window=4, drift_threshold=0.15)
        # Phase 1: tau = 2.0 at both dither levels.
        self.feed(m, t0=0.0, cap=160.0, tau=2.4, epochs=12)
        self.feed(m, t0=100.0, cap=260.0, tau=2.0, epochs=12)
        assert m.has_fit
        # Phase 2: everything suddenly 60 % slower at the same caps.
        self.feed(m, t0=300.0, cap=260.0, tau=3.2, epochs=12)
        assert m.drift_resets >= 1

    def test_relearns_after_drift(self):
        m = self.make_modeler(drift_window=3, drift_threshold=0.15)
        self.feed(m, t0=0.0, cap=160.0, tau=2.4, epochs=10)
        self.feed(m, t0=100.0, cap=260.0, tau=2.0, epochs=10)
        self.feed(m, t0=300.0, cap=260.0, tau=3.2, epochs=16)
        self.feed(m, t0=600.0, cap=160.0, tau=3.8, epochs=16)
        assert m.drift_resets >= 1
        assert m.has_fit
        # The relearned model reflects the new phase's timing.
        assert m.model.time_at(260.0) == pytest.approx(3.2, rel=0.2)

    def test_no_drift_on_stable_signal(self):
        m = self.make_modeler()
        self.feed(m, t0=0.0, cap=160.0, tau=2.4, epochs=15)
        self.feed(m, t0=100.0, cap=260.0, tau=2.0, epochs=15)
        self.feed(m, t0=300.0, cap=200.0, tau=2.2, epochs=15)
        assert m.drift_resets == 0

    def test_noise_spike_does_not_reset(self):
        """One bad sample must not throw away a good model."""
        m = self.make_modeler(drift_window=4)
        self.feed(m, t0=0.0, cap=160.0, tau=2.4, epochs=12)
        self.feed(m, t0=100.0, cap=260.0, tau=2.0, epochs=12)
        # Single outlier epoch, then back to normal.
        t = self.feed(m, t0=300.0, cap=260.0, tau=5.0, epochs=1)
        self.feed(m, t0=t + 1.0, cap=260.0, tau=2.0, epochs=8)
        assert m.drift_resets == 0

    def test_disabled_by_default(self):
        default = QuadraticPowerModel.from_anchors(2.0, 1.3, 140.0, 280.0)
        m = OnlineModeler(140.0, 280.0, default)
        assert not m.detect_drift
