"""Span-tree tests: the event bus, trace validation, and a real control run."""

import pytest

from repro.core.framework import AnorConfig
from repro.experiments.fig9 import build_demand_response_system
from repro.telemetry import NULL_BUS, EventBus, RingBufferSink
from repro.telemetry.schema import (
    build_span_tree,
    summarize_trace,
    validate_record,
    validate_trace,
)


def collect(bus: EventBus) -> RingBufferSink:
    sink = RingBufferSink(1 << 16)
    bus.add_sink(sink)
    return sink


class TestEventBus:
    def test_span_records_carry_the_envelope(self):
        bus = EventBus()
        sink = collect(bus)
        sid = bus.begin_span("control-round", 1.0, target=100.0)
        bus.end_span(sid, 2.0, jobs=3)
        start, end = sink.records()
        assert start == {
            "kind": "span_start", "name": "control-round", "t": 1.0,
            "id": sid, "parent": None, "attrs": {"target": 100.0},
        }
        assert end["kind"] == "span_end"
        assert end["id"] == sid
        assert end["name"] is None
        assert end["attrs"] == {"jobs": 3}

    def test_end_of_unopened_span_raises(self):
        with pytest.raises(ValueError):
            EventBus().end_span(42, 1.0)

    def test_end_of_zero_handle_is_noop(self):
        bus = EventBus()
        bus.end_span(0, 1.0)  # the disabled-begin handle
        assert bus.records_emitted == 0

    def test_disabled_bus_emits_nothing_and_returns_zero(self):
        sink = collect(NULL_BUS)
        assert NULL_BUS.begin_span("s", 0.0) == 0
        NULL_BUS.event("e", 0.0)
        NULL_BUS.incident("cat", 0.0)
        assert sink.records() == []
        assert NULL_BUS.incident_counts == {}

    def test_incident_counts_by_category(self):
        bus = EventBus()
        sink = collect(bus)
        bus.incident("node-crash", 1.0, node=3)
        bus.incident("node-crash", 2.0, node=4)
        bus.incident("meter-fault", 3.0)
        assert bus.incident_counts == {"node-crash": 2, "meter-fault": 1}
        rec = sink.records()[0]
        assert rec["name"] == "incident"
        assert rec["attrs"] == {"category": "node-crash", "node": 3}

    def test_open_span_count(self):
        bus = EventBus()
        a = bus.begin_span("a", 0.0)
        bus.begin_span("b", 0.0, parent=a)
        assert bus.open_spans == 2
        bus.end_span(a, 1.0)
        assert bus.open_spans == 1


class TestValidation:
    def make(self, **over):
        rec = {"kind": "event", "name": "e", "t": 0.0, "id": 1,
               "parent": None, "attrs": {}}
        rec.update(over)
        return rec

    def test_valid_record_passes(self):
        assert validate_record(self.make()) == []

    @pytest.mark.parametrize(
        "over",
        [
            {"kind": "blob"},
            {"name": ""},
            {"name": None},
            {"t": "soon"},
            {"t": True},
            {"id": 0},
            {"id": "x"},
            {"parent": "root"},
            {"attrs": []},
        ],
    )
    def test_bad_fields_flagged(self, over):
        assert validate_record(self.make(**over)) != []

    def test_missing_field_flagged(self):
        rec = self.make()
        del rec["attrs"]
        assert "missing fields" in validate_record(rec)[0]

    def test_span_end_must_have_null_name(self):
        rec = self.make(kind="span_end", name="oops")
        assert validate_record(rec) != []

    def test_trace_catches_referential_errors(self):
        bad = [
            self.make(id=1, kind="span_start", name="a", t=0.0),
            self.make(id=1, kind="event", name="dup", t=1.0),        # dup id
            self.make(id=2, kind="event", name="e", t=0.5),          # time back
            self.make(id=3, kind="event", name="e", t=2.0, parent=9),  # bad parent
            self.make(id=4, kind="span_end", name=None, t=3.0),      # unopened
        ]
        errors = validate_trace(bad)
        assert any("duplicate id" in e for e in errors)
        assert any("time went backwards" in e for e in errors)
        assert any("not an open span" in e for e in errors)
        assert any("unopened span" in e for e in errors)
        assert any("never closed" in e for e in errors)  # span 1 stays open

    def test_clean_synthetic_trace_validates(self):
        bus = EventBus()
        sink = collect(bus)
        outer = bus.begin_span("round", 0.0)
        inner = bus.begin_span("budget", 0.5, parent=outer)
        bus.event("model-accept", 0.6, parent=outer)
        bus.end_span(inner, 0.9)
        bus.end_span(outer, 1.0)
        assert validate_trace(sink.records()) == []


class TestSpanTree:
    def test_nesting_and_events_attach(self):
        bus = EventBus()
        sink = collect(bus)
        outer = bus.begin_span("round", 0.0, target=10.0)
        inner = bus.begin_span("budget", 0.1, parent=outer)
        bus.event("cap-dispatch", 0.2, parent=outer, caps={"j": 1.0})
        bus.end_span(inner, 0.3, allocated=9.0)
        bus.end_span(outer, 0.4)
        roots = build_span_tree(sink.records())
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "round" and root.complete
        assert root.attrs == {"target": 10.0}
        budget = root.child("budget")
        assert budget is not None and budget.end_attrs == {"allocated": 9.0}
        assert [e["name"] for e in root.events] == ["cap-dispatch"]
        assert root.child("nope") is None

    def test_incomplete_span_reported(self):
        bus = EventBus()
        sink = collect(bus)
        bus.begin_span("round", 0.0)
        (root,) = build_span_tree(sink.records())
        assert not root.complete


class TestRealRun:
    """A short Fig. 9 run must produce a well-formed, complete span stream."""

    @pytest.fixture(scope="class")
    def records(self):
        cfg = AnorConfig(seed=0, telemetry_enabled=True, telemetry_ring_size=1 << 16)
        system = build_demand_response_system(duration=120.0, seed=0, config=cfg)
        system.run(120.0)
        return system.telemetry.ring.records()

    def test_trace_validates(self, records):
        assert validate_trace(records) == []

    def test_one_complete_control_round_per_period(self, records):
        roots = build_span_tree(records)
        rounds = [r for r in roots if r.name == "control-round"]
        assert len(rounds) >= 120  # manager_period is 1 s
        assert all(r.complete for r in rounds)

    def test_budget_rounds_carry_policy_and_slowdown(self, records):
        roots = build_span_tree(records)
        budgets = [
            c
            for r in roots
            if r.name == "control-round"
            for c in r.children
            if c.name == "budget-round"
        ]
        assert budgets, "no budget rounds in a 120 s run"
        assert all(b.attrs["policy"] == "even-slowdown" for b in budgets)
        # The even-slowdown budgeter reports the slowdown it settled on.
        assert any("slowdown" in b.end_attrs for b in budgets)

    def test_cap_dispatch_events_inside_rounds(self, records):
        roots = build_span_tree(records)
        dispatches = [
            e
            for r in roots
            for e in r.events
            if e["name"] == "cap-dispatch"
        ]
        assert dispatches
        assert all(e["attrs"]["caps"] for e in dispatches)

    def test_summary_counts_spans(self, records):
        summary = summarize_trace(records)
        assert summary["spans"]["control-round"] >= 120
        assert summary["records"] == len(records)
        assert summary["t_max"] >= 119.0
