"""Tests for emulated RAPL MSRs (paper §5.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.geopm.msr import (
    ENERGY_COUNTER_BITS,
    ENERGY_UNIT_JOULES,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_LIMIT,
    POWER_UNIT_WATTS,
    MsrBank,
    energy_counter_delta,
)


class TestEnergyCounter:
    def test_accumulates(self):
        bank = MsrBank()
        bank.accumulate_energy(1.0)
        raw = bank.read(MSR_PKG_ENERGY_STATUS)
        assert raw * ENERGY_UNIT_JOULES == pytest.approx(1.0, rel=1e-4)

    def test_wraps_at_32_bits(self):
        bank = MsrBank()
        wrap_joules = (1 << ENERGY_COUNTER_BITS) * ENERGY_UNIT_JOULES
        bank.accumulate_energy(wrap_joules + 5.0)
        raw = bank.read(MSR_PKG_ENERGY_STATUS)
        assert raw * ENERGY_UNIT_JOULES == pytest.approx(5.0, rel=1e-3)

    def test_total_energy_unwrapped(self):
        bank = MsrBank()
        wrap_joules = (1 << ENERGY_COUNTER_BITS) * ENERGY_UNIT_JOULES
        bank.accumulate_energy(wrap_joules + 5.0)
        assert bank.total_energy_joules == pytest.approx(wrap_joules + 5.0)

    def test_delta_across_wraparound(self):
        before = (1 << ENERGY_COUNTER_BITS) - 100
        after = 50
        delta = energy_counter_delta(before, after)
        assert delta == pytest.approx(150 * ENERGY_UNIT_JOULES)

    def test_delta_without_wrap(self):
        assert energy_counter_delta(100, 300) == pytest.approx(
            200 * ENERGY_UNIT_JOULES
        )

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            MsrBank().accumulate_energy(-1.0)

    def test_energy_register_read_only(self):
        with pytest.raises(PermissionError):
            MsrBank().write(MSR_PKG_ENERGY_STATUS, 0)

    # Deposits stay below the 65536 J wrap quantum: like real RAPL, a reader
    # sampling less often than one full wrap cannot disambiguate the count.
    @given(st.lists(st.floats(0.0, 6.0e4), min_size=1, max_size=30))
    def test_property_deltas_reconstruct_total(self, deposits):
        """Reading deltas through the wrapping counter recovers the total."""
        bank = MsrBank()
        last_raw = bank.read(MSR_PKG_ENERGY_STATUS)
        recovered = 0.0
        for joules in deposits:
            bank.accumulate_energy(joules)
            raw = bank.read(MSR_PKG_ENERGY_STATUS)
            recovered += energy_counter_delta(last_raw, raw)
            last_raw = raw
        assert recovered == pytest.approx(sum(deposits), rel=1e-3, abs=1e-3)


class TestPowerLimit:
    def test_default_is_tdp(self):
        assert MsrBank(tdp_watts=140.0).power_limit_watts == 140.0

    def test_set_and_read(self):
        bank = MsrBank()
        bank.set_power_limit_watts(100.0)
        assert bank.power_limit_watts == 100.0

    def test_quantised_to_eighth_watt(self):
        bank = MsrBank()
        stored = bank.set_power_limit_watts(99.97)
        assert stored % POWER_UNIT_WATTS == pytest.approx(0.0, abs=1e-9)
        assert abs(stored - 99.97) <= POWER_UNIT_WATTS

    def test_clamped_to_floor(self):
        bank = MsrBank(min_power_watts=70.0)
        assert bank.set_power_limit_watts(10.0) == 70.0

    def test_clamped_to_tdp(self):
        bank = MsrBank(tdp_watts=140.0)
        assert bank.set_power_limit_watts(500.0) == 140.0

    def test_raw_register_roundtrip(self):
        bank = MsrBank()
        bank.write(MSR_PKG_POWER_LIMIT, 800)  # 100 W in eighth-watt units
        assert bank.read(MSR_PKG_POWER_LIMIT) == 800
        assert bank.power_limit_watts == 100.0

    def test_negative_raw_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            MsrBank().write(MSR_PKG_POWER_LIMIT, -1)

    def test_unknown_address_rejected(self):
        with pytest.raises(KeyError, match="unsupported"):
            MsrBank().read(0x999)
        with pytest.raises(KeyError, match="unsupported"):
            MsrBank().write(0x999, 0)

    def test_invalid_power_range_rejected(self):
        with pytest.raises(ValueError, match="min_power"):
            MsrBank(tdp_watts=50.0, min_power_watts=70.0)
