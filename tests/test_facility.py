"""Tests for the facility tier (multi-cluster coordination, paper §8)."""

import pytest

from repro.budget.base import JobBudgetRequest
from repro.budget.even_power import EvenPowerBudgeter
from repro.core.targets import ConstantTarget
from repro.facility.breaker import PowerBreaker
from repro.facility.coordinator import (
    ClusterMember,
    FacilityCoordinator,
    MutableTarget,
    aggregate_cluster_model,
)
from repro.facility.shed import ShedLadder
from repro.modeling.quadratic import QuadraticPowerModel
from repro.telemetry import Telemetry
from repro.workloads.nas import NAS_TYPES


def requests_for(*type_names):
    return [
        JobBudgetRequest(
            job_id=f"{name}-{i}",
            nodes=NAS_TYPES[name].nodes,
            model=NAS_TYPES[name].truth,
            p_min=140.0,
            p_max=NAS_TYPES[name].p_demand,
        )
        for i, name in enumerate(type_names)
    ]


class TestMutableTarget:
    def test_set_and_read(self):
        t = MutableTarget(1000.0)
        assert t.target(0.0) == 1000.0
        t.set(1500.0)
        assert t.target(99.0) == 1500.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            MutableTarget(0.0)
        with pytest.raises(ValueError, match="positive"):
            MutableTarget(1.0).set(-5.0)


class TestAggregateModel:
    def test_monotone_in_budget(self):
        model = aggregate_cluster_model(requests_for("bt", "sp"))
        assert model.time_at(model.p_min) > model.time_at(model.p_max)

    def test_sensitive_cluster_has_higher_sensitivity(self):
        sensitive = aggregate_cluster_model(requests_for("ep", "bt"))
        flat = aggregate_cluster_model(requests_for("is", "sp"))
        assert sensitive.sensitivity > flat.sensitivity

    def test_range_covers_cluster_band(self):
        reqs = requests_for("bt", "sp")
        model = aggregate_cluster_model(reqs)
        assert model.p_min == pytest.approx(sum(r.p_min * r.nodes for r in reqs))
        assert model.p_max == pytest.approx(sum(r.p_max * r.nodes for r in reqs))

    def test_no_jobs_rejected(self):
        with pytest.raises(ValueError, match="no jobs"):
            aggregate_cluster_model([])

    def test_sample_count_validated(self):
        with pytest.raises(ValueError, match="≥ 3"):
            aggregate_cluster_model(requests_for("bt"), samples=2)


def make_member(name, *type_names, initial=1000.0):
    reqs = requests_for(*type_names)
    model = aggregate_cluster_model(reqs)
    return ClusterMember(
        name=name,
        target=MutableTarget(initial),
        p_min=model.p_min,
        p_max=model.p_max,
        model=model,
    )


class TestCoordinator:
    def test_budget_split_respects_total(self):
        old = make_member("old", "bt", "sp")
        new = make_member("new", "ep", "lu")
        # A constrained feed: 80 % of what both clusters could draw at once.
        total = 0.8 * (old.p_max + new.p_max)
        fac = FacilityCoordinator(facility_target=ConstantTarget(total))
        fac.add_member(old)
        fac.add_member(new)
        shares = fac.step(0.0)
        assert sum(shares.values()) == pytest.approx(total, rel=0.02)

    def test_shares_pushed_into_member_targets(self):
        fac = FacilityCoordinator(facility_target=ConstantTarget(2500.0))
        a = make_member("a", "bt", "sp")
        b = make_member("b", "ep", "lu")
        fac.add_member(a)
        fac.add_member(b)
        shares = fac.step(0.0)
        assert a.target.target(0.0) == pytest.approx(shares["a"])
        assert b.target.target(0.0) == pytest.approx(shares["b"])

    def test_sensitive_cluster_favoured_under_even_slowdown(self):
        """§8's motivating case: the cluster whose workload loses more
        performance per watt removed should get more of the shared feed."""
        flat = make_member("flat", "is", "sp")
        hot = make_member("hot", "ep", "bt")
        total = 0.65 * (flat.p_max + hot.p_max)
        fac = FacilityCoordinator(facility_target=ConstantTarget(total))
        fac.add_member(flat)
        fac.add_member(hot)
        shares = fac.step(0.0)
        flat_frac = (shares["flat"] - flat.p_min) / (flat.p_max - flat.p_min)
        hot_frac = (shares["hot"] - hot.p_min) / (hot.p_max - hot.p_min)
        assert hot_frac > flat_frac

    def test_even_power_facility_split(self):
        a = make_member("a", "is", "sp")
        b = make_member("b", "ep", "bt")
        total = 0.65 * (a.p_max + b.p_max)
        fac = FacilityCoordinator(
            facility_target=ConstantTarget(total), budgeter=EvenPowerBudgeter()
        )
        fac.add_member(a)
        fac.add_member(b)
        shares = fac.step(0.0)
        frac_a = (shares["a"] - a.p_min) / (a.p_max - a.p_min)
        frac_b = (shares["b"] - b.p_min) / (b.p_max - b.p_min)
        assert frac_a == pytest.approx(frac_b, abs=1e-6)

    def test_update_member_model(self):
        fac = FacilityCoordinator(facility_target=ConstantTarget(2000.0))
        member = make_member("a", "bt", "sp")
        fac.add_member(member)
        flat = QuadraticPowerModel.from_anchors(
            1.0, 1.01, member.p_min, member.p_max
        )
        fac.update_member_model("a", flat)
        assert fac.members["a"].model is flat

    def test_duplicate_member_rejected(self):
        fac = FacilityCoordinator(facility_target=ConstantTarget(2000.0))
        fac.add_member(make_member("a", "bt"))
        with pytest.raises(ValueError, match="duplicate"):
            fac.add_member(make_member("a", "sp"))

    def test_no_members_noop(self):
        fac = FacilityCoordinator(facility_target=ConstantTarget(2000.0))
        assert fac.step(0.0) == {}

    def test_history_recorded(self):
        fac = FacilityCoordinator(facility_target=ConstantTarget(2000.0))
        fac.add_member(make_member("a", "bt", "sp"))
        fac.step(0.0)
        fac.step(10.0)
        assert len(fac.history) == 2
        assert fac.total_assigned > 0


class _Meter:
    """A mutable facility power meter for driving the breaker in tests."""

    def __init__(self, watts):
        self.watts = watts

    def __call__(self):
        return self.watts


def breaker_facility(*, feed, meter_watts, telemetry=None, ladder=None):
    meter = _Meter(meter_watts)
    kwargs = dict(
        facility_target=ConstantTarget(feed),
        meter=meter,
        breaker=PowerBreaker(
            margin=0.1, trip_rounds=2, reset_rounds=2, confirm_rounds=2
        ),
        ladder=ladder,
    )
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    fac = FacilityCoordinator(**kwargs)
    fac.add_member(make_member("a", "bt", "sp"))
    fac.add_member(make_member("b", "ep", "lu"))
    return fac, meter


class TestCoordinatorBreaker:
    def test_trip_forces_every_member_to_floor(self):
        """Open breaker = emergency uniform throttle: each cluster pinned
        at its enforceable p_min, regardless of the budgeter's split."""
        fac, meter = breaker_facility(feed=4000.0, meter_watts=6000.0)
        fac.step(0.0)  # strike 1
        caps = fac.step(10.0)  # strike 2 -> open
        assert fac.breaker.tripped
        for name, member in fac.members.items():
            assert caps[name] == pytest.approx(member.p_min)
            assert member.target.target(10.0) == pytest.approx(member.p_min)

    def test_one_glitch_round_does_not_trip(self):
        fac, meter = breaker_facility(feed=4000.0, meter_watts=6000.0)
        fac.step(0.0)
        meter.watts = 4000.0  # meter glitch over; clean round resets strikes
        fac.step(10.0)
        meter.watts = 6000.0
        fac.step(20.0)
        assert not fac.breaker.tripped

    def test_half_open_recovery_and_reopen(self):
        fac, meter = breaker_facility(feed=4000.0, meter_watts=6000.0)
        fac.step(0.0)
        fac.step(10.0)
        assert fac.breaker.state == "open"
        meter.watts = 3000.0
        fac.step(20.0)
        fac.step(30.0)
        assert fac.breaker.state == "half-open"
        meter.watts = 6000.0  # one strike on probation re-opens immediately
        fac.step(40.0)
        assert fac.breaker.state == "open"
        meter.watts = 3000.0
        for t in (50.0, 60.0, 70.0, 80.0):
            fac.step(t)
        assert fac.breaker.state == "closed"
        caps = fac.step(90.0)
        assert sum(caps.values()) > sum(m.p_min for m in fac.members.values())

    def test_breaker_transitions_emit_events_and_incidents(self):
        tel = Telemetry(ring_size=64)
        fac, meter = breaker_facility(
            feed=4000.0, meter_watts=6000.0, telemetry=tel
        )
        fac.step(0.0)
        fac.step(10.0)
        assert any("breaker closed -> open" in line for line in fac.events)
        assert tel.incident_counts.get("facility-breaker-open") == 1
        assert tel.registry.get_value("anor_facility_breaker_state") == 2

    def test_tripped_floor_above_feed_names_shortfall(self):
        """When Σ p_min exceeds the physical feed there is no enforceable
        fix; the coordinator must say so rather than over-assign silently."""
        tel = Telemetry(ring_size=64)
        fac, meter = breaker_facility(
            feed=500.0, meter_watts=5000.0, telemetry=tel
        )
        floor_total = sum(m.p_min for m in fac.members.values())
        assert floor_total > 500.0  # precondition for the scenario
        fac.step(0.0)
        fac.step(10.0)  # open -> emergency floor caps > feed
        assert tel.incident_counts.get("facility-shortfall", 0) >= 1
        incident = next(
            i for i in tel.incidents()
            if i["attrs"]["category"] == "facility-shortfall"
        )
        assert incident["attrs"]["shortfall_watts"] == pytest.approx(
            floor_total - 500.0
        )
        assert any("shortfall" in line for line in fac.events)

    def test_assigned_gauge_tracks_round(self):
        tel = Telemetry(ring_size=64)
        fac = FacilityCoordinator(
            facility_target=ConstantTarget(2500.0), telemetry=tel
        )
        fac.add_member(make_member("a", "bt", "sp"))
        caps = fac.step(0.0)
        assert tel.registry.get_value(
            "anor_facility_assigned_watts"
        ) == pytest.approx(sum(caps.values()))


class TestCoordinatorLadder:
    def test_sagging_feed_degrades_and_ramps_back(self):
        """With a ladder installed, a feed sag walks severity up against
        the high-water nominal; restoring the feed ramps the pool back at
        the configured watts-per-round instead of snapping."""
        tel = Telemetry(ring_size=64)
        # Members span p_min 840 W / p_max 1570 W in total; the feed must
        # sit inside that band for the sag to actually bind the split.
        feed = MutableTarget(1500.0)
        fac = FacilityCoordinator(
            facility_target=feed,
            ladder=ShedLadder(
                escalate_rounds=1, clear_rounds=2, ramp_watts_per_round=100.0
            ),
            telemetry=tel,
        )
        fac.add_member(make_member("a", "bt", "sp"))
        fac.add_member(make_member("b", "ep", "lu"))
        baseline = sum(fac.step(0.0).values())  # high-water nominal split
        assert fac.ladder.severity == "normal"
        feed.set(900.0)  # 40 % deficit -> brownout-2 at escalate_rounds=1
        caps = fac.step(10.0)
        assert fac.ladder.severity == "brownout-2"
        assert tel.registry.get_value("anor_facility_shed_severity") == 2
        assert tel.incident_counts.get("facility-shed-brownout-2") == 1
        assert sum(caps.values()) == pytest.approx(900.0, rel=0.02)
        feed.set(1500.0)
        prev = sum(fac.step(20.0).values())
        ramped = sum(fac.step(30.0).values())
        assert ramped - prev == pytest.approx(100.0, rel=0.05)
        for t in range(40, 200, 10):
            fac.step(float(t))
        assert fac.ladder.severity == "normal"
        # Fully recovered: the split matches the pre-incident round.
        assert sum(fac.step(999.0).values()) == pytest.approx(baseline)

    def test_tripped_breaker_feeds_floor_supply_to_ladder(self):
        """Breaker open + ladder installed: supply collapses to Σ p_min, so
        the ladder (not the binary floor slam) grades the emergency."""
        ladder = ShedLadder(escalate_rounds=1, clear_rounds=2)
        fac, meter = breaker_facility(
            feed=4000.0, meter_watts=6000.0, ladder=ladder
        )
        fac.step(0.0)
        caps = fac.step(10.0)  # breaker opens this round
        assert fac.breaker.tripped
        assert fac.ladder.severity != "normal"
        floor_total = sum(m.p_min for m in fac.members.values())
        assert sum(caps.values()) == pytest.approx(floor_total, rel=0.02)


class TestCoordinatorBoundedLogs:
    def test_history_and_events_bounded(self, monkeypatch):
        import repro.facility.coordinator as coord_mod

        monkeypatch.setattr(coord_mod, "HISTORY_LIMIT", 8)
        monkeypatch.setattr(coord_mod, "EVENT_LOG_LIMIT", 4)
        feed = MutableTarget(4000.0)
        fac = FacilityCoordinator(
            facility_target=feed,
            ladder=ShedLadder(escalate_rounds=1, clear_rounds=1),
        )
        fac.add_member(make_member("a", "bt", "sp"))
        for i in range(20):
            # Alternate sag/restore so every round logs a severity event.
            feed.set(2000.0 if i % 2 else 4000.0)
            fac.step(float(i * 10))
        assert len(fac.history) == 8
        assert fac.history_dropped == 20 - 8
        assert len(fac.events) == 4
        assert fac.events_dropped > 0
