"""Tests for the facility tier (multi-cluster coordination, paper §8)."""

import pytest

from repro.budget.base import JobBudgetRequest
from repro.budget.even_power import EvenPowerBudgeter
from repro.core.targets import ConstantTarget
from repro.facility.coordinator import (
    ClusterMember,
    FacilityCoordinator,
    MutableTarget,
    aggregate_cluster_model,
)
from repro.modeling.quadratic import QuadraticPowerModel
from repro.workloads.nas import NAS_TYPES


def requests_for(*type_names):
    return [
        JobBudgetRequest(
            job_id=f"{name}-{i}",
            nodes=NAS_TYPES[name].nodes,
            model=NAS_TYPES[name].truth,
            p_min=140.0,
            p_max=NAS_TYPES[name].p_demand,
        )
        for i, name in enumerate(type_names)
    ]


class TestMutableTarget:
    def test_set_and_read(self):
        t = MutableTarget(1000.0)
        assert t.target(0.0) == 1000.0
        t.set(1500.0)
        assert t.target(99.0) == 1500.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            MutableTarget(0.0)
        with pytest.raises(ValueError, match="positive"):
            MutableTarget(1.0).set(-5.0)


class TestAggregateModel:
    def test_monotone_in_budget(self):
        model = aggregate_cluster_model(requests_for("bt", "sp"))
        assert model.time_at(model.p_min) > model.time_at(model.p_max)

    def test_sensitive_cluster_has_higher_sensitivity(self):
        sensitive = aggregate_cluster_model(requests_for("ep", "bt"))
        flat = aggregate_cluster_model(requests_for("is", "sp"))
        assert sensitive.sensitivity > flat.sensitivity

    def test_range_covers_cluster_band(self):
        reqs = requests_for("bt", "sp")
        model = aggregate_cluster_model(reqs)
        assert model.p_min == pytest.approx(sum(r.p_min * r.nodes for r in reqs))
        assert model.p_max == pytest.approx(sum(r.p_max * r.nodes for r in reqs))

    def test_no_jobs_rejected(self):
        with pytest.raises(ValueError, match="no jobs"):
            aggregate_cluster_model([])

    def test_sample_count_validated(self):
        with pytest.raises(ValueError, match="≥ 3"):
            aggregate_cluster_model(requests_for("bt"), samples=2)


def make_member(name, *type_names, initial=1000.0):
    reqs = requests_for(*type_names)
    model = aggregate_cluster_model(reqs)
    return ClusterMember(
        name=name,
        target=MutableTarget(initial),
        p_min=model.p_min,
        p_max=model.p_max,
        model=model,
    )


class TestCoordinator:
    def test_budget_split_respects_total(self):
        old = make_member("old", "bt", "sp")
        new = make_member("new", "ep", "lu")
        # A constrained feed: 80 % of what both clusters could draw at once.
        total = 0.8 * (old.p_max + new.p_max)
        fac = FacilityCoordinator(facility_target=ConstantTarget(total))
        fac.add_member(old)
        fac.add_member(new)
        shares = fac.step(0.0)
        assert sum(shares.values()) == pytest.approx(total, rel=0.02)

    def test_shares_pushed_into_member_targets(self):
        fac = FacilityCoordinator(facility_target=ConstantTarget(2500.0))
        a = make_member("a", "bt", "sp")
        b = make_member("b", "ep", "lu")
        fac.add_member(a)
        fac.add_member(b)
        shares = fac.step(0.0)
        assert a.target.target(0.0) == pytest.approx(shares["a"])
        assert b.target.target(0.0) == pytest.approx(shares["b"])

    def test_sensitive_cluster_favoured_under_even_slowdown(self):
        """§8's motivating case: the cluster whose workload loses more
        performance per watt removed should get more of the shared feed."""
        flat = make_member("flat", "is", "sp")
        hot = make_member("hot", "ep", "bt")
        total = 0.65 * (flat.p_max + hot.p_max)
        fac = FacilityCoordinator(facility_target=ConstantTarget(total))
        fac.add_member(flat)
        fac.add_member(hot)
        shares = fac.step(0.0)
        flat_frac = (shares["flat"] - flat.p_min) / (flat.p_max - flat.p_min)
        hot_frac = (shares["hot"] - hot.p_min) / (hot.p_max - hot.p_min)
        assert hot_frac > flat_frac

    def test_even_power_facility_split(self):
        a = make_member("a", "is", "sp")
        b = make_member("b", "ep", "bt")
        total = 0.65 * (a.p_max + b.p_max)
        fac = FacilityCoordinator(
            facility_target=ConstantTarget(total), budgeter=EvenPowerBudgeter()
        )
        fac.add_member(a)
        fac.add_member(b)
        shares = fac.step(0.0)
        frac_a = (shares["a"] - a.p_min) / (a.p_max - a.p_min)
        frac_b = (shares["b"] - b.p_min) / (b.p_max - b.p_min)
        assert frac_a == pytest.approx(frac_b, abs=1e-6)

    def test_update_member_model(self):
        fac = FacilityCoordinator(facility_target=ConstantTarget(2000.0))
        member = make_member("a", "bt", "sp")
        fac.add_member(member)
        flat = QuadraticPowerModel.from_anchors(
            1.0, 1.01, member.p_min, member.p_max
        )
        fac.update_member_model("a", flat)
        assert fac.members["a"].model is flat

    def test_duplicate_member_rejected(self):
        fac = FacilityCoordinator(facility_target=ConstantTarget(2000.0))
        fac.add_member(make_member("a", "bt"))
        with pytest.raises(ValueError, match="duplicate"):
            fac.add_member(make_member("a", "sp"))

    def test_no_members_noop(self):
        fac = FacilityCoordinator(facility_target=ConstantTarget(2000.0))
        assert fac.step(0.0) == {}

    def test_history_recorded(self):
        fac = FacilityCoordinator(facility_target=ConstantTarget(2000.0))
        fac.add_member(make_member("a", "bt", "sp"))
        fac.step(0.0)
        fac.step(10.0)
        assert len(fac.history) == 2
        assert fac.total_assigned > 0
