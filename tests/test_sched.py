"""Tests for the FCFS and EASY-backfill schedulers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorSystem
from repro.core.targets import ConstantTarget
from repro.sched.backfill import EasyBackfillScheduler
from repro.sched.base import PendingJob, RunningView
from repro.sched.fcfs import FcfsScheduler


def pj(job_id, nodes, est=100.0, submit=0.0):
    return PendingJob(job_id=job_id, nodes=nodes, submit_time=submit, est_runtime=est)


def rv(job_id, nodes, est_end):
    return RunningView(job_id=job_id, nodes=nodes, est_end=est_end)


class TestValidation:
    def test_pending_validates(self):
        with pytest.raises(ValueError, match="≥ 1"):
            pj("a", 0)
        with pytest.raises(ValueError, match="positive"):
            pj("a", 1, est=0.0)

    def test_running_validates(self):
        with pytest.raises(ValueError, match="≥ 1"):
            rv("a", 0, 10.0)

    def test_negative_idle_rejected(self):
        with pytest.raises(ValueError, match="≥ 0"):
            FcfsScheduler().select([], [], -1, 0.0)


class TestFcfs:
    def test_starts_in_order_while_fitting(self):
        chosen = FcfsScheduler().select([pj("a", 2), pj("b", 3)], [], 5, 0.0)
        assert [j.job_id for j in chosen] == ["a", "b"]

    def test_head_blocks_queue(self):
        chosen = FcfsScheduler().select([pj("a", 8), pj("b", 1)], [], 4, 0.0)
        assert chosen == []  # b may not pass a

    def test_partial_start(self):
        chosen = FcfsScheduler().select(
            [pj("a", 2), pj("b", 4), pj("c", 1)], [], 5, 0.0
        )
        assert [j.job_id for j in chosen] == ["a"]  # b blocks c


class TestEasyBackfill:
    def test_behaves_like_fcfs_when_everything_fits(self):
        pending = [pj("a", 2), pj("b", 3)]
        chosen = EasyBackfillScheduler().select(pending, [], 5, 0.0)
        assert [j.job_id for j in chosen] == ["a", "b"]

    def test_short_job_backfills_past_wide_head(self):
        # Head needs 8 nodes: 4 idle + 4 released at t=100.
        running = [rv("r", 4, est_end=100.0)]
        pending = [pj("wide", 8, est=500.0), pj("short", 2, est=50.0)]
        chosen = EasyBackfillScheduler().select(pending, running, 4, 0.0)
        assert [j.job_id for j in chosen] == ["short"]

    def test_long_job_cannot_delay_reservation(self):
        running = [rv("r", 4, est_end=100.0)]
        pending = [pj("wide", 8, est=500.0), pj("long", 2, est=400.0)]
        # "long" would still hold 2 of the nodes the head needs at t=100.
        chosen = EasyBackfillScheduler().select(pending, running, 4, 0.0)
        assert chosen == []

    def test_long_job_may_use_extra_nodes(self):
        # Head needs 5: at t=100 it gets 4 idle + 4 released = 8, leaving 3
        # extra nodes a long job can hold without delaying the reservation.
        running = [rv("r", 4, est_end=100.0)]
        pending = [pj("head", 5, est=500.0), pj("long", 3, est=400.0)]
        chosen = EasyBackfillScheduler().select(pending, running, 4, 0.0)
        assert [j.job_id for j in chosen] == ["long"]

    def test_extra_nodes_not_double_spent(self):
        running = [rv("r", 4, est_end=100.0)]
        pending = [
            pj("head", 5, est=500.0),
            pj("long1", 3, est=400.0),
            pj("long2", 1, est=400.0),
        ]
        chosen = EasyBackfillScheduler().select(pending, running, 4, 0.0)
        # Only 3 extra nodes exist: long1 takes them; long2 must wait.
        assert [j.job_id for j in chosen] == ["long1"]

    def test_impossible_head_blocks_backfill(self):
        # The head wants more nodes than the cluster has.
        pending = [pj("huge", 100, est=10.0), pj("small", 1, est=10.0)]
        chosen = EasyBackfillScheduler().select(pending, [rv("r", 2, 50.0)], 2, 0.0)
        assert chosen == []

    def test_backfill_after_started_jobs(self):
        # a starts normally; b blocks; c backfills before a+running release.
        running = [rv("r", 5, est_end=200.0)]
        pending = [pj("a", 3, est=50.0), pj("b", 7, est=100.0), pj("c", 2, est=20.0)]
        chosen = EasyBackfillScheduler().select(pending, running, 5, 0.0)
        assert [j.job_id for j in chosen] == ["a", "c"]

    @given(
        st.lists(
            st.tuples(st.integers(1, 8), st.floats(10.0, 500.0)),
            min_size=1,
            max_size=12,
        ),
        st.integers(0, 16),
    )
    @settings(max_examples=60)
    def test_property_never_oversubscribes(self, specs, idle):
        pending = [pj(f"j{i}", n, est=e) for i, (n, e) in enumerate(specs)]
        chosen = EasyBackfillScheduler().select(pending, [], idle, 0.0)
        assert sum(j.nodes for j in chosen) <= idle
        ids = [j.job_id for j in chosen]
        assert len(ids) == len(set(ids))

    @given(
        st.lists(
            st.tuples(st.integers(1, 8), st.floats(10.0, 500.0)),
            min_size=2,
            max_size=12,
        ),
        st.integers(1, 16),
    )
    @settings(max_examples=60)
    def test_property_head_priority_preserved(self, specs, idle):
        """If the head does not start, nothing that would delay it starts:
        re-running the reservation after backfills must give the same time."""
        scheduler = EasyBackfillScheduler()
        pending = [pj(f"j{i}", n, est=e) for i, (n, e) in enumerate(specs)]
        running = [rv("r", 4, est_end=120.0)]
        chosen = scheduler.select(pending, running, idle, 0.0)
        started = {j.job_id for j in chosen}
        if pending[0].job_id in started:
            return
        head = pending[0]
        before, _ = EasyBackfillScheduler._reservation(head, running, idle, 0.0)
        live_after = running + [
            RunningView(j.job_id, j.nodes, 0.0 + j.est_runtime) for j in chosen
        ]
        idle_after = idle - sum(j.nodes for j in chosen)
        after, _ = EasyBackfillScheduler._reservation(head, live_after, idle_after, 0.0)
        assert after <= before + 1e-9


class TestFrameworkIntegration:
    def _system(self, scheduler):
        return AnorSystem(
            budgeter=EvenSlowdownBudgeter(),
            target_source=ConstantTarget(4 * 280.0),
            scheduler=scheduler,
            config=AnorConfig(num_nodes=4, seed=0, feedback_enabled=False),
        )

    def test_backfill_reduces_short_job_wait(self):
        waits = {}
        for name, scheduler in (
            ("fcfs", FcfsScheduler()),
            ("easy", EasyBackfillScheduler()),
        ):
            system = self._system(scheduler)
            system.submit_now("long-0", "lu", nodes=3)  # holds 3 of 4 nodes
            system.submit_now("wide-1", "ft")  # needs 2: blocked head
            system.submit_now("tiny-2", "is")  # 1 node, short
            result = system.run(until_idle=True, max_time=7200.0)
            tiny = [t for t in result.completed if t.job_id == "tiny-2"][0]
            waits[name] = tiny.sojourn - tiny.runtime
        assert waits["easy"] < waits["fcfs"]

    def test_backfill_completes_all_jobs(self):
        system = self._system(EasyBackfillScheduler())
        for i, t in enumerate(["lu", "ft", "is", "mg", "cg"]):
            system.submit_now(f"{t}-{i}", t, nodes=1)
        result = system.run(until_idle=True, max_time=7200.0)
        assert len(result.completed) == 5
