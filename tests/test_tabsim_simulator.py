"""Tests for the per-second tabular simulation loop (paper §5.6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aqa.regulation import TabulatedSignal
from repro.tabsim.simulator import SimConfig, TabularClusterSimulator, _waterfill_cap
from repro.tabsim.tables import SimJobType
from repro.tabsim.variation import draw_node_multipliers, variation_sigma_for_band
from repro.workloads.trace import JobRequest, Schedule

FLAT = TabulatedSignal([0.0], [0.0])


def sim_type(name="x", nodes=2, t_fast=50.0, t_slow=100.0, p_max=260.0):
    return SimJobType(
        name, nodes, 140.0, p_max, t_at_p_max=t_fast, t_at_p_min=t_slow
    )


def one_job_schedule(type_name="x", nodes=2, submit=0.0):
    return Schedule(
        requests=[JobRequest(submit, "j0", type_name, nodes)], duration=10.0
    )


def make_sim(types=None, schedule=None, *, signal=FLAT, **cfg_kwargs):
    types = types or [sim_type()]
    # An empty Schedule is falsy, so test for None explicitly.
    schedule = schedule if schedule is not None else one_job_schedule()
    defaults = dict(num_nodes=10, average_power=2500.0, reserve=100.0, seed=0)
    defaults.update(cfg_kwargs)
    return TabularClusterSimulator(types, schedule, signal, SimConfig(**defaults))


class TestWaterfill:
    def test_plenty_gives_max(self):
        demand = np.array([200.0, 250.0])
        assert _waterfill_cap(1000.0, demand, 140.0, 280.0) == 280.0

    def test_starved_gives_min(self):
        demand = np.array([200.0, 250.0])
        assert _waterfill_cap(100.0, demand, 140.0, 280.0) == 140.0

    def test_exact_fill(self):
        demand = np.array([200.0, 260.0, 260.0])
        available = 650.0
        cap = _waterfill_cap(available, demand, 140.0, 280.0)
        realised = np.minimum(cap, demand).sum()
        assert realised == pytest.approx(available, rel=1e-9)

    def test_saturated_low_demand_released(self):
        demand = np.array([150.0, 280.0])
        cap = _waterfill_cap(380.0, demand, 140.0, 280.0)
        # 150 saturates; remaining 230 goes to the other node.
        assert cap == pytest.approx(230.0)

    def test_empty(self):
        assert _waterfill_cap(100.0, np.array([]), 140.0, 280.0) == 280.0

    @given(
        st.lists(st.floats(150.0, 280.0), min_size=1, max_size=40),
        st.floats(0.05, 1.2),
    )
    @settings(max_examples=60)
    def test_property_realised_power_matches(self, demands, frac):
        """Realised power equals min(available, Σdemand) whenever the cap
        floor does not force over-consumption."""
        demand = np.asarray(demands)
        available = frac * float(demand.sum())
        cap = _waterfill_cap(available, demand, 140.0, 280.0)
        realised = float(np.minimum(cap, demand).sum())
        floor_power = float(np.minimum(140.0, demand).sum())
        expected = min(available, float(demand.sum()))
        assert realised >= floor_power - 1e-6
        if available >= floor_power:
            assert realised == pytest.approx(max(expected, floor_power), rel=1e-6)


class TestExecutionTiming:
    def test_uncapped_job_finishes_on_schedule(self):
        sim = make_sim()
        result = sim.run(10.0, drain=True, max_time=500.0)
        end = result.job_table.end_time[0]
        # t_fast=50 s; one extra tick of discretization allowed.
        assert end == pytest.approx(50.0, abs=2.0)

    def test_capped_job_slower(self):
        # Budget forces per-node caps to the floor: 2 busy × 140 + 8 idle × 60.
        sim = make_sim(average_power=2.0 * 140.0 + 8 * 60.0, reserve=10.0)
        result = sim.run(10.0, drain=True, max_time=500.0)
        end = result.job_table.end_time[0]
        assert end == pytest.approx(100.0, abs=3.0)

    def test_multi_node_job_waits_for_slowest_node(self):
        sim = make_sim()
        sim.nodes.perf_mult[:] = 1.0
        sim.nodes.perf_mult[0] = 0.5  # straggler host
        result = sim.run(10.0, drain=True, max_time=500.0)
        assert result.job_table.end_time[0] == pytest.approx(100.0, abs=3.0)

    def test_variation_multiplier_speeds_up(self):
        sim = make_sim()
        sim.nodes.perf_mult[:] = 2.0
        result = sim.run(10.0, drain=True, max_time=500.0)
        assert result.job_table.end_time[0] == pytest.approx(25.0, abs=2.0)


class TestSchedulingFlow:
    def test_jobs_queue_when_full(self):
        schedule = Schedule(
            requests=[
                JobRequest(0.0, "a", "x", 6),
                JobRequest(0.0, "b", "x", 6),
            ],
            duration=10.0,
        )
        sim = make_sim(types=[sim_type(nodes=6)], schedule=schedule,
                       num_nodes=10, work_conserving=True)
        result = sim.run(10.0, drain=True, max_time=1000.0)
        starts = result.job_table.start_time[:2]
        assert abs(starts[1] - starts[0]) >= 40.0  # second waited for first

    def test_unknown_type_in_schedule_rejected(self):
        schedule = one_job_schedule(type_name="zz")
        sim = make_sim(schedule=schedule)
        with pytest.raises(KeyError, match="unknown type"):
            sim.run(5.0)

    def test_all_jobs_complete_after_drain(self):
        reqs = [JobRequest(float(i), f"j{i}", "x", 2) for i in range(5)]
        sim = make_sim(schedule=Schedule(requests=reqs, duration=10.0),
                       work_conserving=True)
        result = sim.run(10.0, drain=True, max_time=2000.0)
        assert result.completed_jobs == 5


class TestPowerTracking:
    def test_power_trace_columns(self):
        sim = make_sim()
        result = sim.run(10.0)
        assert result.power_trace.shape == (10, 3)

    def test_idle_cluster_draws_idle_power(self):
        sim = make_sim(schedule=Schedule(duration=5.0))
        result = sim.run(5.0)
        assert result.power_trace[-1, 2] == pytest.approx(10 * 60.0)

    def test_target_follows_signal(self):
        signal = TabulatedSignal([0.0, 5.0], [0.0, 1.0])
        sim = make_sim(signal=signal, average_power=2000.0, reserve=500.0)
        result = sim.run(10.0)
        assert result.power_trace[0, 1] == pytest.approx(2000.0)
        assert result.power_trace[-1, 1] == pytest.approx(2500.0)

    def test_tracking_errors_window(self):
        sim = make_sim()
        result = sim.run(10.0)
        all_errors = result.tracking_errors()
        late = result.tracking_errors(t_start=5.0)
        assert late.size < all_errors.size

    def test_reachable_target_tracked_closely(self):
        # 3 jobs of 2 nodes; target mid-band.
        reqs = [JobRequest(0.0, f"j{i}", "x", 2) for i in range(3)]
        target = 6 * 200.0 + 4 * 60.0
        sim = make_sim(schedule=Schedule(requests=reqs, duration=30.0),
                       average_power=target, reserve=100.0,
                       work_conserving=True)
        result = sim.run(30.0)
        # After the first scheduling tick, measured ≈ target.
        errors = result.tracking_errors(t_start=3.0)
        assert np.median(errors) < 0.2


class TestQoSExtraction:
    def test_qos_by_type(self):
        sim = make_sim()
        result = sim.run(10.0, drain=True, max_time=500.0)
        qos = result.qos_by_type()
        assert "x" in qos
        # Sojourn ≈ 50 s, t_min = 50 s -> Q ≈ 0.
        assert qos["x"][0] == pytest.approx(0.0, abs=0.1)

    def test_qos_percentile(self):
        sim = make_sim()
        result = sim.run(10.0, drain=True, max_time=500.0)
        q90 = result.qos_percentile_by_type(90.0)
        assert q90["x"] == pytest.approx(0.0, abs=0.1)

    def test_zero_reserve_rejected_in_errors(self):
        sim = make_sim(reserve=0.0)
        result = sim.run(5.0)
        with pytest.raises(ValueError, match="undefined"):
            result.tracking_errors()


class TestQosAwareCapping:
    def test_at_risk_jobs_exempted(self):
        # One long-queued job that is already deep into QoS trouble.
        schedule = Schedule(
            requests=[JobRequest(0.0, "a", "x", 2)], duration=400.0
        )
        types = [sim_type(t_fast=50.0, t_slow=100.0)]
        sim = make_sim(
            types=types, schedule=schedule,
            average_power=2 * 140.0 + 8 * 60.0,  # would force floor caps
            reserve=10.0, qos_aware_capping=True, qos_risk_fraction=0.0,
        )
        result = sim.run(10.0, drain=True, max_time=500.0)
        # Exempted from capping ⇒ finishes at (nearly) full speed.
        assert result.job_table.end_time[0] == pytest.approx(50.0, abs=4.0)


class TestPowerAwareAdmission:
    def _tight_sim(self, *, admission: bool):
        # Target below the floor power of running both jobs: 4 busy × 140
        # + 6 idle × 60 = 920 < both-floor 8×140 + 2×60 = 1240.
        reqs = [
            JobRequest(0.0, "a", "x", 4),
            JobRequest(0.0, "b", "x", 4),
        ]
        return make_sim(
            types=[sim_type(nodes=4)],
            schedule=Schedule(requests=reqs, duration=10.0),
            average_power=4 * 140.0 + 6 * 60.0 + 50.0,
            reserve=50.0,
            work_conserving=True,
            power_aware_admission=admission,
        )

    def test_deferral_under_tight_target(self):
        sim = self._tight_sim(admission=True)
        result = sim.run(30.0)
        # Only one job may run: starting the second would push even the
        # minimum enforceable power past the target.
        running = (result.job_table.state[:2] == 1).sum()
        assert running == 1

    def test_no_deferral_without_admission_control(self):
        sim = self._tight_sim(admission=False)
        result = sim.run(30.0)
        running = (result.job_table.state[:2] == 1).sum()
        assert running == 2

    def test_deferred_job_eventually_runs(self):
        sim = self._tight_sim(admission=True)
        result = sim.run(10.0, drain=True, max_time=2000.0)
        assert result.completed_jobs == 2

    def test_admission_respects_queue_accounting(self):
        sim = self._tight_sim(admission=True)
        sim.run(10.0, drain=True, max_time=2000.0)
        # All node shares must be released by the end.
        assert all(q.running_nodes == 0 for q in sim.scheduler.queues)


class TestVariationHelpers:
    def test_sigma_for_band(self):
        assert variation_sigma_for_band(0.0) == 0.0
        assert variation_sigma_for_band(0.30) == pytest.approx(0.30 / 2.5758, rel=1e-3)

    def test_sigma_negative_band_rejected(self):
        with pytest.raises(ValueError, match="≥ 0"):
            variation_sigma_for_band(-0.1)

    def test_draw_multipliers_stats(self):
        mult = draw_node_multipliers(5000, 0.15, seed=0)
        assert mult.mean() == pytest.approx(1.0, abs=0.01)
        inside = np.mean(np.abs(mult - 1.0) <= 0.15)
        assert inside == pytest.approx(0.99, abs=0.01)

    def test_zero_band_all_ones(self):
        assert (draw_node_multipliers(10, 0.0, seed=0) == 1.0).all()

    def test_floor_applied(self):
        mult = draw_node_multipliers(10000, 3.0, seed=0, floor=0.05)
        assert mult.min() >= 0.05
