"""Tests for job-type classification and misclassification injection."""

import pytest

from repro.modeling.classifier import JobClassifier, Misclassification
from repro.modeling.default_models import LeastSensitivePolicy
from repro.modeling.quadratic import QuadraticPowerModel


@pytest.fixture
def models():
    mk = lambda s: QuadraticPowerModel.from_anchors(2.0, s, 140.0, 280.0)
    return {"is": mk(1.08), "ft": mk(1.45), "ep": mk(1.8)}


class TestClassification:
    def test_known_type_maps_to_itself(self, models):
        clf = JobClassifier(models)
        assert clf.classify("ft") == "ft"
        assert clf.model_for("ft") is models["ft"]

    def test_misclassification_redirects(self, models):
        clf = JobClassifier(
            models, misclassifications=[Misclassification("ft", "is")]
        )
        assert clf.classify("ft") == "is"
        assert clf.model_for("ft") is models["is"]

    def test_other_types_unaffected(self, models):
        clf = JobClassifier(
            models, misclassifications=[Misclassification("ft", "is")]
        )
        assert clf.model_for("ep") is models["ep"]

    def test_misclassification_target_must_be_known(self, models):
        with pytest.raises(KeyError, match="no known model"):
            JobClassifier(
                models, misclassifications=[Misclassification("ft", "zz")]
            )

    def test_is_known(self, models):
        clf = JobClassifier(models, unknown_types={"mystery"})
        assert clf.is_known("ft")
        assert not clf.is_known("mystery")


class TestUnknownTypes:
    def test_unknown_uses_default_policy(self, models):
        clf = JobClassifier(
            models,
            unknown_types={"mystery"},
            default_policy=LeastSensitivePolicy(),
        )
        assert clf.model_for("mystery") is models["is"]

    def test_unknown_without_policy_raises(self, models):
        clf = JobClassifier(models, unknown_types={"mystery"})
        with pytest.raises(KeyError, match="no default policy"):
            clf.model_for("mystery")

    def test_never_seen_type_without_policy_raises(self, models):
        clf = JobClassifier(models)
        with pytest.raises(KeyError):
            clf.model_for("never-seen")

    def test_never_seen_type_with_policy_falls_back(self, models):
        clf = JobClassifier(models, default_policy=LeastSensitivePolicy())
        assert clf.model_for("never-seen") is models["is"]

    def test_unknown_and_misclassified_conflict(self, models):
        with pytest.raises(ValueError, match="both unknown and misclassified"):
            JobClassifier(
                models,
                misclassifications=[Misclassification("ft", "is")],
                unknown_types={"ft"},
            )
