"""Tests for CSV exporters of experiment results."""

import csv

import numpy as np
import pytest

from repro.analysis.export import (
    export_fig4,
    export_fig5,
    export_fig11,
    export_power_trace,
    export_series_by_key,
)
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5


def read_csv(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


class TestPowerTrace:
    def test_writes_header_and_rows(self, tmp_path):
        trace = np.array([[0.0, 100.0, 95.0], [1.0, 100.0, 102.0]])
        path = tmp_path / "trace.csv"
        export_power_trace(trace, path)
        rows = read_csv(path)
        assert rows[0] == ["time_s", "target_w", "measured_w"]
        assert float(rows[1][2]) == 95.0
        assert len(rows) == 3

    def test_validates_shape(self, tmp_path):
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            export_power_trace(np.zeros((3, 2)), tmp_path / "x.csv")


class TestSeriesByKey:
    def test_columns_sorted_by_key(self, tmp_path):
        path = tmp_path / "s.csv"
        export_series_by_key(
            np.array([1.0, 2.0]),
            {"b": np.array([10.0, 20.0]), "a": np.array([1.0, 2.0])},
            path,
        )
        rows = read_csv(path)
        assert rows[0] == ["x", "a", "b"]
        assert rows[1] == ["1", "1", "10"]

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="points"):
            export_series_by_key(
                np.array([1.0]), {"a": np.array([1.0, 2.0])}, tmp_path / "x.csv"
            )


class TestFigureExports:
    def test_fig4_export(self, tmp_path):
        result = run_fig4(n_budgets=6)
        path = tmp_path / "fig4.csv"
        export_fig4(result, path)
        rows = read_csv(path)
        assert rows[0][0] == "budget_w"
        assert any("even-slowdown/bt" == c for c in rows[0])
        assert len(rows) == 7

    def test_fig5_export(self, tmp_path):
        result = run_fig5(n_budgets=5)
        written = export_fig5(result, tmp_path / "fig5")
        assert len(written) == 4
        rows = read_csv(written[0])
        assert rows[0][0] == "budget_w"
        assert any("ft(unknown)" in c for c in rows[0])

    def test_fig11_export(self, tmp_path):
        class FakeFig11:
            bands = (0.0, 0.15)
            qos90 = {"bt": np.array([[1.0, 2.0], [3.0, 4.0]])}
            tracking90 = np.array([[0.1, 0.2], [0.15, 0.25]])

        path = tmp_path / "fig11.csv"
        export_fig11(FakeFig11(), path)
        rows = read_csv(path)
        assert rows[0] == ["variation_band", "bt", "tracking_err90"]
        assert float(rows[1][1]) == pytest.approx(1.5)  # mean over trials
        assert float(rows[2][2]) == pytest.approx(0.2)
