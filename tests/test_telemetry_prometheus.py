"""Prometheus text-exposition conformance and the stdlib scrape endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.prometheus import CONTENT_TYPE, MetricsHTTPServer, render_prometheus


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("anor_rounds_total", "control rounds executed").inc(7)
    reg.gauge("anor_power_watts", "measured cluster power").set(3400.5)
    reg.gauge("anor_job_cap_watts", "per-job cap", job="job-1").set(200.0)
    reg.gauge("anor_job_cap_watts", "per-job cap", job="job-2").set(180.0)
    hist = reg.histogram("anor_err_ratio", "tracking error", buckets=(0.1, 0.5))
    for v in (0.05, 0.2, 0.2, 0.9):
        hist.observe(v)
    return reg


class TestRender:
    def test_help_and_type_headers(self, registry):
        text = render_prometheus(registry)
        assert "# HELP anor_rounds_total control rounds executed" in text
        assert "# TYPE anor_rounds_total counter" in text
        assert "# TYPE anor_power_watts gauge" in text
        assert "# TYPE anor_err_ratio histogram" in text

    def test_counter_and_gauge_samples(self, registry):
        lines = render_prometheus(registry).splitlines()
        assert "anor_rounds_total 7" in lines
        assert "anor_power_watts 3400.5" in lines

    def test_labelled_samples_sorted_and_quoted(self, registry):
        lines = render_prometheus(registry).splitlines()
        assert 'anor_job_cap_watts{job="job-1"} 200' in lines
        assert 'anor_job_cap_watts{job="job-2"} 180' in lines

    def test_histogram_buckets_cumulative_with_inf(self, registry):
        lines = render_prometheus(registry).splitlines()
        assert 'anor_err_ratio_bucket{le="0.1"} 1' in lines
        assert 'anor_err_ratio_bucket{le="0.5"} 3' in lines
        assert 'anor_err_ratio_bucket{le="+Inf"} 4' in lines
        assert "anor_err_ratio_sum 1.35" in lines
        assert "anor_err_ratio_count 4" in lines

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("g", job='he said "hi"\nback\\slash').set(1.0)
        text = render_prometheus(reg)
        assert r'job="he said \"hi\"\nback\\slash"' in text

    def test_help_newlines_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "line one\nline two")
        assert r"# HELP c_total line one\nline two" in render_prometheus(reg)

    def test_ends_with_newline(self, registry):
        assert render_prometheus(registry).endswith("\n")

    def test_empty_registry_renders(self):
        assert render_prometheus(MetricsRegistry()) == "\n"


class TestHTTPServer:
    def test_scrape_roundtrip(self, registry):
        server = MetricsHTTPServer(registry, port=0)
        try:
            assert server.port > 0
            with urllib.request.urlopen(server.url, timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                body = resp.read().decode("utf-8")
            assert body == render_prometheus(registry)
        finally:
            server.shutdown()

    def test_scrape_sees_live_updates(self, registry):
        server = MetricsHTTPServer(registry, port=0)
        try:
            registry.gauge("anor_power_watts").set(1234.0)
            body = urllib.request.urlopen(server.url, timeout=10).read().decode()
            assert "anor_power_watts 1234" in body
        finally:
            server.shutdown()

    def test_unknown_path_404(self, registry):
        server = MetricsHTTPServer(registry, port=0)
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=10
                )
            assert err.value.code == 404
        finally:
            server.shutdown()
