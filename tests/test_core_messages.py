"""Tests for the tier-to-tier message vocabulary."""

import pytest
from hypothesis import given, strategies as st

from repro.core.messages import BudgetMessage, GoodbyeMessage, HelloMessage, StatusMessage


class TestBudgetMessage:
    def test_valid(self):
        msg = BudgetMessage("j", 200.0, 1.0)
        assert msg.power_cap_node == 200.0

    def test_non_positive_cap_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            BudgetMessage("j", 0.0, 1.0)

    def test_frozen(self):
        msg = BudgetMessage("j", 200.0, 1.0)
        with pytest.raises(AttributeError):
            msg.power_cap_node = 100.0


class TestStatusMessage:
    def test_has_model_false_by_default(self):
        msg = StatusMessage("j", 1.0, 5, 400.0, 200.0)
        assert not msg.has_model
        assert msg.model_b is None

    def test_has_model_with_coefficients(self):
        msg = StatusMessage(
            "j", 1.0, 5, 400.0, 200.0,
            model_a=0.0, model_b=-0.01, model_c=5.0, model_r2=0.9,
        )
        assert msg.has_model

    @given(
        st.floats(0, 1e6), st.integers(0, 10**6), st.floats(0, 1e5), st.floats(1, 400)
    )
    def test_property_roundtrip_fields(self, t, epochs, power, cap):
        msg = StatusMessage("j", t, epochs, power, cap)
        assert msg.timestamp == t
        assert msg.epoch_count == epochs
        assert msg.measured_power == power
        assert msg.applied_cap == cap


class TestHelloGoodbye:
    def test_hello_fields(self):
        msg = HelloMessage("j", "bt", 4, 0.0)
        assert msg.claimed_type == "bt"
        assert msg.nodes == 4

    def test_goodbye_fields(self):
        msg = GoodbyeMessage("j", 9.0)
        assert msg.timestamp == 9.0
