"""Tests for the offline figure harnesses (Figs. 4 and 5)."""

import numpy as np
import pytest

from repro.experiments.fig4 import format_table as fig4_table, run_fig4
from repro.experiments.fig5 import (
    CASES,
    format_table as fig5_table,
    run_fig5,
    worst_excess_slowdown,
)


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(n_budgets=12)


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(n_budgets=10)


class TestFig4:
    def test_both_policies_present(self, fig4):
        assert set(fig4.slowdowns) == {"even-slowdown", "even-power"}

    def test_eight_types_per_policy(self, fig4):
        assert len(fig4.slowdowns["even-power"]) == 8

    def test_even_slowdown_never_worse_on_worst_job(self, fig4):
        """The paper's headline: even-slowdown reduces worst-job slowdown."""
        ep = fig4.max_slowdown("even-power")
        es = fig4.max_slowdown("even-slowdown")
        assert np.all(es <= ep + 1e-9)

    def test_no_opportunity_at_extremes(self, fig4):
        """§6.1.1: no flexibility at min/max budgets."""
        ep = fig4.max_slowdown("even-power")
        es = fig4.max_slowdown("even-slowdown")
        assert es[0] == pytest.approx(ep[0], abs=1e-6)
        assert es[-1] == pytest.approx(ep[-1], abs=1e-6)

    def test_strict_improvement_midrange(self, fig4):
        ep = fig4.max_slowdown("even-power")
        es = fig4.max_slowdown("even-slowdown")
        mid = len(ep) // 2
        assert es[mid] < ep[mid] - 0.01

    def test_slowdowns_decrease_with_budget(self, fig4):
        for series in fig4.slowdowns["even-power"].values():
            assert np.all(np.diff(series) <= 1e-9)

    def test_table_renders(self, fig4):
        table = fig4_table(fig4)
        assert "even-power" in table
        assert "%" in table


class TestFig5:
    def test_all_cases_present(self, fig5):
        assert set(fig5.slowdowns) == {c.key for c in CASES}

    def test_underprediction_slows_unknown_job(self, fig5):
        """First takeaway (§6.1.2): underprediction hurts the unknown job."""
        assert worst_excess_slowdown(fig5, "under-small", "ft(unknown)") > 0.05
        assert worst_excess_slowdown(fig5, "under-small", "ep") < 0.02

    def test_overprediction_slows_sensitive_cojob(self, fig5):
        """Second half: overprediction hurts the sensitive co-scheduled job."""
        assert worst_excess_slowdown(fig5, "over-small", "ep") > 0.02
        assert worst_excess_slowdown(fig5, "over-small", "ft(unknown)") <= 0.01

    def test_size_amplifies_overprediction_damage(self, fig5):
        """§6.1.2: large unknown jobs hurt others more when overpredicted."""
        small = worst_excess_slowdown(fig5, "over-small", "ep")
        large = worst_excess_slowdown(fig5, "over-large", "ep")
        assert large > small

    def test_small_unknown_suffers_more_when_underpredicted(self, fig5):
        small = worst_excess_slowdown(fig5, "under-small", "ft(unknown)")
        large = worst_excess_slowdown(fig5, "under-large", "ft(unknown)")
        assert small > large

    def test_ideal_never_above_mischaracterized_for_victims(self, fig5):
        case = fig5.slowdowns["under-small"]
        assert np.all(
            case["mischaracterized"]["ft(unknown)"]
            >= case["ideal"]["ft(unknown)"] - 1e-9
        )

    def test_table_renders(self, fig5):
        table = fig5_table(fig5)
        assert "under-small" in table
        assert "ft(unknown)" in table
