"""Performance-unaware balancer: even power-range utilization (paper §4.4.3).

Selects one γ ∈ [0, 1] so every job's per-node cap is

    p_cap_j = γ·(p_max_j − p_min_j) + p_min_j

and the total equals the budget (when feasible).  All jobs then operate at
the same fraction of their achievable power range, but experience *different*
slowdowns — the performance gap Fig. 4 quantifies.
"""

from __future__ import annotations

from typing import Sequence

from repro.budget.base import BudgetAllocation, JobBudgetRequest, PowerBudgeter
from repro.util.maths import clamp

__all__ = ["EvenPowerBudgeter"]


class EvenPowerBudgeter(PowerBudgeter):
    """The AQA power-capping rule: same γ across jobs."""

    name = "even-power"

    def allocate(
        self, jobs: Sequence[JobBudgetRequest], budget: float
    ) -> BudgetAllocation:
        self._validate(jobs, budget)
        if not jobs:
            return BudgetAllocation(caps={}, budget=budget, meta={"gamma": 0.0})
        floor = sum(j.p_min * j.nodes for j in jobs)
        span = sum((j.p_max - j.p_min) * j.nodes for j in jobs)
        if span <= 0:
            gamma = 0.0
        else:
            gamma = clamp((budget - floor) / span, 0.0, 1.0)
        caps = {
            j.job_id: gamma * (j.p_max - j.p_min) + j.p_min for j in jobs
        }
        return BudgetAllocation(caps=caps, budget=budget, meta={"gamma": gamma})
