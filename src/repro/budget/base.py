"""Common budgeter interface and allocation record."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

from repro.modeling.quadratic import QuadraticPowerModel

__all__ = ["JobBudgetRequest", "BudgetAllocation", "PowerBudgeter"]


@dataclass(frozen=True)
class JobBudgetRequest:
    """Everything the cluster tier knows about one job when budgeting.

    ``model`` is whatever the cluster tier currently *believes* — a
    precharacterized model, a default for unknown types, or the job tier's
    latest online fit.  ``p_min``/``p_max`` bound the per-node power the job
    can usefully consume (the job's achievable power-demand range, §4.4.3).
    """

    job_id: str
    nodes: int
    model: QuadraticPowerModel
    p_min: float
    p_max: float

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"{self.job_id}: nodes must be ≥ 1")
        if not self.p_min < self.p_max:
            raise ValueError(
                f"{self.job_id}: need p_min < p_max, got [{self.p_min}, {self.p_max}]"
            )


@dataclass(frozen=True)
class BudgetAllocation:
    """Per-job node caps chosen by a budgeter for one budgeting round."""

    caps: dict[str, float]  # job_id -> per-node cap (W)
    budget: float  # power the budgeter was asked to distribute (W)
    meta: dict[str, float] = field(default_factory=dict)  # e.g. gamma or s

    def total_power(self, jobs: Sequence[JobBudgetRequest]) -> float:
        """Total capped power if every job node runs at its cap."""
        by_id = {j.job_id: j for j in jobs}
        return sum(self.caps[jid] * by_id[jid].nodes for jid in self.caps)


class PowerBudgeter(ABC):
    """Chooses per-node power caps for each running job."""

    #: human-readable policy name used in experiment tables
    name: str = "abstract"

    @abstractmethod
    def allocate(
        self, jobs: Sequence[JobBudgetRequest], budget: float
    ) -> BudgetAllocation:
        """Distribute ``budget`` watts of CPU power across ``jobs``.

        ``budget`` covers only the nodes occupied by ``jobs`` (the cluster
        manager accounts for idle-node power before calling).  Every returned
        cap lies within the job's [p_min, p_max]; the total may be below the
        budget when the budget exceeds what all jobs can consume, or above it
        when even minimum caps cannot get that low — both are physical limits
        the paper notes leave "no flexibility ... beyond the range allowed by
        the power-capping interface" (§6.1.1).
        """

    @staticmethod
    def _validate(jobs: Sequence[JobBudgetRequest], budget: float) -> None:
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        seen: set[str] = set()
        for job in jobs:
            if job.job_id in seen:
                raise ValueError(f"duplicate job id {job.job_id!r}")
            seen.add(job.job_id)
