"""Cluster-tier power budgeters (paper §4.1, §4.4.3).

A *power budgeter* splits the cluster's available CPU power across running
jobs.  The paper evaluates:

* **Even power caps** (performance-unaware, the AQA rule): every job sits at
  the same fraction γ of its achievable power range.
* **Even slowdown** (performance-aware): every job is predicted to slow down
  by the same factor s, using the job tier's power-performance models.
* **Uniform node caps**: the same cap on every active node (the baseline
  "uniform power distribution" of Fig. 10).
"""

from repro.budget.base import BudgetAllocation, JobBudgetRequest, PowerBudgeter
from repro.budget.even_power import EvenPowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.budget.uniform import UniformCapBudgeter

__all__ = [
    "BudgetAllocation",
    "JobBudgetRequest",
    "PowerBudgeter",
    "EvenPowerBudgeter",
    "EvenSlowdownBudgeter",
    "UniformCapBudgeter",
]
