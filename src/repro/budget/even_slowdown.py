"""Performance-aware balancer: even expected slowdown (paper §4.4.3).

Selects the common expected-slowdown limit ``s`` such that

    p_cap_j = P_j( s · T_j(p_max_j) )

uses the full power budget, where ``T_j`` maps power caps to time per epoch
(the job's quadratic model) and ``P_j`` is its inverse.  Jobs whose model
says they barely slow down under capping give up power first, steering watts
toward power-sensitive jobs.  Low-sensitivity jobs "level off" at the
platform's minimum cap as the budget shrinks (§6.1.1) — the clamping below
reproduces that saturation.
"""

from __future__ import annotations

from typing import Sequence

from repro.budget.base import BudgetAllocation, JobBudgetRequest, PowerBudgeter
from repro.util.maths import bisect_scalar, clamp

__all__ = ["EvenSlowdownBudgeter"]


class EvenSlowdownBudgeter(PowerBudgeter):
    """Equalises model-predicted slowdown across jobs (time-balancing)."""

    name = "even-slowdown"

    def __init__(self, *, tol: float = 1e-6) -> None:
        self.tol = float(tol)

    def _caps_at(self, jobs: Sequence[JobBudgetRequest], s: float) -> dict[str, float]:
        caps: dict[str, float] = {}
        for j in jobs:
            t_fast = j.model.time_per_epoch(j.p_max)
            p = j.model.power_for_time(s * t_fast)
            caps[j.job_id] = clamp(p, j.p_min, j.p_max)
        return caps

    def allocate(
        self, jobs: Sequence[JobBudgetRequest], budget: float
    ) -> BudgetAllocation:
        self._validate(jobs, budget)
        if not jobs:
            return BudgetAllocation(caps={}, budget=budget, meta={"slowdown": 1.0})

        def total_at(s: float) -> float:
            caps = self._caps_at(jobs, s)
            return sum(caps[j.job_id] * j.nodes for j in jobs)

        # s = 1 gives everyone max power; s_hi saturates everyone at p_min.
        s_hi = 1.0
        for j in jobs:
            t_fast = j.model.time_per_epoch(j.p_max)
            t_slow = j.model.time_per_epoch(j.p_min)
            if t_fast > 0:
                s_hi = max(s_hi, t_slow / t_fast)
        s_hi *= 1.01  # ensure the bracket truly saturates every job

        if total_at(1.0) <= budget:
            s = 1.0
        elif total_at(s_hi) >= budget:
            s = s_hi
        else:
            s = bisect_scalar(lambda x: total_at(x) - budget, 1.0, s_hi, tol=self.tol)
        caps = self._caps_at(jobs, s)
        return BudgetAllocation(caps=caps, budget=budget, meta={"slowdown": s})
