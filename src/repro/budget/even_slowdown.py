"""Performance-aware balancer: even expected slowdown (paper §4.4.3).

Selects the common expected-slowdown limit ``s`` such that

    p_cap_j = P_j( s · T_j(p_max_j) )

uses the full power budget, where ``T_j`` maps power caps to time per epoch
(the job's quadratic model) and ``P_j`` is its inverse.  Jobs whose model
says they barely slow down under capping give up power first, steering watts
toward power-sensitive jobs.  Low-sensitivity jobs "level off" at the
platform's minimum cap as the budget shrinks (§6.1.1) — the clamping below
reproduces that saturation.
"""

from __future__ import annotations

from typing import Sequence

from repro.budget.base import BudgetAllocation, JobBudgetRequest, PowerBudgeter
from repro.util.maths import bisect_scalar, clamp

__all__ = ["EvenSlowdownBudgeter"]


class EvenSlowdownBudgeter(PowerBudgeter):
    """Equalises model-predicted slowdown across jobs (time-balancing)."""

    name = "even-slowdown"

    def __init__(self, *, tol: float = 1e-6) -> None:
        self.tol = float(tol)

    def _caps_at(self, jobs: Sequence[JobBudgetRequest], s: float) -> dict[str, float]:
        caps: dict[str, float] = {}
        for j in jobs:
            t_fast = j.model.time_per_epoch(j.p_max)
            p = j.model.power_for_time(s * t_fast)
            caps[j.job_id] = clamp(p, j.p_min, j.p_max)
        return caps

    def allocate(
        self, jobs: Sequence[JobBudgetRequest], budget: float
    ) -> BudgetAllocation:
        self._validate(jobs, budget)
        if not jobs:
            return BudgetAllocation(caps={}, budget=budget, meta={"slowdown": 1.0})

        # Hoist the per-job algebra that is invariant across bisection
        # iterations: T_j(p_max), and one representative per distinct
        # (model, p_min, p_max) — jobs of the same type share a model, so
        # their caps at any s are equal and need computing once.  Memoizing
        # caps by s also makes the final lookup free (bisect_scalar always
        # returns an s already evaluated via the bracket or the loop).
        t_fast = [j.model.time_per_epoch(j.p_max) for j in jobs]
        groups: dict[tuple, list[int]] = {}
        for i, j in enumerate(jobs):
            groups.setdefault((id(j.model), j.p_min, j.p_max), []).append(i)
        reps = [(jobs[idx[0]], t_fast[idx[0]], idx) for idx in groups.values()]
        caps_memo: dict[float, dict[str, float]] = {}

        def caps_at(s: float) -> dict[str, float]:
            caps = caps_memo.get(s)
            if caps is None:
                caps = {}
                for rep, tf, idx in reps:
                    p = clamp(rep.model.power_for_time(s * tf), rep.p_min, rep.p_max)
                    for i in idx:
                        caps[jobs[i].job_id] = p
                caps_memo[s] = caps
            return caps

        def total_at(s: float) -> float:
            caps = caps_at(s)
            return sum(caps[j.job_id] * j.nodes for j in jobs)

        # s = 1 gives everyone max power; s_hi saturates everyone at p_min.
        s_hi = 1.0
        for rep, tf, _ in reps:
            t_slow = rep.model.time_per_epoch(rep.p_min)
            if tf > 0:
                s_hi = max(s_hi, t_slow / tf)
        s_hi *= 1.01  # ensure the bracket truly saturates every job

        if total_at(1.0) <= budget:
            s = 1.0
        elif total_at(s_hi) >= budget:
            s = s_hi
        else:
            s = bisect_scalar(lambda x: total_at(x) - budget, 1.0, s_hi, tol=self.tol)
        caps = caps_at(s)
        return BudgetAllocation(caps=caps, budget=budget, meta={"slowdown": s})
