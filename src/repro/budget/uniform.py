"""Uniform node caps: the same cap on every active node.

This is the "uniform power distribution policy" baseline of Fig. 10 and the
way AQA applies caps "uniformly across active nodes" (§4.4.2).  It ignores
both job power ranges and job performance models.
"""

from __future__ import annotations

from typing import Sequence

from repro.budget.base import BudgetAllocation, JobBudgetRequest, PowerBudgeter
from repro.util.maths import clamp

__all__ = ["UniformCapBudgeter"]


class UniformCapBudgeter(PowerBudgeter):
    """Every active node gets ``budget / total_nodes`` watts (clamped)."""

    name = "uniform"

    def allocate(
        self, jobs: Sequence[JobBudgetRequest], budget: float
    ) -> BudgetAllocation:
        self._validate(jobs, budget)
        if not jobs:
            return BudgetAllocation(caps={}, budget=budget, meta={"node_cap": 0.0})
        total_nodes = sum(j.nodes for j in jobs)
        node_cap = budget / total_nodes
        caps = {j.job_id: clamp(node_cap, j.p_min, j.p_max) for j in jobs}
        return BudgetAllocation(caps=caps, budget=budget, meta={"node_cap": node_cap})
