"""Trust boundary between the cluster tier and the job tier (DESIGN.md §4f).

The cluster manager budgets from information the job tier *reports*: the
online power model shipped in status messages, the self-metered power used
for dormancy triage, and the implicit promise that a dispatched cap is
actually applied.  ``_validated_model`` only rejects syntactically broken
fits — a Byzantine or buggy endpoint that ships a plausible-but-false
curve, drifts its meter, or silently ignores cap writes can make the
budgeter oversubscribe the facility target indefinitely.

:class:`CapComplianceAuditor` closes that hole with out-of-band evidence:
the hwsim per-node energy counters (the facility's metering plane, which a
job endpoint cannot touch).  Each control round it maintains, per job,

* a **metered-power window** — cumulative joules over the job's nodes,
  differenced over ``window`` seconds.  Windowing smooths epoch-periodic
  power waves; only *over*-draw violates, so setup/teardown phases (idle
  draw well below the cap) never trigger.
* a **cap-compliance check** — windowed W/node against the *largest* cap
  dispatched inside the window (largest, so a cap lowered mid-window is
  not retroactively enforced against power drawn under the old cap), with
  a relative ``tolerance`` plus an absolute ``guardband``.
* a **meter cross-check** — the job's self-reported ``measured_power``
  against the out-of-band metered draw, while the job is demonstrably
  active (metered draw above the platform floor); catches meter drift.
* a **model-plausibility replay** — observed seconds/epoch over the window
  (from status epoch counts) against the shipped model evaluated at the
  window's mean applied cap, *vetoed* by a regime-consistency test.
  Honest online fits are routinely 30–65 % off in absolute seconds/epoch
  away from the caps they were trained at (dither-only coverage forces
  extrapolation, and the manager can hold a stale high-cap fit long after
  a job is squeezed to the floor), so a point comparison alone cannot
  separate honest-but-stale from lying.  What separates them: an honest
  fit was accurate in *some* cap regime the job has actually visited,
  while a fabricated curve describes a machine the job has never been.
  The auditor therefore accumulates a per-job empirical map of cap-bucket
  → mean observed seconds/epoch over the job's audited lifetime and only
  flags a window mismatch when the shipped model also disagrees (at twice
  the window tolerance) with **every** populated bucket.  Limitations,
  accepted by design: progress counts are taken at face value (epochs are
  app-observable artifacts — checkpoints, output files — and much harder
  to fake than a coefficient), and a "steep" lie that is locally accurate
  at the caps it lobbies to run at survives this check; exposing it needs
  deliberate cap excursions (probing), not passive replay.

Evidence feeds a per-job trust state machine::

    trusted --violation--> suspect --N consecutive--> quarantined
       ^                      |                           |
       |<----clean rounds-----+                 compliant with probe caps
       |                                                  v
       +-----------clean rounds------------------- rehabilitating
                                                    (any violation
                                                     -> quarantined)

A quarantined job is budgeted at a conservative envelope — its *metered*
draw plus ``guardband`` W/node, never its self-reported model — and the
headroom it was stealing is redistributed to trusted jobs by the ordinary
budgeter.  Its dispatched cap becomes a **probe ratchet**: metered W/node
scaled down by ``probe_margin``.  A compliant actuator follows the probe
down (geometric decay toward the platform floor ⇒ sustained compliance ⇒
rehabilitation), a stuck actuator does not and stays quarantined.

The auditor lives entirely inside ``ClusterPowerManager.step`` (the
manager gate), so the event-calendar stepper's stride planning is
unaffected and ticking/event modes stay bit-identical.  It is rebuilt on
head-node restart (trust state is deliberately *not* checkpointed: a new
head re-earns evidence rather than trusting a stale verdict).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.telemetry import NULL_TELEMETRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.cluster_manager import JobRecord

__all__ = [
    "TRUSTED",
    "SUSPECT",
    "QUARANTINED",
    "REHABILITATING",
    "TRUST_STATES",
    "TrustTransition",
    "CapComplianceAuditor",
]

TRUSTED = "trusted"
SUSPECT = "suspect"
QUARANTINED = "quarantined"
REHABILITATING = "rehabilitating"

#: All trust states with their ``anor_endpoint_trust_state`` gauge encoding.
TRUST_STATES: dict[str, int] = {
    TRUSTED: 0,
    SUSPECT: 1,
    QUARANTINED: 2,
    REHABILITATING: 3,
}

#: Jobs whose self-reported model must not be budgeted from.
_DISTRUSTED = frozenset({QUARANTINED, REHABILITATING})

#: Cap-bucket width (W/node) for the empirical seconds/epoch map.
_BUCKET_WIDTH = 20.0

#: Intervals a bucket needs before it counts as a visited regime.
_BUCKET_MIN_INTERVALS = 3

#: A model "matches" a visited regime when it is within this multiple of
#: the window tolerance there — lenient on purpose, so fit noise at the
#: training caps never strips an honest model of its alibi.
_REGIME_SLACK = 2.0

#: A meter reading: (cumulative joules over the job's nodes, node-id key),
#: or None when the job is not currently on the cluster.
JobMeter = Callable[[str], Optional[tuple[float, tuple[int, ...]]]]


@dataclass(frozen=True)
class TrustTransition:
    """One edge taken by a job's trust state machine."""

    time: float
    job_id: str
    old: str
    new: str
    reason: str


@dataclass
class _JobAudit:
    """Per-job windows and state-machine bookkeeping."""

    state: str = TRUSTED
    node_key: tuple[int, ...] = ()
    # (time, cumulative joules) samples, newest last.
    energy: deque = field(default_factory=deque)
    # (time, dispatched cap W/node) in force during the elapsed interval.
    caps: deque = field(default_factory=deque)
    # (time, self-reported measured_power W) from status messages.
    reported: deque = field(default_factory=deque)
    # (status timestamp, epoch_count, applied cap) — deduped by timestamp.
    progress: deque = field(default_factory=deque)
    violation_streak: int = 0
    clean_streak: int = 0
    last_metered: float | None = None  # windowed W over all job nodes
    # Lifetime empirical regime map: cap bucket -> [sum tpe, intervals].
    # Deliberately *not* part of reset_windows — behaviour per cap is a
    # property of the job, not of the nodes it happens to occupy.
    buckets: dict = field(default_factory=dict)
    # (timestamp, epoch_count) of the last interval boundary accumulated
    # into ``buckets``; re-anchored whenever progress goes backwards
    # (requeue restarts the application's epoch counter).
    prev_progress: tuple | None = None

    def reset_windows(self) -> None:
        self.energy.clear()
        self.caps.clear()
        self.reported.clear()
        self.progress.clear()
        self.last_metered = None


class CapComplianceAuditor:
    """Audits job-tier compliance from out-of-band metering each round.

    Parameters mirror the ``AnorConfig.audit_*`` knobs; see the module
    docstring for the checks and the state machine they drive.
    """

    def __init__(
        self,
        *,
        job_meter: JobMeter,
        p_node_min: float,
        p_node_max: float,
        idle_power: float = 60.0,
        window: float = 30.0,
        tolerance: float = 0.10,
        guardband: float = 20.0,
        mismatch_tolerance: float = 0.25,
        model_error: float = 0.35,
        min_epochs: int = 3,
        suspect_rounds: int = 3,
        quarantine_rounds: int = 5,
        clear_rounds: int = 5,
        probe_margin: float = 0.15,
        telemetry=NULL_TELEMETRY,
    ) -> None:
        knobs = {
            "window": window,
            "mismatch_tolerance": mismatch_tolerance,
            "model_error": model_error,
        }
        for name, value in knobs.items():
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if tolerance < 0:
            raise ValueError(f"tolerance must be ≥ 0, got {tolerance}")
        if guardband < 0:
            raise ValueError(f"guardband must be ≥ 0, got {guardband}")
        if not 0.0 < probe_margin < 1.0:
            raise ValueError(
                f"probe_margin must be in (0, 1), got {probe_margin}")
        rounds = {
            "min_epochs": min_epochs,
            "suspect_rounds": suspect_rounds,
            "quarantine_rounds": quarantine_rounds,
            "clear_rounds": clear_rounds,
        }
        for name, value in rounds.items():
            if value < 1:
                raise ValueError(f"{name} must be ≥ 1, got {value}")
        self.job_meter = job_meter
        self.p_node_min = float(p_node_min)
        self.p_node_max = float(p_node_max)
        self.idle_power = float(idle_power)
        self.window = float(window)
        self.tolerance = float(tolerance)
        self.guardband = float(guardband)
        self.mismatch_tolerance = float(mismatch_tolerance)
        self.model_error = float(model_error)
        self.min_epochs = int(min_epochs)
        self.suspect_rounds = int(suspect_rounds)
        self.quarantine_rounds = int(quarantine_rounds)
        self.clear_rounds = int(clear_rounds)
        self.probe_margin = float(probe_margin)
        self.telemetry = telemetry
        self._jobs: dict[str, _JobAudit] = {}
        self.transitions: list[TrustTransition] = []
        self.violations_total = 0
        self.quarantines_total = 0
        if self.telemetry.enabled:
            reg = self.telemetry.registry
            self._mx_state: dict[str, object] = {}
            self._mx_violations = {
                kind: reg.counter(
                    "anor_audit_violations_total",
                    "audit violations observed, by check",
                    kind=kind,
                )
                for kind in ("cap-overdraw", "meter-mismatch",
                             "model-implausible", "probe-noncompliant")
            }

    # --------------------------------------------------------------- queries

    def state(self, job_id: str) -> str:
        """Current trust state for ``job_id`` (unknown jobs are trusted)."""
        audit = self._jobs.get(job_id)
        return audit.state if audit is not None else TRUSTED

    def is_quarantined(self, job_id: str) -> bool:
        return self.state(job_id) == QUARANTINED

    def distrusts_model(self, job_id: str) -> bool:
        """True when budgeting must ignore the job's self-reported model."""
        return self.state(job_id) in _DISTRUSTED

    # ---------------------------------------------------------- round update

    def audit_round(self, now: float, jobs: dict[str, "JobRecord"]) -> list[str]:
        """Ingest this round's evidence and advance every state machine.

        Called once per control round from ``ClusterPowerManager.step``
        with the manager's connected-job table.  Returns human-readable
        transition lines for the manager's event log.
        """
        lines: list[str] = []
        for job_id in list(self._jobs):
            if job_id not in jobs:
                self._forget(job_id)
        for job_id in sorted(jobs):
            record = jobs[job_id]
            audit = self._jobs.get(job_id)
            if audit is None:
                audit = self._jobs[job_id] = _JobAudit()
            reading = self.job_meter(job_id)
            if reading is None:
                # Between requeues / not yet started: no metering plane to
                # audit against, so evidence restarts when the job lands.
                audit.reset_windows()
                continue
            energy, node_key = reading
            if node_key != audit.node_key:
                # Requeued onto different nodes: cumulative counters are
                # incomparable across node sets.
                audit.reset_windows()
                audit.node_key = node_key
            self._ingest(audit, record, now, energy)
            span = audit.energy[-1][0] - audit.energy[0][0]
            if span < self.window:
                continue  # warmup: tolerate setup phases and cold windows
            violations = self._evaluate(audit, record, now, len(node_key))
            line = self._advance(audit, job_id, now, violations)
            if line is not None:
                lines.append(line)
            if self.telemetry.enabled:
                self._gauge(job_id).set(TRUST_STATES[audit.state])
        return lines

    def _ingest(
        self, audit: _JobAudit, record: "JobRecord", now: float, energy: float
    ) -> None:
        """Append this round's samples and trim everything to the window."""
        audit.energy.append((now, float(energy)))
        if record.last_cap is not None:
            # last_cap is the cap dispatched *last* round — i.e. the cap in
            # force during the interval that just elapsed.
            audit.caps.append((now, float(record.last_cap)))
        status = record.last_status
        if status is not None:
            audit.reported.append((now, float(status.measured_power)))
            if (
                not audit.progress
                or status.timestamp > audit.progress[-1][0]
            ):
                audit.progress.append(
                    (status.timestamp, status.epoch_count, status.applied_cap)
                )
                self._accumulate_regime(
                    audit, status.timestamp, status.epoch_count,
                    status.applied_cap,
                )
        horizon = now - self.window
        # Keep one sample at-or-before the horizon so the differenced span
        # always covers ≥ window once warm.
        for series in (audit.energy, audit.caps, audit.reported):
            while len(series) >= 2 and series[1][0] <= horizon:
                series.popleft()
        while len(audit.progress) >= 2 and audit.progress[1][0] <= horizon:
            audit.progress.popleft()

    @staticmethod
    def _accumulate_regime(
        audit: _JobAudit, timestamp: float, epochs: int, cap: float
    ) -> None:
        """Fold one progress interval into the lifetime regime map."""
        prev = audit.prev_progress
        if prev is None or epochs < prev[1] or timestamp <= prev[0]:
            # First sighting, or the application restarted (requeue resets
            # the epoch counter): anchor without attributing an interval.
            audit.prev_progress = (timestamp, epochs)
            return
        d_epochs = epochs - prev[1]
        if d_epochs < 1:
            return  # no progress yet; extend the open interval
        tpe = (timestamp - prev[0]) / d_epochs
        audit.prev_progress = (timestamp, epochs)
        bucket = int(cap // _BUCKET_WIDTH)
        stats = audit.buckets.get(bucket)
        if stats is None:
            audit.buckets[bucket] = [tpe, 1]
        else:
            stats[0] += tpe
            stats[1] += 1

    def _regime_alibi(self, audit: _JobAudit, model) -> bool:
        """True when the model matches *some* cap regime the job has visited.

        The match tolerance is ``_REGIME_SLACK`` times the window tolerance:
        the question here is not "is the fit accurate" but "has this curve
        ever described this job" — only a curve wrong everywhere it has
        been observed loses its alibi.
        """
        bound = _REGIME_SLACK * self.model_error
        populated = False
        for bucket, (total, count) in audit.buckets.items():
            if count < _BUCKET_MIN_INTERVALS:
                continue
            populated = True
            empirical = total / count
            center = (bucket + 0.5) * _BUCKET_WIDTH
            predicted = float(model.time_per_epoch(center))
            if predicted > 0 and abs(empirical - predicted) <= bound * predicted:
                return True
        # No populated bucket at all: too little evidence to convict.
        return not populated

    # ------------------------------------------------------------ the checks

    def _evaluate(
        self, audit: _JobAudit, record: "JobRecord", now: float, nodes: int
    ) -> list[str]:
        """Run all applicable checks; return the violated check names."""
        t0, e0 = audit.energy[0]
        t1, e1 = audit.energy[-1]
        metered = (e1 - e0) / (t1 - t0)  # W over all the job's nodes
        audit.last_metered = metered
        per_node = metered / max(nodes, 1)
        violations: list[str] = []

        if audit.caps:
            ref_cap = max(cap for _, cap in audit.caps)
            if audit.state in _DISTRUSTED:
                # Probe-compliance: while distrusted, the dispatched caps
                # are the ratcheting probe; no absolute guardband, so a
                # stuck actuator cannot hide inside it.
                if per_node > ref_cap * (1.0 + self.tolerance):
                    violations.append("probe-noncompliant")
            elif per_node > ref_cap * (1.0 + self.tolerance) + self.guardband:
                violations.append("cap-overdraw")

        # Meter cross-check: only while demonstrably active — relative
        # comparisons at idle/setup/teardown draw are meaningless.
        if audit.reported and per_node >= self.p_node_min * 0.9:
            mean_rep = sum(p for _, p in audit.reported) / len(audit.reported)
            if abs(mean_rep - metered) > self.mismatch_tolerance * metered:
                violations.append("meter-mismatch")

        model = record.online_model
        if model is not None and len(audit.progress) >= 2:
            ts0, ep0, _ = audit.progress[0]
            ts1, ep1, _ = audit.progress[-1]
            d_epochs = ep1 - ep0
            if d_epochs >= self.min_epochs and ts1 > ts0:
                observed = (ts1 - ts0) / d_epochs
                mean_cap = sum(c for _, _, c in audit.progress) / len(
                    audit.progress)
                predicted = float(model.time_per_epoch(mean_cap))
                if (
                    predicted > 0
                    and abs(observed - predicted) > self.model_error * predicted
                    and not self._regime_alibi(audit, model)
                ):
                    violations.append("model-implausible")
        return violations

    # ------------------------------------------------------- state machine

    def _advance(
        self, audit: _JobAudit, job_id: str, now: float, violations: list[str]
    ) -> str | None:
        """One state-machine step; returns an event-log line on transition."""
        if violations:
            audit.violation_streak += 1
            audit.clean_streak = 0
            self.violations_total += len(violations)
            if self.telemetry.enabled:
                for kind in violations:
                    self._mx_violations[kind].inc()
        else:
            audit.clean_streak += 1
            audit.violation_streak = 0

        old = audit.state
        reason = ",".join(violations) if violations else "compliant"
        if old == TRUSTED:
            if violations:
                audit.state = SUSPECT
        elif old == SUSPECT:
            if audit.violation_streak >= self.suspect_rounds:
                audit.state = QUARANTINED
            elif audit.clean_streak >= self.clear_rounds:
                audit.state = TRUSTED
        elif old == QUARANTINED:
            if audit.clean_streak >= self.quarantine_rounds:
                audit.state = REHABILITATING
        elif old == REHABILITATING:
            if violations:
                audit.state = QUARANTINED
            elif audit.clean_streak >= self.clear_rounds:
                audit.state = TRUSTED
        if audit.state == old:
            return None
        # Streaks restart at every edge: evidence for the new verdict must
        # be earned under the new regime (e.g. probe caps, not old caps).
        audit.violation_streak = 0
        audit.clean_streak = 0
        return self._record(now, job_id, old, audit.state, reason)

    def _record(
        self, now: float, job_id: str, old: str, new: str, reason: str
    ) -> str:
        self.transitions.append(TrustTransition(now, job_id, old, new, reason))
        if new == QUARANTINED:
            self.quarantines_total += 1
        if self.telemetry.enabled:
            self.telemetry.incident(
                f"trust-{new}", now, job_id=job_id, previous=old, reason=reason
            )
            self._gauge(job_id).set(TRUST_STATES[new])
        return f"t={now:.1f} {job_id}: trust {old} -> {new} ({reason})"

    def force_state(
        self, job_id: str, new: str, now: float = 0.0, reason: str = "forced"
    ) -> None:
        """Operator/test override: move a job to ``new`` unconditionally."""
        if new not in TRUST_STATES:
            raise ValueError(
                f"unknown trust state {new!r}; known: {sorted(TRUST_STATES)}")
        audit = self._jobs.setdefault(job_id, _JobAudit())
        old = audit.state
        audit.state = new
        audit.violation_streak = 0
        audit.clean_streak = 0
        if new != old:
            self._record(now, job_id, old, new, reason)

    # ------------------------------------------------------------ budgeting

    def envelope(self, record: "JobRecord") -> tuple[float, float]:
        """(reserved watts, dispatched cap) for a quarantined job.

        The reservation is the job's *metered* draw plus the guardband per
        node — what it demonstrably pulls, never what it claims.  The cap
        is the probe ratchet (metered W/node shaved by ``probe_margin``,
        clamped to the platform range): compliant actuators follow it down
        and rehabilitate; stuck ones stay visibly non-compliant.
        """
        audit = self._jobs.get(record.job_id)
        nodes = max(record.nodes, 1)
        if audit is not None and audit.last_metered is not None:
            metered = audit.last_metered
        elif record.last_cap is not None:
            metered = record.last_cap * nodes  # no window yet: assume cap
        else:
            metered = record.believed_p_max * nodes
        reserved = metered + self.guardband * nodes
        per_node = metered / nodes
        probe = per_node * (1.0 - self.probe_margin)
        cap = min(max(probe, self.p_node_min), self.p_node_max)
        return reserved, cap

    # -------------------------------------------------------------- plumbing

    def _gauge(self, job_id: str):
        gauge = self._mx_state.get(job_id)
        if gauge is None:
            gauge = self.telemetry.registry.gauge(
                "anor_endpoint_trust_state",
                "endpoint trust (0 trusted, 1 suspect, 2 quarantined, "
                "3 rehabilitating)",
                job=job_id,
            )
            self._mx_state[job_id] = gauge
        return gauge

    def _forget(self, job_id: str) -> None:
        self._jobs.pop(job_id, None)
        if self.telemetry.enabled:
            gauge = self._mx_state.pop(job_id, None)
            if gauge is not None:
                gauge.set(TRUST_STATES[TRUSTED])
