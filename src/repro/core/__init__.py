"""ANOR core: the two-tier control plane and its end-to-end wiring (§3–§4).

* :mod:`repro.core.messages` — the control/status message vocabulary between
  tiers.
* :mod:`repro.core.transport` — latency-modelled message channels standing in
  for the paper's TCP (cluster ↔ job endpoint) links.
* :mod:`repro.core.targets` — time-varying cluster power-target sources (the
  cluster manager "periodically reads cluster power targets from a file").
* :mod:`repro.core.job_endpoint` — the per-job power-modeling process.
* :mod:`repro.core.cluster_manager` — the head-node power manager.
* :mod:`repro.core.framework` — wires an emulated cluster, a job schedule,
  and both tiers into a runnable system (the Figs. 6–10 harness).
"""

from repro.core.messages import BudgetMessage, GoodbyeMessage, HelloMessage, StatusMessage
from repro.core.transport import LatencyChannel, TcpLink
from repro.core.targets import (
    CarbonAwareTarget,
    ConstantTarget,
    PowerTargetSource,
    RegulationTarget,
    SteppedTarget,
    TariffAwareTarget,
    load_target_file,
    save_target_file,
)
from repro.core.job_endpoint import JobTierEndpoint
from repro.core.cluster_manager import ClusterPowerManager, JobRecord
from repro.core.framework import AnorSystem, AnorConfig

__all__ = [
    "BudgetMessage",
    "GoodbyeMessage",
    "HelloMessage",
    "StatusMessage",
    "LatencyChannel",
    "TcpLink",
    "CarbonAwareTarget",
    "ConstantTarget",
    "PowerTargetSource",
    "RegulationTarget",
    "SteppedTarget",
    "TariffAwareTarget",
    "load_target_file",
    "save_target_file",
    "JobTierEndpoint",
    "ClusterPowerManager",
    "JobRecord",
    "AnorSystem",
    "AnorConfig",
]
