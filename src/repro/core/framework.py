"""End-to-end ANOR system: emulated cluster + both control tiers (Figs. 6–10).

:class:`AnorSystem` assembles the pieces the paper deploys on its testbed:

* an :class:`~repro.hwsim.cluster.EmulatedCluster` (the 16 nodes);
* a FCFS job queue fed by a :class:`~repro.workloads.trace.Schedule` (the
  cluster process "reads ... a job submission schedule from files", §4.1);
* one :class:`~repro.core.job_endpoint.JobTierEndpoint` per running job,
  connected to the head node over a latency-modelled TCP link;
* a :class:`~repro.core.cluster_manager.ClusterPowerManager` running the
  chosen budgeter against the chosen power-target source.

Each simulated second: physics advances, agents run a control period,
endpoints run a control period, and (at its own cadence) the cluster manager
re-budgets — the same multi-rate asynchrony §7.2 discusses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.budget.base import PowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.audit import CapComplianceAuditor
from repro.core.cluster_manager import ClusterPowerManager
from repro.core.job_endpoint import JobTierEndpoint
from repro.core.reliable import ReliableLink
from repro.core.targets import ConstantTarget, PowerTargetSource
from repro.core.transport import TcpLink
from repro.durable.checkpoint import CheckpointError
from repro.durable.state import apply_journal, capture_state, empty_state
from repro.durable.store import DurableStore
from repro.facility.breaker import PowerBreaker
from repro.facility.shed import SHED_CLASSES, ShedController, ShedLadder
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.geopm.report import ApplicationTotals, render_report
from repro.geopm.tracer import JobTracer
from repro.hwsim.cluster import EmulatedCluster
from repro.hwsim.job import RunningJob
from repro.modeling.classifier import JobClassifier
from repro.modeling.quadratic import QuadraticPowerModel
from repro.plan.envelope import SafetyEnvelope
from repro.plan.forecast import FORECASTER_KINDS, make_forecaster
from repro.plan.planner import RecedingHorizonPlanner
from repro.sched.base import PendingJob, RunningView, Scheduler
from repro.sched.fcfs import FcfsScheduler
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.prometheus import MetricsHTTPServer
from repro.util.calendar import EventCalendar
from repro.util.clock import PeriodicGate
from repro.util.rng import ensure_rng
from repro.workloads.nas import NAS_TYPES, JobType, P_NODE_MAX, P_NODE_MIN
from repro.workloads.trace import JobRequest, Schedule

__all__ = ["AnorConfig", "AnorResult", "AnorSystem", "precharacterized_models"]


def precharacterized_models(
    job_types: dict[str, JobType] | None = None,
) -> dict[str, QuadraticPowerModel]:
    """Idealised precharacterization: each type's true quadratic curve.

    Experiments that need *measured* characterization (with its fit error)
    use :func:`repro.experiments.fig3.characterize_job_types` instead.
    """
    types = job_types if job_types is not None else NAS_TYPES
    return {name: jt.truth for name, jt in types.items()}


@dataclass
class AnorConfig:
    """Tunable knobs of an end-to-end run."""

    num_nodes: int = 16
    seed: int = 0
    tick: float = 1.0
    agent_period: float = 1.0
    endpoint_period: float = 1.0
    manager_period: float = 1.0
    link_latency: float = 0.0
    # Link fault knobs: message-drop probability and optional per-direction
    # latency overrides, applied to every job link at construction (no more
    # mutating channels after the fact to make a link lossy).
    link_drop_probability: float = 0.0
    link_latency_up: float | None = None
    link_latency_down: float | None = None
    idle_power: float = 60.0
    feedback_enabled: bool = True
    retrain_threshold: int = 10
    min_feedback_epochs: int = 10
    perf_variation_std: float = 0.0
    run_noise: bool = True
    agent_fanout: int = 8
    # §8 extension: job-tier phase-change (drift) detection — the online
    # modeler discards its history when the job's power-performance profile
    # shifts mid-run (see repro.workloads.phased).
    detect_drift: bool = False
    # When set, write GEOPM-style artifacts per job into this directory:
    # a trace CSV (one row per agent control period) and an Application
    # Totals report on completion (§5.4).
    output_dir: str | None = None
    # Fault tolerance: manager-side heartbeat timeouts, job requeue after a
    # node crash, and automatic endpoint restart (the watchdog that brings a
    # crashed job-tier process back; None disables it).
    stale_status_timeout: float = 15.0
    dead_job_timeout: float = 60.0
    requeue_on_node_failure: bool = True
    max_requeues: int = 3
    endpoint_restart_delay: float | None = 30.0
    # Head-node crash recovery (DESIGN.md §4d): when ``checkpoint_dir`` is
    # set, cluster-tier state is checkpointed there every
    # ``checkpoint_period`` seconds with a write-ahead journal in between;
    # a restarted head node replays both and runs a bounded recovery mode
    # for ``recovery_timeout`` seconds while live jobs re-HELLO.  ``None``
    # disables persistence entirely (zero overhead on every hot path).
    checkpoint_dir: str | None = None
    checkpoint_period: float = 30.0
    recovery_timeout: float = 30.0
    # Observability (DESIGN.md §8).  Off by default: the disabled path is a
    # shared null object, so golden traces and the perf harness see zero
    # change.  ``trace_path`` streams the event bus to a JSONL file;
    # ``prometheus_port`` serves /metrics on 127.0.0.1 (0 = ephemeral).
    telemetry_enabled: bool = False
    telemetry_ring_size: int = 4096
    trace_path: str | None = None
    prometheus_port: int | None = None
    # Partition tolerance and fail-safe enforcement (DESIGN.md §4e).  All
    # off by default: with every knob at its default the control plane is
    # bit-identical to the pre-lease implementation (golden traces pin it).
    # ``lease_ttl`` arms the cap-lease dead-man switch at both the endpoint
    # and agent tiers; ``safe_floor`` is the emergency cap leaseless nodes
    # decay toward (p_min when unset).
    lease_ttl: float | None = None
    lease_ramp_seconds: float = 30.0
    safe_floor: float | None = None
    # Ack/retry reliability for the cap-dispatch and model-report paths.
    reliable_messaging: bool = False
    reliable_window: int = 8
    reliable_base_backoff: float = 2.0
    reliable_max_backoff: float = 30.0
    partition_attempts: int = 3
    # How long a leaseless endpoint waits between attempts to re-dial a
    # closed link (only used once leases or reliable messaging are on).
    reconnect_backoff: float = 10.0
    # Facility breaker: trips after ``breaker_trip_rounds`` consecutive
    # rounds of measured power above target × (1 + margin).  None disables.
    breaker_margin: float | None = None
    breaker_trip_rounds: int = 3
    breaker_reset_rounds: int = 5
    breaker_confirm_rounds: int = 3
    # Event-calendar stepping (DESIGN.md §7): between control events the run
    # loop advances the hardware emulator analytically across whole runs of
    # control-free ticks instead of executing them one by one.  Observables
    # are bit-identical to per-tick stepping (the golden traces and the
    # event-equivalence property tests pin it); set False to force the
    # reference tick loop.
    event_driven: bool = True
    # Trust boundary for the job tier (DESIGN.md §4f).  Off by default:
    # with ``audit_enabled`` False no auditor is constructed and the control
    # plane is bit-identical to the pre-audit implementation.  The auditor
    # compares out-of-band metered node power against each job's dispatched
    # cap, self-reported meter, and shipped model, and quarantines endpoints
    # that stay non-compliant.
    audit_enabled: bool = False
    audit_window: float = 30.0  # seconds of evidence per check
    audit_tolerance: float = 0.10  # relative cap-compliance slack
    audit_guardband: float = 20.0  # absolute W/node slack + quarantine pad
    audit_mismatch_tolerance: float = 0.25  # self-report vs metered, relative
    audit_model_error: float = 0.35  # shipped-model plausibility, relative
    audit_min_epochs: int = 3  # epochs needed for a model replay
    audit_suspect_rounds: int = 3  # consecutive violations to quarantine
    audit_quarantine_rounds: int = 5  # compliant rounds to rehabilitate
    audit_clear_rounds: int = 5  # clean rounds back to trusted
    audit_probe_margin: float = 0.15  # probe-cap shave while quarantined
    # Predictive planning (DESIGN.md §9).  Off by default: with
    # ``plan_enabled`` False no planner is constructed and the control plane
    # is bit-identical to the reactive implementation in both event_driven
    # modes (golden traces pin it).  When on, a receding-horizon planner
    # pre-solves the budgeter over the next ``plan_horizon_rounds`` manager
    # periods against the chosen forecaster, clamped by the forecast safety
    # envelope; ``plan_shadow_rounds`` is the promotion threshold of the
    # shadow → active → fallback state machine (0 starts active).
    plan_enabled: bool = False
    plan_forecaster: str = "auto"  # auto|schedule|persistence|ramp|ar1|adversarial
    plan_horizon_rounds: int = 8
    plan_hysteresis_watts: float = 8.0
    plan_error_bound_watts: float = 200.0
    plan_error_window: int = 16
    plan_shadow_rounds: int = 4
    # Graceful-degradation ladder (DESIGN.md §10).  Off by default: with
    # ``shed_enabled`` False no controller is constructed and the control
    # plane is bit-identical to the pre-shed implementation in both
    # event_driven modes (golden traces pin it).  When on, feed deficits
    # against nominal demand grade into severity states (normal →
    # brownout-1 → brownout-2 → blackstart); each severity sheds power by
    # job class (preemptible / checkpointable / protected) along a fixed
    # escalation chain, and recovery ramps budgets back at
    # ``shed_ramp_watts`` per manager round with asymmetric hysteresis.
    shed_enabled: bool = False
    shed_nominal_watts: float | None = None  # None: high-water of observed targets
    shed_ramp_watts: float = 100.0
    shed_brownout1_deficit: float = 0.10
    shed_brownout2_deficit: float = 0.25
    shed_blackstart_deficit: float = 0.50
    shed_escalate_rounds: int = 2
    shed_clear_rounds: int = 5
    shed_classes: dict | None = None  # claimed job type -> shed class
    shed_default_class: str = "checkpointable"
    # Internal: held True by the fault injector while a cluster-wide
    # NetworkPartition window is open, so links created mid-window (e.g.
    # reconnect attempts) are born partitioned too.
    link_partitioned: bool = False

    def __post_init__(self) -> None:
        """Range-check every knob, naming the offending field.

        Mirrors ``FaultSchedule.random``'s validation style: bad values
        fail at construction with the field name, not deep inside a run.
        """
        positive = {
            "num_nodes": self.num_nodes,
            "tick": self.tick,
            "agent_period": self.agent_period,
            "endpoint_period": self.endpoint_period,
            "manager_period": self.manager_period,
            "checkpoint_period": self.checkpoint_period,
            "recovery_timeout": self.recovery_timeout,
            "stale_status_timeout": self.stale_status_timeout,
            "dead_job_timeout": self.dead_job_timeout,
            "telemetry_ring_size": self.telemetry_ring_size,
            "reliable_window": self.reliable_window,
            "reliable_base_backoff": self.reliable_base_backoff,
            "reliable_max_backoff": self.reliable_max_backoff,
            "partition_attempts": self.partition_attempts,
            "reconnect_backoff": self.reconnect_backoff,
            "breaker_trip_rounds": self.breaker_trip_rounds,
            "breaker_reset_rounds": self.breaker_reset_rounds,
            "breaker_confirm_rounds": self.breaker_confirm_rounds,
            "audit_window": self.audit_window,
            "audit_mismatch_tolerance": self.audit_mismatch_tolerance,
            "audit_model_error": self.audit_model_error,
            "audit_min_epochs": self.audit_min_epochs,
            "audit_suspect_rounds": self.audit_suspect_rounds,
            "audit_quarantine_rounds": self.audit_quarantine_rounds,
            "audit_clear_rounds": self.audit_clear_rounds,
            "plan_horizon_rounds": self.plan_horizon_rounds,
            "plan_error_bound_watts": self.plan_error_bound_watts,
            "plan_error_window": self.plan_error_window,
            "shed_ramp_watts": self.shed_ramp_watts,
            "shed_escalate_rounds": self.shed_escalate_rounds,
            "shed_clear_rounds": self.shed_clear_rounds,
        }
        for name, value in positive.items():
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        non_negative = {
            "idle_power": self.idle_power,
            "lease_ramp_seconds": self.lease_ramp_seconds,
            "max_requeues": self.max_requeues,
            "audit_tolerance": self.audit_tolerance,
            "audit_guardband": self.audit_guardband,
            "plan_hysteresis_watts": self.plan_hysteresis_watts,
            "plan_shadow_rounds": self.plan_shadow_rounds,
        }
        for name, value in non_negative.items():
            if value < 0:
                raise ValueError(f"{name} must be ≥ 0, got {value}")
        # Optional knobs: None disables, anything else must be meaningful.
        optional_positive = {
            "lease_ttl": self.lease_ttl,
            "safe_floor": self.safe_floor,
            "breaker_margin": self.breaker_margin,
            "endpoint_restart_delay": self.endpoint_restart_delay,
            "shed_nominal_watts": self.shed_nominal_watts,
        }
        for name, value in optional_positive.items():
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if not 0.0 <= self.link_drop_probability < 1.0:
            raise ValueError(
                "link_drop_probability must be in [0, 1), got "
                f"{self.link_drop_probability}"
            )
        if not 0.0 < self.audit_probe_margin < 1.0:
            raise ValueError(
                "audit_probe_margin must be in (0, 1), got "
                f"{self.audit_probe_margin}"
            )
        if self.plan_forecaster not in FORECASTER_KINDS:
            raise ValueError(
                f"plan_forecaster must be one of {FORECASTER_KINDS}, got "
                f"{self.plan_forecaster!r}"
            )
        deficits = {
            "shed_brownout1_deficit": self.shed_brownout1_deficit,
            "shed_brownout2_deficit": self.shed_brownout2_deficit,
            "shed_blackstart_deficit": self.shed_blackstart_deficit,
        }
        for name, value in deficits.items():
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")
        if not (
            self.shed_brownout1_deficit
            < self.shed_brownout2_deficit
            < self.shed_blackstart_deficit
        ):
            raise ValueError(
                "shed deficit thresholds must be strictly increasing, got "
                f"{self.shed_brownout1_deficit} / {self.shed_brownout2_deficit} "
                f"/ {self.shed_blackstart_deficit}"
            )
        if self.shed_default_class not in SHED_CLASSES:
            raise ValueError(
                f"shed_default_class must be one of {SHED_CLASSES}, got "
                f"{self.shed_default_class!r}"
            )
        for claimed, cls in (self.shed_classes or {}).items():
            if cls not in SHED_CLASSES:
                raise ValueError(
                    f"shed_classes[{claimed!r}] must be one of {SHED_CLASSES}, "
                    f"got {cls!r}"
                )
        # Ordering inversions (the _MIN_STRIDE > _MAX_STRIDE class of bug).
        if self.reliable_max_backoff < self.reliable_base_backoff:
            raise ValueError(
                "reliable_max_backoff must be ≥ reliable_base_backoff, got "
                f"{self.reliable_max_backoff} < {self.reliable_base_backoff}"
            )
        if self.dead_job_timeout < self.stale_status_timeout:
            raise ValueError(
                "dead_job_timeout must be ≥ stale_status_timeout, got "
                f"{self.dead_job_timeout} < {self.stale_status_timeout}"
            )


@dataclass
class AnorResult:
    """Outputs of one end-to-end run."""

    completed: list[ApplicationTotals]
    power_trace: np.ndarray  # columns: time, target, measured
    unstarted_jobs: int
    duration: float
    requeued: list[str] = field(default_factory=list)  # jobs requeued by crashes
    warnings: list[str] = field(default_factory=list)
    fault_log: list[str] = field(default_factory=list)
    ghost_jobs: int = 0  # manager records still alive when the run ended
    recovery_log: list[str] = field(default_factory=list)  # head-node crash/restart incidents
    head_crashes: int = 0
    orphaned: list[str] = field(default_factory=list)  # jobs found dead in recovery
    # Partition detections by the reliable-messaging layer (PartitionStart/
    # PartitionEnd records, in detection order; empty without reliable links).
    partition_events: list = field(default_factory=list)

    def slowdowns_by_type(
        self, reference: dict[str, float]
    ) -> dict[str, list[float]]:
        """Per-type fractional runtime slowdowns vs. ``reference`` seconds."""
        out: dict[str, list[float]] = {}
        for t in self.completed:
            ref = reference.get(t.job_type)
            if ref is None:
                continue
            out.setdefault(t.job_type, []).append(t.runtime / ref - 1.0)
        return out

    def qos_by_type(self, t_min: dict[str, float]) -> dict[str, list[float]]:
        """Per-type QoS degradation Q = (T_sojourn − T_min)/T_min (§5.2)."""
        out: dict[str, list[float]] = {}
        for t in self.completed:
            ref = t_min.get(t.job_type)
            if ref is None:
                continue
            out.setdefault(t.job_type, []).append((t.sojourn - ref) / ref)
        return out


@dataclass
class _QueuedJob:
    request: JobRequest
    job_type: JobType
    claimed_type: str = ""  # what the submission metadata claims; "" = truthful


class AnorSystem:
    """A runnable two-tier ANOR deployment over the emulated cluster."""

    def __init__(
        self,
        *,
        budgeter: PowerBudgeter | None = None,
        target_source: PowerTargetSource | None = None,
        classifier: JobClassifier | None = None,
        schedule: Schedule | None = None,
        job_types: dict[str, JobType] | None = None,
        config: AnorConfig | None = None,
        scheduler: Scheduler | None = None,
        fault_schedule: FaultSchedule | None = None,
    ) -> None:
        self.config = config or AnorConfig()
        self.job_types = dict(job_types) if job_types is not None else dict(NAS_TYPES)
        self.budgeter = budgeter or EvenSlowdownBudgeter()
        self.target_source = target_source or ConstantTarget(
            self.config.num_nodes * P_NODE_MAX
        )
        self.classifier = classifier or JobClassifier(
            precharacterized_models(self.job_types)
        )
        self.schedule = schedule or Schedule()
        self.scheduler = scheduler or FcfsScheduler()
        self._rng = ensure_rng(self.config.seed)
        # Observability: one Telemetry handle threaded through every tier.
        # Disabled (the default) it is the shared null object — golden traces
        # and the perf harness see literally the same code path as before.
        cfg = self.config
        self.telemetry = (
            Telemetry(
                ring_size=cfg.telemetry_ring_size,
                trace_path=cfg.trace_path,
            )
            if cfg.telemetry_enabled
            else NULL_TELEMETRY
        )
        self.metrics_server: MetricsHTTPServer | None = None
        if self.telemetry.enabled and cfg.prometheus_port is not None:
            self.metrics_server = MetricsHTTPServer(
                self.telemetry.registry, cfg.prometheus_port
            )
        # Ledger of every TcpLink ever created: cluster-wide message/drop
        # totals must survive links being replaced or garbage-collected.
        self._all_links: list[TcpLink] = []
        # Every ReliableLink wrapper ever created (partition-event ledger)
        # and per-job backoff state for re-dialling closed links.
        self._reliable_links: list[ReliableLink] = []
        self._link_serial = 0
        self._reconnect_at: dict[str, float] = {}
        if self.telemetry.enabled:
            self._init_metrics()
        self.cluster = EmulatedCluster(
            self.config.num_nodes,
            seed=self._rng,
            idle_power=self.config.idle_power,
            perf_variation_std=self.config.perf_variation_std,
            agent_fanout=self.config.agent_fanout,
            run_noise=self.config.run_noise,
        )
        self.manager: ClusterPowerManager | None = self._build_manager()
        self.endpoints: dict[str, JobTierEndpoint] = {}
        self._queue: list[_QueuedJob] = []
        self._pending = sorted(
            self.schedule.requests, key=lambda r: (r.submit_time, r.job_id)
        )
        self._submit_times: dict[str, float] = {}
        self._trace: list[tuple[float, float, float]] = []
        self._tracers: dict[str, JobTracer] = {}
        if self.config.output_dir is not None:
            Path(self.config.output_dir).mkdir(parents=True, exist_ok=True)
        # Grid-anchored gates: fire on the k·period grid set by their first
        # firing, with no per-fire epsilon drift (see PeriodicGate).
        self._agent_gate = PeriodicGate(self.config.agent_period)
        self._endpoint_gate = PeriodicGate(self.config.endpoint_period)
        self._manager_gate = PeriodicGate(self.config.manager_period)
        # Fault-tolerance state: what each launched job looked like (for
        # requeue after a node crash), per-job attempt counts, endpoint
        # restarts pending, and run-level incident records.
        self._job_specs: dict[str, _QueuedJob] = {}
        self._attempts: dict[str, int] = {}
        self._endpoint_restarts: list[tuple[float, str]] = []
        self.requeued: list[str] = []
        self.warnings: list[str] = []
        # Head-node crash-recovery state: the head's own view of which jobs
        # it launched and believes running (what a checkpoint must carry —
        # distinct from the emulator's ground truth), the durable store, and
        # run-level recovery observability.
        self._running_view: dict[str, dict] = {}
        self._head_down = False
        self.head_crashes = 0
        self.recovery_log: list[str] = []
        self.orphaned: list[str] = []
        self.durable: DurableStore | None = None
        self._checkpoint_gate: PeriodicGate | None = None
        if self.config.checkpoint_dir is not None:
            if self.config.checkpoint_period <= 0:
                raise ValueError(
                    f"checkpoint_period must be positive, got {self.config.checkpoint_period}"
                )
            self.durable = DurableStore(self.config.checkpoint_dir)
            self._checkpoint_gate = PeriodicGate(self.config.checkpoint_period)
            self.manager.journal = self.durable.journal
        self.faults = (
            FaultInjector(self, fault_schedule) if fault_schedule is not None else None
        )

    def _build_manager(self) -> ClusterPowerManager:
        """Construct a cluster-tier manager (initial boot and head restarts)."""
        cfg = self.config
        breaker = None
        if cfg.breaker_margin is not None:
            # A fresh breaker per manager build: breaker state is head-local
            # and does not survive a head-node crash (it re-arms closed).
            breaker = PowerBreaker(
                margin=cfg.breaker_margin,
                trip_rounds=cfg.breaker_trip_rounds,
                reset_rounds=cfg.breaker_reset_rounds,
                confirm_rounds=cfg.breaker_confirm_rounds,
            )
        auditor = None
        if cfg.audit_enabled:
            # Fresh auditor per manager build: trust state is deliberately
            # head-local (not checkpointed) — a restarted head re-earns its
            # verdicts from new evidence rather than trusting a stale one.
            auditor = CapComplianceAuditor(
                job_meter=self._job_meter,
                p_node_min=P_NODE_MIN,
                p_node_max=P_NODE_MAX,
                idle_power=cfg.idle_power,
                window=cfg.audit_window,
                tolerance=cfg.audit_tolerance,
                guardband=cfg.audit_guardband,
                mismatch_tolerance=cfg.audit_mismatch_tolerance,
                model_error=cfg.audit_model_error,
                min_epochs=cfg.audit_min_epochs,
                suspect_rounds=cfg.audit_suspect_rounds,
                quarantine_rounds=cfg.audit_quarantine_rounds,
                clear_rounds=cfg.audit_clear_rounds,
                probe_margin=cfg.audit_probe_margin,
                telemetry=self.telemetry,
            )
        planner = None
        if cfg.plan_enabled:
            # Fresh planner per manager build: forecast trust is head-local
            # state, like breaker and auditor verdicts — a restarted head
            # starts from shadow (or active when plan_shadow_rounds is 0)
            # and re-earns promotion from new forecast scores.
            planner = RecedingHorizonPlanner(
                budgeter=self.budgeter,
                forecaster=make_forecaster(
                    cfg.plan_forecaster,
                    self.target_source,
                    error_window=cfg.plan_error_window,
                ),
                envelope=SafetyEnvelope(
                    error_bound_watts=cfg.plan_error_bound_watts,
                    promote_rounds=cfg.plan_shadow_rounds,
                ),
                horizon_rounds=cfg.plan_horizon_rounds,
                period=cfg.manager_period,
                hysteresis_watts=cfg.plan_hysteresis_watts,
            )
        shed = None
        if cfg.shed_enabled:
            # Fresh controller per manager build: shed state (severity,
            # hysteresis streaks, the ramped recovery ceiling) is head-local
            # and does not survive a head-node crash — a restarted head
            # re-grades the feed from new observations.
            shed = ShedController(
                ladder=ShedLadder(
                    brownout1_deficit=cfg.shed_brownout1_deficit,
                    brownout2_deficit=cfg.shed_brownout2_deficit,
                    blackstart_deficit=cfg.shed_blackstart_deficit,
                    escalate_rounds=cfg.shed_escalate_rounds,
                    clear_rounds=cfg.shed_clear_rounds,
                    ramp_watts_per_round=cfg.shed_ramp_watts,
                ),
                classes=dict(cfg.shed_classes or {}),
                default_class=cfg.shed_default_class,
                nominal_watts=cfg.shed_nominal_watts,
            )
        return ClusterPowerManager(
            budgeter=self.budgeter,
            target_source=self.target_source,
            classifier=self.classifier,
            total_nodes=self.config.num_nodes,
            idle_power_estimate=self.config.idle_power,
            meter=lambda: self.cluster.measured_power,
            use_feedback=self.config.feedback_enabled,
            p_node_min=P_NODE_MIN,
            p_node_max=P_NODE_MAX,
            stale_status_timeout=self.config.stale_status_timeout,
            dead_job_timeout=self.config.dead_job_timeout,
            lease_ttl=cfg.lease_ttl,
            safe_floor=cfg.safe_floor,
            breaker=breaker,
            auditor=auditor,
            planner=planner,
            shed=shed,
            telemetry=self.telemetry,
        )

    def _job_meter(self, job_id: str) -> tuple[float, tuple[int, ...]] | None:
        """Out-of-band metering for the cap-compliance auditor.

        Reads the cumulative MSR energy counters of the job's nodes — the
        facility's metering plane, which the job-tier endpoint cannot
        influence (and which keeps reporting through a facility-meter
        outage).  Returns None while the job is not on the cluster.
        """
        job = self.cluster.running.get(job_id)
        if job is None:
            return None
        energy = sum(node.total_energy for node in job.nodes)
        return float(energy), tuple(node.node_id for node in job.nodes)

    def _init_metrics(self) -> None:
        """System-level metric handles (enabled runs only)."""
        reg = self.telemetry.registry
        self._mx_power = reg.gauge(
            "anor_measured_power_watts", "emulated facility meter, per tick"
        )
        self._mx_target_now = reg.gauge(
            "anor_target_watts", "cluster power target, per tick"
        )
        self._mx_running = reg.gauge("anor_running_jobs", "jobs on nodes")
        self._mx_queued = reg.gauge("anor_queued_jobs", "jobs waiting in queue")
        self._mx_pending = reg.gauge(
            "anor_pending_jobs", "jobs not yet submitted from the schedule"
        )
        self._mx_completed = reg.gauge("anor_completed_jobs", "jobs finished")
        self._mx_checkpoints = reg.counter(
            "anor_checkpoints_total", "durable checkpoints written"
        )
        self._mx_link_sent = reg.counter(
            "anor_link_messages_sent_total", "messages offered to any link"
        )
        self._mx_link_delivered = reg.counter(
            "anor_link_messages_delivered_total", "messages delivered by any link"
        )
        self._mx_link_reordered = reg.counter(
            "anor_link_messages_reordered_total",
            "deliveries that overtook an earlier send",
        )
        self._mx_link_dropped: dict[str, object] = {}

    def _sample_link_counters(self) -> None:
        """Fold the per-link ledgers into cluster-wide monotone counters.

        Links come and go (replaced on reconnect, garbage-collected on
        eviction) but the ledger in ``_all_links`` keeps every channel ever
        created, so summing it is safe and ``set_total`` keeps Prometheus
        counters monotone.
        """
        reg = self.telemetry.registry
        sent = delivered = reordered = 0
        dropped: dict[str, int] = {}
        for link in self._all_links:
            for ch in (link.down, link.up):
                sent += ch.sent
                delivered += ch.delivered
                reordered += ch.reordered
                for reason, n in ch.drop_reasons.items():
                    dropped[reason] = dropped.get(reason, 0) + n
        self._mx_link_sent.set_total(sent)
        self._mx_link_delivered.set_total(delivered)
        self._mx_link_reordered.set_total(reordered)
        for reason, n in dropped.items():
            counter = self._mx_link_dropped.get(reason)
            if counter is None:
                counter = reg.counter(
                    "anor_link_messages_dropped_total",
                    "messages lost on any link, by reason",
                    reason=reason,
                )
                self._mx_link_dropped[reason] = counter
            counter.set_total(n)

    def _journal(self, rtype: str, now: float, **data) -> None:
        if self.durable is not None:
            self.durable.journal.append(rtype, now, data)

    @staticmethod
    def _spec_dict(q: _QueuedJob) -> dict:
        """JSON-serialisable submission spec (enough to rebuild the job)."""
        return {
            "job_id": q.request.job_id,
            "type_name": q.request.type_name,
            "nodes": q.job_type.nodes,
            "claimed_type": q.claimed_type,
            "submit_time": q.request.submit_time,
        }

    def _spec_from_dict(self, spec: dict) -> _QueuedJob:
        jt = self.job_types[spec["type_name"]].with_nodes(int(spec["nodes"]))
        req = JobRequest(
            submit_time=float(spec["submit_time"]),
            job_id=str(spec["job_id"]),
            type_name=str(spec["type_name"]),
            nodes=int(spec["nodes"]),
        )
        return _QueuedJob(request=req, job_type=jt, claimed_type=spec.get("claimed_type", ""))

    # ----------------------------------------------------------- job intake

    def submit_now(
        self,
        job_id: str,
        type_name: str,
        *,
        nodes: int | None = None,
        claimed_type: str | None = None,
    ) -> None:
        """Submit a job immediately (used by the static-budget experiments).

        ``claimed_type`` overrides what the submission metadata tells the
        cluster tier the job is — the per-job misclassification of Figs. 7–8
        ("bt.D.x=is.D.x").  The job still *executes* as ``type_name``.
        """
        jt = self.job_types[type_name]
        if nodes is not None:
            jt = jt.with_nodes(nodes)
        req = JobRequest(
            submit_time=self.cluster.clock.now,
            job_id=job_id,
            type_name=type_name,
            nodes=jt.nodes,
        )
        queued = _QueuedJob(
            request=req, job_type=jt, claimed_type=claimed_type or type_name
        )
        self._queue.append(queued)
        self._submit_times[job_id] = self.cluster.clock.now
        self._journal(
            "job-admit", self.cluster.clock.now, kind="manual", spec=self._spec_dict(queued)
        )

    def _intake(self, now: float) -> None:
        while self._pending and self._pending[0].submit_time <= now:
            req = self._pending.pop(0)
            jt = self.job_types[req.type_name].with_nodes(req.nodes)
            queued = _QueuedJob(request=req, job_type=jt, claimed_type=req.type_name)
            self._queue.append(queued)
            self._submit_times[req.job_id] = req.submit_time
            self._journal("job-admit", now, kind="queue", spec=self._spec_dict(queued))

    def _start_ready(self, now: float) -> None:
        """Start queued jobs according to the configured scheduler."""
        if not self._queue:
            return
        shed = self.manager.shed if self.manager is not None else None
        if shed is not None and shed.active:
            # Admission hold: launching into a brownout would hand the
            # ladder fresh work to shed right back.  Launches resume when
            # severity returns to normal.
            return
        pending = [
            PendingJob(
                job_id=q.request.job_id,
                nodes=q.job_type.nodes,
                submit_time=self._submit_times[q.request.job_id],
                # User-style time limit: the worst case (minimum cap).
                est_runtime=q.job_type.total_time(q.job_type.p_min),
                attempt=self._attempts.get(q.request.job_id, 1),
            )
            for q in self._queue
        ]
        # Requeued jobs keep their original submit time, so a stable sort
        # puts them back at the head of the line (they already waited once).
        pending.sort(key=lambda p: p.submit_time)
        running = [
            RunningView(
                job_id=j.job_id,
                nodes=len(j.nodes),
                est_end=j.start_time + j.job_type.total_time(j.job_type.p_min),
            )
            for j in self.cluster.running.values()
        ]
        chosen = self.scheduler.select(
            pending, running, len(self.cluster.idle_nodes()), now
        )
        by_id = {q.request.job_id: q for q in self._queue}
        for selection in chosen:
            self._launch(by_id[selection.job_id])
        started = {s.job_id for s in chosen}
        self._queue = [q for q in self._queue if q.request.job_id not in started]

    def _launch(self, head: _QueuedJob) -> None:
        job = self.cluster.start_job(
            head.request.job_id,
            head.job_type,
            submit_time=self._submit_times[head.request.job_id],
        )
        self._job_specs[head.request.job_id] = head
        attempt = self._attempts.setdefault(head.request.job_id, 1)
        spec = self._spec_dict(head)
        self._running_view[head.request.job_id] = spec
        self._journal(
            "job-admit", self.cluster.clock.now, kind="launch", spec=spec, attempt=attempt
        )
        self._attach_endpoint(job, head.claimed_type or head.job_type.name)
        if self.config.output_dir is not None:
            self._tracers[head.request.job_id] = JobTracer(
                Path(self.config.output_dir) / f"{head.request.job_id}.trace.csv",
                job_id=head.request.job_id,
            )

    def _make_link(self) -> TcpLink:
        cfg = self.config
        link = TcpLink(
            cfg.link_latency,
            drop_probability=cfg.link_drop_probability,
            latency_up=cfg.link_latency_up,
            latency_down=cfg.link_latency_down,
            seed=self._rng,
        )
        if cfg.link_partitioned:
            # Born mid-partition: the fault window covers new connections.
            link.down.partitioned = True
            link.up.partitioned = True
        self._all_links.append(link)
        return link

    def _link_pair(self):
        """One raw link, as the pair of handles the two tiers will hold.

        Without reliable messaging both tiers share the raw :class:`TcpLink`
        (the pre-existing code path, bit-identical).  With it, each tier
        gets its own :class:`ReliableLink` side over the shared raw link.
        """
        raw = self._make_link()
        cfg = self.config
        if not cfg.reliable_messaging:
            return raw, raw
        self._link_serial += 1
        common = dict(
            window=cfg.reliable_window,
            base_backoff=cfg.reliable_base_backoff,
            max_backoff=cfg.reliable_max_backoff,
            partition_attempts=cfg.partition_attempts,
            telemetry=self.telemetry,
        )
        manager_side = ReliableLink(
            raw, "cluster", seed=self._rng,
            name=f"link{self._link_serial}:down", **common,
        )
        endpoint_side = ReliableLink(
            raw, "job", seed=self._rng,
            name=f"link{self._link_serial}:up", **common,
        )
        self._reliable_links.extend((manager_side, endpoint_side))
        return manager_side, endpoint_side

    def _attach_endpoint(
        self,
        job: RunningJob,
        claimed_type: str,
        *,
        warm_model: QuadraticPowerModel | None = None,
        warm_r2: float | None = None,
    ) -> None:
        """Connect a (possibly fresh) job-tier endpoint for a running job."""
        cfg = self.config
        manager_side, endpoint_side = self._link_pair()
        self.manager.register_link(manager_side)
        self.endpoints[job.job_id] = JobTierEndpoint(
            job_id=job.job_id,
            claimed_type=claimed_type,
            nodes=job.job_type.nodes,
            geopm_endpoint=job.endpoint,
            link=endpoint_side,
            p_min=P_NODE_MIN,
            p_max=P_NODE_MAX,
            default_model=QuadraticPowerModel.from_anchors(
                1.0, 1.3, P_NODE_MIN, P_NODE_MAX
            ),
            feedback_enabled=cfg.feedback_enabled,
            retrain_threshold=cfg.retrain_threshold,
            min_feedback_epochs=cfg.min_feedback_epochs,
            detect_drift=cfg.detect_drift,
            warm_model=warm_model,
            warm_r2=warm_r2,
            lease_ttl=cfg.lease_ttl,
            lease_ramp_seconds=cfg.lease_ramp_seconds,
            safe_floor=cfg.safe_floor,
            telemetry=self.telemetry,
        )

    # ------------------------------------------------------------- failures

    def crash_node(self, node_id: int, now: float | None = None) -> str | None:
        """Crash one emulated node; kill, and maybe requeue, its job.

        The job's endpoint dies with it — silently, no goodbye — so the
        cluster manager only learns of the death through its heartbeat
        timeouts.  Returns the killed job id, if any.
        """
        if now is None:
            now = self.cluster.clock.now
        killed = self.cluster.fail_node(node_id)
        if killed is None:
            return None
        if self.telemetry.enabled:
            self.telemetry.incident("node-crash", now, node=node_id, job_id=killed)
        self.endpoints.pop(killed, None)
        self._endpoint_restarts = [
            r for r in self._endpoint_restarts if r[1] != killed
        ]
        tracer = self._tracers.pop(killed, None)
        if tracer is not None:
            tracer.close()
        if self._head_down:
            # No head node to notice, requeue, or journal anything: the job
            # just dies.  Post-restart reconciliation finds it missing (no
            # re-HELLO) and requeues it from the checkpointed spec.
            self.warnings.append(
                f"t={now:.1f}: node {node_id} crashed while head node down, "
                f"job {killed} killed"
            )
            return killed
        self._running_view.pop(killed, None)
        spec = self._job_specs.get(killed)
        attempts = self._attempts.get(killed, 1)
        if (
            self.config.requeue_on_node_failure
            and spec is not None
            and attempts <= self.config.max_requeues
        ):
            self._attempts[killed] = attempts + 1
            self._queue.append(spec)
            self.requeued.append(killed)
            if self.telemetry.enabled:
                self.telemetry.event(
                    "job-requeue", now, job_id=killed, attempt=attempts + 1
                )
            self.warnings.append(
                f"t={now:.1f}: node {node_id} crashed, job {killed} killed and requeued"
            )
            self._journal(
                "job-admit",
                now,
                kind="requeue",
                spec=self._spec_dict(spec),
                attempt=attempts + 1,
            )
        else:
            self.warnings.append(
                f"t={now:.1f}: node {node_id} crashed, job {killed} killed "
                f"(not requeued)"
            )
            self._journal("job-evict", now, kind="killed", job_id=killed)
        return killed

    def _apply_shed_actions(self, now: float) -> None:
        """Execute the manager's queued shed decisions (preempt / kill).

        The manager only *queues* the actions — it has no handle on the
        cluster emulator — so the framework is the enforcement arm, the
        role the resource-manager plugin plays on a real head node.
        Preempted jobs requeue from their checkpointed submission spec
        (they restart once the ladder returns to normal); killed jobs are
        evicted for good.
        """
        actions = list(self.manager.shed.pending_actions)
        self.manager.shed.pending_actions.clear()
        for job_id, action in actions:
            self._shed_job(job_id, action, now)

    def _shed_job(self, job_id: str, action: str, now: float) -> None:
        if job_id not in self.cluster.running:
            # Completed (or crashed) between the shed decision and now.
            return
        self.cluster.kill_job(job_id)
        self.endpoints.pop(job_id, None)
        self._endpoint_restarts = [
            r for r in self._endpoint_restarts if r[1] != job_id
        ]
        tracer = self._tracers.pop(job_id, None)
        if tracer is not None:
            tracer.close()
        self._running_view.pop(job_id, None)
        spec = self._job_specs.get(job_id)
        attempts = self._attempts.get(job_id, 1)
        if (
            action == "preempt"
            and spec is not None
            and attempts <= self.config.max_requeues
        ):
            self._attempts[job_id] = attempts + 1
            self._queue.append(spec)
            self.requeued.append(job_id)
            if self.telemetry.enabled:
                self.telemetry.event(
                    "job-requeue", now, job_id=job_id, attempt=attempts + 1
                )
            self.warnings.append(
                f"t={now:.1f}: job {job_id} preempted by power shed "
                f"(checkpointed and requeued)"
            )
            self._journal(
                "job-admit",
                now,
                kind="requeue",
                spec=self._spec_dict(spec),
                attempt=attempts + 1,
            )
        else:
            self.warnings.append(
                f"t={now:.1f}: job {job_id} killed by power shed"
            )
            self._journal("job-evict", now, kind="shed", job_id=job_id)

    def crash_endpoint(self, job_id: str, now: float | None = None) -> bool:
        """Kill a job's endpoint process; the job itself keeps running.

        No goodbye is sent — the manager sees the job go silent, budgets it
        conservatively, and eventually evicts it.  When
        ``endpoint_restart_delay`` is set, a watchdog restart re-attaches a
        fresh endpoint (new link, new hello) after the delay.
        """
        if now is None:
            now = self.cluster.clock.now
        if self.endpoints.pop(job_id, None) is None:
            return False
        if self.telemetry.enabled:
            self.telemetry.incident("endpoint-crash", now, job_id=job_id)
        self.warnings.append(f"t={now:.1f}: endpoint for job {job_id} crashed")
        if self.config.endpoint_restart_delay is not None:
            self._endpoint_restarts.append(
                (now + self.config.endpoint_restart_delay, job_id)
            )
        return True

    def crash_head_node(self, now: float | None = None) -> bool:
        """Kill the cluster-tier process: queue, budgeter state, models — gone.

        Compute-node-side state survives (running jobs, their endpoints and
        modelers, the node-local watchdog) but every link to the head is
        dead: endpoints keep transmitting into the void until
        :meth:`restart_head_node` reconnects them.  What comes back at
        restart depends entirely on the durable store.
        """
        if self._head_down:
            return False
        if now is None:
            now = self.cluster.clock.now
        self._head_down = True
        self.head_crashes += 1
        # Every connection to the dead head is gone: close them so that
        # endpoints shouting into the void show up as counted drops, not
        # silently vanished mail.  (The loss RNG draw precedes the closed
        # check in LatencyChannel.send, so seeded runs are unchanged.)
        for link in self.manager._links:
            link.close("head-crash")
        self.manager = None
        if self.durable is not None:
            self.durable.close()
            self.durable = None
        if self.telemetry.enabled:
            self.telemetry.incident("head-crash", now)
        self.recovery_log.append(f"t={now:.1f}: head node crashed")
        return True

    def restart_head_node(self, now: float | None = None) -> bool:
        """Supervised head-node restart: replay durable state, enter recovery.

        With a checkpoint directory configured, the restarted manager loads
        the last checkpoint, folds in the journal tail, restores the queue /
        running-set / budget accounting / models / target-hold / gate
        phases, and runs a bounded recovery mode while live endpoints
        re-HELLO over fresh links.  A missing store, an unknown schema
        version, or a failed checksum all degrade to a *cold start* with an
        incident record — never a guess at partial state.
        """
        if not self._head_down:
            return False
        if now is None:
            now = self.cluster.clock.now
        cfg = self.config
        state: dict | None = None
        if cfg.checkpoint_dir is not None:
            self.durable = DurableStore(cfg.checkpoint_dir)
            try:
                payload, replay = self.durable.load()
                base = payload["state"] if payload is not None else empty_state()
                state = apply_journal(base, replay.records)
                if replay.dropped_tail:
                    if self.telemetry.enabled:
                        self.telemetry.incident(
                            "journal-tail-dropped", now, records=replay.dropped_tail
                        )
                    self.recovery_log.append(
                        f"t={now:.1f}: journal tail dropped "
                        f"({replay.dropped_tail} corrupt/truncated record(s))"
                    )
            except CheckpointError as exc:
                incident = f"t={now:.1f}: checkpoint rejected ({exc}); cold start"
                if self.telemetry.enabled:
                    self.telemetry.incident(
                        "checkpoint-rejected", now, error=str(exc)
                    )
                self.recovery_log.append(incident)
                self.warnings.append(incident)
                state = None
        self.manager = self._build_manager()
        if self.durable is not None:
            self.manager.journal = self.durable.journal
        if self.faults is not None:
            self.faults.reattach()
        if state is not None:
            self._restore_system_state(state)
            self.manager.restore_from_state(
                state["manager"],
                state["target_hold"],
                now=now,
                recovery_timeout=cfg.recovery_timeout,
            )
            anchor, fires = state["gates"]["manager"]
            self._manager_gate.restore(anchor, fires)
            if self._checkpoint_gate is not None:
                anchor, fires = state["gates"]["checkpoint"]
                self._checkpoint_gate.restore(anchor, fires)
            if self.telemetry.enabled:
                self.telemetry.event(
                    "head-restart",
                    now,
                    mode="warm",
                    recovered_jobs=len(state["manager"]["jobs"]),
                )
            self.recovery_log.append(
                f"t={now:.1f}: head node restarted warm "
                f"({len(state['manager']['jobs'])} job(s) recovered from checkpoint+journal)"
            )
        else:
            # Cold start: the in-memory queue/running-view stand in for the
            # schedule and resource-manager state the head re-reads from
            # files (§4.1); everything *learned* — models, correction,
            # budget accounting — is gone.  The manager still runs a
            # recovery window so reconnecting jobs are not mistaken for
            # never-seen ones in the logs, and a fresh gate re-anchors the
            # control grid at the restart instant.
            self._manager_gate = PeriodicGate(cfg.manager_period)
            self.manager.begin_recovery(now, {}, cfg.recovery_timeout)
            if self.telemetry.enabled:
                self.telemetry.incident("head-restart-cold", now)
            self.recovery_log.append(
                f"t={now:.1f}: head node restarted cold (no usable checkpoint)"
            )
        # Every surviving endpoint reconnects over a fresh link and re-HELLOs
        # on its next control period (deterministic order).
        for job_id in sorted(self.endpoints):
            manager_side, endpoint_side = self._link_pair()
            self.manager.register_link(manager_side)
            self.endpoints[job_id].reconnect(endpoint_side)
        self._head_down = False
        return True

    def _restore_system_state(self, state: dict) -> None:
        """Re-install the scheduler-side slice of a recovered checkpoint."""
        ordered = sorted(
            self.schedule.requests, key=lambda r: (r.submit_time, r.job_id)
        )
        self._pending = ordered[int(state["pending_index"]):]
        self._queue = [self._spec_from_dict(s) for s in state["queue"]]
        self._running_view = {
            job_id: dict(spec) for job_id, spec in state["running"].items()
        }
        for spec in (*state["queue"], *state["running"].values()):
            self._submit_times[spec["job_id"]] = float(spec["submit_time"])
        self._attempts = {k: int(v) for k, v in state["attempts"].items()}
        self.requeued = list(state["requeued"])

    def _handle_orphans(self, now: float) -> None:
        """Reconcile jobs the recovery window closed on without a re-HELLO.

        Three deterministic cases: the job is still running (endpoint died
        in the outage — leave it to the watchdog), it completed during the
        outage (nothing to do), or it died with its node (requeue it from
        the checkpointed spec, like any node-crash kill).
        """
        for job_id in self.manager.orphaned:
            self.orphaned.append(job_id)
            if job_id in self.cluster.running:
                self.recovery_log.append(
                    f"t={now:.1f}: job {job_id} silent past the recovery window "
                    f"but still running; awaiting endpoint watchdog"
                )
                if (
                    job_id not in self.endpoints
                    and self.config.endpoint_restart_delay is not None
                    and all(r[1] != job_id for r in self._endpoint_restarts)
                ):
                    self._endpoint_restarts.append((now, job_id))
                continue
            spec_state = self._running_view.pop(job_id, None)
            if any(t.job_id == job_id for t in self.cluster.completed):
                self.recovery_log.append(
                    f"t={now:.1f}: job {job_id} completed during the head-node outage"
                )
                continue
            attempts = self._attempts.get(job_id, 1)
            if (
                self.config.requeue_on_node_failure
                and spec_state is not None
                and attempts <= self.config.max_requeues
            ):
                queued = self._spec_from_dict(spec_state)
                self._attempts[job_id] = attempts + 1
                self._queue.append(queued)
                self._submit_times.setdefault(job_id, queued.request.submit_time)
                self.requeued.append(job_id)
                self.recovery_log.append(
                    f"t={now:.1f}: job {job_id} died during the head-node outage; requeued"
                )
                self._journal(
                    "job-admit", now, kind="requeue", spec=spec_state, attempt=attempts + 1
                )
            else:
                self.recovery_log.append(
                    f"t={now:.1f}: job {job_id} died during the head-node outage "
                    f"(not requeued)"
                )
        self.manager.orphaned.clear()

    def _reconnect_closed(self, now: float) -> None:
        """Re-dial links the manager closed on a still-alive endpoint.

        A partition longer than ``dead_job_timeout`` gets the job evicted
        and its link closed; when the network heals, the endpoint must
        re-HELLO over a fresh link or it stays degraded forever.  Gated on
        the new resilience knobs so the long-standing behaviour (evicted
        endpoints stay dark) — and with it every golden trace — is
        untouched in default configurations.
        """
        cfg = self.config
        if cfg.lease_ttl is None and not cfg.reliable_messaging:
            return
        for job_id in sorted(self.endpoints):
            endpoint = self.endpoints[job_id]
            if not endpoint.link.closed:
                continue
            if now < self._reconnect_at.get(job_id, 0.0):
                continue
            self._reconnect_at[job_id] = now + cfg.reconnect_backoff
            manager_side, endpoint_side = self._link_pair()
            self.manager.register_link(manager_side)
            endpoint.reconnect(endpoint_side)
            self.warnings.append(
                f"t={now:.1f}: job {job_id} re-dialled its closed link"
            )
            if self.telemetry.enabled:
                self.telemetry.incident("link-redial", now, job_id=job_id)

    def _restart_endpoints(self, now: float) -> None:
        if self._head_down:
            # The watchdog is node-local, but a restarted endpoint's first
            # act is registering with the head node — hold due restarts until
            # the head is back (the watchdog just keeps retrying its connect).
            return
        due = [r for r in self._endpoint_restarts if r[0] <= now]
        if not due:
            return
        self._endpoint_restarts = [r for r in self._endpoint_restarts if r[0] > now]
        for _, job_id in due:
            job = self.cluster.running.get(job_id)
            if job is None or job_id in self.endpoints:
                # The job finished (or was requeued) while the endpoint was
                # down, or another path already re-attached one.  Losing the
                # restart is correct; losing the *record* of it is not.
                reason = (
                    "job no longer running"
                    if job is None
                    else "endpoint already attached"
                )
                if self.telemetry.enabled:
                    self.telemetry.incident(
                        "restart-cancelled", now, job_id=job_id, reason=reason
                    )
                self.warnings.append(
                    f"t={now:.1f}: restart-cancelled for job {job_id} ({reason})"
                )
                continue
            spec = self._job_specs.get(job_id)
            claimed = (
                spec.claimed_type or spec.job_type.name
                if spec is not None
                else job.job_type.name
            )
            # Warm restart: hand back the last model the cluster tier
            # validated for this job (live record or checkpoint-recovered),
            # so the fresh endpoint does not re-fit from zero.
            warm_model = warm_r2 = None
            record = self.manager.jobs.get(job_id) if self.manager is not None else None
            if record is not None and record.online_model is not None:
                warm_model, warm_r2 = record.online_model, record.online_r2
            elif self.manager is not None:
                recovered = self.manager.recovered_job(job_id)
                if recovered is not None and recovered.online_model is not None:
                    warm_model, warm_r2 = recovered.online_model, recovered.online_r2
            self._attach_endpoint(job, claimed, warm_model=warm_model, warm_r2=warm_r2)
            if self.telemetry.enabled:
                self.telemetry.event(
                    "endpoint-restart", now, job_id=job_id, warm=warm_model is not None
                )
            self.warnings.append(f"t={now:.1f}: endpoint for job {job_id} restarted")

    # -------------------------------------------------------------- running

    def step(self) -> None:
        """Advance the whole system by one tick.

        While the head node is down, everything *it* does pauses — intake,
        scheduling, budgeting, checkpoints, endpoint-watchdog restarts — but
        the compute side keeps going: physics, agents, endpoints (shouting
        into dead links), fault events, and job completions.
        """
        cfg = self.config
        clock = self.cluster.clock
        clock.advance(cfg.tick)
        now = clock.now
        if self.faults is not None:
            self.faults.tick(now)
        if not self._head_down:
            self._intake(now)
            self._restart_endpoints(now)
            self._reconnect_closed(now)
            self._start_ready(now)
        # Control-plane order within a tick: the manager budgets first, then
        # endpoints translate budgets into GEOPM policies, then agents apply
        # them — so a decision reaches the MSRs within one tick plus link
        # latency, matching a real deployment where each hop is a few ms.
        if not self._head_down:
            # Poll the gate first (grid bookkeeping), then consume any plan
            # instants due this tick: when an active plan knows the target
            # steps *between* gate firings, the manager budgets at the step
            # instant *instead of* the next grid round — the gate re-anchors
            # onto the breakpoint so rounds stay one-per-period rather than
            # doubling.  Planner off ⇒ the extra check is a constant False
            # and the cadence is exactly the gate's.
            manager_due = self._manager_gate.due(now)
            if self.manager.plan_instant_due(now) and not manager_due:
                self._manager_gate.restore(now, 1)
                manager_due = True
            if manager_due:
                self.manager.step(now)
                if self.manager.orphaned:
                    self._handle_orphans(now)
                if (
                    self.manager.shed is not None
                    and self.manager.shed.pending_actions
                ):
                    self._apply_shed_actions(now)
        if (
            not self._head_down
            and self.durable is not None
            and self._checkpoint_gate.due(now)
        ):
            self.durable.save_checkpoint({"state": capture_state(self, now)})
            if self.telemetry.enabled:
                self._mx_checkpoints.inc()
                self.telemetry.event("checkpoint", now)
        if self._endpoint_gate.due(now):
            for endpoint in self.endpoints.values():
                endpoint.step(now)
        if self._agent_gate.due(now):
            for job in self.cluster.running.values():
                sample = job.agents.step(now)
                tracer = self._tracers.get(job.job_id)
                if tracer is not None:
                    tracer.record(sample)
        measured = self.cluster.advance(cfg.tick)
        self._trace.append((now, self.target_source.target(now), measured))
        if self.telemetry.enabled:
            self._mx_power.set(measured)
            self._mx_target_now.set(self._trace[-1][1])
            self._mx_running.set(len(self.cluster.running))
            self._mx_queued.set(len(self._queue))
            self._mx_pending.set(len(self._pending))
            self._mx_completed.set(len(self.cluster.completed))
            self._sample_link_counters()
        self._finish_completed(now)

    def _finish_completed(self, now: float) -> None:
        """Close the endpoints of jobs that left the cluster this tick."""
        # Completed jobs: close their endpoints so the manager forgets them.
        done_ids = [jid for jid in self.endpoints if jid not in self.cluster.running]
        for jid in done_ids:
            self.endpoints[jid].close(now)
            # Flush the goodbye promptly so budgets stop counting this job.
            self.endpoints.pop(jid)
            if not self._head_down:
                # Head-side bookkeeping; with the head down, post-restart
                # reconciliation discovers the completion instead.
                if self._running_view.pop(jid, None) is not None:
                    self._journal("job-evict", now, kind="complete", job_id=jid)
            tracer = self._tracers.pop(jid, None)
            if tracer is not None:
                tracer.close()
            if self.config.output_dir is not None:
                totals = next(
                    (t for t in reversed(self.cluster.completed) if t.job_id == jid),
                    None,
                )
                if totals is None:
                    # Job left the cluster without completing (e.g. killed by
                    # a fault) — there is nothing to report on.
                    self.warnings.append(
                        f"t={now:.1f}: no completion totals for job {jid}; "
                        f"report skipped"
                    )
                    continue
                report_path = Path(self.config.output_dir) / f"{jid}.report"
                report_path.write_text(render_report(totals))

    # ------------------------------------------------- event-calendar stepping
    #
    # Stride safety (DESIGN.md §7): between two control events every per-tick
    # input to the physics is constant, because *all* time-dependent control
    # behaviour is quantized to the event sources the calendar registers —
    # message delivery and retransmit pumping only execute inside endpoint /
    # manager / agent steps (gates); cap writes only happen in agent steps;
    # lease decay and ramps are evaluated inside endpoint/agent steps; fault
    # firings and window resolutions are `time <= now` checks (instants);
    # intake/restarts/reconnects are `time <= now` checks under a live head;
    # and scheduler decisions can only change when cluster state changes,
    # which itself only happens at events or job completions (which truncate
    # the stride inside the hardware emulator).

    #: Upper bound on ticks per stride: keeps the per-stride numpy arrays
    #: small enough to stay cache-friendly without limiting throughput.
    _MAX_STRIDE = 1024

    #: Smallest control-free window worth batching: below this the fixed
    #: per-stride cost (planning, calendar, commit) exceeds what the plain
    #: tick loop spends, so short windows take the per-tick path.  Purely a
    #: performance knob — both paths are bit-identical.
    _MIN_STRIDE = 8

    def _build_calendar(self) -> EventCalendar:
        """Register every source that could fire during upcoming ticks."""
        cal = EventCalendar()
        cal.add_gate(self._endpoint_gate)
        cal.add_gate(self._agent_gate)
        if not self._head_down:
            cal.add_gate(self._manager_gate)
            plan_instant = self.manager.next_plan_instant()
            if plan_instant is not None:
                cal.add_instant(plan_instant)
            if self._checkpoint_gate is not None:
                cal.add_gate(self._checkpoint_gate)
            if self._pending:
                cal.add_instant(self._pending[0].submit_time)
            if self._endpoint_restarts:
                cal.add_instant(min(r[0] for r in self._endpoint_restarts))
            cfg = self.config
            if cfg.lease_ttl is not None or cfg.reliable_messaging:
                for job_id in self.endpoints:
                    if self.endpoints[job_id].link.closed:
                        cal.add_instant(self._reconnect_at.get(job_id, 0.0))
        if self.faults is not None:
            cal.add_instant(self.faults.next_due)
        return cal

    def _queue_blocks_stride(self, now: float) -> bool:
        """Could the scheduler start a queued job on an upcoming free tick?

        With the head down ``_start_ready`` never runs, so the queue cannot
        act.  Otherwise a non-empty queue blocks striding unless the policy
        declares itself time-invariant and one probe round (the exact view
        ``_start_ready`` would build) comes back empty — in which case it
        stays empty until cluster state changes, which only happens at an
        event or a completion (both stride boundaries).
        """
        if not self._queue or self._head_down:
            return False
        shed = self.manager.shed
        if shed is not None and shed.active:
            # Admission hold: ``_start_ready`` is inert while shedding, and
            # severity only changes inside manager rounds — gate events, so
            # stride boundaries.  The queue cannot act mid-stride.
            return False
        if not self.scheduler.time_invariant:
            return True
        pending = [
            PendingJob(
                job_id=q.request.job_id,
                nodes=q.job_type.nodes,
                submit_time=self._submit_times[q.request.job_id],
                est_runtime=q.job_type.total_time(q.job_type.p_min),
                attempt=self._attempts.get(q.request.job_id, 1),
            )
            for q in self._queue
        ]
        pending.sort(key=lambda p: p.submit_time)
        running = [
            RunningView(
                job_id=j.job_id,
                nodes=len(j.nodes),
                est_end=j.start_time + j.job_type.total_time(j.job_type.p_min),
            )
            for j in self.cluster.running.values()
        ]
        return bool(
            self.scheduler.select(
                pending, running, len(self.cluster.idle_nodes()), now
            )
        )

    def _try_stride(
        self,
        start: float,
        duration: float | None,
        until_idle: bool,
        max_time: float,
    ) -> bool:
        """Advance across a run of control-free ticks; False → take a step().

        Cheap scalar screening first (no arrays on the common next-event-is-
        imminent path), then the exact elementwise truncation that decides
        the stride length, then one batched physics call plus per-tick
        observable replay.  Everything the tick loop would have produced —
        trace rows, telemetry samples, RNG consumption, float accumulations
        — is reproduced bit for bit; ticks are never skipped, only batched.
        """
        clock = self.cluster.clock
        now = clock.now
        tick = self.config.tick
        cal = self._build_calendar()
        bound = cal.horizon()
        if math.isinf(bound):
            quick = self._MAX_STRIDE if bound > 0 else 0
        else:
            quick = int((bound - now) / tick)
        # Run-loop break conditions also bound the stride (scalar estimate;
        # the exact predicates are replayed below).  The duration cap is
        # suppressed only while ``until_idle`` still has work to drain; work
        # can only *vanish* at a completion, which ends the stride anyway.
        has_work = bool(self._pending or self._queue or self.cluster.running)
        duration_caps = duration is not None and not (until_idle and has_work)
        if duration_caps:
            quick = min(quick, int((start + duration - now) / tick) + 1)
        quick = min(quick, int((start + max_time - now) / tick) + 1)
        if quick < self._MIN_STRIDE:
            return False
        if not self.cluster.stride_ready():
            return False
        # The scheduler probe walks the whole queue, so it runs only after
        # the cheap scalar screens above say a stride is even possible.
        if self._queue_blocks_stride(now):
            return False
        count = min(quick + 1, self._MAX_STRIDE)
        times = clock.tick_times(count, tick)
        free = cal.free_ticks(times)
        if free >= 2:
            # Replay the run() break predicates at the instants the loop
            # would check them: before tick k the clock reads times[k-1].
            prev = np.empty(free)
            prev[0] = now
            prev[1:] = times[: free - 1]
            elapsed = prev - start
            ok = elapsed < max_time
            if duration_caps:
                ok &= elapsed < duration
            free = int(np.count_nonzero(ok))
        if free < 2:
            return False
        times = times[:free]
        tel = self.telemetry.enabled
        running_before = len(self.cluster.running)
        completed_before = len(self.cluster.completed)
        ticks, totals = self.cluster.advance_stride(times, tick)
        clock.advance_to(float(times[ticks - 1]))
        last = ticks - 1
        for k in range(ticks):
            t = float(times[k])
            self._trace.append((t, self.target_source.target(t), float(totals[k])))
            if tel:
                self._mx_power.set(float(totals[k]))
                self._mx_target_now.set(self._trace[-1][1])
                # Completions land on the stride's final tick only (the
                # stride truncates there), matching what the tick loop's
                # post-physics sampling would have seen each tick.
                self._mx_running.set(
                    len(self.cluster.running) if k == last else running_before
                )
                self._mx_queued.set(len(self._queue))
                self._mx_pending.set(len(self._pending))
                self._mx_completed.set(
                    len(self.cluster.completed) if k == last else completed_before
                )
                self._sample_link_counters()
        self._finish_completed(float(times[last]))
        return True

    def run(
        self,
        duration: float | None = None,
        *,
        until_idle: bool = False,
        max_time: float = 86_400.0,
    ) -> AnorResult:
        """Run for ``duration`` seconds, or until all submitted work drains.

        ``until_idle`` keeps running (past ``duration``) until the queue and
        the cluster are empty, bounded by ``max_time`` as a safety stop.
        """
        if duration is None and not until_idle:
            raise ValueError("need a duration or until_idle=True")
        start = self.cluster.clock.now
        event_driven = self.config.event_driven
        while True:
            now = self.cluster.clock.now
            elapsed = now - start
            if duration is not None and elapsed >= duration:
                if not until_idle:
                    break
                if not (self._pending or self._queue or self.cluster.running):
                    break
            if duration is None and not (
                self._pending or self._queue or self.cluster.running
            ):
                break
            if elapsed >= max_time:
                break
            if event_driven and self._try_stride(start, duration, until_idle, max_time):
                continue
            self.step()
        trace = (
            np.asarray(self._trace)
            if self._trace
            else np.empty((0, 3))
        )
        # Durable sinks must not hold back records a consumer reads right
        # after run() returns; the system stays usable (run can be resumed).
        self.telemetry.flush()
        return AnorResult(
            completed=list(self.cluster.completed),
            power_trace=trace,
            unstarted_jobs=len(self._pending) + len(self._queue),
            duration=self.cluster.clock.now - start,
            requeued=list(self.requeued),
            warnings=list(self.warnings),
            fault_log=self.faults.log_lines() if self.faults is not None else [],
            ghost_jobs=len(self.manager.jobs) if self.manager is not None else 0,
            recovery_log=list(self.recovery_log),
            head_crashes=self.head_crashes,
            orphaned=list(self.orphaned),
            partition_events=sorted(
                (f for rl in self._reliable_links for f in rl.faults),
                key=lambda f: (f.time, f.link, type(f).__name__),
            ),
        )
