"""End-to-end ANOR system: emulated cluster + both control tiers (Figs. 6–10).

:class:`AnorSystem` assembles the pieces the paper deploys on its testbed:

* an :class:`~repro.hwsim.cluster.EmulatedCluster` (the 16 nodes);
* a FCFS job queue fed by a :class:`~repro.workloads.trace.Schedule` (the
  cluster process "reads ... a job submission schedule from files", §4.1);
* one :class:`~repro.core.job_endpoint.JobTierEndpoint` per running job,
  connected to the head node over a latency-modelled TCP link;
* a :class:`~repro.core.cluster_manager.ClusterPowerManager` running the
  chosen budgeter against the chosen power-target source.

Each simulated second: physics advances, agents run a control period,
endpoints run a control period, and (at its own cadence) the cluster manager
re-budgets — the same multi-rate asynchrony §7.2 discusses.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.budget.base import PowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.cluster_manager import ClusterPowerManager
from repro.core.job_endpoint import JobTierEndpoint
from repro.core.targets import ConstantTarget, PowerTargetSource
from repro.core.transport import TcpLink
from repro.geopm.report import ApplicationTotals, render_report
from repro.geopm.tracer import JobTracer
from repro.hwsim.cluster import EmulatedCluster
from repro.modeling.classifier import JobClassifier
from repro.modeling.quadratic import QuadraticPowerModel
from repro.sched.base import PendingJob, RunningView, Scheduler
from repro.sched.fcfs import FcfsScheduler
from repro.util.rng import ensure_rng
from repro.workloads.nas import NAS_TYPES, JobType, P_NODE_MAX, P_NODE_MIN
from repro.workloads.trace import JobRequest, Schedule

__all__ = ["AnorConfig", "AnorResult", "AnorSystem", "precharacterized_models"]


def precharacterized_models(
    job_types: dict[str, JobType] | None = None,
) -> dict[str, QuadraticPowerModel]:
    """Idealised precharacterization: each type's true quadratic curve.

    Experiments that need *measured* characterization (with its fit error)
    use :func:`repro.experiments.fig3.characterize_job_types` instead.
    """
    types = job_types if job_types is not None else NAS_TYPES
    return {name: jt.truth for name, jt in types.items()}


@dataclass
class AnorConfig:
    """Tunable knobs of an end-to-end run."""

    num_nodes: int = 16
    seed: int = 0
    tick: float = 1.0
    agent_period: float = 1.0
    endpoint_period: float = 1.0
    manager_period: float = 1.0
    link_latency: float = 0.0
    idle_power: float = 60.0
    feedback_enabled: bool = True
    retrain_threshold: int = 10
    min_feedback_epochs: int = 10
    perf_variation_std: float = 0.0
    run_noise: bool = True
    agent_fanout: int = 8
    # §8 extension: job-tier phase-change (drift) detection — the online
    # modeler discards its history when the job's power-performance profile
    # shifts mid-run (see repro.workloads.phased).
    detect_drift: bool = False
    # When set, write GEOPM-style artifacts per job into this directory:
    # a trace CSV (one row per agent control period) and an Application
    # Totals report on completion (§5.4).
    output_dir: str | None = None


@dataclass
class AnorResult:
    """Outputs of one end-to-end run."""

    completed: list[ApplicationTotals]
    power_trace: np.ndarray  # columns: time, target, measured
    unstarted_jobs: int
    duration: float

    def slowdowns_by_type(
        self, reference: dict[str, float]
    ) -> dict[str, list[float]]:
        """Per-type fractional runtime slowdowns vs. ``reference`` seconds."""
        out: dict[str, list[float]] = {}
        for t in self.completed:
            ref = reference.get(t.job_type)
            if ref is None:
                continue
            out.setdefault(t.job_type, []).append(t.runtime / ref - 1.0)
        return out

    def qos_by_type(self, t_min: dict[str, float]) -> dict[str, list[float]]:
        """Per-type QoS degradation Q = (T_sojourn − T_min)/T_min (§5.2)."""
        out: dict[str, list[float]] = {}
        for t in self.completed:
            ref = t_min.get(t.job_type)
            if ref is None:
                continue
            out.setdefault(t.job_type, []).append((t.sojourn - ref) / ref)
        return out


@dataclass
class _QueuedJob:
    request: JobRequest
    job_type: JobType
    claimed_type: str = ""  # what the submission metadata claims; "" = truthful


class AnorSystem:
    """A runnable two-tier ANOR deployment over the emulated cluster."""

    def __init__(
        self,
        *,
        budgeter: PowerBudgeter | None = None,
        target_source: PowerTargetSource | None = None,
        classifier: JobClassifier | None = None,
        schedule: Schedule | None = None,
        job_types: dict[str, JobType] | None = None,
        config: AnorConfig | None = None,
        scheduler: Scheduler | None = None,
    ) -> None:
        self.config = config or AnorConfig()
        self.job_types = dict(job_types) if job_types is not None else dict(NAS_TYPES)
        self.budgeter = budgeter or EvenSlowdownBudgeter()
        self.target_source = target_source or ConstantTarget(
            self.config.num_nodes * P_NODE_MAX
        )
        self.classifier = classifier or JobClassifier(
            precharacterized_models(self.job_types)
        )
        self.schedule = schedule or Schedule()
        self.scheduler = scheduler or FcfsScheduler()
        self._rng = ensure_rng(self.config.seed)
        self.cluster = EmulatedCluster(
            self.config.num_nodes,
            seed=self._rng,
            idle_power=self.config.idle_power,
            perf_variation_std=self.config.perf_variation_std,
            agent_fanout=self.config.agent_fanout,
            run_noise=self.config.run_noise,
        )
        self.manager = ClusterPowerManager(
            budgeter=self.budgeter,
            target_source=self.target_source,
            classifier=self.classifier,
            total_nodes=self.config.num_nodes,
            idle_power_estimate=self.config.idle_power,
            meter=lambda: self.cluster.measured_power,
            use_feedback=self.config.feedback_enabled,
            p_node_min=P_NODE_MIN,
            p_node_max=P_NODE_MAX,
        )
        self.endpoints: dict[str, JobTierEndpoint] = {}
        self._queue: list[_QueuedJob] = []
        self._pending = sorted(
            self.schedule.requests, key=lambda r: (r.submit_time, r.job_id)
        )
        self._submit_times: dict[str, float] = {}
        self._trace: list[tuple[float, float, float]] = []
        self._tracers: dict[str, JobTracer] = {}
        if self.config.output_dir is not None:
            Path(self.config.output_dir).mkdir(parents=True, exist_ok=True)
        self._next_agent = 0.0
        self._next_endpoint = 0.0
        self._next_manager = 0.0

    # ----------------------------------------------------------- job intake

    def submit_now(
        self,
        job_id: str,
        type_name: str,
        *,
        nodes: int | None = None,
        claimed_type: str | None = None,
    ) -> None:
        """Submit a job immediately (used by the static-budget experiments).

        ``claimed_type`` overrides what the submission metadata tells the
        cluster tier the job is — the per-job misclassification of Figs. 7–8
        ("bt.D.x=is.D.x").  The job still *executes* as ``type_name``.
        """
        jt = self.job_types[type_name]
        if nodes is not None:
            jt = jt.with_nodes(nodes)
        req = JobRequest(
            submit_time=self.cluster.clock.now,
            job_id=job_id,
            type_name=type_name,
            nodes=jt.nodes,
        )
        self._queue.append(
            _QueuedJob(request=req, job_type=jt, claimed_type=claimed_type or type_name)
        )
        self._submit_times[job_id] = self.cluster.clock.now

    def _intake(self, now: float) -> None:
        while self._pending and self._pending[0].submit_time <= now:
            req = self._pending.pop(0)
            jt = self.job_types[req.type_name].with_nodes(req.nodes)
            self._queue.append(
                _QueuedJob(request=req, job_type=jt, claimed_type=req.type_name)
            )
            self._submit_times[req.job_id] = req.submit_time

    def _start_ready(self, now: float) -> None:
        """Start queued jobs according to the configured scheduler."""
        if not self._queue:
            return
        pending = [
            PendingJob(
                job_id=q.request.job_id,
                nodes=q.job_type.nodes,
                submit_time=self._submit_times[q.request.job_id],
                # User-style time limit: the worst case (minimum cap).
                est_runtime=q.job_type.total_time(q.job_type.p_min),
            )
            for q in self._queue
        ]
        running = [
            RunningView(
                job_id=j.job_id,
                nodes=len(j.nodes),
                est_end=j.start_time + j.job_type.total_time(j.job_type.p_min),
            )
            for j in self.cluster.running.values()
        ]
        chosen = self.scheduler.select(
            pending, running, len(self.cluster.idle_nodes()), now
        )
        by_id = {q.request.job_id: q for q in self._queue}
        for selection in chosen:
            self._launch(by_id[selection.job_id])
        started = {s.job_id for s in chosen}
        self._queue = [q for q in self._queue if q.request.job_id not in started]

    def _launch(self, head: _QueuedJob) -> None:
        job = self.cluster.start_job(
            head.request.job_id,
            head.job_type,
            submit_time=self._submit_times[head.request.job_id],
        )
        link = TcpLink(self.config.link_latency, seed=self._rng)
        self.manager.register_link(link)
        endpoint = JobTierEndpoint(
            job_id=head.request.job_id,
            claimed_type=head.claimed_type or head.job_type.name,
            nodes=head.job_type.nodes,
            geopm_endpoint=job.endpoint,
            link=link,
            p_min=P_NODE_MIN,
            p_max=P_NODE_MAX,
            default_model=QuadraticPowerModel.from_anchors(
                1.0, 1.3, P_NODE_MIN, P_NODE_MAX
            ),
            feedback_enabled=self.config.feedback_enabled,
            retrain_threshold=self.config.retrain_threshold,
            min_feedback_epochs=self.config.min_feedback_epochs,
            detect_drift=self.config.detect_drift,
        )
        self.endpoints[head.request.job_id] = endpoint
        if self.config.output_dir is not None:
            self._tracers[head.request.job_id] = JobTracer(
                Path(self.config.output_dir) / f"{head.request.job_id}.trace.csv",
                job_id=head.request.job_id,
            )

    # -------------------------------------------------------------- running

    def step(self) -> None:
        """Advance the whole system by one tick."""
        cfg = self.config
        clock = self.cluster.clock
        clock.advance(cfg.tick)
        now = clock.now
        self._intake(now)
        self._start_ready(now)
        # Control-plane order within a tick: the manager budgets first, then
        # endpoints translate budgets into GEOPM policies, then agents apply
        # them — so a decision reaches the MSRs within one tick plus link
        # latency, matching a real deployment where each hop is a few ms.
        if now >= self._next_manager:
            self.manager.step(now)
            self._next_manager = now + cfg.manager_period - 1e-9
        if now >= self._next_endpoint:
            for endpoint in self.endpoints.values():
                endpoint.step(now)
            self._next_endpoint = now + cfg.endpoint_period - 1e-9
        if now >= self._next_agent:
            for job in self.cluster.running.values():
                sample = job.agents.step(now)
                tracer = self._tracers.get(job.job_id)
                if tracer is not None:
                    tracer.record(sample)
            self._next_agent = now + cfg.agent_period - 1e-9
        measured = self.cluster.advance(cfg.tick)
        self._trace.append((now, self.target_source.target(now), measured))
        # Completed jobs: close their endpoints so the manager forgets them.
        done_ids = [jid for jid in self.endpoints if jid not in self.cluster.running]
        for jid in done_ids:
            self.endpoints[jid].close(now)
            # Flush the goodbye promptly so budgets stop counting this job.
            self.endpoints.pop(jid)
            tracer = self._tracers.pop(jid, None)
            if tracer is not None:
                tracer.close()
            if self.config.output_dir is not None:
                totals = next(
                    t for t in reversed(self.cluster.completed) if t.job_id == jid
                )
                report_path = Path(self.config.output_dir) / f"{jid}.report"
                report_path.write_text(render_report(totals))

    def run(
        self,
        duration: float | None = None,
        *,
        until_idle: bool = False,
        max_time: float = 86_400.0,
    ) -> AnorResult:
        """Run for ``duration`` seconds, or until all submitted work drains.

        ``until_idle`` keeps running (past ``duration``) until the queue and
        the cluster are empty, bounded by ``max_time`` as a safety stop.
        """
        if duration is None and not until_idle:
            raise ValueError("need a duration or until_idle=True")
        start = self.cluster.clock.now
        while True:
            now = self.cluster.clock.now
            elapsed = now - start
            if duration is not None and elapsed >= duration:
                if not until_idle:
                    break
                if not (self._pending or self._queue or self.cluster.running):
                    break
            if duration is None and not (
                self._pending or self._queue or self.cluster.running
            ):
                break
            if elapsed >= max_time:
                break
            self.step()
        trace = (
            np.asarray(self._trace)
            if self._trace
            else np.empty((0, 3))
        )
        return AnorResult(
            completed=list(self.cluster.completed),
            power_trace=trace,
            unstarted_jobs=len(self._pending) + len(self._queue),
            duration=self.cluster.clock.now - start,
        )
