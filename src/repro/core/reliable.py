"""Ack/retry reliability layer over :mod:`repro.core.transport`.

The raw :class:`~repro.core.transport.TcpLink` models loss honestly but
resolves it the way the paper does: every tier periodically resends current
state, so a dropped message only delays convergence.  That is fine for
status traffic and fatal for *safety* traffic — a dropped cap during a
partition leaves a job over budget until the next successful round, and
nobody finds out.  :class:`ReliableLink` closes that gap:

* **sequence numbers** — every application payload rides in an
  :class:`Envelope` with a per-direction, monotonically increasing ``seq``;
* **idempotent receive** — the receiver dedupes by seq (cumulative floor +
  sparse set above it), so retransmits are harmless;
* **acks + retransmit** — receivers batch-acknowledge every envelope seq
  they see; senders retransmit unacked envelopes on an exponential backoff
  with jitter drawn from the *seeded* RNG (retry storms stay reproducible);
* **bounded window** — at most ``window`` envelopes outstanding; when full,
  the oldest is superseded (dropped locally, counted) — correct for
  resend-current-state protocols where the newest message obsoletes older
  ones;
* **partition detection** — an envelope retransmitted
  ``partition_attempts`` times *with no intervening ack* flips the link
  into a declared partition (a :class:`~repro.faults.events.PartitionStart`
  record + telemetry incident); the first ack after that declares
  :class:`~repro.faults.events.PartitionEnd` with the measured outage.
  Attempt counts survive window wraps (a superseding envelope inherits the
  evicted one's delivery debt) and reset on every ack, so the detector
  measures sustained silence, not cumulative baseline loss.

One ReliableLink wraps one *side* of a TcpLink: the manager holds a
``side="cluster"`` wrapper (envelopes go down, acks come back up) and the
endpoint a ``side="job"`` wrapper, sharing no state except the wire.  The
wrapper exposes the TcpLink verbs plus ``.up``/``.down``/``close``/
``closed``, so the fault injector and the no-silent-loss ledger keep
working against the raw channels underneath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.transport import TcpLink
from repro.faults.events import PartitionEnd, PartitionStart
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.util.rng import ensure_rng

__all__ = ["Envelope", "Ack", "ReliableLink"]


@dataclass(frozen=True)
class Envelope:
    """One reliably-delivered application payload."""

    seq: int
    payload: Any


@dataclass(frozen=True)
class Ack:
    """Batched acknowledgement of every envelope seq seen this receive."""

    seqs: tuple[int, ...]


class _Outstanding:
    """Sender-side bookkeeping for one unacked envelope."""

    __slots__ = ("envelope", "first_sent", "attempts", "next_retry")

    def __init__(self, envelope: Envelope, now: float, first_backoff: float) -> None:
        self.envelope = envelope
        self.first_sent = now
        self.attempts = 0  # retransmits so far (the original send is free)
        self.next_retry = now + first_backoff


class ReliableLink:
    """One side of a reliable connection over a raw :class:`TcpLink`."""

    def __init__(
        self,
        link: TcpLink,
        side: str,
        *,
        seed: int | np.random.Generator | None = None,
        window: int = 8,
        base_backoff: float = 2.0,
        max_backoff: float = 30.0,
        jitter: float = 0.25,
        partition_attempts: int = 3,
        name: str = "",
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if side not in ("cluster", "job"):
            raise ValueError(f"side must be 'cluster' or 'job', got {side!r}")
        if window < 1:
            raise ValueError(f"window must be ≥ 1, got {window}")
        if base_backoff <= 0:
            raise ValueError(f"base_backoff must be positive, got {base_backoff}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if partition_attempts < 1:
            raise ValueError(
                f"partition_attempts must be ≥ 1, got {partition_attempts}"
            )
        self.link = link
        self.side = side
        self.name = name or side
        self._rng = ensure_rng(seed)
        self.window = int(window)
        self.base_backoff = float(base_backoff)
        self.max_backoff = float(max_backoff)
        self.jitter = float(jitter)
        self.partition_attempts = int(partition_attempts)
        # Sender state (this side's outbound direction).
        self._next_seq = 0
        self._outstanding: dict[int, _Outstanding] = {}
        # Receiver state (this side's inbound direction): cumulative floor
        # plus the sparse set of delivered seqs above it — bounded memory.
        self._cum_floor = -1
        self._seen: set[int] = set()
        # Declared-partition state and the fault records it produces.
        self.partitioned_since: float | None = None
        self.faults: list[PartitionStart | PartitionEnd] = []
        # Counters (folded into telemetry by the owner; plain ints here so
        # the layer works without a registry).
        self.retransmits = 0
        self.superseded = 0
        self.duplicates = 0
        self.acked = 0
        self.telemetry = telemetry

    # ------------------------------------------------------------- raw verbs

    @property
    def down(self):
        return self.link.down

    @property
    def up(self):
        return self.link.up

    @property
    def closed(self) -> bool:
        return self.link.closed

    def close(self, reason: str = "closed") -> int:
        return self.link.close(reason)

    # -------------------------------------------------------------- internals

    def _backoff(self, attempts: int) -> float:
        """Exponential backoff with seeded jitter for the (attempts+1)-th try."""
        raw = min(self.base_backoff * (2.0**attempts), self.max_backoff)
        if self.jitter > 0:
            raw *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return raw

    def _send_frame(self, frame: Any, now: float) -> bool:
        if self.side == "cluster":
            return self.link.send_down(frame, now)
        return self.link.send_up(frame, now)

    def _recv_frames(self, now: float) -> list[Any]:
        if self.side == "cluster":
            return self.link.recv_up(now)
        return self.link.recv_down(now)

    def _reliable_send(self, payload: Any, now: float) -> bool:
        env = Envelope(seq=self._next_seq, payload=payload)
        self._next_seq += 1
        entry = _Outstanding(env, now, self._backoff(0))
        if len(self._outstanding) >= self.window:
            # Window full: the oldest unacked envelope is superseded by this
            # one (resend-current-state traffic — newest message wins).  The
            # replacement inherits the evicted envelope's delivery debt —
            # attempts, first-sent, retry clock — otherwise a sender busy
            # enough to wrap its window would reset the partition detector
            # on every wrap and a real partition would never be declared.
            evicted = self._outstanding.pop(min(self._outstanding))
            self.superseded += 1
            entry.attempts = evicted.attempts
            entry.first_sent = evicted.first_sent
            entry.next_retry = evicted.next_retry
        self._outstanding[env.seq] = entry
        return self._send_frame(env, now)

    def _pump_retransmits(self, now: float) -> None:
        for entry in self._outstanding.values():
            if now >= entry.next_retry:
                entry.attempts += 1
                entry.next_retry = now + self._backoff(entry.attempts)
                self._send_frame(entry.envelope, now)
                self.retransmits += 1
        if self.partitioned_since is None and any(
            e.attempts >= self.partition_attempts for e in self._outstanding.values()
        ):
            self.partitioned_since = now
            self.faults.append(PartitionStart(time=now, link=self.name))
            if self.telemetry.enabled:
                self.telemetry.incident("partition-detected", now, link=self.name)

    def _on_ack(self, ack: Ack, now: float) -> None:
        for seq in ack.seqs:
            if self._outstanding.pop(seq, None) is not None:
                self.acked += 1
        # An ack proves the link is alive: clear the partition evidence on
        # everything still outstanding.  Without this, baseline channel loss
        # accumulates attempts (inherited across window wraps) into spurious
        # partition declarations even while acks flow freely.
        for entry in self._outstanding.values():
            entry.attempts = 0
        if self.partitioned_since is not None:
            outage = now - self.partitioned_since
            self.faults.append(
                PartitionEnd(time=now, link=self.name, outage_seconds=outage)
            )
            if self.telemetry.enabled:
                self.telemetry.incident(
                    "partition-healed", now, link=self.name, outage_seconds=outage
                )
            self.partitioned_since = None

    def _deliver(self, env: Envelope) -> Any | None:
        """Dedupe by seq; returns the payload for fresh envelopes, else None."""
        if env.seq <= self._cum_floor or env.seq in self._seen:
            self.duplicates += 1
            return None
        self._seen.add(env.seq)
        while (self._cum_floor + 1) in self._seen:
            self._cum_floor += 1
            self._seen.discard(self._cum_floor)
        return env.payload

    def _reliable_recv(self, now: float) -> list[Any]:
        self._pump_retransmits(now)
        payloads: list[Any] = []
        to_ack: list[int] = []
        for frame in self._recv_frames(now):
            if isinstance(frame, Ack):
                self._on_ack(frame, now)
            elif isinstance(frame, Envelope):
                # Every envelope gets acked — including duplicates, whose
                # original ack may be the thing that was lost.
                to_ack.append(frame.seq)
                payload = self._deliver(frame)
                if payload is not None:
                    payloads.append(payload)
            else:
                # Bare payload from an unwrapped peer: pass through so
                # mixed configurations fail soft rather than drop mail.
                payloads.append(frame)
        if to_ack:
            self._send_frame(Ack(seqs=tuple(to_ack)), now)
        return payloads

    # ---------------------------------------------------------- TcpLink verbs

    # Cluster-side verbs.
    def send_down(self, payload: Any, now: float) -> bool:
        if self.side != "cluster":
            raise RuntimeError("send_down is a cluster-side verb")
        return self._reliable_send(payload, now)

    def recv_up(self, now: float) -> list[Any]:
        if self.side != "cluster":
            raise RuntimeError("recv_up is a cluster-side verb")
        return self._reliable_recv(now)

    # Job-side verbs.
    def send_up(self, payload: Any, now: float) -> bool:
        if self.side != "job":
            raise RuntimeError("send_up is a job-side verb")
        return self._reliable_send(payload, now)

    def recv_down(self, now: float) -> list[Any]:
        if self.side != "job":
            raise RuntimeError("recv_down is a job-side verb")
        return self._reliable_recv(now)
