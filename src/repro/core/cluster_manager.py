"""The cluster-tier power manager (paper §4, §4.4).

A single process on the head node: it reads the time-varying cluster power
target, listens to each job's endpoint over its TCP link, chooses per-job
power caps with a pluggable budgeter, and sends each job its new cap.  Job
power-performance models come from three places, in priority order:

1. the job tier's online fit, when feedback is enabled and a fit arrived
   (this is what lets the "adjusted" policy of Fig. 10 recover from
   misclassification);
2. the precharacterized model of the job's classified type — possibly wrong,
   when the classifier misclassifies, which is the experiment;
3. a default-model policy for unknown types (§4.4.2).

The manager is also the component that must survive a faulty cluster: every
inbound message refreshes a per-job heartbeat, a job whose messages go stale
is budgeted conservatively from its believed model, a job silent past the
dead-job timeout is evicted and its link garbage-collected (so a dropped
goodbye cannot leak a ghost :class:`JobRecord`), inbound model coefficients
are strictly validated (one NaN must not poison the budgeter's bisection),
and meter/target faults degrade gracefully (skip the sample / hold the last
good target with bounded decay).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from typing import Callable

from repro.budget.base import BudgetAllocation, JobBudgetRequest, PowerBudgeter
from repro.core.audit import CapComplianceAuditor
from repro.core.messages import BudgetMessage, GoodbyeMessage, HelloMessage, StatusMessage
from repro.core.targets import HoldLastGoodTarget, PowerTargetSource
from repro.core.transport import TcpLink
from repro.durable.journal import Journal
from repro.durable.recovery import RecoveredJob, recovered_jobs_from_state
from repro.facility.breaker import PowerBreaker
from repro.facility.shed import ShedController
from repro.modeling.classifier import JobClassifier
from repro.modeling.quadratic import QuadraticPowerModel
from repro.plan.envelope import PLAN_FALLBACK
from repro.plan.planner import RecedingHorizonPlanner
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["JobRecord", "BudgetRound", "ClusterPowerManager"]


@dataclass
class JobRecord:
    """Everything the cluster tier tracks about one connected job."""

    job_id: str
    claimed_type: str
    nodes: int
    link: TcpLink
    believed_model: QuadraticPowerModel
    believed_p_max: float
    online_model: QuadraticPowerModel | None = None
    online_r2: float | None = None
    last_status: StatusMessage | None = None
    caps_sent: int = 0
    # Heartbeat state: wall-clock (manager-side) time any message last arrived
    # over this job's link, and the last cap the manager sent it.  A silent
    # job's believed draw is bounded by ``last_cap`` — the manager cannot
    # assume anything lower until it hears from the job again.
    last_heard: float = 0.0
    last_cap: float | None = None

    @property
    def active_model(self) -> QuadraticPowerModel:
        """Online fit when available, else the believed precharacterized model."""
        return self.online_model if self.online_model is not None else self.believed_model


@dataclass
class TrackingSample:
    """One power-tracking observation: what we wanted vs. what we measured."""

    time: float
    target: float
    measured: float


@dataclass(frozen=True)
class BudgetRound:
    """Accounting for one budgeting round (observability + invariant tests).

    ``idle_power + reserved + allocated`` is the manager's planned cluster
    draw; it never exceeds ``max(target + correction, floor)`` where
    ``floor`` is the platform's enforceable minimum for the same occupancy.
    """

    time: float
    target: float
    correction: float
    idle_power: float  # watts reserved for idle nodes
    reserved: float  # watts reserved for dormant/stale/recovering jobs
    allocated: float  # watts the budgeter allocated to active jobs
    floor: float  # idle_power + reserved + active p_min floor
    stale_jobs: int
    dormant_jobs: int
    active_jobs: int
    # Jobs restored from a checkpoint after a head-node restart that have not
    # re-HELLOed yet: budgeted conservatively (their last cap stays reserved).
    recovering_jobs: int = 0
    # Jobs the cap-compliance auditor has quarantined (DESIGN.md §4f):
    # budgeted at their metered envelope, counted inside ``reserved``.
    quarantined_jobs: int = 0


@dataclass
class ClusterPowerManager:
    """Head-node manager: budget computation and message plumbing.

    Parameters
    ----------
    budgeter:
        Power-cap allocation policy.
    target_source:
        Time-varying cluster power target (W).  Wrapped in a
        :class:`~repro.core.targets.HoldLastGoodTarget` on construction so a
        raising or NaN-emitting source degrades to hold-last-with-decay
        instead of crashing the control loop.
    classifier:
        Supplies the believed model for each job's claimed type.
    total_nodes:
        Cluster size; used to estimate idle-node power draw.
    idle_power_estimate:
        Watts the manager assumes an idle node draws (facility knowledge).
    meter:
        Callable returning the current facility-measured cluster power; used
        only for tracking-accuracy accounting, never for budgeting (the
        budget is feed-forward from the target, as in AQA).
    use_feedback:
        Accept online models from job-tier status messages (the paper's
        feedback-enabled configurations).
    min_feedback_r2:
        Reject online fits whose reported R² falls below this.  The default
        is deliberately low: a genuinely flat power-performance curve has
        low R² by construction (no signal to explain), yet sharing it is
        exactly what recovers the over-estimation cases (Figs. 8, 10); the
        job-tier endpoint already withholds degenerate fits.
    stale_status_timeout:
        Seconds of silence after which a job's online model is distrusted and
        the job is budgeted conservatively (floor cap sent, its last cap's
        worth of power reserved — a silent job may still be drawing it).
    dead_job_timeout:
        Seconds of silence after which the job is presumed gone: its record
        is evicted and its link unregistered.  This is what closes the
        dropped-goodbye leak — a ghost record cannot outlive the timeout.
    """

    budgeter: PowerBudgeter
    target_source: PowerTargetSource
    classifier: JobClassifier
    total_nodes: int
    idle_power_estimate: float = 60.0
    meter: Callable[[], float] | None = None
    use_feedback: bool = True
    min_feedback_r2: float = 0.05
    p_node_min: float = 140.0
    p_node_max: float = 280.0
    # Integral trim on the budget: the manager compares the facility meter
    # against the target and slowly corrects systematic bias (jobs in
    # low-power setup/teardown phases, caps the workload cannot fill, RAPL
    # quantisation).  Gain 0 disables it (pure feed-forward, as in AQA).
    correction_gain: float = 0.15
    correction_limit_fraction: float = 0.25
    stale_status_timeout: float = 15.0
    dead_job_timeout: float = 60.0

    # Cap leases (fail-safe enforcement, DESIGN.md §4e).  When ``lease_ttl``
    # is set, every dispatched cap is only valid that many seconds past
    # receipt; leaseless endpoints decay toward ``safe_floor`` (p_node_min
    # when unset).  ``None`` keeps pre-lease hold-last-value semantics and
    # bit-identical golden traces.
    lease_ttl: float | None = None
    safe_floor: float | None = None

    # Optional overshoot breaker (DESIGN.md §4e): while open, every cap this
    # round is clamped to the emergency floor — a uniform throttle that only
    # ever *reduces* the planned draw, so BudgetRound invariants still hold.
    breaker: PowerBreaker | None = None

    # Optional cap-compliance auditor (trust boundary, DESIGN.md §4f): audits
    # each job's out-of-band metered draw against its dispatched cap and its
    # shipped model, and quarantines non-compliant endpoints.  None keeps the
    # pre-audit control flow and bit-identical golden traces.
    auditor: CapComplianceAuditor | None = None

    # Optional write-ahead journal (head-node crash recovery, DESIGN.md §4d).
    # None keeps every hot path journalling-free — zero overhead when off.
    journal: Journal | None = None

    # Optional receding-horizon planner (predictive planning, DESIGN.md §9):
    # forecasts the target over the next H rounds, pre-solves the budgeter,
    # and hands this round's allocation back as a warm start.  The planned
    # total must still fit the budget derived from the *actual* target read
    # this round, and leases/breaker/quarantine are applied after the plan is
    # consumed — a wrong forecast can never out-spend the reactive path.
    # None keeps the reactive control flow and bit-identical golden traces.
    planner: RecedingHorizonPlanner | None = None

    # Optional graceful-degradation controller (DESIGN.md §10): grades a
    # sagging power feed into severity states, shrinks the budgeting target
    # to the ladder's ramped ceiling, clamps shed-class caps to the floor,
    # and queues preempt/kill actions for the framework to execute between
    # rounds.  Every intervention only *reduces* caps, so BudgetRound
    # invariants still hold.  None keeps the pre-shed control flow and
    # bit-identical golden traces.
    shed: ShedController | None = None

    # Observability (DESIGN.md §8): metrics + control-round span tree.  The
    # shared NULL instance keeps every emission a single attribute check.
    telemetry: Telemetry = field(default=NULL_TELEMETRY)

    jobs: dict[str, JobRecord] = field(default_factory=dict)
    tracking: list[TrackingSample] = field(default_factory=list)
    events: list[str] = field(default_factory=list)
    last_round: BudgetRound | None = field(default=None)
    last_allocation: BudgetAllocation | None = field(default=None)
    evictions: int = 0
    rejected_statuses: int = 0
    rejected_models: int = 0
    meter_faults: int = 0
    # Dispatches whose cap differed from the job's previous one — the cap
    # churn the predictive planner's hysteresis is meant to reduce; counted
    # in reactive runs too so drills can compare like for like.
    cap_rewrites: int = 0
    # Recovery-mode state: jobs restored from the durable store awaiting
    # their re-HELLO, the reconnect deadline, jobs declared orphaned at that
    # deadline (drained by AnorSystem for requeue/cleanup), and how many
    # reconnects merged warm state back in (observability).
    orphaned: list[str] = field(default_factory=list)
    recovery_merges: int = 0
    # Re-HELLOs whose degraded-history model was validated and adopted
    # (partition recovery path — distinct from checkpoint recovery_merges).
    hello_merges: int = 0
    _recovered: dict[str, RecoveredJob] = field(default_factory=dict)
    _recovery_deadline: float | None = None
    _links: list[TcpLink] = field(default_factory=list)
    _correction: float = 0.0
    _last_journalled_target: float | None = None

    def __post_init__(self) -> None:
        if self.stale_status_timeout <= 0:
            raise ValueError(
                f"stale_status_timeout must be positive, got {self.stale_status_timeout}"
            )
        if self.dead_job_timeout < self.stale_status_timeout:
            raise ValueError(
                "dead_job_timeout must be ≥ stale_status_timeout, got "
                f"{self.dead_job_timeout} < {self.stale_status_timeout}"
            )
        if not isinstance(self.target_source, HoldLastGoodTarget):
            self.target_source = HoldLastGoodTarget(
                self.target_source,
                floor=self.total_nodes * self.p_node_min,
            )
        self._round_span = 0
        self._shed_span = 0
        if self.telemetry.enabled:
            self._init_metrics()

    def _init_metrics(self) -> None:
        """Create the manager's metric handles once (enabled runs only)."""
        reg = self.telemetry.registry
        # Label-addressed children (anor_job_cap_watts{job=...}) are cached
        # per job: the registry resolves (name, labels) with validation and
        # a sorted label key on every call, which the cap-dispatch hot path
        # would otherwise pay per job per round.
        self._mx_job_cap: dict[str, object] = {}
        self._mx_rounds = reg.counter(
            "anor_budget_rounds_total", "budgeting rounds executed")
        self._mx_caps_sent = reg.counter(
            "anor_caps_sent_total", "per-job cap messages dispatched")
        self._mx_models_accepted = reg.counter(
            "anor_models_accepted_total", "online model fits accepted")
        self._mx_models_rejected = reg.counter(
            "anor_models_rejected_total", "online model fits rejected")
        self._mx_statuses_rejected = reg.counter(
            "anor_statuses_rejected_total", "corrupt status messages rejected")
        self._mx_evictions = reg.counter(
            "anor_jobs_evicted_total", "jobs evicted after dead-job timeout")
        self._mx_meter_faults = reg.counter(
            "anor_meter_faults_total", "facility meter samples discarded")
        self._mx_journal_records = reg.counter(
            "anor_journal_records_total", "write-ahead journal records appended")
        self._mx_target = reg.gauge(
            "anor_cluster_target_watts", "current cluster power target")
        self._mx_measured = reg.gauge(
            "anor_cluster_power_watts", "facility-metered cluster power")
        self._mx_correction = reg.gauge(
            "anor_power_correction_watts", "integral trim on the budget")
        self._mx_planned = reg.gauge(
            "anor_planned_draw_watts", "idle + reserved + allocated plan")
        self._mx_jobs = {
            state: reg.gauge(
                "anor_jobs", "connected jobs by budgeting state", state=state)
            for state in ("active", "dormant", "stale", "recovering",
                          "quarantined")
        }
        self._mx_tracking = reg.histogram(
            "anor_tracking_error_ratio",
            "|measured - target| / target per manager period",
        )
        self._mx_breaker = reg.gauge(
            "anor_breaker_state",
            "overshoot breaker state (0 closed, 1 half-open, 2 open)",
        )
        self._mx_cap_rewrites = reg.counter(
            "anor_cap_rewrites_total",
            "cap dispatches that changed a job's previous cap",
        )
        if self.planner is not None:
            self._mx_plan_state = reg.gauge(
                "anor_plan_state",
                "planner envelope state (0 shadow, 1 active, 2 fallback)",
            )
            self._mx_forecast_error = reg.gauge(
                "anor_forecast_error_watts",
                "windowed mean absolute forecast error",
            )
            self._mx_plan_fallbacks = reg.counter(
                "anor_plan_fallbacks_total",
                "envelope trips from active planning back to reactive",
            )
        if self.shed is not None:
            self._mx_shed_severity = reg.gauge(
                "anor_shed_severity",
                "degradation-ladder severity (0 normal .. 3 blackstart)",
            )
            self._mx_shed_ceiling = reg.gauge(
                "anor_shed_ceiling_watts",
                "effective budget ceiling after the recovery ramp",
            )
            self._mx_shed_actions = {
                action: reg.counter(
                    "anor_shed_actions_total",
                    "shed actions dispatched by the degradation ladder",
                    action=action,
                )
                for action in ("cap-to-floor", "preempt", "kill")
            }
            self._mx_shed_restores = reg.counter(
                "anor_shed_restores_total",
                "shed episodes cleared (severity back to normal)",
            )

    # ------------------------------------------------------------- plumbing

    def _journal(self, rtype: str, now: float, **data) -> None:
        if self.journal is not None:
            self.journal.append(rtype, now, data)
            if self.telemetry.enabled:
                self._mx_journal_records.inc()

    def register_link(self, link: TcpLink) -> None:
        """Accept a new job endpoint connection."""
        self._links.append(link)

    def _drain_messages(self, now: float) -> None:
        for link in list(self._links):
            for msg in link.recv_up(now):
                if isinstance(msg, HelloMessage):
                    self._on_hello(msg, link, now)
                elif isinstance(msg, StatusMessage):
                    self._on_status(msg, now)
                elif isinstance(msg, GoodbyeMessage):
                    self._on_goodbye(msg, link, now)

    def _on_hello(self, msg: HelloMessage, link: TcpLink, now: float) -> None:
        believed = self.classifier.model_for(msg.claimed_type, job_name=msg.job_id)
        stale = self.jobs.get(msg.job_id)
        if stale is not None and stale.link is not link:
            # The job reconnected over a fresh link (endpoint restart or
            # requeue after a node crash); drop the dead one immediately
            # rather than waiting for the dead-job timeout.
            if stale.link in self._links:
                self._links.remove(stale.link)
            stale.link.close("replaced")
            self.events.append(
                f"t={now:.1f} {msg.job_id}: reconnected, replaced stale link"
            )
        # The believed power ceiling is where the believed model flattens out;
        # the platform cannot cap below p_node_min regardless.
        record = JobRecord(
            job_id=msg.job_id,
            claimed_type=msg.claimed_type,
            nodes=msg.nodes,
            link=link,
            believed_model=believed,
            believed_p_max=min(believed.p_max, self.p_node_max),
            last_heard=now,
        )
        recovered = self._recovered.pop(msg.job_id, None)
        if recovered is not None:
            # Head-node restart reconciliation: the job was known before the
            # crash — merge its checkpointed model and budget accounting so
            # the cluster tier resumes warm instead of relearning the curve.
            record.online_model = recovered.online_model
            record.online_r2 = recovered.online_r2
            record.last_cap = recovered.last_cap
            record.caps_sent = recovered.caps_sent
            self.recovery_merges += 1
            self.events.append(
                f"t={now:.1f} {msg.job_id}: reconciled after head-node restart "
                f"(model {'restored' if recovered.online_model is not None else 'none'})"
            )
            if not self._recovered and self._recovery_deadline is not None:
                self.events.append(f"t={now:.1f} recovery complete: all jobs reconciled")
                self._recovery_deadline = None
        elif stale is not None:
            # Warm reconnect: an endpoint restart must not cost the cluster
            # tier its validated online model or its budget accounting — the
            # job itself never stopped running.
            record.online_model = stale.online_model
            record.online_r2 = stale.online_r2
            record.last_cap = stale.last_cap
            record.caps_sent = stale.caps_sent
        if self.use_feedback and msg.has_model:
            # Degraded-history handoff: the endpoint kept fitting while the
            # head was unreachable, so its HELLO-borne fit is *fresher* than
            # anything restored above — validate it exactly like a status
            # model and let it win.
            model = self._validated_model(msg, record)
            if model is not None:
                record.online_model = model
                record.online_r2 = msg.model_r2
                self.hello_merges += 1
                self.events.append(
                    f"t={now:.1f} {msg.job_id}: warm-merged degraded-mode model "
                    f"({msg.degraded_seconds:.1f}s of autonomy)"
                )
                if self.telemetry.enabled:
                    self.telemetry.incident(
                        "degraded-rejoin",
                        now,
                        job_id=msg.job_id,
                        degraded_seconds=msg.degraded_seconds,
                    )
            else:
                self.rejected_models += 1
                if self.telemetry.enabled:
                    self._mx_models_rejected.inc()
        self.jobs[msg.job_id] = record
        if self.telemetry.enabled:
            self.telemetry.bus.event(
                "job-hello",
                now,
                job_id=msg.job_id,
                claimed_type=msg.claimed_type,
                nodes=msg.nodes,
                reconnect=stale is not None,
                recovered=recovered is not None,
            )
        self._journal(
            "job-admit",
            now,
            kind="hello",
            job_id=msg.job_id,
            claimed_type=msg.claimed_type,
            nodes=msg.nodes,
            believed_p_max=record.believed_p_max,
        )

    def _on_status(self, msg: StatusMessage, now: float) -> None:
        record = self.jobs.get(msg.job_id)
        if record is None:
            return  # status raced past the goodbye; ignore
        # Any arrival proves the endpoint process is alive, even if the
        # payload is garbage — heartbeat first, validation second.
        record.last_heard = now
        if not (
            math.isfinite(msg.measured_power)
            and msg.measured_power >= 0.0
            and math.isfinite(msg.applied_cap)
            and msg.applied_cap > 0.0
        ):
            self.rejected_statuses += 1
            if self.telemetry.enabled:
                self._mx_statuses_rejected.inc()
                self.telemetry.incident("status-rejected", now, job_id=msg.job_id)
            self.events.append(
                f"t={now:.1f} {msg.job_id}: rejected corrupt status "
                f"(power={msg.measured_power}, cap={msg.applied_cap})"
            )
            return
        record.last_status = msg
        if self.use_feedback and msg.has_model:
            # NaN r2 must NOT satisfy the quality gate by comparing False —
            # let it through to validation, which rejects non-finite r2.
            if msg.model_r2 is None or not (msg.model_r2 < self.min_feedback_r2):
                model = self._validated_model(msg, record)
                if model is None:
                    self.rejected_models += 1
                    if self.telemetry.enabled:
                        self._mx_models_rejected.inc()
                        self.telemetry.bus.event(
                            "model-reject",
                            now,
                            parent=self._round_span or None,
                            job_id=msg.job_id,
                        )
                    self.events.append(
                        f"t={now:.1f} {msg.job_id}: rejected model coefficients "
                        f"(a={msg.model_a}, b={msg.model_b}, c={msg.model_c})"
                    )
                else:
                    record.online_model = model
                    record.online_r2 = msg.model_r2
                    if self.telemetry.enabled:
                        self._mx_models_accepted.inc()
                        self.telemetry.bus.event(
                            "model-accept",
                            now,
                            parent=self._round_span or None,
                            job_id=msg.job_id,
                            r2=msg.model_r2,
                        )
                    self._journal(
                        "model-accept",
                        now,
                        job_id=msg.job_id,
                        a=model.a,
                        b=model.b,
                        c=model.c,
                        r2=msg.model_r2,
                    )

    def _validated_model(
        self, msg: StatusMessage, record: JobRecord
    ) -> QuadraticPowerModel | None:
        """Build the job's online model iff the coefficients are physical.

        One corrupt message (NaN/inf coefficients, or a curve that claims
        *more* power makes the job slower) would otherwise flow straight
        into the budgeter's bisection and poison every job's cap.
        """
        coeffs = (msg.model_a, msg.model_b, msg.model_c)
        if not all(c is not None and math.isfinite(c) for c in coeffs):
            return None
        if msg.model_r2 is not None and not math.isfinite(msg.model_r2):
            return None
        model = QuadraticPowerModel(
            a=float(msg.model_a),
            b=float(msg.model_b),
            c=float(msg.model_c),
            p_min=self.p_node_min,
            p_max=record.believed_p_max,
        )
        if not model.is_monotone_decreasing() or model.t_min <= 0:
            return None
        return model

    def _on_goodbye(self, msg: GoodbyeMessage, link: TcpLink, now: float) -> None:
        if self.jobs.pop(msg.job_id, None) is not None:
            if self.telemetry.enabled:
                self._mx_job_cap.pop(msg.job_id, None)
                self.telemetry.bus.event("job-goodbye", now, job_id=msg.job_id)
            self._journal("job-evict", now, job_id=msg.job_id, kind="goodbye")
        if link in self._links:
            self._links.remove(link)
        link.close("goodbye")

    def _evict_dead(self, now: float) -> None:
        """Garbage-collect jobs silent past the dead-job timeout.

        Covers every way a job can vanish without a goodbye reaching us: the
        goodbye dropped on a lossy link, the endpoint process crashed, or
        the node crashed and took the whole job with it.
        """
        dead = [
            job_id
            for job_id, record in self.jobs.items()
            if now - record.last_heard > self.dead_job_timeout
        ]
        for job_id in dead:
            record = self.jobs.pop(job_id)
            if record.link in self._links:
                self._links.remove(record.link)
            record.link.close("evicted")
            self.evictions += 1
            if self.telemetry.enabled:
                self._mx_job_cap.pop(job_id, None)
                self._mx_evictions.inc()
                self.telemetry.incident(
                    "job-evicted",
                    now,
                    job_id=job_id,
                    silent_for=now - record.last_heard,
                )
            self.events.append(
                f"t={now:.1f} {job_id}: evicted after "
                f"{now - record.last_heard:.1f}s of silence"
            )
            self._journal("job-evict", now, job_id=job_id, kind="timeout")

    # ------------------------------------------------------------- recovery

    def begin_recovery(
        self, now: float, recovered: dict[str, RecoveredJob], timeout: float
    ) -> None:
        """Enter bounded recovery mode after a head-node restart.

        Every restored job stays a conservative liability — its last sent cap
        (× nodes) reserved, no budget granted — until it re-HELLOs over a
        fresh link or the reconnect window closes, whichever comes first.
        Jobs still silent at the deadline are declared orphans: they died
        during the outage (or their endpoint did; the node-local watchdog
        brings those back later as ordinary new connections).
        """
        if timeout <= 0:
            raise ValueError(f"recovery timeout must be positive, got {timeout}")
        self._recovered = dict(recovered)
        self._recovery_deadline = now + timeout
        self.events.append(
            f"t={now:.1f} recovery mode: {len(recovered)} job(s) to reconcile, "
            f"deadline t={self._recovery_deadline:.1f}"
        )

    def restore_from_state(
        self,
        manager_state: dict,
        target_hold: dict,
        *,
        now: float,
        recovery_timeout: float,
    ) -> None:
        """Rebuild learned/accounting state from a checkpoint+journal baseline.

        Called on a freshly constructed manager during a supervised head-node
        restart: the integral correction, incident counters, hold-last-good
        target state, and per-job records come back; the jobs themselves
        enter recovery mode until they re-HELLO.
        """
        self._correction = float(manager_state.get("correction", 0.0))
        counters = manager_state.get("counters", {})
        self.evictions = int(counters.get("evictions", 0))
        self.rejected_statuses = int(counters.get("rejected_statuses", 0))
        self.rejected_models = int(counters.get("rejected_models", 0))
        self.meter_faults = int(counters.get("meter_faults", 0))
        self.target_source.restore_state(target_hold)
        recovered = recovered_jobs_from_state(
            manager_state.get("jobs", {}), p_node_min=self.p_node_min
        )
        self.begin_recovery(now, recovered, recovery_timeout)

    @property
    def in_recovery(self) -> bool:
        return self._recovery_deadline is not None

    def recovered_items(self) -> list[tuple[str, RecoveredJob]]:
        """Restored-but-unreconciled jobs, in deterministic order."""
        return sorted(self._recovered.items())

    def recovered_job(self, job_id: str) -> RecoveredJob | None:
        return self._recovered.get(job_id)

    def _reconcile_recovery(self, now: float) -> None:
        if self._recovery_deadline is None or now < self._recovery_deadline:
            return
        for job_id in sorted(self._recovered):
            self._recovered.pop(job_id)
            self.orphaned.append(job_id)
            if self.telemetry.enabled:
                self.telemetry.incident("recovery-orphan", now, job_id=job_id)
            self.events.append(
                f"t={now:.1f} {job_id}: recovery orphan "
                f"(no reconnect before t={self._recovery_deadline:.1f})"
            )
            self._journal("job-evict", now, job_id=job_id, kind="orphan")
        self._recovery_deadline = None
        self.events.append(f"t={now:.1f} recovery window closed")

    # -------------------------------------------------------------- control

    def next_plan_instant(self) -> float | None:
        """Earliest upcoming plan instant for the event calendar (None when
        planning is off, inactive, or has no known breakpoints)."""
        if self.planner is None:
            return None
        return self.planner.next_instant()

    def plan_instant_due(self, now: float) -> bool:
        """True when an active plan wants a control round fired at ``now``.

        Also consumes instants that have passed, so a round triggered by the
        ordinary manager gate at the same tick does not double-fire.
        """
        if self.planner is None:
            return False
        return self.planner.take_due_instants(now)

    def _observe_shed(self, target: float, now: float) -> float:
        """Grade the feed through the degradation ladder; returns the
        effective budgeting target (the ladder's ramped ceiling)."""
        shed = self.shed
        prev = shed.severity
        effective = shed.observe(target, now)
        tel = self.telemetry.enabled
        if shed.severity != prev:
            self.events.append(
                f"t={now:.1f} shed {prev} -> {shed.severity} "
                f"(target={target:.0f}W ceiling={effective:.0f}W)"
            )
            if tel:
                self.telemetry.incident(
                    "shed-" + shed.severity, now,
                    target=target, ceiling=effective,
                )
                if prev == "normal" and self._shed_span == 0:
                    # One span per incident episode: opened on the first
                    # escalation, closed when severity returns to normal.
                    self._shed_span = self.telemetry.bus.begin_span(
                        "shed-episode", now, severity=shed.severity
                    )
                elif shed.severity == "normal":
                    self._mx_shed_restores.inc()
                    if self._shed_span:
                        self.telemetry.bus.end_span(
                            self._shed_span, now,
                            preempts=shed.preempts, kills=shed.kills,
                        )
                        self._shed_span = 0
        if tel:
            self._mx_shed_severity.set(shed.ladder.gauge_value)
            self._mx_shed_ceiling.set(effective)
        return effective

    def _apply_shed(self, caps: dict[str, float], now: float) -> None:
        """Clamp shed-class caps and queue preempt/kill actions in class
        order.  Only ever reduces caps; protected jobs can at most be
        floored (the plan table has no harsher entry for them)."""
        shed = self.shed
        plan = shed.ladder.plan
        tel = self.telemetry.enabled
        for job_id in sorted(caps):
            record = self.jobs.get(job_id)
            if record is None:
                continue
            action = plan[shed.class_of(record.claimed_type)]
            if action == "none":
                continue
            if caps[job_id] > self.p_node_min:
                caps[job_id] = self.p_node_min
                if tel and action == "cap-to-floor":
                    self._mx_shed_actions["cap-to-floor"].inc()
            if action in ("preempt", "kill") and shed.request_shed(job_id, action):
                self.events.append(
                    f"t={now:.1f} {job_id}: shed {action} "
                    f"(severity={shed.severity})"
                )
                if tel:
                    self._mx_shed_actions[action].inc()
                    self.telemetry.incident(
                        "shed-" + action, now,
                        parent=self._shed_span or None,
                        job_id=job_id, severity=shed.severity,
                    )

    def step(self, now: float) -> dict[str, float]:
        """One manager period: drain messages, budget, send caps.

        Returns the per-job node caps chosen this round (empty when no jobs
        are connected).
        """
        tel = self.telemetry.enabled
        if tel:
            # Span tree per DESIGN.md §8: control-round wraps everything this
            # period; message-handler events parent themselves to it.
            self._round_span = self.telemetry.bus.begin_span("control-round", now)
            self._mx_rounds.inc()
        self._drain_messages(now)
        self._evict_dead(now)
        self._reconcile_recovery(now)
        target = self.target_source.target(now)
        if self.shed is not None:
            # The ladder sees the raw feed; everything downstream budgets
            # to its ramped ceiling (identical to the feed while normal).
            target = self._observe_shed(target, now)
        if tel:
            self.telemetry.bus.event(
                "target-read", now, parent=self._round_span, target=target
            )
            self._mx_target.set(target)
        if self.journal is not None and target != self._last_journalled_target:
            self._journal(
                "target-change",
                now,
                target=target,
                hold=self.target_source.state_dict(),
            )
            self._last_journalled_target = target
        if self.planner is not None:
            # Score the previous round's forecast against the target just
            # read and advance the shadow/active/fallback state machine —
            # before budgeting, so a trip this round already budgets
            # reactively.
            prev_plan_state = self.planner.state
            plan_state = self.planner.observe(now, target)
            if plan_state != prev_plan_state:
                self.events.append(
                    f"t={now:.1f} plan {prev_plan_state} -> {plan_state} "
                    f"(mae={self.planner.forecaster.mae:.1f}W)"
                )
                if tel:
                    self.telemetry.incident(
                        "plan-" + plan_state,
                        now,
                        mae=self.planner.forecaster.mae,
                        bound=self.planner.envelope.error_bound_watts,
                    )
                    if plan_state == PLAN_FALLBACK:
                        self._mx_plan_fallbacks.inc()
            if tel:
                self._mx_plan_state.set(self.planner.envelope.gauge)
                self._mx_forecast_error.set(self.planner.forecaster.mae)
        if self.meter is not None:
            try:
                measured = float(self.meter())
            except Exception:
                measured = math.nan
            if math.isfinite(measured):
                self.tracking.append(
                    TrackingSample(time=now, target=target, measured=measured)
                )
                if tel:
                    self._mx_measured.set(measured)
                    if target > 0:
                        self._mx_tracking.observe(abs(measured - target) / target)
                if self.breaker is not None:
                    prev_state = self.breaker.state
                    state = self.breaker.observe(measured, target, now=now)
                    if state != prev_state:
                        self.events.append(
                            f"t={now:.1f} breaker {prev_state} -> {state} "
                            f"(measured={measured:.0f}W target={target:.0f}W)"
                        )
                        if tel:
                            self.telemetry.incident(
                                "breaker-" + state,
                                now,
                                measured=measured,
                                target=target,
                            )
                    if tel:
                        self._mx_breaker.set(self.breaker.gauge_value)
                if self.correction_gain > 0:
                    limit = self.correction_limit_fraction * target
                    self._correction = float(
                        np.clip(
                            self._correction + self.correction_gain * (target - measured),
                            -limit,
                            limit,
                        )
                    )
            else:
                # Meter outage: no sample, and the integral term holds its
                # last value rather than winding up against garbage.
                self.meter_faults += 1
                if tel:
                    self._mx_meter_faults.inc()
                    self.telemetry.incident("meter-fault", now)
        if not self.jobs and not self._recovered:
            self.last_round = None
            self.last_allocation = None
            if self.planner is not None:
                self.planner.clear()
            if tel:
                # The early return must still close the round span — leaked
                # open spans would fail trace validation.
                self.telemetry.bus.end_span(self._round_span, now, jobs=0)
                self._round_span = 0
            return {}
        # Restored-but-unreconciled jobs are presumed alive: their nodes are
        # busy and their last sent cap stays reserved — the conservative
        # stance that keeps planned draw under the target while the cluster
        # re-discovers itself.
        recovering = [self._recovered[j] for j in sorted(self._recovered)]
        busy_nodes = sum(r.nodes for r in self.jobs.values()) + sum(
            r.nodes for r in recovering
        )
        idle_nodes = max(0, self.total_nodes - busy_nodes)
        idle_power = idle_nodes * self.idle_power_estimate
        available = max(target - idle_power + self._correction, 1.0)
        budget_span = 0
        if tel:
            budget_span = self.telemetry.bus.begin_span(
                "budget-round",
                now,
                parent=self._round_span,
                policy=self.budgeter.name,
                target=target,
                available=available,
            )
        # Triage (§7.2 plus fault hardening):
        # * stale — silent beyond the staleness timeout: its online fit and
        #   last status can no longer be trusted, so reserve what it may
        #   still be drawing (its last cap) and send the floor cap;
        # * dormant — heard recently but drawing idle-level power
        #   (setup/teardown): budget it at what it actually consumes;
        # * active — budget normally.
        quarantined: list[JobRecord] = []
        if self.auditor is not None:
            # Trust audit (DESIGN.md §4f) runs before triage so that this
            # round's quarantine verdicts shape this round's budget.  It
            # lives entirely inside the manager gate, keeping the event
            # calendar's stride planning oblivious to it.
            self.events.extend(self.auditor.audit_round(now, self.jobs))
        stale: list[JobRecord] = []
        dormant: list[JobRecord] = []
        active: list[JobRecord] = []
        for record in sorted(self.jobs.values(), key=lambda r: r.job_id):
            if self.auditor is not None and self.auditor.is_quarantined(
                record.job_id
            ):
                quarantined.append(record)
                continue
            status = record.last_status
            threshold = record.nodes * self.idle_power_estimate * 1.5
            if now - record.last_heard > self.stale_status_timeout:
                stale.append(record)
            elif status is None or status.measured_power < threshold:
                dormant.append(record)
            else:
                active.append(record)
        caps: dict[str, float] = {}
        reserved = 0.0
        for rec in recovering:
            assumed_cap = (
                rec.last_cap if rec.last_cap is not None else rec.believed_p_max
            )
            reserved += rec.nodes * assumed_cap
        for record in stale:
            assumed_cap = (
                record.last_cap if record.last_cap is not None else record.believed_p_max
            )
            reserved += record.nodes * assumed_cap
            caps[record.job_id] = self.p_node_min
        for record in dormant:
            drawn = (
                record.last_status.measured_power
                if record.last_status is not None
                else record.nodes * self.idle_power_estimate
            )
            reserved += drawn
            caps[record.job_id] = self.p_node_min
        for record in quarantined:
            # Conservative envelope: reserve the job's *metered* draw plus
            # the guardband (never its self-reported model) and dispatch the
            # probe cap.  The headroom it was claiming flows back into the
            # budgeter's pool for trusted jobs below.
            envelope, probe_cap = self.auditor.envelope(record)
            reserved += envelope
            caps[record.job_id] = probe_cap
        allocated = 0.0
        allocation: BudgetAllocation | None = None
        if active:
            requests = [
                JobBudgetRequest(
                    job_id=r.job_id,
                    nodes=r.nodes,
                    # A rehabilitating job is budgeted again, but from the
                    # believed (facility-side) model — its self-reported fit
                    # stays distrusted until it re-earns trusted status.
                    model=(
                        r.believed_model
                        if self.auditor is not None
                        and self.auditor.distrusts_model(r.job_id)
                        else r.active_model
                    ),
                    p_min=self.p_node_min,
                    p_max=r.believed_p_max,
                )
                for r in active
            ]
            pool = max(available - reserved, 1.0)
            plan_span = 0
            if self.planner is not None:
                if tel:
                    plan_span = self.telemetry.bus.begin_span(
                        "plan-round",
                        now,
                        parent=self._round_span,
                        state=self.planner.state,
                    )
                allocation = self.planner.dispatch(
                    now,
                    requests,
                    pool,
                    {r.job_id: r.last_cap for r in active},
                )
            if allocation is None:
                allocation = self.budgeter.allocate(requests, pool)
            if self.planner is not None:
                # Rebuild the cap trajectory for the next H rounds from this
                # round's job set and the envelope-clamped forecast; future
                # dispatches warm-start from it, and its breakpoints become
                # plan instants for the event calendar.
                plan = self.planner.rebuild(
                    now,
                    requests,
                    observed_target=target,
                    idle_power=idle_power,
                    reserved=reserved,
                    correction=self._correction,
                )
                if tel:
                    self.telemetry.bus.end_span(
                        plan_span,
                        now,
                        state=self.planner.state,
                        warm=allocation.meta.get("plan_warm", 0.0),
                        held_caps=allocation.meta.get("plan_held_caps", 0.0),
                        horizon_points=len(plan.rounds),
                        forecast_mae=self.planner.forecaster.mae,
                    )
            caps.update(allocation.caps)
            allocated = sum(
                allocation.caps[r.job_id] * r.nodes for r in active
            )
        self.last_allocation = allocation
        self.last_round = BudgetRound(
            time=now,
            target=target,
            correction=self._correction,
            idle_power=idle_power,
            reserved=reserved,
            allocated=allocated,
            floor=idle_power
            + reserved
            + sum(r.nodes for r in active) * self.p_node_min,
            stale_jobs=len(stale),
            dormant_jobs=len(dormant),
            active_jobs=len(active),
            recovering_jobs=len(recovering),
            quarantined_jobs=len(quarantined),
        )
        if tel:
            # Policy metadata rides along: even-slowdown publishes its common
            # slowdown s, fair-share its γ — whatever the budgeter reports.
            self.telemetry.bus.end_span(
                budget_span,
                now,
                allocated=allocated,
                reserved=reserved,
                idle_power=idle_power,
                correction=self._correction,
                floor=self.last_round.floor,
                stale=len(stale),
                dormant=len(dormant),
                active=len(active),
                recovering=len(recovering),
                quarantined=len(quarantined),
                **(dict(allocation.meta) if allocation is not None else {}),
            )
            self._mx_correction.set(self._correction)
            self._mx_planned.set(idle_power + reserved + allocated)
            self._mx_jobs["active"].set(len(active))
            self._mx_jobs["dormant"].set(len(dormant))
            self._mx_jobs["stale"].set(len(stale))
            self._mx_jobs["recovering"].set(len(recovering))
            self._mx_jobs["quarantined"].set(len(quarantined))
        if self.breaker is not None and self.breaker.tripped:
            # Emergency uniform throttle: clamp every cap to the facility
            # floor while the breaker is open.  min() — never raise a cap —
            # so the planned-draw ceiling above remains an upper bound.
            emergency = (
                self.safe_floor if self.safe_floor is not None else self.p_node_min
            )
            emergency = max(self.p_node_min, float(emergency))
            caps = {job_id: min(cap, emergency) for job_id, cap in caps.items()}
        if self.shed is not None and self.shed.active:
            self._apply_shed(caps, now)
        for record in self.jobs.values():
            cap = caps[record.job_id]
            if cap != record.last_cap:
                self.cap_rewrites += 1
                if tel:
                    self._mx_cap_rewrites.inc()
            record.link.send_down(
                BudgetMessage(
                    job_id=record.job_id,
                    power_cap_node=cap,
                    timestamp=now,
                    lease_ttl=self.lease_ttl,
                    safe_floor=self.safe_floor,
                ),
                now,
            )
            record.caps_sent += 1
            record.last_cap = cap
            if tel:
                self._mx_caps_sent.inc()
                gauge = self._mx_job_cap.get(record.job_id)
                if gauge is None:
                    gauge = self.telemetry.registry.gauge(
                        "anor_job_cap_watts",
                        "most recent per-node cap sent to each job",
                        job=record.job_id,
                    )
                    self._mx_job_cap[record.job_id] = gauge
                gauge.set(cap)
        if tel:
            self.telemetry.bus.event(
                "cap-dispatch", now, parent=self._round_span, caps=dict(caps)
            )
        if self.journal is not None:
            self._journal(
                "cap-decision",
                now,
                caps=caps,
                correction=self._correction,
                target=target,
                hold=self.target_source.state_dict(),
            )
        if tel:
            self.telemetry.bus.end_span(self._round_span, now, jobs=len(caps))
            self._round_span = 0
        return caps
