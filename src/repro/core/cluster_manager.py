"""The cluster-tier power manager (paper §4, §4.4).

A single process on the head node: it reads the time-varying cluster power
target, listens to each job's endpoint over its TCP link, chooses per-job
power caps with a pluggable budgeter, and sends each job its new cap.  Job
power-performance models come from three places, in priority order:

1. the job tier's online fit, when feedback is enabled and a fit arrived
   (this is what lets the "adjusted" policy of Fig. 10 recover from
   misclassification);
2. the precharacterized model of the job's classified type — possibly wrong,
   when the classifier misclassifies, which is the experiment;
3. a default-model policy for unknown types (§4.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from typing import Callable

from repro.budget.base import JobBudgetRequest, PowerBudgeter
from repro.core.messages import BudgetMessage, GoodbyeMessage, HelloMessage, StatusMessage
from repro.core.targets import PowerTargetSource
from repro.core.transport import TcpLink
from repro.modeling.classifier import JobClassifier
from repro.modeling.quadratic import QuadraticPowerModel

__all__ = ["JobRecord", "ClusterPowerManager"]


@dataclass
class JobRecord:
    """Everything the cluster tier tracks about one connected job."""

    job_id: str
    claimed_type: str
    nodes: int
    link: TcpLink
    believed_model: QuadraticPowerModel
    believed_p_max: float
    online_model: QuadraticPowerModel | None = None
    online_r2: float | None = None
    last_status: StatusMessage | None = None
    caps_sent: int = 0

    @property
    def active_model(self) -> QuadraticPowerModel:
        """Online fit when available, else the believed precharacterized model."""
        return self.online_model if self.online_model is not None else self.believed_model


@dataclass
class TrackingSample:
    """One power-tracking observation: what we wanted vs. what we measured."""

    time: float
    target: float
    measured: float


@dataclass
class ClusterPowerManager:
    """Head-node manager: budget computation and message plumbing.

    Parameters
    ----------
    budgeter:
        Power-cap allocation policy.
    target_source:
        Time-varying cluster power target (W).
    classifier:
        Supplies the believed model for each job's claimed type.
    total_nodes:
        Cluster size; used to estimate idle-node power draw.
    idle_power_estimate:
        Watts the manager assumes an idle node draws (facility knowledge).
    meter:
        Callable returning the current facility-measured cluster power; used
        only for tracking-accuracy accounting, never for budgeting (the
        budget is feed-forward from the target, as in AQA).
    use_feedback:
        Accept online models from job-tier status messages (the paper's
        feedback-enabled configurations).
    min_feedback_r2:
        Reject online fits whose reported R² falls below this.  The default
        is deliberately low: a genuinely flat power-performance curve has
        low R² by construction (no signal to explain), yet sharing it is
        exactly what recovers the over-estimation cases (Figs. 8, 10); the
        job-tier endpoint already withholds degenerate fits.
    """

    budgeter: PowerBudgeter
    target_source: PowerTargetSource
    classifier: JobClassifier
    total_nodes: int
    idle_power_estimate: float = 60.0
    meter: Callable[[], float] | None = None
    use_feedback: bool = True
    min_feedback_r2: float = 0.05
    p_node_min: float = 140.0
    p_node_max: float = 280.0
    # Integral trim on the budget: the manager compares the facility meter
    # against the target and slowly corrects systematic bias (jobs in
    # low-power setup/teardown phases, caps the workload cannot fill, RAPL
    # quantisation).  Gain 0 disables it (pure feed-forward, as in AQA).
    correction_gain: float = 0.15
    correction_limit_fraction: float = 0.25

    jobs: dict[str, JobRecord] = field(default_factory=dict)
    tracking: list[TrackingSample] = field(default_factory=list)
    _links: list[TcpLink] = field(default_factory=list)
    _correction: float = 0.0

    # ------------------------------------------------------------- plumbing

    def register_link(self, link: TcpLink) -> None:
        """Accept a new job endpoint connection."""
        self._links.append(link)

    def _drain_messages(self, now: float) -> None:
        for link in list(self._links):
            for msg in link.recv_up(now):
                if isinstance(msg, HelloMessage):
                    self._on_hello(msg, link)
                elif isinstance(msg, StatusMessage):
                    self._on_status(msg)
                elif isinstance(msg, GoodbyeMessage):
                    self._on_goodbye(msg, link)

    def _on_hello(self, msg: HelloMessage, link: TcpLink) -> None:
        believed = self.classifier.model_for(msg.claimed_type, job_name=msg.job_id)
        # The believed power ceiling is where the believed model flattens out;
        # the platform cannot cap below p_node_min regardless.
        self.jobs[msg.job_id] = JobRecord(
            job_id=msg.job_id,
            claimed_type=msg.claimed_type,
            nodes=msg.nodes,
            link=link,
            believed_model=believed,
            believed_p_max=min(believed.p_max, self.p_node_max),
        )

    def _on_status(self, msg: StatusMessage) -> None:
        record = self.jobs.get(msg.job_id)
        if record is None:
            return  # status raced past the goodbye; ignore
        record.last_status = msg
        if self.use_feedback and msg.has_model:
            if msg.model_r2 is None or msg.model_r2 >= self.min_feedback_r2:
                record.online_model = QuadraticPowerModel(
                    a=msg.model_a,
                    b=msg.model_b,
                    c=msg.model_c,
                    p_min=self.p_node_min,
                    p_max=record.believed_p_max,
                )
                record.online_r2 = msg.model_r2

    def _on_goodbye(self, msg: GoodbyeMessage, link: TcpLink) -> None:
        self.jobs.pop(msg.job_id, None)
        if link in self._links:
            self._links.remove(link)

    # -------------------------------------------------------------- control

    def step(self, now: float) -> dict[str, float]:
        """One manager period: drain messages, budget, send caps.

        Returns the per-job node caps chosen this round (empty when no jobs
        are connected).
        """
        self._drain_messages(now)
        target = self.target_source.target(now)
        if self.meter is not None:
            measured = float(self.meter())
            self.tracking.append(
                TrackingSample(time=now, target=target, measured=measured)
            )
            if self.correction_gain > 0:
                limit = self.correction_limit_fraction * target
                self._correction = float(
                    np.clip(
                        self._correction + self.correction_gain * (target - measured),
                        -limit,
                        limit,
                    )
                )
        if not self.jobs:
            return {}
        busy_nodes = sum(r.nodes for r in self.jobs.values())
        idle_nodes = max(0, self.total_nodes - busy_nodes)
        available = max(
            target - idle_nodes * self.idle_power_estimate + self._correction, 1.0
        )
        # Slack reallocation (§7.2): jobs whose measured power sits at idle
        # level are in setup/teardown — their caps cannot raise their draw,
        # so budget them at what they actually consume and hand the slack to
        # jobs that can use it.
        dormant: list[JobRecord] = []
        active: list[JobRecord] = []
        for record in sorted(self.jobs.values(), key=lambda r: r.job_id):
            status = record.last_status
            threshold = record.nodes * self.idle_power_estimate * 1.5
            if status is None or status.measured_power < threshold:
                dormant.append(record)
            else:
                active.append(record)
        caps: dict[str, float] = {}
        for record in dormant:
            drawn = (
                record.last_status.measured_power
                if record.last_status is not None
                else record.nodes * self.idle_power_estimate
            )
            available -= drawn
            caps[record.job_id] = self.p_node_min
        if active:
            requests = [
                JobBudgetRequest(
                    job_id=r.job_id,
                    nodes=r.nodes,
                    model=r.active_model,
                    p_min=self.p_node_min,
                    p_max=r.believed_p_max,
                )
                for r in active
            ]
            allocation = self.budgeter.allocate(requests, max(available, 1.0))
            caps.update(allocation.caps)
        for record in self.jobs.values():
            cap = caps[record.job_id]
            record.link.send_down(
                BudgetMessage(job_id=record.job_id, power_cap_node=cap, timestamp=now),
                now,
            )
            record.caps_sent += 1
        return caps
