"""The job-tier power-modeling process (paper §4.2, Fig. 2).

One :class:`JobTierEndpoint` runs per job (on the job's first compute node in
the paper).  It bridges three parties:

* **down**: the GEOPM endpoint/agents, over "shared memory" (direct handles);
* **up**: the cluster-tier manager, over a TCP link;
* **inside**: an :class:`~repro.modeling.online.OnlineModeler` that converts
  epoch feedback into quadratic model coefficients.

Each control period it reads the latest agent sample, feeds the modeler,
applies any budget messages from the cluster tier as GEOPM policies, and
sends a status message upward — including model coefficients once a
trustworthy fit exists, when feedback is enabled.
"""

from __future__ import annotations

import zlib

from repro.core.messages import BudgetMessage, GoodbyeMessage, HelloMessage, StatusMessage
from repro.core.transport import TcpLink
from repro.geopm.agent import AgentPolicy
from repro.geopm.endpoint import Endpoint
from repro.modeling.online import OnlineModeler
from repro.modeling.quadratic import QuadraticPowerModel
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["JobTierEndpoint"]


class JobTierEndpoint:
    """Per-job bridge between the GEOPM endpoint and the cluster manager."""

    def __init__(
        self,
        job_id: str,
        claimed_type: str,
        nodes: int,
        geopm_endpoint: Endpoint,
        link: TcpLink,
        *,
        p_min: float,
        p_max: float,
        default_model: QuadraticPowerModel,
        feedback_enabled: bool = True,
        retrain_threshold: int = 10,
        min_feedback_epochs: int = 10,
        initial_cap: float | None = None,
        explore_amplitude: float = 0.06,
        min_cap_coverage: float = 0.04,
        explore_hold_steps: int = 12,
        min_feedback_samples: int = 6,
        detect_drift: bool = False,
        warm_model: QuadraticPowerModel | None = None,
        warm_r2: float | None = None,
        lease_ttl: float | None = None,
        lease_ramp_seconds: float = 30.0,
        safe_floor: float | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        self.job_id = job_id
        self.claimed_type = claimed_type
        self.nodes = int(nodes)
        self.geopm = geopm_endpoint
        self.link = link
        self.feedback_enabled = bool(feedback_enabled)
        self.min_feedback_epochs = int(min_feedback_epochs)
        self.modeler = OnlineModeler(
            p_min,
            p_max,
            default_model,
            retrain_threshold=retrain_threshold,
            detect_drift=detect_drift,
        )
        self._hello_sent = False
        self._goodbye_sent = False
        self._pending_cap = initial_cap  # applied on the first step
        self.current_cap = initial_cap if initial_cap is not None else p_max
        self.statuses_sent = 0
        self._p_min = float(p_min)
        self._p_max = float(p_max)
        # Excitation for online system identification: while the modeler has
        # not yet observed meaningfully different caps, the endpoint dithers
        # the applied cap ±explore_amplitude around the budget (zero mean, so
        # the job's average power still honours the cluster tier's cap).
        # The paper's runs get this excitation "for free" from time-varying
        # budgets; static-budget scenarios (Figs. 6–8) need the dither to
        # learn anything — see DESIGN.md.
        self.explore_amplitude = float(explore_amplitude)
        self.min_cap_coverage = float(min_cap_coverage)
        self.explore_hold_steps = int(explore_hold_steps)
        self.min_feedback_samples = int(min_feedback_samples)
        self._explore_sign = 1.0
        # Stagger dither phase across jobs so cluster-level excitation
        # cancels instead of stacking into tracking error.  crc32, not
        # hash(): Python salts string hashes per process, which would make
        # seeded runs non-reproducible.
        self._explore_step = zlib.crc32(job_id.encode()) % max(explore_hold_steps, 1)
        # Warm restart: a watchdog-restarted endpoint receives the last model
        # the cluster tier validated for this job, so it resumes sharing a
        # trusted fit immediately instead of re-fitting (and re-dithering)
        # from zero.  The modeler's own refits take over once live data
        # accumulates.
        if warm_model is not None:
            self.modeler.seed_fit(warm_model, r2=warm_r2)
        # Cap-lease state (dead-man switch, paper-level fail-safe).  A lease
        # only exists once a BudgetMessage arrives carrying ``lease_ttl``;
        # until then the endpoint keeps the pre-lease hold-last-value
        # behaviour bit-for-bit.  Expiry anchors to *receipt* time, so the
        # over-target bound is relative to last contact with the head.
        self.lease_ramp_seconds = float(lease_ramp_seconds)
        self.safe_floor = safe_floor if safe_floor is None else float(safe_floor)
        # Armed from birth when the deployment runs leases: an endpoint that
        # has *never* heard from the head (admitted mid-partition, say) is the
        # same fail-safe case as one whose head went silent — it must not sit
        # at p_max indefinitely.  The expiry clock starts on the first step.
        self._lease_ttl: float | None = (
            None if lease_ttl is None else float(lease_ttl)
        )
        self._lease_floor: float | None = None
        self._lease_expires: float | None = None
        self._degraded_since: float | None = None
        self._decay_from: float | None = None
        self._degraded_applied: float | None = None
        self.degraded_seconds = 0.0
        self.lease_expiries = 0
        self.telemetry = telemetry
        if telemetry.enabled:
            self._mx_statuses = telemetry.registry.counter(
                "anor_statuses_sent_total", "status messages sent by job endpoints"
            )
            self._mx_policies = telemetry.registry.counter(
                "anor_policies_written_total", "GEOPM policies written by job endpoints"
            )

    # ---------------------------------------------------------------- control

    def step(self, now: float) -> StatusMessage | None:
        """One endpoint control period; returns the status sent (if any)."""
        if not self._hello_sent:
            # A re-HELLO after degraded autonomy hands the head our own fit
            # so it warm-merges instead of cold-probing (mirrors the PR 3
            # checkpoint warm-restart path, but sourced from the survivor).
            degraded_total = self._total_degraded(now)
            hello_model = self._model_fields() if degraded_total > 0 else {}
            self.link.send_up(
                HelloMessage(
                    job_id=self.job_id,
                    claimed_type=self.claimed_type,
                    nodes=self.nodes,
                    timestamp=now,
                    degraded_seconds=degraded_total,
                    **hello_model,
                ),
                now,
            )
            self._hello_sent = True
        # Process the latest agent sample FIRST: it was measured at or before
        # ``now``, while any cap change below is stamped at ``now`` — feeding
        # them to the modeler out of order would run its clock backwards
        # (§7.2's timestamped-sample mapping).
        status: StatusMessage | None = None
        model_fields: dict | None = None
        sample = self.geopm.read_sample()
        if sample is not None:
            # Feed the modeler with the cap the agents report *enforcing*,
            # which may lag the requested cap by tree propagation.
            self.modeler.observe(
                sample.timestamp, sample.epoch_count, sample.applied_cap
            )
            model_fields = self._model_fields()
            status = StatusMessage(
                job_id=self.job_id,
                timestamp=sample.timestamp,
                epoch_count=sample.epoch_count,
                measured_power=sample.power,
                applied_cap=sample.applied_cap,
                **model_fields,
            )
            self.link.send_up(status, now)
            self.statuses_sent += 1
            if self.telemetry.enabled:
                self._mx_statuses.inc()

        # Apply budget messages from the cluster tier (last one wins).
        new_cap: float | None = self._pending_cap
        self._pending_cap = None
        lease_msg: BudgetMessage | None = None
        for msg in self.link.recv_down(now):
            if isinstance(msg, BudgetMessage):
                lease_msg = msg
                new_cap = msg.power_cap_node
        if lease_msg is not None:
            self._adopt_lease(lease_msg, now)
        if new_cap is not None:
            self.current_cap = float(new_cap)
        if self._lease_ttl is not None and self._lease_expires is None:
            # First step under a configured lease with no budget yet: start
            # the dead-man clock now (see the armed-from-birth note above).
            self._lease_expires = now + self._lease_ttl
        if (
            self._lease_expires is not None
            and now > self._lease_expires
            and self._degraded_since is None
        ):
            self._enter_degraded(now)

        if self._degraded_since is not None:
            # Degraded autonomy: the head is silent past its lease.  Decay
            # toward the safe floor over the bounded ramp and suppress dither
            # (excitation with nobody listening only costs job performance);
            # the modeler keeps observing so the eventual re-HELLO carries a
            # current fit.
            applied_cap = self._degraded_cap(now)
            if applied_cap != self._degraded_applied:
                self.geopm.write_policy(
                    AgentPolicy(
                        power_cap_node=applied_cap,
                        issued_at=now,
                        lease_ttl=self._lease_ttl,
                        safe_floor=self._effective_floor(),
                        ramp_seconds=self.lease_ramp_seconds,
                    )
                )
                self.modeler.set_cap(now, applied_cap)
                self._degraded_applied = applied_cap
                if self.telemetry.enabled:
                    self._mx_policies.inc()
            return status

        applied_cap = self._cap_to_apply(model_fields)
        cap_changed = new_cap is not None or applied_cap != self.current_cap
        if self._lease_ttl is not None:
            # Leased and in contact: rewrite the policy every period so the
            # agents' own dead-man switch stays armed-but-quiet — it fires
            # only if this endpoint process dies and stops refreshing.
            self.geopm.write_policy(
                AgentPolicy(
                    power_cap_node=applied_cap,
                    issued_at=now,
                    lease_ttl=self._lease_ttl,
                    safe_floor=self._effective_floor(),
                    ramp_seconds=self.lease_ramp_seconds,
                )
            )
            if cap_changed:
                self.modeler.set_cap(now, applied_cap)
                if self.telemetry.enabled:
                    self._mx_policies.inc()
        elif cap_changed:
            self.geopm.write_policy(
                AgentPolicy(power_cap_node=applied_cap, issued_at=now)
            )
            self.modeler.set_cap(now, applied_cap)
            if self.telemetry.enabled:
                self._mx_policies.inc()
        return status

    def _cap_to_apply(self, model_fields: dict | None = None) -> float:
        """The budgeted cap, dithered while still identifying the model.

        The sign is held for ``explore_hold_steps`` control periods so that
        several whole epochs elapse at each level — toggling faster than the
        epoch period would average the excitation away inside the modeler.
        Exploration stops once the modeler's fit is good enough to share
        (and resumes if the fit degrades), bounding the dither's cost to
        job performance and cluster power-tracking.

        ``model_fields`` lets :meth:`step` reuse the shareability decision it
        already computed for the status message (nothing mutates the modeler
        in between).
        """
        if model_fields is None:
            model_fields = self._model_fields()
        if (
            not self.feedback_enabled
            or self.explore_amplitude <= 0.0
            or model_fields
        ):
            return self.current_cap
        self._explore_step += 1
        if self._explore_step % self.explore_hold_steps == 0:
            self._explore_sign = -self._explore_sign
        dithered = self.current_cap * (1.0 + self._explore_sign * self.explore_amplitude)
        return float(min(max(dithered, self._p_min), self._p_max))

    def _model_fields(self) -> dict:
        """Model coefficients for the status message, when shareable.

        The gates below keep degenerate fits away from the budgeter: a
        two-sample fit has R² = 1 by construction, and a flat fit from a
        narrow cap window claims "insensitive" when it has really seen
        nothing — acting on either starves the job and (because a starved
        job's samples cluster at low caps) can lock the error in.
        """
        if not self.feedback_enabled or not self.modeler.has_fit:
            return {}
        if not self.modeler.seeded and (
            self.modeler.epochs_observed < self.min_feedback_epochs
            or self.modeler.cap_coverage < self.min_cap_coverage
            or len(self.modeler.history) < self.min_feedback_samples
        ):
            # A seeded (warm-restart) fit skips the history gates: it already
            # passed the cluster tier's validation before the restart.
            return {}
        m = self.modeler.model
        if not m.is_monotone_decreasing() or m.t_min <= 0:
            # Non-physical fit; hold it back until it stabilises.
            return {}
        if (
            not self.modeler.seeded
            and m.sensitivity < 1.02
            and self.modeler.cap_coverage < 0.3
        ):
            # "Flat" needs wide cap coverage to be believable.
            return {}
        return {
            "model_a": m.a,
            "model_b": m.b,
            "model_c": m.c,
            "model_r2": self.modeler.fit_r2,
        }

    # ------------------------------------------------------------ cap leases

    @property
    def degraded(self) -> bool:
        """True while this endpoint is operating without a valid cap lease."""
        return self._degraded_since is not None

    def _total_degraded(self, now: float) -> float:
        ongoing = now - self._degraded_since if self._degraded_since is not None else 0.0
        return self.degraded_seconds + ongoing

    def _effective_floor(self) -> float:
        """Safe floor precedence: per-message > endpoint-configured > p_min."""
        if self._lease_floor is not None:
            return self._lease_floor
        if self.safe_floor is not None:
            return self.safe_floor
        return self._p_min

    def _adopt_lease(self, msg: BudgetMessage, now: float) -> None:
        """Refresh (or clear) the lease from a just-received budget message."""
        if msg.lease_ttl is not None:
            self._lease_ttl = float(msg.lease_ttl)
            self._lease_expires = now + self._lease_ttl
            if msg.safe_floor is not None:
                self._lease_floor = float(msg.safe_floor)
        else:
            self._lease_ttl = None
            self._lease_expires = None
        if self._degraded_since is not None:
            self._exit_degraded(now)

    def _enter_degraded(self, now: float) -> None:
        self._degraded_since = now
        self._decay_from = float(self.current_cap)
        self._degraded_applied = None
        self.lease_expiries += 1
        if self.telemetry.enabled:
            self.telemetry.incident("degraded-autonomy-start", now, job_id=self.job_id)

    def _exit_degraded(self, now: float) -> None:
        stretch = now - self._degraded_since
        self.degraded_seconds += stretch
        if self.telemetry.enabled:
            self.telemetry.incident(
                "degraded-autonomy-end", now, job_id=self.job_id, duration=stretch
            )
        self._degraded_since = None
        self._decay_from = None
        self._degraded_applied = None

    def _degraded_cap(self, now: float) -> float:
        """Linear decay from the last budget toward the safe floor.

        Never raises the cap: a floor above the last budget clamps to the
        budget (the dead-man switch exists to shed power, not grant it).
        """
        floor = min(self._effective_floor(), self._decay_from)
        elapsed = now - self._degraded_since
        ramp = self.lease_ramp_seconds
        if ramp <= 0 or elapsed >= ramp:
            return floor
        return float(self._decay_from - (elapsed / ramp) * (self._decay_from - floor))

    def reconnect(self, link: TcpLink) -> None:
        """Swap in a fresh link and re-announce (head-node restart path).

        The old connection died with the head node; the endpoint process
        itself — modeler, dither phase, current cap — is untouched, so the
        next control period opens with a HELLO and the cluster tier
        reconciles this job against its recovered state.
        """
        if self.link is not link:
            # The dead connection's in-flight mail is lost — count it.
            self.link.close("reconnect")
        self.link = link
        self._hello_sent = False

    def close(self, now: float) -> None:
        """Send the goodbye when the job completes (idempotent)."""
        if not self._goodbye_sent:
            self.link.send_up(GoodbyeMessage(job_id=self.job_id, timestamp=now), now)
            self._goodbye_sent = True
