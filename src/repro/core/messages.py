"""Message vocabulary between the cluster tier and job tier (paper Fig. 2).

Downward (cluster → job): :class:`BudgetMessage` carrying the job's new
per-node power cap.  Upward (job → cluster): :class:`HelloMessage` when a
job's endpoint connects, :class:`StatusMessage` with timestamped power and
performance data (and, when feedback is enabled, the job tier's fitted
power-model coefficients), and :class:`GoodbyeMessage` on completion.

Every message is timestamped at send time; §7.2 describes how timestamps are
what lets tiers running control loops at different rates map samples to the
caps that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HelloMessage", "StatusMessage", "BudgetMessage", "GoodbyeMessage"]


@dataclass(frozen=True)
class HelloMessage:
    """A job's endpoint announces itself to the cluster-tier manager.

    A *re*-HELLO after degraded-mode autonomy carries the endpoint's own
    fitted model so the manager can warm-merge instead of cold-probing —
    the endpoint kept observing epochs while the head was unreachable, and
    that history would otherwise be thrown away.
    """

    job_id: str
    claimed_type: str  # what the submission metadata says the job is
    nodes: int
    timestamp: float
    # Degraded-history handoff (all None/0 on a first HELLO).
    model_a: float | None = None
    model_b: float | None = None
    model_c: float | None = None
    model_r2: float | None = None
    degraded_seconds: float = 0.0

    @property
    def has_model(self) -> bool:
        return self.model_a is not None


@dataclass(frozen=True)
class StatusMessage:
    """Periodic job-tier status: measured power, progress, optional model."""

    job_id: str
    timestamp: float
    epoch_count: int
    measured_power: float  # job CPU watts (all nodes)
    applied_cap: float  # per-node cap the agents report enforcing
    # Online model feedback (None until the job tier has a trustworthy fit,
    # or always None when feedback is disabled).
    model_a: float | None = None
    model_b: float | None = None
    model_c: float | None = None
    model_r2: float | None = None

    @property
    def has_model(self) -> bool:
        return self.model_a is not None


@dataclass(frozen=True)
class BudgetMessage:
    """Cluster tier informs a job of its new per-node power cap."""

    job_id: str
    power_cap_node: float
    timestamp: float
    # Cap lease: the cap is valid for ``lease_ttl`` seconds after
    # ``timestamp``; past that the job tier must treat the head as silent
    # and decay toward ``safe_floor``.  ``None`` (the default) means an
    # unleased cap — hold-last-value semantics, as before this field existed.
    lease_ttl: float | None = None
    safe_floor: float | None = None

    def __post_init__(self) -> None:
        if self.power_cap_node <= 0:
            raise ValueError(
                f"{self.job_id}: power cap must be positive, got {self.power_cap_node}"
            )
        if self.lease_ttl is not None and self.lease_ttl <= 0:
            raise ValueError(
                f"{self.job_id}: lease_ttl must be positive, got {self.lease_ttl}"
            )
        if self.safe_floor is not None and self.safe_floor <= 0:
            raise ValueError(
                f"{self.job_id}: safe_floor must be positive, got {self.safe_floor}"
            )


@dataclass(frozen=True)
class GoodbyeMessage:
    """A job's endpoint disconnects after the job completes."""

    job_id: str
    timestamp: float
