"""Time-varying cluster power-target sources (paper §4, §4.4.1).

The cluster-tier manager "periodically reads cluster power targets from a
file"; targets arrive every few seconds and span the demand-response bid's
average power ± reserve.  Sources here are callables of simulated time:

* :class:`ConstantTarget` — static budget experiments (Figs. 6–8).
* :class:`SteppedTarget` — piecewise-constant replay of a target file.
* :class:`RegulationTarget` — ``P̄ + R·y(t)`` from a regulation signal,
  re-sampled every ``update_period`` seconds (4 s in Fig. 9).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = [
    "PowerTargetSource",
    "ConstantTarget",
    "SteppedTarget",
    "RegulationTarget",
    "CarbonAwareTarget",
    "TariffAwareTarget",
    "HoldLastGoodTarget",
    "load_target_file",
    "save_target_file",
]


class PowerTargetSource(ABC):
    """Maps simulated time to the cluster power target in watts."""

    @abstractmethod
    def target(self, now: float) -> float:
        """Cluster power target (W) in force at time ``now``."""

    def __call__(self, now: float) -> float:
        return self.target(now)


class ConstantTarget(PowerTargetSource):
    """A fixed cluster power budget."""

    def __init__(self, watts: float) -> None:
        if watts <= 0:
            raise ValueError(f"target must be positive, got {watts}")
        self.watts = float(watts)

    def target(self, now: float) -> float:
        return self.watts


class SteppedTarget(PowerTargetSource):
    """Piecewise-constant targets from (time, watts) breakpoints.

    Before the first breakpoint the first value applies; after the last, the
    last value holds — the behaviour of a manager re-reading a target file.
    """

    def __init__(self, times: Sequence[float], watts: Sequence[float]) -> None:
        t = np.asarray(times, dtype=float)
        w = np.asarray(watts, dtype=float)
        if t.ndim != 1 or t.shape != w.shape or t.size == 0:
            raise ValueError(f"need matching non-empty 1-D arrays, got {t.shape}, {w.shape}")
        if np.any(np.diff(t) <= 0):
            raise ValueError("breakpoint times must be strictly increasing")
        if np.any(w <= 0):
            raise ValueError("targets must be positive")
        self._times = t
        self._watts = w

    def target(self, now: float) -> float:
        idx = int(np.searchsorted(self._times, now, side="right")) - 1
        idx = max(0, min(idx, self._watts.size - 1))
        return float(self._watts[idx])

    def window(self, t: float, horizon: float) -> tuple[tuple[float, float], ...]:
        """Upcoming known breakpoints: ``(time, watts)`` with t < time ≤ t+horizon.

        A file-backed target's future is already written down; the
        predictive planner consumes these exact steps instead of
        forecasting them, and registers the times as plan instants.
        """
        if horizon < 0:
            raise ValueError(f"horizon must be ≥ 0, got {horizon}")
        lo = int(np.searchsorted(self._times, t, side="right"))
        hi = int(np.searchsorted(self._times, t + horizon, side="right"))
        return tuple(
            (float(self._times[i]), float(self._watts[i])) for i in range(lo, hi)
        )


class CarbonAwareTarget(PowerTargetSource):
    """Power target following grid carbon intensity (paper §3).

    "Data center operators may react to time-varying carbon intensity":
    the cluster runs near ``p_max`` when the grid is clean and throttles
    toward ``p_min`` when it is dirty.  ``intensity`` maps time to
    gCO₂/kWh; the target interpolates linearly between the configured
    intensity band's endpoints.
    """

    def __init__(
        self,
        p_min: float,
        p_max: float,
        intensity,
        *,
        clean_intensity: float = 100.0,
        dirty_intensity: float = 500.0,
        update_period: float = 300.0,
    ) -> None:
        if not 0 < p_min < p_max:
            raise ValueError(f"need 0 < p_min < p_max, got {p_min}, {p_max}")
        if not clean_intensity < dirty_intensity:
            raise ValueError("need clean_intensity < dirty_intensity")
        if update_period <= 0:
            raise ValueError(f"update_period must be positive, got {update_period}")
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.intensity = intensity
        self.clean_intensity = float(clean_intensity)
        self.dirty_intensity = float(dirty_intensity)
        self.update_period = float(update_period)

    def target(self, now: float) -> float:
        window = math.floor(now / self.update_period) * self.update_period
        g = float(self.intensity(window))
        frac = (g - self.clean_intensity) / (
            self.dirty_intensity - self.clean_intensity
        )
        frac = min(max(frac, 0.0), 1.0)
        return self.p_max - frac * (self.p_max - self.p_min)


class TariffAwareTarget(PowerTargetSource):
    """Power target following time-of-use electricity pricing (paper §3).

    Piecewise-daily tariff: during hours whose price exceeds
    ``expensive_threshold`` the cluster throttles to ``p_min``; otherwise it
    runs at ``p_max``.  ``prices_by_hour`` has 24 entries ($/kWh).
    """

    def __init__(
        self,
        p_min: float,
        p_max: float,
        prices_by_hour,
        *,
        expensive_threshold: float,
    ) -> None:
        if not 0 < p_min < p_max:
            raise ValueError(f"need 0 < p_min < p_max, got {p_min}, {p_max}")
        prices = [float(p) for p in prices_by_hour]
        if len(prices) != 24:
            raise ValueError(f"need 24 hourly prices, got {len(prices)}")
        if any(p < 0 for p in prices):
            raise ValueError("prices must be non-negative")
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.prices = prices
        self.expensive_threshold = float(expensive_threshold)

    def target(self, now: float) -> float:
        hour = int(now // 3600.0) % 24
        if self.prices[hour] > self.expensive_threshold:
            return self.p_min
        return self.p_max


class HoldLastGoodTarget(PowerTargetSource):
    """Fault-tolerant wrapper: hold the last good target with bounded decay.

    The facility's target feed is an external dependency — a regulation
    signal file, a carbon-intensity API — and it can stall, raise, or emit
    NaN/inf rows.  The cluster manager must keep budgeting regardless, so
    this wrapper:

    * passes finite positive values straight through (recording them);
    * on a bad read (non-finite, non-positive, or a raised exception), holds
      the last good value for ``grace`` seconds;
    * past the grace window, decays the held value exponentially toward
      ``floor`` (the lowest enforceable cluster power) — a conservative
      ramp-down, since a long-silent feed may mean the facility wants load
      shed and the safe direction is downward;
    * before any good read has arrived, serves ``floor``.

    ``degraded_reads`` counts how many reads were served from the fallback
    path, for observability.
    """

    def __init__(
        self,
        inner: PowerTargetSource,
        *,
        floor: float,
        grace: float = 30.0,
        decay_rate: float = 0.005,
    ) -> None:
        if floor <= 0:
            raise ValueError(f"floor must be positive, got {floor}")
        if grace < 0:
            raise ValueError(f"grace must be ≥ 0, got {grace}")
        if decay_rate < 0:
            raise ValueError(f"decay_rate must be ≥ 0, got {decay_rate}")
        self.inner = inner
        self.floor = float(floor)
        self.grace = float(grace)
        self.decay_rate = float(decay_rate)
        self.degraded_reads = 0
        self._last_good: float | None = None
        self._last_good_time = 0.0

    def state_dict(self) -> dict:
        """Hold-last-good state for checkpointing (JSON-serialisable)."""
        return {
            "last_good": self._last_good,
            "last_good_time": self._last_good_time,
            "degraded_reads": self.degraded_reads,
        }

    def restore_state(self, state: dict) -> None:
        """Re-install state captured by :meth:`state_dict`.

        A recovered manager must not treat a stalled feed as freshly stalled:
        the grace window and decay are anchored at the *original* last-good
        read, so a feed that was already decaying keeps decaying.
        """
        last_good = state.get("last_good")
        self._last_good = None if last_good is None else float(last_good)
        self._last_good_time = float(state.get("last_good_time", 0.0))
        self.degraded_reads = int(state.get("degraded_reads", 0))

    def target(self, now: float) -> float:
        try:
            value = float(self.inner.target(now))
        except Exception:
            value = math.nan
        if math.isfinite(value) and value > 0:
            self._last_good = value
            self._last_good_time = now
            return value
        self.degraded_reads += 1
        if self._last_good is None:
            return self.floor
        held = max(0.0, now - self._last_good_time)
        if held <= self.grace:
            return self._last_good
        decayed = self._last_good * math.exp(-self.decay_rate * (held - self.grace))
        return max(decayed, self.floor)


def save_target_file(target: PowerTargetSource, path, *,
                     duration: float, step: float = 4.0) -> None:
    """Materialise any target source into the paper's file format (§4.1).

    The cluster-tier process "periodically reads cluster power targets from
    a file"; this writes `time_s,target_w` CSV rows sampled every ``step``
    seconds so experiments are replayable byte-for-byte.
    """
    if duration <= 0 or step <= 0:
        raise ValueError("duration and step must be positive")
    times = np.arange(0.0, duration + 1e-9, step)
    with open(path, "w") as fh:
        fh.write("time_s,target_w\n")
        for t in times:
            fh.write(f"{t:.3f},{target.target(float(t)):.3f}\n")


def load_target_file(path) -> SteppedTarget:
    """Read a target file written by :func:`save_target_file`."""
    times: list[float] = []
    watts: list[float] = []
    with open(path) as fh:
        header = fh.readline().strip()
        if header != "time_s,target_w":
            raise ValueError(f"{path}: not a power-target file (header {header!r})")
        for line in fh:
            line = line.strip()
            if not line:
                continue
            t_str, w_str = line.split(",")
            times.append(float(t_str))
            watts.append(float(w_str))
    if not times:
        raise ValueError(f"{path}: no target rows")
    return SteppedTarget(times, watts)


class RegulationTarget(PowerTargetSource):
    """Demand-response target ``P̄ + R·y(t)`` (paper §5.6).

    ``signal`` maps time to y ∈ [−1, 1].  The target is held constant within
    each ``update_period`` window — "new power targets arrive once every few
    seconds" (§4.4.1); Fig. 9 uses 4 s.
    """

    def __init__(
        self,
        average_power: float,
        reserve: float,
        signal,
        *,
        update_period: float = 4.0,
    ) -> None:
        if average_power <= 0:
            raise ValueError(f"average power must be positive, got {average_power}")
        if reserve < 0:
            raise ValueError(f"reserve must be ≥ 0, got {reserve}")
        if reserve >= average_power:
            raise ValueError(
                f"reserve {reserve} ≥ average power {average_power}: "
                "target could reach zero"
            )
        if update_period <= 0:
            raise ValueError(f"update_period must be positive, got {update_period}")
        self.average_power = float(average_power)
        self.reserve = float(reserve)
        self.signal = signal
        self.update_period = float(update_period)

    def target(self, now: float) -> float:
        window_start = math.floor(now / self.update_period) * self.update_period
        y = float(self.signal(window_start))
        if not -1.0 - 1e-9 <= y <= 1.0 + 1e-9:
            raise ValueError(f"regulation signal out of range at t={window_start}: {y}")
        return self.average_power + self.reserve * y
