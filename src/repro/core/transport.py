"""Latency-modelled in-process message channels.

The paper's tiers communicate over TCP between the head node and one
compute-node process per job (§3).  :class:`LatencyChannel` is a one-way
queue whose messages become visible ``latency`` seconds after sending;
:class:`TcpLink` pairs two of them into a full-duplex connection.  Optional
random message drop lets tests exercise the control plane's tolerance to
lost updates (callers always resend current state rather than deltas, so a
drop only delays convergence — a property the tests pin down).
"""

from __future__ import annotations

import heapq
from typing import Any

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["LatencyChannel", "TcpLink"]


class LatencyChannel:
    """One-way queue with per-send delivery latency and optional drops.

    Delivery order is ``(deliver_at, seq)``: a message sent after another can
    overtake it only if it genuinely arrives earlier (its latency was lower),
    and ties break by send order.  A plain FIFO gets this wrong when the
    channel latency is *lowered* mid-flight (a link-degradation window
    closing): messages sent under the old latency would block earlier-arriving
    ones behind them at the head of the queue.
    """

    def __init__(
        self,
        latency: float = 0.05,
        *,
        drop_probability: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if latency < 0:
            raise ValueError(f"latency must be ≥ 0, got {latency}")
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(f"drop_probability must be in [0, 1), got {drop_probability}")
        self.latency = float(latency)
        self.drop_probability = float(drop_probability)
        self._rng = ensure_rng(seed)
        # Min-heap of (deliver_at, seq, payload); seq is unique, so payloads
        # are never compared and ties resolve to send order.
        self._queue: list[tuple[float, int, Any]] = []
        self._seq = 0
        self.sent = 0
        self.dropped = 0
        self.delivered = 0
        # Observability contract: *every* message that vanishes increments
        # ``dropped`` and a reason bucket here — random loss, a send into a
        # closed channel, or in-flight mail discarded when the channel
        # closes.  Silent loss is a bug (see repro.telemetry).
        self.drop_reasons: dict[str, int] = {}
        # Deliveries that overtook an earlier-sent message (latency lowered
        # mid-flight); counted at receive time.
        self.reordered = 0
        self._max_seq_delivered = -1
        self.closed = False
        # Network partition: the peer is unreachable but the channel object
        # survives (unlike ``closed``, which is terminal).  Sends during the
        # partition blackhole with reason "partition"; messages already in
        # flight still deliver (they left before the cut).
        self.partitioned = False

    def _drop(self, reason: str) -> None:
        self.dropped += 1
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1

    def send(self, payload: Any, now: float) -> bool:
        """Enqueue a message at time ``now``; returns False if dropped.

        The loss draw happens before the closed check so that closing a
        channel never shifts the RNG stream of a lossy link — seeded runs
        stay bit-identical whether or not anyone closes links.
        """
        self.sent += 1
        if self.drop_probability > 0 and self._rng.random() < self.drop_probability:
            self._drop("loss")
            return False
        if self.closed:
            # The peer is gone (dead head node, replaced link): a real TCP
            # send here returns ECONNRESET.  Count it — an endpoint shouting
            # into a dead link is exactly what telemetry must surface.
            self._drop("closed")
            return False
        if self.partitioned:
            # Partition blackhole: the message leaves the NIC and dies in
            # the network.  Checked after the loss draw (RNG-stream
            # preservation) and after ``closed`` (a closed channel stays
            # closed even inside a partition window).
            self._drop("partition")
            return False
        heapq.heappush(self._queue, (now + self.latency, self._seq, payload))
        self._seq += 1
        return True

    def receive(self, now: float) -> list[Any]:
        """Pop every message whose delivery time has arrived, in (deliver_at, seq) order."""
        out: list[Any] = []
        while self._queue and self._queue[0][0] <= now:
            _, seq, payload = heapq.heappop(self._queue)
            if seq < self._max_seq_delivered:
                self.reordered += 1
            else:
                self._max_seq_delivered = seq
            out.append(payload)
        self.delivered += len(out)
        return out

    def close(self, reason: str = "closed") -> int:
        """Tear the channel down; in-flight messages drop as ``reason``.

        Idempotent.  Returns how many queued messages were discarded so the
        caller can log the loss.  Subsequent sends drop with reason
        ``"closed"`` instead of queueing into the void.
        """
        discarded = len(self._queue)
        for _ in range(discarded):
            self._drop(reason)
        self._queue.clear()
        self.closed = True
        return discarded

    @property
    def in_flight(self) -> int:
        return len(self._queue)


class TcpLink:
    """Full-duplex link: a downlink (cluster→job) and an uplink (job→cluster).

    ``latency_down``/``latency_up`` override the shared ``latency`` for one
    direction — head-node egress and compute-node egress cross different
    switches in a real deployment, and fault injection uses the asymmetry to
    model congested uplinks.
    """

    def __init__(
        self,
        latency: float = 0.05,
        *,
        drop_probability: float = 0.0,
        latency_down: float | None = None,
        latency_up: float | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        rng = ensure_rng(seed)
        self.down = LatencyChannel(
            latency if latency_down is None else latency_down,
            drop_probability=drop_probability,
            seed=rng,
        )
        self.up = LatencyChannel(
            latency if latency_up is None else latency_up,
            drop_probability=drop_probability,
            seed=rng,
        )

    def close(self, reason: str = "closed") -> int:
        """Close both directions; returns total in-flight messages dropped."""
        return self.down.close(reason) + self.up.close(reason)

    @property
    def closed(self) -> bool:
        return self.down.closed and self.up.closed

    # Cluster-side verbs.
    def send_down(self, payload: Any, now: float) -> bool:
        return self.down.send(payload, now)

    def recv_up(self, now: float) -> list[Any]:
        return self.up.receive(now)

    # Job-side verbs.
    def send_up(self, payload: Any, now: float) -> bool:
        return self.up.send(payload, now)

    def recv_down(self, now: float) -> list[Any]:
        return self.down.receive(now)
