"""Facility-level power coordination across clusters (paper §8).

The coordinator treats each member cluster exactly the way the cluster tier
treats a job: a power range [p_min, p_max] plus a power-performance model.
A cluster's aggregate model maps *facility-assigned cluster budgets* to an
effective slowdown, built by probing the cluster's own budgeter across its
feasible budget range (:func:`aggregate_cluster_model`).  The same budgeter
policies then apply one tier up — with an even-slowdown facility split, a
cluster full of power-sensitive work receives proportionally more of the
shared feed than one running insensitive jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.budget.base import JobBudgetRequest, PowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.targets import PowerTargetSource
from repro.facility.breaker import PowerBreaker
from repro.modeling.quadratic import QuadraticPowerModel

__all__ = [
    "MutableTarget",
    "ClusterMember",
    "FacilityCoordinator",
    "aggregate_cluster_model",
]


class MutableTarget(PowerTargetSource):
    """A power-target source the facility tier can rewrite at runtime.

    Handed to a member cluster's :class:`~repro.core.cluster_manager.
    ClusterPowerManager` in place of a file-backed target: the facility
    coordinator calls :meth:`set` whenever it re-splits the facility budget.
    """

    def __init__(self, initial: float) -> None:
        if initial <= 0:
            raise ValueError(f"target must be positive, got {initial}")
        self._watts = float(initial)

    def set(self, watts: float) -> None:
        if watts <= 0:
            raise ValueError(f"target must be positive, got {watts}")
        self._watts = float(watts)

    def target(self, now: float) -> float:
        return self._watts

    def window(self, t: float, horizon: float) -> tuple[tuple[float, float], ...]:
        """No known future breakpoints — facility rewrites are unannounced.

        Present so a member cluster's predictive planner can treat the
        facility feed uniformly with file-backed targets: an empty window
        means "plan on the statistical forecast only".
        """
        if horizon < 0:
            raise ValueError(f"horizon must be ≥ 0, got {horizon}")
        return ()


def aggregate_cluster_model(
    job_requests: Sequence[JobBudgetRequest],
    *,
    budgeter: PowerBudgeter | None = None,
    samples: int = 24,
) -> QuadraticPowerModel:
    """Fit a single budget→slowdown model for a whole cluster.

    Probes the cluster's budgeter across its feasible budget range and
    records the *worst-job* predicted time factor at each budget (the
    quantity an even-slowdown facility split equalises across clusters).
    The result is expressed in the cluster tier's own currency — seconds per
    "facility epoch" as a function of the cluster budget in watts — so the
    facility can feed it straight into a :class:`JobBudgetRequest`.
    """
    if not job_requests:
        raise ValueError("cluster has no jobs to aggregate")
    if samples < 3:
        raise ValueError(f"need ≥ 3 samples for a quadratic fit, got {samples}")
    budgeter = budgeter or EvenSlowdownBudgeter()
    floor = sum(j.p_min * j.nodes for j in job_requests)
    ceiling = sum(j.p_max * j.nodes for j in job_requests)
    budgets = np.linspace(floor, ceiling, samples)
    worst = np.empty(samples)
    for i, budget in enumerate(budgets):
        allocation = budgeter.allocate(job_requests, float(budget))
        worst[i] = max(
            j.model.time_per_epoch(allocation.caps[j.job_id])
            / j.model.time_per_epoch(j.p_max)
            for j in job_requests
        )
    fit = QuadraticPowerModel.fit(budgets, worst, float(floor), float(ceiling))
    return fit.model


@dataclass
class ClusterMember:
    """One cluster as seen by the facility tier."""

    name: str
    target: MutableTarget
    p_min: float  # lowest enforceable cluster power (all caps at floor + idle)
    p_max: float  # cluster power at full caps
    model: QuadraticPowerModel  # aggregate budget -> relative-time model
    last_assigned: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.p_min < self.p_max:
            raise ValueError(f"{self.name}: need 0 < p_min < p_max")

    def to_request(self) -> JobBudgetRequest:
        return JobBudgetRequest(
            job_id=self.name,
            nodes=1,  # budgets are already cluster-level watts
            model=self.model,
            p_min=self.p_min,
            p_max=self.p_max,
        )


@dataclass
class FacilityCoordinator:
    """Splits the facility's power feed across member clusters.

    ``facility_target`` maps time to the facility's total power budget
    (e.g. a fixed transformer rating, or a facility-level demand-response
    target).  Each :meth:`step` re-splits the budget and pushes each
    member's share into its :class:`MutableTarget`.
    """

    facility_target: PowerTargetSource
    budgeter: PowerBudgeter = field(default_factory=EvenSlowdownBudgeter)
    members: dict[str, ClusterMember] = field(default_factory=dict)
    history: list[tuple[float, dict[str, float]]] = field(default_factory=list)
    # Facility-level breaker (DESIGN.md §4e): when the summed facility meter
    # exceeds the facility target past the breaker's margin for its trip
    # window, every member is assigned its p_min — an emergency uniform
    # throttle one tier above the cluster managers' own breakers.  ``meter``
    # returns total measured facility power; both default to None (off).
    meter: Callable[[], float] | None = None
    breaker: PowerBreaker | None = None
    events: list[str] = field(default_factory=list)

    def add_member(self, member: ClusterMember) -> None:
        if member.name in self.members:
            raise ValueError(f"duplicate cluster name {member.name!r}")
        self.members[member.name] = member

    def update_member_model(self, name: str, model: QuadraticPowerModel,
                            *, p_min: float | None = None,
                            p_max: float | None = None) -> None:
        """Refresh a member's aggregate model (its job mix changed)."""
        member = self.members[name]
        member.model = model
        if p_min is not None:
            member.p_min = p_min
        if p_max is not None:
            member.p_max = p_max

    def step(self, now: float) -> dict[str, float]:
        """One facility control period: split and push cluster budgets."""
        if not self.members:
            return {}
        total = self.facility_target.target(now)
        if self.breaker is not None and self.meter is not None:
            measured = float(self.meter())
            prev = self.breaker.state
            state = self.breaker.observe(measured, total, now=now)
            if state != prev:
                self.events.append(
                    f"t={now:.1f} facility breaker {prev} -> {state} "
                    f"(measured={measured:.0f}W target={total:.0f}W)"
                )
        if self.breaker is not None and self.breaker.tripped:
            # Emergency: every member to its enforceable floor.  Clusters
            # cannot draw less than p_min anyway, so this is the hardest
            # uniform throttle the facility can command.
            caps = {name: m.p_min for name, m in self.members.items()}
            for name, member in self.members.items():
                member.target.set(caps[name])
                member.last_assigned = caps[name]
            self.history.append((now, dict(caps)))
            return caps
        requests = [
            m.to_request() for m in sorted(self.members.values(), key=lambda m: m.name)
        ]
        allocation = self.budgeter.allocate(requests, total)
        for name, member in self.members.items():
            share = allocation.caps[name]
            member.target.set(share)
            member.last_assigned = share
        self.history.append((now, dict(allocation.caps)))
        return dict(allocation.caps)

    @property
    def total_assigned(self) -> float:
        return sum(m.last_assigned for m in self.members.values())
