"""Facility-level power coordination across clusters (paper §8).

The coordinator treats each member cluster exactly the way the cluster tier
treats a job: a power range [p_min, p_max] plus a power-performance model.
A cluster's aggregate model maps *facility-assigned cluster budgets* to an
effective slowdown, built by probing the cluster's own budgeter across its
feasible budget range (:func:`aggregate_cluster_model`).  The same budgeter
policies then apply one tier up — with an even-slowdown facility split, a
cluster full of power-sensitive work receives proportionally more of the
shared feed than one running insensitive jobs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.budget.base import JobBudgetRequest, PowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.targets import PowerTargetSource
from repro.facility.breaker import PowerBreaker
from repro.facility.shed import ShedLadder
from repro.modeling.quadratic import QuadraticPowerModel
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "MutableTarget",
    "ClusterMember",
    "FacilityCoordinator",
    "aggregate_cluster_model",
    "HISTORY_LIMIT",
    "EVENT_LOG_LIMIT",
]

#: Bounds on the coordinator's in-memory logs: chaos soaks run for
#: simulated days, and an unbounded per-round history is a slow leak.
HISTORY_LIMIT = 4096
EVENT_LOG_LIMIT = 256


class MutableTarget(PowerTargetSource):
    """A power-target source the facility tier can rewrite at runtime.

    Handed to a member cluster's :class:`~repro.core.cluster_manager.
    ClusterPowerManager` in place of a file-backed target: the facility
    coordinator calls :meth:`set` whenever it re-splits the facility budget.
    """

    def __init__(self, initial: float) -> None:
        if initial <= 0:
            raise ValueError(f"target must be positive, got {initial}")
        self._watts = float(initial)

    def set(self, watts: float) -> None:
        if watts <= 0:
            raise ValueError(f"target must be positive, got {watts}")
        self._watts = float(watts)

    def target(self, now: float) -> float:
        return self._watts

    def window(self, t: float, horizon: float) -> tuple[tuple[float, float], ...]:
        """No known future breakpoints — facility rewrites are unannounced.

        Present so a member cluster's predictive planner can treat the
        facility feed uniformly with file-backed targets: an empty window
        means "plan on the statistical forecast only".
        """
        if horizon < 0:
            raise ValueError(f"horizon must be ≥ 0, got {horizon}")
        return ()


def aggregate_cluster_model(
    job_requests: Sequence[JobBudgetRequest],
    *,
    budgeter: PowerBudgeter | None = None,
    samples: int = 24,
) -> QuadraticPowerModel:
    """Fit a single budget→slowdown model for a whole cluster.

    Probes the cluster's budgeter across its feasible budget range and
    records the *worst-job* predicted time factor at each budget (the
    quantity an even-slowdown facility split equalises across clusters).
    The result is expressed in the cluster tier's own currency — seconds per
    "facility epoch" as a function of the cluster budget in watts — so the
    facility can feed it straight into a :class:`JobBudgetRequest`.
    """
    if not job_requests:
        raise ValueError("cluster has no jobs to aggregate")
    if samples < 3:
        raise ValueError(f"need ≥ 3 samples for a quadratic fit, got {samples}")
    budgeter = budgeter or EvenSlowdownBudgeter()
    floor = sum(j.p_min * j.nodes for j in job_requests)
    ceiling = sum(j.p_max * j.nodes for j in job_requests)
    budgets = np.linspace(floor, ceiling, samples)
    worst = np.empty(samples)
    for i, budget in enumerate(budgets):
        allocation = budgeter.allocate(job_requests, float(budget))
        worst[i] = max(
            j.model.time_per_epoch(allocation.caps[j.job_id])
            / j.model.time_per_epoch(j.p_max)
            for j in job_requests
        )
    fit = QuadraticPowerModel.fit(budgets, worst, float(floor), float(ceiling))
    return fit.model


@dataclass
class ClusterMember:
    """One cluster as seen by the facility tier."""

    name: str
    target: MutableTarget
    p_min: float  # lowest enforceable cluster power (all caps at floor + idle)
    p_max: float  # cluster power at full caps
    model: QuadraticPowerModel  # aggregate budget -> relative-time model
    last_assigned: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.p_min < self.p_max:
            raise ValueError(f"{self.name}: need 0 < p_min < p_max")

    def to_request(self) -> JobBudgetRequest:
        return JobBudgetRequest(
            job_id=self.name,
            nodes=1,  # budgets are already cluster-level watts
            model=self.model,
            p_min=self.p_min,
            p_max=self.p_max,
        )


@dataclass
class FacilityCoordinator:
    """Splits the facility's power feed across member clusters.

    ``facility_target`` maps time to the facility's total power budget
    (e.g. a fixed transformer rating, or a facility-level demand-response
    target).  Each :meth:`step` re-splits the budget and pushes each
    member's share into its :class:`MutableTarget`.
    """

    facility_target: PowerTargetSource
    budgeter: PowerBudgeter = field(default_factory=EvenSlowdownBudgeter)
    members: dict[str, ClusterMember] = field(default_factory=dict)
    #: Bounded per-round (time, caps) log; ``history_dropped`` counts evictions.
    history: deque = field(
        default_factory=lambda: deque(maxlen=HISTORY_LIMIT))
    # Facility-level breaker (DESIGN.md §4e): when the summed facility meter
    # exceeds the facility target past the breaker's margin for its trip
    # window, every member is assigned its p_min — an emergency uniform
    # throttle one tier above the cluster managers' own breakers.  ``meter``
    # returns total measured facility power; both default to None (off).
    meter: Callable[[], float] | None = None
    breaker: PowerBreaker | None = None
    #: Graceful-degradation ladder (DESIGN.md §10): with one installed, a
    #: tripped breaker or a sagging feed degrades the pool in severity
    #: stages and recovery ramps back up, instead of the binary floor slam.
    ladder: ShedLadder | None = None
    telemetry: Telemetry = NULL_TELEMETRY
    #: Bounded event log; ``events_dropped`` counts evictions.
    events: deque = field(
        default_factory=lambda: deque(maxlen=EVENT_LOG_LIMIT))
    history_dropped: int = 0
    events_dropped: int = 0
    _high_water: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        reg = self.telemetry.registry
        self._mx_breaker_state = reg.gauge(
            "anor_facility_breaker_state",
            "facility breaker state (0 closed / 1 half-open / 2 open)",
        )
        self._mx_assigned = reg.gauge(
            "anor_facility_assigned_watts",
            "total watts assigned to member clusters this round",
        )
        self._mx_severity = reg.gauge(
            "anor_facility_shed_severity",
            "degradation-ladder severity (0 normal .. 3 blackstart)",
        )

    def add_member(self, member: ClusterMember) -> None:
        if member.name in self.members:
            raise ValueError(f"duplicate cluster name {member.name!r}")
        self.members[member.name] = member

    def update_member_model(self, name: str, model: QuadraticPowerModel,
                            *, p_min: float | None = None,
                            p_max: float | None = None) -> None:
        """Refresh a member's aggregate model (its job mix changed)."""
        member = self.members[name]
        member.model = model
        if p_min is not None:
            member.p_min = p_min
        if p_max is not None:
            member.p_max = p_max

    def step(self, now: float) -> dict[str, float]:
        """One facility control period: split and push cluster budgets."""
        if not self.members:
            return {}
        total = self.facility_target.target(now)
        floor_total = sum(m.p_min for m in self.members.values())
        tel = self.telemetry
        if self.breaker is not None and self.meter is not None:
            measured = float(self.meter())
            prev = self.breaker.state
            state = self.breaker.observe(measured, total, now=now)
            if state != prev:
                self._record_event(
                    f"t={now:.1f} facility breaker {prev} -> {state} "
                    f"(measured={measured:.0f}W target={total:.0f}W)"
                )
                if tel.enabled:
                    tel.incident(
                        f"facility-breaker-{state}", now,
                        measured=measured, target=total,
                    )
            self._mx_breaker_state.set(self.breaker.gauge_value)
        tripped = self.breaker is not None and self.breaker.tripped
        if self.ladder is not None:
            # Graceful degradation: a tripped breaker means the feed cannot
            # be trusted above the enforceable floor; otherwise supply is
            # the feed itself.  Severity grades off the deficit against the
            # high-water feed, and the pool ramps back up after an incident
            # instead of stepping.
            supply = floor_total if tripped else total
            self._high_water = max(self._high_water, total)
            prev_severity = self.ladder.severity
            severity = self.ladder.observe(supply, self._high_water, now=now)
            if severity != prev_severity:
                self._record_event(
                    f"t={now:.1f} facility shed {prev_severity} -> {severity} "
                    f"(supply={supply:.0f}W nominal={self._high_water:.0f}W)"
                )
                if tel.enabled:
                    tel.incident(
                        f"facility-shed-{severity}", now,
                        supply=supply, nominal=self._high_water,
                    )
            self._mx_severity.set(self.ladder.gauge_value)
            pool = max(min(supply, self.ladder.ceiling), floor_total)
        elif tripped:
            # Emergency: every member to its enforceable floor.  Clusters
            # cannot draw less than p_min anyway, so this is the hardest
            # uniform throttle the facility can command.
            caps = {name: m.p_min for name, m in self.members.items()}
            for name, member in self.members.items():
                member.target.set(caps[name])
                member.last_assigned = caps[name]
            return self._finish(now, caps, total)
        else:
            pool = total
        requests = [
            m.to_request() for m in sorted(self.members.values(), key=lambda m: m.name)
        ]
        allocation = self.budgeter.allocate(requests, pool)
        for name, member in self.members.items():
            share = allocation.caps[name]
            member.target.set(share)
            member.last_assigned = share
        return self._finish(now, dict(allocation.caps), total)

    def _finish(self, now: float, caps: dict[str, float],
                feed: float) -> dict[str, float]:
        """Log the round, flag over-assignment against the physical feed."""
        assigned = sum(caps.values())
        if assigned > feed + 1e-9:
            # Σ p_min above the feed: nothing enforceable can close the gap,
            # so name the shortfall instead of over-assigning silently.
            shortfall = assigned - feed
            self._record_event(
                f"t={now:.1f} facility shortfall {shortfall:.0f}W "
                f"(assigned={assigned:.0f}W feed={feed:.0f}W)"
            )
            if self.telemetry.enabled:
                self.telemetry.incident(
                    "facility-shortfall", now,
                    shortfall_watts=shortfall, assigned=assigned, feed=feed,
                )
        self._mx_assigned.set(assigned)
        if len(self.history) == HISTORY_LIMIT:
            self.history_dropped += 1
        self.history.append((now, dict(caps)))
        return caps

    def _record_event(self, line: str) -> None:
        if len(self.events) == EVENT_LOG_LIMIT:
            self.events_dropped += 1
        self.events.append(line)

    @property
    def total_assigned(self) -> float:
        return sum(m.last_assigned for m in self.members.values())
