"""Graceful-degradation ladder: staged power shedding with ramped recovery.

The facility tier's original emergency response was binary: a tripped
breaker slammed every member to ``p_min`` regardless of how deep the
shortfall actually was.  The ladder replaces that with four severity
states driven by the *supply deficit* (how far the available feed has
fallen below nominal demand):

* **normal** — no deficit worth acting on; every job runs under its
  budgeted cap.
* **brownout-1** — shallow deficit.  Preemptible jobs are capped to their
  power floor; nothing is evicted.
* **brownout-2** — deep deficit.  Preemptible jobs are preempted (killed
  and requeued for after the incident); checkpointable jobs are capped to
  their floor.
* **blackstart** — existential deficit.  Preemptible jobs are killed
  outright, checkpointable jobs are preempted (their checkpoints make the
  requeue cheap), and protected jobs — the only survivors — are capped to
  their floor.  Protected jobs are *never* preempted or killed at any
  severity: the plan table simply has no such entry, so the guarantee is
  structural rather than behavioural.

Two mechanisms stop an oscillating feed from flapping jobs in and out of
preemption, both borrowed from the :class:`~repro.facility.breaker
.PowerBreaker`'s asymmetric-hysteresis shape:

* **severity hysteresis** — escalation needs only ``escalate_rounds``
  consecutive worse rounds (and then jumps straight to the indicated
  severity: a 60 % feeder loss must not dwell in brownout-1), while
  recovery needs ``clear_rounds`` consecutive better rounds *per step*
  and always steps down one level at a time.  Any round at or above the
  current severity resets recovery progress.
* **budget ramp** — the effective budget ceiling follows a falling supply
  immediately but recovers at most ``ramp_watts_per_round`` per control
  round, so restored feed re-inflates caps on a bounded slope instead of
  a step.

Like the breaker, the ladder is pure bookkeeping: it consumes no RNG and
keeps no wall-clock state, so constructing one changes nothing until its
owner acts on ``severity`` / ``ceiling``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "ShedLadder",
    "ShedController",
    "SEVERITY_LEVELS",
    "SEVERITY_VALUES",
    "SHED_CLASSES",
    "SHED_ACTIONS",
    "SHED_PLANS",
    "TRANSITION_LOG_LIMIT",
]

#: Severity states, mildest first.  Order is load-bearing: escalation and
#: recovery move along this tuple.
SEVERITY_LEVELS = ("normal", "brownout-1", "brownout-2", "blackstart")

#: Gauge encoding for ``anor_shed_severity`` (Prometheus wants a number).
SEVERITY_VALUES = {name: i for i, name in enumerate(SEVERITY_LEVELS)}

#: Shed classes a job may declare, most expendable first.
SHED_CLASSES = ("preemptible", "checkpointable", "protected")

#: Escalation chain of per-job actions, mildest first.
SHED_ACTIONS = ("none", "cap-to-floor", "preempt", "kill")

#: The priority-tiered shedding plan: severity → shed class → action.
#: ``protected`` never maps to ``preempt`` or ``kill`` — that absence is
#: the scorecard's "protected jobs survive" guarantee.
SHED_PLANS: dict[str, dict[str, str]] = {
    "normal": {
        "preemptible": "none", "checkpointable": "none", "protected": "none",
    },
    "brownout-1": {
        "preemptible": "cap-to-floor", "checkpointable": "none",
        "protected": "none",
    },
    "brownout-2": {
        "preemptible": "preempt", "checkpointable": "cap-to-floor",
        "protected": "none",
    },
    "blackstart": {
        "preemptible": "kill", "checkpointable": "preempt",
        "protected": "cap-to-floor",
    },
}

#: Bound on in-memory transition logs (ladder and breaker alike): chaos
#: soaks run for simulated days and must not grow memory without limit.
TRANSITION_LOG_LIMIT = 256


@dataclass
class ShedLadder:
    """Severity state machine + ramped budget ceiling.

    Parameters
    ----------
    brownout1_deficit / brownout2_deficit / blackstart_deficit:
        Fractional supply deficits (``1 - supply/demand``) at which each
        severity is indicated.  Must be strictly increasing in (0, 1).
    escalate_rounds:
        Consecutive rounds a worse severity must be indicated before the
        ladder escalates (straight to the indicated level).
    clear_rounds:
        Consecutive rounds a better severity must be indicated before the
        ladder steps down — one level per ``clear_rounds`` streak.
    ramp_watts_per_round:
        Maximum per-round increase of the effective budget ceiling during
        recovery.  Decreases are never limited.
    """

    brownout1_deficit: float = 0.10
    brownout2_deficit: float = 0.25
    blackstart_deficit: float = 0.50
    escalate_rounds: int = 2
    clear_rounds: int = 5
    ramp_watts_per_round: float = 100.0

    severity: str = field(default="normal", init=False)
    escalations: int = field(default=0, init=False)
    #: Bounded transition log; ``transitions_dropped`` counts evictions.
    transitions: deque = field(
        default_factory=lambda: deque(maxlen=TRANSITION_LOG_LIMIT), init=False
    )
    transitions_dropped: int = field(default=0, init=False)
    _worse_streak: int = field(default=0, init=False)
    _better_streak: int = field(default=0, init=False)
    _ceiling: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        thresholds = (
            ("brownout1_deficit", self.brownout1_deficit),
            ("brownout2_deficit", self.brownout2_deficit),
            ("blackstart_deficit", self.blackstart_deficit),
        )
        for name, value in thresholds:
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")
        if not (self.brownout1_deficit < self.brownout2_deficit
                < self.blackstart_deficit):
            raise ValueError(
                "deficit thresholds must be strictly increasing, got "
                f"{self.brownout1_deficit} / {self.brownout2_deficit} / "
                f"{self.blackstart_deficit}"
            )
        for name in ("escalate_rounds", "clear_rounds"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be ≥ 1, got {getattr(self, name)}")
        if self.ramp_watts_per_round <= 0:
            raise ValueError(
                f"ramp_watts_per_round must be positive, "
                f"got {self.ramp_watts_per_round}"
            )

    @property
    def gauge_value(self) -> int:
        return SEVERITY_VALUES[self.severity]

    @property
    def ceiling(self) -> float:
        """Effective budget ceiling after the recovery ramp (inf until fed)."""
        return float("inf") if self._ceiling is None else self._ceiling

    @property
    def plan(self) -> dict[str, str]:
        """Shed class → action at the current severity."""
        return SHED_PLANS[self.severity]

    def indicated(self, deficit: float) -> str:
        """The severity a sustained ``deficit`` would indicate."""
        if deficit >= self.blackstart_deficit:
            return "blackstart"
        if deficit >= self.brownout2_deficit:
            return "brownout-2"
        if deficit >= self.brownout1_deficit:
            return "brownout-1"
        return "normal"

    def observe(self, supply: float, demand: float, now: float = 0.0) -> str:
        """Feed one control round's (supply, demand) pair; returns severity.

        A non-positive demand carries no deficit information and leaves
        the severity untouched; the ceiling still tracks the supply.
        """
        self._update_ceiling(supply)
        if demand <= 0:
            return self.severity
        deficit = max(0.0, 1.0 - supply / demand)
        indicated = self.indicated(deficit)
        current = SEVERITY_VALUES[self.severity]
        candidate = SEVERITY_VALUES[indicated]
        if candidate > current:
            self._worse_streak += 1
            self._better_streak = 0
            if self._worse_streak >= self.escalate_rounds:
                self._transition(indicated, now, deficit)
                self.escalations += 1
        elif candidate < current:
            self._better_streak += 1
            self._worse_streak = 0
            if self._better_streak >= self.clear_rounds:
                self._transition(SEVERITY_LEVELS[current - 1], now, deficit)
        else:
            # A round at the current severity resets recovery progress —
            # the breaker-style asymmetry that prevents flapping.
            self._worse_streak = 0
            self._better_streak = 0
        return self.severity

    def _update_ceiling(self, supply: float) -> None:
        if self._ceiling is None or supply <= self._ceiling:
            self._ceiling = supply
        else:
            self._ceiling = min(supply, self._ceiling + self.ramp_watts_per_round)

    def _transition(self, new_severity: str, now: float, deficit: float) -> None:
        if (self.transitions.maxlen is not None
                and len(self.transitions) == self.transitions.maxlen):
            self.transitions_dropped += 1
        self.transitions.append(
            f"t={now:.1f} shed {self.severity} -> {new_severity} "
            f"deficit={deficit:.2f}"
        )
        self.severity = new_severity
        self._worse_streak = 0
        self._better_streak = 0


@dataclass
class ShedController:
    """Binds a :class:`ShedLadder` to a job population.

    The cluster manager owns one (when ``shed_enabled``): each control
    round it feeds the assigned budget through :meth:`observe`, caps
    ``cap-to-floor`` classes itself, and queues ``preempt``/``kill``
    actions here for the framework to execute between rounds (mirroring
    how orphaned jobs are drained).

    ``classes`` maps a job's claimed type to its shed class; unmapped
    types fall back to ``default_class``.  ``nominal_watts`` is the demand
    reference for the deficit; when ``None`` the controller tracks the
    high-water mark of observed budgets instead (the feed seen before the
    incident *is* nominal demand).
    """

    ladder: ShedLadder
    classes: Mapping[str, str] = field(default_factory=dict)
    default_class: str = "checkpointable"
    nominal_watts: float | None = None

    #: (job_id, action) pairs awaiting execution by the framework.
    pending_actions: list = field(default_factory=list, init=False)
    preempts: int = field(default=0, init=False)
    kills: int = field(default=0, init=False)
    floor_capped: int = field(default=0, init=False)
    #: Severity-cleared episodes (each ends one incident's shed set).
    restores: int = field(default=0, init=False)
    _high_water: float = field(default=0.0, init=False)
    _shed_jobs: set = field(default_factory=set, init=False)

    def __post_init__(self) -> None:
        if self.default_class not in SHED_CLASSES:
            raise ValueError(
                f"default_class must be one of {SHED_CLASSES}, "
                f"got {self.default_class!r}"
            )
        for type_name, shed_class in self.classes.items():
            if shed_class not in SHED_CLASSES:
                raise ValueError(
                    f"shed class for {type_name!r} must be one of "
                    f"{SHED_CLASSES}, got {shed_class!r}"
                )

    @property
    def severity(self) -> str:
        return self.ladder.severity

    @property
    def active(self) -> bool:
        """True while any degradation (or its recovery ramp) is in force."""
        return self.ladder.severity != "normal"

    def observe(self, supply: float, now: float = 0.0) -> float:
        """Feed one round's assigned budget; returns the effective ceiling."""
        if self.nominal_watts is None and supply > self._high_water:
            self._high_water = supply
        demand = (self.nominal_watts if self.nominal_watts is not None
                  else self._high_water)
        before = self.ladder.severity
        self.ladder.observe(supply, demand, now)
        if before != "normal" and self.ladder.severity == "normal":
            self._shed_jobs.clear()
            self.restores += 1
        return min(supply, self.ladder.ceiling)

    def class_of(self, claimed_type: str) -> str:
        return self.classes.get(claimed_type, self.default_class)

    def action_for(self, claimed_type: str) -> str:
        """The plan's action for a job of ``claimed_type`` right now."""
        return self.ladder.plan[self.class_of(claimed_type)]

    def request_shed(self, job_id: str, action: str) -> bool:
        """Queue a preempt/kill for the framework; idempotent per episode."""
        if action not in ("preempt", "kill"):
            raise ValueError(f"not a shedding action: {action!r}")
        if job_id in self._shed_jobs:
            return False
        self._shed_jobs.add(job_id)
        self.pending_actions.append((job_id, action))
        if action == "kill":
            self.kills += 1
        else:
            self.preempts += 1
        return True
