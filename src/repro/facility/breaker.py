"""Facility power breaker: last-line guard against sustained overshoot.

The budgeting stack is feed-forward with a slow integral trim — nothing in
it *guarantees* measured cluster power stays under the facility target when
models are wrong, jobs misbehave, or a partition strands stale caps.  The
breaker is that guarantee's enforcement arm, deliberately shaped like an
electrical circuit breaker (and the software pattern of the same name):

* **closed** — normal operation.  Measured power exceeding
  ``target × (1 + margin)`` scores a *strike*; ``trip_rounds`` consecutive
  strikes trip the breaker (one bad sample never does — meters glitch).
* **open** — tripped.  The owner (cluster manager or facility coordinator)
  dispatches an emergency uniform throttle every round while open.  After
  ``reset_rounds`` consecutive clean rounds the breaker moves to half-open.
* **half-open** — probation.  ``confirm_rounds`` further clean rounds close
  it; a single overshoot re-opens it immediately (the classic asymmetry:
  getting out of emergency mode must be much harder than re-entering it).

The breaker is pure bookkeeping — it never touches caps itself, consumes no
RNG, and keeps no wall-clock state, so adding one to a seeded run changes
nothing until its owner acts on ``tripped``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["PowerBreaker", "BREAKER_STATE_VALUES", "TRANSITION_LOG_LIMIT"]

#: Gauge encoding for ``anor_breaker_state`` (Prometheus wants a number).
BREAKER_STATE_VALUES = {"closed": 0, "half-open": 1, "open": 2}

#: Bound on the in-memory transition log: a flapping feed during a chaos
#: soak must not grow memory without limit.
TRANSITION_LOG_LIMIT = 256


@dataclass
class PowerBreaker:
    """Three-state overshoot breaker (closed / open / half-open).

    Parameters
    ----------
    margin:
        Fractional overshoot that counts as a strike: measured power above
        ``target * (1 + margin)`` is a violation.  Must be ≥ 0.
    trip_rounds:
        Consecutive striking rounds needed to trip closed → open.
    reset_rounds:
        Consecutive clean rounds needed to move open → half-open.
    confirm_rounds:
        Consecutive clean rounds in half-open needed to fully close.
    """

    margin: float = 0.1
    trip_rounds: int = 3
    reset_rounds: int = 5
    confirm_rounds: int = 3

    state: str = field(default="closed", init=False)
    strikes: int = field(default=0, init=False)
    clean: int = field(default=0, init=False)
    trips: int = field(default=0, init=False)
    #: Bounded human-readable transition log (mirrors manager/coordinator
    #: events); ``transitions_dropped`` counts evicted lines.
    transitions: deque = field(
        default_factory=lambda: deque(maxlen=TRANSITION_LOG_LIMIT), init=False
    )
    transitions_dropped: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.margin < 0:
            raise ValueError(f"margin must be ≥ 0, got {self.margin}")
        for name in ("trip_rounds", "reset_rounds", "confirm_rounds"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be ≥ 1, got {getattr(self, name)}")

    @property
    def tripped(self) -> bool:
        return self.state == "open"

    @property
    def gauge_value(self) -> int:
        return BREAKER_STATE_VALUES[self.state]

    def observe(self, measured: float, target: float, now: float = 0.0) -> str:
        """Feed one control round's (measured, target) pair; returns the state.

        A non-positive target carries no overshoot information (nothing to
        exceed) and leaves the breaker untouched.
        """
        if target <= 0:
            return self.state
        violating = measured > target * (1.0 + self.margin)
        if self.state == "closed":
            if violating:
                self.strikes += 1
                if self.strikes >= self.trip_rounds:
                    self._transition("open", now)
                    self.trips += 1
            else:
                self.strikes = 0
        elif self.state == "open":
            if violating:
                self.clean = 0
            else:
                self.clean += 1
                if self.clean >= self.reset_rounds:
                    self._transition("half-open", now)
        else:  # half-open: one strike re-opens, confirm_rounds clean closes
            if violating:
                self._transition("open", now)
                self.trips += 1
            else:
                self.clean += 1
                if self.clean >= self.confirm_rounds:
                    self._transition("closed", now)
        return self.state

    def _transition(self, new_state: str, now: float) -> None:
        if len(self.transitions) == TRANSITION_LOG_LIMIT:
            self.transitions_dropped += 1
        self.transitions.append(f"t={now:.1f} breaker {self.state} -> {new_state}")
        self.state = new_state
        self.strikes = 0
        self.clean = 0
