"""Facility tier: coordinated power across multiple clusters (paper §8).

The paper's future-work section proposes extending ANOR "by treating the
facility as a power provider to each member of the cluster tier", e.g. for
sites bringing up a next-generation cluster while the previous generation
still runs under shared power infrastructure that cannot feed both at peak.

This package adds that third tier: a :class:`FacilityCoordinator` splits a
time-varying facility power budget across member clusters using the same
budgeter abstractions the cluster tier uses for jobs — each member is
described to the facility by an aggregate power-performance model, so the
facility can run either an even-power or an even-slowdown split.
"""

from repro.facility.breaker import PowerBreaker
from repro.facility.coordinator import (
    ClusterMember,
    FacilityCoordinator,
    MutableTarget,
    aggregate_cluster_model,
)
from repro.facility.shed import (
    SEVERITY_LEVELS,
    SEVERITY_VALUES,
    SHED_ACTIONS,
    SHED_CLASSES,
    SHED_PLANS,
    ShedController,
    ShedLadder,
)

__all__ = [
    "ClusterMember",
    "FacilityCoordinator",
    "MutableTarget",
    "PowerBreaker",
    "ShedController",
    "ShedLadder",
    "SEVERITY_LEVELS",
    "SEVERITY_VALUES",
    "SHED_ACTIONS",
    "SHED_CLASSES",
    "SHED_PLANS",
    "aggregate_cluster_model",
]
