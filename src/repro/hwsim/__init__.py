"""Emulated compute cluster standing in for the paper's 16-node testbed.

The paper evaluates ANOR on 16 nodes of dual-package Intel Xeon Gold 6152
(140 W TDP per socket) controlled through RAPL MSRs (§5.4–§5.5).  The control
plane only ever observes those nodes through energy counters and power-limit
registers, so this emulator reproduces exactly that surface: per-package MSR
banks (:mod:`repro.geopm.msr`), capped power draw with measurement noise,
epoch progress that slows according to each job type's ground-truth
power-performance curve, per-node performance-variation multipliers, and the
low-power setup/teardown phases §7.2 identifies as a real-world confounder.
"""

from repro.hwsim.node import Node
from repro.hwsim.job import JobPhase, RunningJob
from repro.hwsim.cluster import EmulatedCluster
from repro.hwsim.platform_power import ClusterPowerModel, NodePowerModel

__all__ = ["Node", "JobPhase", "RunningJob", "EmulatedCluster", "ClusterPowerModel", "NodePowerModel"]
