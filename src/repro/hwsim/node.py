"""One emulated compute node: two CPU packages behind RAPL-style MSRs.

A node exposes the same interface the paper's GEOPM agents consume — a
:class:`~repro.geopm.signals.PlatformIO` over per-package MSR banks — and a
physics side used only by the emulator: :meth:`consume` deposits energy for
one tick given the node's power draw.
"""

from __future__ import annotations

import numpy as np

from repro.geopm.msr import MsrBank
from repro.geopm.signals import PlatformIO

__all__ = ["Node"]


class Node:
    """An emulated dual-package compute node.

    Parameters
    ----------
    node_id:
        Stable identifier within the cluster.
    packages:
        CPU package count (the testbed has 2).
    package_tdp / package_min_power:
        RAPL actuation range per package in watts (140 / 70 on the testbed).
    idle_power:
        CPU watts drawn when no job computes on the node (also during job
        setup/teardown — §7.2).
    perf_multiplier:
        Node-specific performance-variation coefficient: epoch progress rate
        is multiplied by this (1.0 = nominal; §6.4 draws these from N(1, σ)).
    """

    def __init__(
        self,
        node_id: int,
        *,
        clock_fn,
        packages: int = 2,
        package_tdp: float = 140.0,
        package_min_power: float = 70.0,
        idle_power: float = 60.0,
        perf_multiplier: float = 1.0,
    ) -> None:
        if packages < 1:
            raise ValueError(f"node needs ≥ 1 package, got {packages}")
        if perf_multiplier <= 0:
            raise ValueError(f"perf_multiplier must be positive, got {perf_multiplier}")
        self.node_id = int(node_id)
        self.banks = [
            MsrBank(tdp_watts=package_tdp, min_power_watts=package_min_power)
            for _ in range(packages)
        ]
        self.pio = PlatformIO(self.banks, clock_fn=clock_fn)
        self.idle_power = float(idle_power)
        self.perf_multiplier = float(perf_multiplier)
        self.job_id: str | None = None  # set by the cluster on allocation
        self.failed = False  # crashed: draws nothing, unschedulable
        self._last_power = self.idle_power
        self._cap_cache = sum(b.power_limit_watts for b in self.banks)
        self._cap_cache_version = sum(b.cap_version for b in self.banks)

    # ----------------------------------------------------------- cap queries

    @property
    def power_cap(self) -> float:
        """Total node CPU cap currently programmed across packages (W).

        The physics loop reads this every tick while caps change only a few
        times per control period, so the package sum is cached against the
        banks' write-version counters.
        """
        version = 0
        for bank in self.banks:
            version += bank.cap_version
        if version != self._cap_cache_version:
            self._cap_cache = sum(b.power_limit_watts for b in self.banks)
            self._cap_cache_version = version
        return self._cap_cache

    @property
    def max_power_cap(self) -> float:
        return sum(b.tdp_watts for b in self.banks)

    @property
    def min_power_cap(self) -> float:
        return sum(b.min_power_watts for b in self.banks)

    @property
    def is_idle(self) -> bool:
        return self.job_id is None and not self.failed

    # ------------------------------------------------------------- failures

    def fail(self) -> None:
        """Crash the node: it stops drawing power and leaves the idle pool.

        The cluster is responsible for killing whatever job was running here
        first; a failed node keeps its MSR state (energy counters survive a
        reboot on real hardware) but reports zero draw until restored.
        """
        self.failed = True
        self._last_power = 0.0

    def restore(self) -> None:
        """Bring a failed node back into the idle pool."""
        self.failed = False

    # -------------------------------------------------------------- physics

    def consume(self, demand_watts: float, dt: float, rng: np.random.Generator) -> float:
        """Draw power for ``dt`` seconds and deposit energy into the MSRs.

        ``demand_watts`` is what the workload would draw unconstrained; RAPL
        keeps the average at or below the programmed cap, so the realised
        draw is ``min(cap, demand·(1+ε))`` with a small measurement/actuation
        noise ε, floored at idle power.  Returns the realised node power.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if self.failed:
            self._last_power = 0.0
            return 0.0
        noisy_demand = demand_watts * (1.0 + rng.normal(0.0, 0.01))
        power = min(self.power_cap, max(noisy_demand, self.idle_power))
        return self.deposit(power, dt)

    def deposit(self, power: float, dt: float) -> float:
        """Deposit an already-realised draw of ``power`` W for ``dt`` seconds.

        The batched physics path (:meth:`RunningJob.advance`) computes the
        realised power for all of a job's nodes in one vectorized step and
        only needs the MSR energy bookkeeping done per node.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        per_package = power * dt / len(self.banks)
        for bank in self.banks:
            bank.accumulate_energy(per_package)
        self._last_power = power
        return power

    def deposit_series(self, powers: np.ndarray, dt: float) -> None:
        """Deposit a run of already-realised per-tick draws (stride commit).

        ``powers[k]`` is the node's draw over tick ``k`` of a stride.  The
        per-package split is the same elementwise expression as
        :meth:`deposit`, and each bank folds its deposits with an ordered
        cumulative sum, so the result is bit-identical to calling
        :meth:`deposit` once per tick.  The retained ``last_power`` is the
        final tick's, exactly as the tick loop would leave it.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if len(powers) == 0:
            return
        per_package = powers * dt / len(self.banks)
        for bank in self.banks:
            bank.accumulate_energy_series(per_package)
        self._last_power = float(powers[-1])

    def consume_idle(self, dt: float, rng: np.random.Generator) -> float:
        """Idle-power tick (no job, or a job in setup/teardown)."""
        return self.consume(self.idle_power, dt, rng)

    @property
    def last_power(self) -> float:
        """Realised power of the most recent tick (facility metering view)."""
        return self._last_power

    @property
    def total_energy(self) -> float:
        """Unwrapped cumulative CPU energy (J), ground truth for tests."""
        return sum(b.total_energy_joules for b in self.banks)
