"""A job instance executing on emulated nodes.

The job advances through setup → compute → teardown phases (§7.2 documents
why setup/teardown matters: short jobs hold nodes at low power for a large
share of their batch-system residency).  During compute, each node's rank
makes epoch progress at the ground-truth rate for the node's current power
cap, scaled by the node's performance-variation multiplier and a run-level
noise coefficient; the job-global epoch count advances when the slowest rank
finishes an iteration (GEOPM's all-processes barrier semantics).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.geopm.endpoint import Endpoint
from repro.geopm.agent import JobAgentGroup
from repro.geopm.profiler import EpochProfiler
from repro.geopm.report import ApplicationTotals
from repro.hwsim.node import Node
from repro.workloads.nas import JobType

__all__ = ["JobPhase", "RunningJob", "StridePlan", "plan_stride_batch"]

#: Node count above which the batched numpy physics path beats the scalar
#: per-node loop.  Both paths are bit-identical (the golden traces pin them
#: to each other); below this width the ufunc call overhead on 1–2 element
#: arrays costs more than it saves.
BATCH_MIN_NODES = 8


class JobPhase(enum.Enum):
    SETUP = "setup"
    COMPUTE = "compute"
    TEARDOWN = "teardown"
    DONE = "done"
    KILLED = "killed"  # terminated by a node failure; produces no totals


@dataclass
class StridePlan:
    """The fully realised effects of advancing one job across several ticks.

    Produced by :func:`plan_stride_batch` without touching job state (only
    the job's RNG stream moves), applied by :meth:`RunningJob.commit_stride`.
    The plan/commit split lets the cluster truncate every job's stride to
    the earliest phase transition before anything is applied — matching the
    tick loop, which pops a finishing job before any later tick runs.
    """

    ticks: int  # ticks actually planned (≤ len(times) given)
    finished: bool  # job reached DONE at tick ``ticks - 1``
    powers: np.ndarray  # (ticks, nodes) realised per-node draw per tick
    phase: "JobPhase"  # state after the final planned tick …
    phase_elapsed: float
    rank_progress: np.ndarray
    # (tick_index, rank, cumulative_count) in exact per-tick call order.
    profiler_updates: list
    compute_started_at: float | None
    compute_finished_at: float | None
    end_at: float | None
    # Per-tick job power over the plan's compute ticks (None without any);
    # feeds the job's compute-energy/seconds accumulators on commit.
    compute_tick_power: np.ndarray | None


class RunningJob:
    """One executing job: physics state plus its GEOPM plumbing."""

    def __init__(
        self,
        job_id: str,
        job_type: JobType,
        nodes: list[Node],
        *,
        submit_time: float,
        start_time: float,
        rng: np.random.Generator,
        agent_fanout: int = 8,
        run_noise: bool = True,
    ) -> None:
        if not nodes:
            raise ValueError(f"job {job_id}: needs at least one node")
        self.job_id = job_id
        self.job_type = job_type
        self.nodes = nodes
        self.submit_time = float(submit_time)
        self.start_time = float(start_time)
        self.rng = rng
        self.phase = JobPhase.SETUP
        self.phase_elapsed = 0.0
        self.profiler = EpochProfiler(num_ranks=len(nodes))
        self.endpoint = Endpoint(job_id=job_id)
        self.agents = JobAgentGroup(
            [n.pio for n in nodes], self.profiler, self.endpoint, fanout=agent_fanout
        )
        # Only the root node's PlatformIO can serve EPOCH_COUNT (§4.3: the
        # root agent reports the job-global epoch count to the endpoint).
        nodes[0].pio.attach_profiler(self.profiler)
        # Run-level performance coefficient: one draw per execution, giving
        # the run-to-run variance visible in Fig. 3's error bars.
        self._run_multiplier = (
            float(np.exp(rng.normal(0.0, job_type.noise))) if run_noise else 1.0
        )
        # Fractional epoch progress per rank (rank i ↔ node i).
        self._rank_progress = np.zeros(len(nodes), dtype=float)
        # Invariants hoisted for the batched physics path.
        self._perf_multipliers = np.array([n.perf_multiplier for n in nodes])
        self._idle_powers = np.array([n.idle_power for n in nodes])
        # Compute ticks draw, per node in order: one progress-jitter sample
        # (σ = type noise) then one RAPL-noise sample (σ = 0.01, consumed by
        # Node.consume).  A single Generator.normal call with this alternating
        # scale vector reproduces the sequential scalar draws bit for bit.
        scales = np.empty(2 * len(nodes))
        scales[0::2] = job_type.noise
        scales[1::2] = 0.01
        self._noise_scales = scales
        # Stride-planner cache: (caps, taus·run_mult, clamped demand).  Both
        # model vectors depend only on the caps for statically-profiled
        # types, and caps are constant across a stride, so the cache
        # survives until the agent actually changes a cap value.
        self._stride_cache: tuple | None = None  # (caps key, caps, base, demand)
        self._profile_static = job_type.profile_static
        self._compute_started: float | None = None
        self._compute_finished: float | None = None
        self.end_time: float | None = None
        self._energy_at_start = sum(n.total_energy for n in nodes)
        self._compute_energy = 0.0
        self._compute_seconds = 0.0

    # ------------------------------------------------------------- physics

    def advance(self, dt: float, now: float) -> None:
        """Advance the job's physical state by ``dt`` seconds ending at ``now``."""
        if self.phase is JobPhase.DONE:
            self._consume_idle_all(dt)
            return
        self.phase_elapsed += dt
        if self.phase is JobPhase.SETUP:
            self._consume_idle_all(dt)
            if self.phase_elapsed >= self.job_type.setup_time:
                self.phase = JobPhase.COMPUTE
                self.phase_elapsed = 0.0
                self._compute_started = now
            return
        if self.phase is JobPhase.COMPUTE:
            tick_power = self._advance_compute(dt, now)
            self._compute_energy += tick_power * dt
            self._compute_seconds += dt
            if self.profiler.epoch_count >= self.job_type.epochs:
                self.phase = JobPhase.TEARDOWN
                self.phase_elapsed = 0.0
                self._compute_finished = now
            return
        if self.phase is JobPhase.TEARDOWN:
            self._consume_idle_all(dt)
            if self.phase_elapsed >= self.job_type.teardown_time:
                self.phase = JobPhase.DONE
                self.end_time = now

    def _advance_compute(self, dt: float, now: float) -> float:
        """One compute tick across all ranks, batched; returns the job power.

        Every arithmetic step mirrors the per-node scalar loop operation for
        operation (same elementwise IEEE ops, same RNG consumption order), so
        the batched path is bit-identical to the original implementation —
        ``tests/test_golden_traces.py`` holds it to that.
        """
        nodes = self.nodes
        jt = self.job_type
        if len(nodes) < BATCH_MIN_NODES or any(node.failed for node in nodes):
            # Narrow jobs: ufunc overhead dominates, the scalar loop wins.
            # Failed ranks (normally the job is killed before advancing
            # again) also route here — that path consumes no RNG draws for
            # the crashed node.
            return self._advance_compute_nodewise(dt, now)
        caps = np.array([node.power_cap for node in nodes])
        fracs = self._rank_progress / jt.epochs
        # Phase-aware lookup: phase-less types ignore the progress fraction;
        # PhasedJobType switches curves mid-run (§8).
        taus = jt.time_per_epoch_array(caps, fracs)
        draws = self.rng.normal(0.0, self._noise_scales)
        # Per-tick jitter on the progress rate plus the run-level and
        # node-variation multipliers.
        jitter = np.exp(draws[0::2])
        rates = self._perf_multipliers / (taus * self._run_multiplier * jitter)
        self._rank_progress += rates * dt
        done = np.minimum(self._rank_progress.astype(np.int64), jt.epochs)
        counts = np.asarray(self.profiler.rank_counts)
        for i in np.flatnonzero(done > counts):
            self.profiler.set_rank_progress(int(i), int(done[i]), timestamp=now)
        demand = np.minimum(np.maximum(caps, jt.p_min), jt.power_demand_array(fracs))
        if jt.power_wave > 0.0:
            # Epoch-periodic draw signature (compute vs. exchange phases
            # inside each iteration) — what §8's automatic epoch detection
            # listens for.
            demand = demand * (
                1.0 + jt.power_wave * np.sin(2.0 * np.pi * (self._rank_progress % 1.0))
            )
        # Node.consume, batched: RAPL noise, cap ceiling, idle floor.
        noisy = demand * (1.0 + draws[1::2])
        powers = np.minimum(caps, np.maximum(noisy, self._idle_powers))
        tick_power = 0.0
        for node, power in zip(nodes, powers):
            node.deposit(float(power), dt)
            tick_power += float(power)
        return tick_power

    def _advance_compute_nodewise(self, dt: float, now: float) -> float:
        """Reference per-node compute tick (kept for failed-node edge cases)."""
        tick_power = 0.0
        for i, node in enumerate(self.nodes):
            cap = node.power_cap
            frac = self._rank_progress[i] / self.job_type.epochs
            tau = self.job_type.time_per_epoch_at(cap, frac)
            jitter = float(np.exp(self.rng.normal(0.0, self.job_type.noise)))
            rate = node.perf_multiplier / (tau * self._run_multiplier * jitter)
            self._rank_progress[i] += rate * dt
            done_epochs = min(int(self._rank_progress[i]), self.job_type.epochs)
            if done_epochs > self.profiler.rank_counts[i]:
                self.profiler.set_rank_progress(i, done_epochs, timestamp=now)
            demand = min(
                max(cap, self.job_type.p_min),
                self.job_type.power_demand_at(frac),
            )
            if self.job_type.power_wave > 0.0:
                epoch_phase = self._rank_progress[i] % 1.0
                demand *= 1.0 + self.job_type.power_wave * np.sin(
                    2.0 * np.pi * epoch_phase
                )
            tick_power += node.consume(demand, dt, self.rng)
        return tick_power

    def _consume_idle_all(self, dt: float) -> None:
        """Idle-power tick for every node (setup/teardown/done), batched."""
        nodes = self.nodes
        if len(nodes) < BATCH_MIN_NODES or any(node.failed for node in nodes):
            for node in nodes:
                node.consume_idle(dt, self.rng)
            return
        eps = self.rng.normal(0.0, 0.01, size=len(nodes))
        caps = np.array([node.power_cap for node in nodes])
        noisy = self._idle_powers * (1.0 + eps)
        powers = np.minimum(caps, np.maximum(noisy, self._idle_powers))
        for node, power in zip(nodes, powers):
            node.deposit(float(power), dt)

    # ------------------------------------------------------ stride stepping

    @property
    def stride_capable(self) -> bool:
        """True when this job can be advanced analytically across a stride.

        Requires a statically-profiled job type (no power wave, phase-less
        curves — see :attr:`JobType.profile_static`) and no failed nodes:
        the per-node scalar path skips RNG draws for crashed ranks, which
        the batched planner cannot reproduce (in practice a crash kills the
        job before it advances again; this guard is belt and braces).
        """
        return (
            self.phase in (JobPhase.SETUP, JobPhase.COMPUTE, JobPhase.TEARDOWN)
            and self._profile_static
            and not any(node.failed for node in self.nodes)
        )

    def _stride_vectors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(caps, rate base, clamped demand) for the stride planners.

        profile_static: the curve and demand ignore progress, so both model
        vectors are pure functions of the caps (the fraction argument only
        sets the output shape) — cached until the agent changes a cap value.
        """
        key = tuple(node.power_cap for node in self.nodes)
        cached = self._stride_cache
        if cached is not None and cached[0] == key:
            return cached[1], cached[2], cached[3]
        caps = np.array(key)
        jt = self.job_type
        fracs = self._rank_progress / jt.epochs
        base = jt.time_per_epoch_array(caps, fracs) * self._run_multiplier
        demand = np.minimum(np.maximum(caps, jt.p_min), jt.power_demand_array(fracs))
        self._stride_cache = (key, caps, base, demand)
        return caps, base, demand

    def commit_stride(self, plan: StridePlan, times: np.ndarray, dt: float) -> None:
        """Apply a :class:`StridePlan` (node energy, profiler, phase state)."""
        for j, node in enumerate(self.nodes):
            node.deposit_series(plan.powers[:, j], dt)
        for k, rank, count in plan.profiler_updates:
            self.profiler.set_rank_progress(rank, count, timestamp=float(times[k]))
        self._rank_progress = plan.rank_progress
        self.phase = plan.phase
        self.phase_elapsed = plan.phase_elapsed
        if plan.compute_started_at is not None:
            self._compute_started = plan.compute_started_at
        if plan.compute_finished_at is not None:
            self._compute_finished = plan.compute_finished_at
        if plan.end_at is not None:
            self.end_time = plan.end_at
        if plan.compute_tick_power is not None:
            deposits = plan.compute_tick_power * dt
            if deposits.size < 64:
                # Short strides: scalar left-to-right adds — the same IEEE
                # chain as the cumsum fold — without the ufunc setup cost.
                energy = self._compute_energy
                seconds = self._compute_seconds
                for j in deposits.tolist():
                    energy += j
                    seconds += dt
                self._compute_energy = energy
                self._compute_seconds = seconds
            else:
                chain = np.empty(deposits.size + 1)
                chain[0] = self._compute_energy
                chain[1:] = deposits
                self._compute_energy = float(np.cumsum(chain)[-1])
                chain = np.empty(deposits.size + 1)
                chain[0] = self._compute_seconds
                chain[1:] = dt
                self._compute_seconds = float(np.cumsum(chain)[-1])

    def kill(self, now: float) -> None:
        """Terminate the job mid-run (node crash took a rank with it).

        A killed job never reaches :meth:`totals` — its partial epoch
        progress is lost, exactly as when a real MPI rank dies and the whole
        job aborts.  The cluster releases the surviving nodes.
        """
        self.phase = JobPhase.KILLED
        self.end_time = now

    # ------------------------------------------------------------- queries

    @property
    def is_done(self) -> bool:
        return self.phase is JobPhase.DONE

    @property
    def was_killed(self) -> bool:
        return self.phase is JobPhase.KILLED

    @property
    def progress(self) -> float:
        """Job-global fraction of epochs completed, in [0, 1]."""
        return self.profiler.epoch_count / self.job_type.epochs

    @property
    def compute_runtime(self) -> float | None:
        """Seconds in the compute phase, once finished (GEOPM report basis)."""
        if self._compute_started is None or self._compute_finished is None:
            return None
        return self._compute_finished - self._compute_started

    def totals(self) -> ApplicationTotals:
        """Application Totals for the completed job (paper §5.4)."""
        if not self.is_done or self.end_time is None:
            raise RuntimeError(f"job {self.job_id} has not completed")
        runtime = self.compute_runtime or 0.0
        avg_power = self._compute_energy / self._compute_seconds if self._compute_seconds else 0.0
        return ApplicationTotals(
            job_id=self.job_id,
            job_type=self.job_type.name,
            nodes=len(self.nodes),
            runtime=runtime,
            sojourn=self.end_time - self.submit_time,
            energy=sum(n.total_energy for n in self.nodes) - self._energy_at_start,
            epoch_count=self.profiler.epoch_count,
            average_power=avg_power,
        )


def plan_stride_batch(
    jobs: list[RunningJob], times: np.ndarray, dt: float
) -> tuple[int, list[StridePlan]]:
    """Plan one stride for every running job in one batched computation.

    Bit-identical to running :meth:`RunningJob.advance` at each instant in
    ``times`` for the stride length it returns: per-job quantities are
    column blocks of one concatenated matrix computation whose elementwise
    expressions mirror the per-tick operations (same IEEE ops in the same
    order), sequential accumulations (rank progress, ``phase_elapsed``,
    energy) go through ordered ``np.cumsum`` chains ≡ the ``+=`` chains,
    and each job's private RNG stream consumes exactly the per-tick draws
    (``standard_normal``·σ is bit-identical to ``normal(0, σ)`` from the
    same stream, minus the broadcasting slow path).  Job streams are
    independent, so batching per job never reorders anything observable.

    The stride truncates at the earliest phase transition of *any* job —
    epoch completion (RNG-dependent: detected from the drawn trajectory,
    longer draws rewound and the retained prefix redrawn, value-identical),
    or a setup/teardown timer expiry (deterministic: bounded up front).
    Each job therefore stays in one phase per stride; the next stride picks
    up from the new phase.  Caps are constant across a stride — the
    framework only strides between control rounds — so the cached rate and
    demand vectors are loop invariants.

    Returns ``(ticks, plans)`` with plans in ``jobs`` order; only the job
    RNG streams move until :meth:`RunningJob.commit_stride` applies them.
    """
    total = len(times)
    compute_jobs: list[RunningJob] = []
    idle_jobs: list[tuple[RunningJob, np.ndarray, float]] = []
    L = total
    for job in jobs:
        if not job.stride_capable:
            raise RuntimeError(f"job {job.job_id} cannot be stride-planned")
        if job.phase is JobPhase.COMPUTE:
            compute_jobs.append(job)
            continue
        jt = job.job_type
        limit = jt.setup_time if job.phase is JobPhase.SETUP else jt.teardown_time
        # phase_elapsed over the window: ordered cumsum ≡ the += chain; the
        # first tick at or past the limit is the phase transition, and the
        # stride may include it but not run beyond it.
        chain = np.empty(total + 1)
        chain[0] = job.phase_elapsed
        chain[1:] = dt
        pe_chain = np.cumsum(chain)[1:]
        hits = np.flatnonzero(pe_chain >= limit)
        if hits.size:
            L = min(L, int(hits[0]) + 1)
        idle_jobs.append((job, pe_chain, limit))

    completed_flags: np.ndarray | None = None
    if compute_jobs:
        widths = [len(job.nodes) for job in compute_jobs]
        starts: list[int] = []
        acc = 0
        for w in widths:
            starts.append(acc)
            acc += w
        vectors = [job._stride_vectors() for job in compute_jobs]
        caps_cat = np.concatenate([v[0] for v in vectors])
        base_cat = np.concatenate([v[1] for v in vectors])
        demand_cat = np.concatenate([v[2] for v in vectors])
        perf_cat = np.concatenate([j._perf_multipliers for j in compute_jobs])
        idle_cat = np.concatenate([j._idle_powers for j in compute_jobs])
        prog0 = np.concatenate([j._rank_progress for j in compute_jobs])
        counts_cat = np.concatenate(
            [np.asarray(j.profiler.rank_counts) for j in compute_jobs]
        )
        epochs_job = np.array([j.job_type.epochs for j in compute_jobs])
        epochs_cat = np.repeat(epochs_job, widths)
        # One draw per job stream, interleaved [jitter, rapl] per node; the
        # snapshot allows an exact rewind if a completion truncates the
        # stride (the redrawn prefix is value-identical — same stream).
        snapshots = [job.rng.bit_generator.state for job in compute_jobs]
        draws = np.empty((L, 2 * acc))
        for idx, job in enumerate(compute_jobs):
            w2 = 2 * widths[idx]
            z = job.rng.standard_normal(L * w2).reshape(L, w2)
            z *= job._noise_scales
            draws[:, 2 * starts[idx] : 2 * starts[idx] + w2] = z
        jitter = np.exp(draws[:, 0::2])
        rates = perf_cat[None, :] / (base_cat[None, :] * jitter)
        # Rank progress: per-column ordered cumsum ≡ the per-tick += chain.
        prog = np.cumsum(np.vstack((prog0, rates * dt)), axis=0)[1:]
        done = np.minimum(prog.astype(np.int64), epochs_cat)
        # Per-job barrier count after tick k is max(counts₀, done_k).min()
        # over the job's ranks — monotone in k, so a completion inside the
        # window shows at the final tick; screen there before materialising
        # the full reduction.
        fin = (
            np.minimum.reduceat(np.maximum(done[-1], counts_cat), starts)
            >= epochs_job
        )
        M = L
        if fin.any():
            bar = np.minimum.reduceat(
                np.maximum(done, counts_cat[None, :]), starts, axis=1
            )
            bar_done = bar >= epochs_job[None, :]
            M = int(np.argmax(bar_done.any(axis=1))) + 1
            completed_flags = bar_done[M - 1]
            if M < L:
                for idx, job in enumerate(compute_jobs):
                    job.rng.bit_generator.state = snapshots[idx]
                    job.rng.standard_normal(M * 2 * widths[idx])
                draws = draws[:M]
                prog = prog[:M]
                done = done[:M]
        noisy = demand_cat[None, :] * (1.0 + draws[:, 1::2])
        powers_mat = np.minimum(
            caps_cat[None, :], np.maximum(noisy, idle_cat[None, :])
        )
    else:
        M = L

    plans: dict[str, StridePlan] = {}
    if compute_jobs:
        # Profiler crossings for every job in one pass.  done_k is monotone
        # and never below counts₀ (counts₀ is the floored start progress),
        # so the final tick screens for any crossing before the argwhere
        # materialises.  argwhere's row-major order is tick-major, column
        # ascending — the per-tick call order — and splitting the rows by
        # owning job preserves it.
        updates_by_job: list[list[tuple[int, int, int]]] = [[] for _ in compute_jobs]
        if (done[-1] > counts_cat).any():
            prev = np.vstack((counts_cat, done[:-1]))
            rows = np.argwhere(done > prev)
            owners = np.searchsorted(starts, rows[:, 1], side="right") - 1
            for (k, c), jdx in zip(rows.tolist(), owners.tolist()):
                updates_by_job[jdx].append((k, c - starts[jdx], int(done[k, c])))
    for idx, job in enumerate(compute_jobs):
        a = starts[idx]
        b = a + widths[idx]
        # Job tick power: left-to-right accumulation over nodes, matching
        # the scalar `tick_power += power` loop (seeding with the first
        # column is exact: 0.0 + p ≡ p for the strictly positive draws).
        tick_power = powers_mat[:, a].copy()
        for col in range(a + 1, b):
            np.add(tick_power, powers_mat[:, col], out=tick_power)
        completed = completed_flags is not None and bool(completed_flags[idx])
        pe = job.phase_elapsed
        finished_at: float | None = None
        if completed:
            finished_at = float(times[M - 1])
            pe = 0.0
        else:
            for _ in range(M):  # the per-tick += chain, verbatim
                pe += dt
        plans[job.job_id] = StridePlan(
            ticks=M,
            finished=False,
            powers=powers_mat[:, a:b],
            phase=JobPhase.TEARDOWN if completed else JobPhase.COMPUTE,
            phase_elapsed=pe,
            rank_progress=prog[M - 1, a:b].copy(),
            profiler_updates=updates_by_job[idx],
            compute_started_at=None,
            compute_finished_at=finished_at,
            end_at=None,
            compute_tick_power=tick_power,
        )
    for job, pe_chain, limit in idle_jobs:
        n = len(job.nodes)
        caps = np.array([node.power_cap for node in job.nodes])
        idle = job._idle_powers
        eps = job.rng.standard_normal((M, n)) * 0.01
        powers = np.minimum(
            caps[None, :], np.maximum(idle[None, :] * (1.0 + eps), idle[None, :])
        )
        pe = float(pe_chain[M - 1])
        phase = job.phase
        started_at: float | None = None
        end_at: float | None = None
        finished = False
        if pe >= limit:  # the timer expired on the stride's final tick
            if phase is JobPhase.SETUP:
                phase = JobPhase.COMPUTE
                started_at = float(times[M - 1])
            else:
                phase = JobPhase.DONE
                end_at = float(times[M - 1])
                finished = True
            pe = 0.0
        plans[job.job_id] = StridePlan(
            ticks=M,
            finished=finished,
            powers=powers,
            phase=phase,
            phase_elapsed=pe,
            rank_progress=job._rank_progress.copy(),
            profiler_updates=[],
            compute_started_at=started_at,
            compute_finished_at=None,
            end_at=end_at,
            compute_tick_power=None,
        )
    return M, [plans[job.job_id] for job in jobs]
