"""A job instance executing on emulated nodes.

The job advances through setup → compute → teardown phases (§7.2 documents
why setup/teardown matters: short jobs hold nodes at low power for a large
share of their batch-system residency).  During compute, each node's rank
makes epoch progress at the ground-truth rate for the node's current power
cap, scaled by the node's performance-variation multiplier and a run-level
noise coefficient; the job-global epoch count advances when the slowest rank
finishes an iteration (GEOPM's all-processes barrier semantics).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.geopm.endpoint import Endpoint
from repro.geopm.agent import JobAgentGroup
from repro.geopm.profiler import EpochProfiler
from repro.geopm.report import ApplicationTotals
from repro.hwsim.node import Node
from repro.workloads.nas import JobType

__all__ = ["JobPhase", "RunningJob"]

#: Node count above which the batched numpy physics path beats the scalar
#: per-node loop.  Both paths are bit-identical (the golden traces pin them
#: to each other); below this width the ufunc call overhead on 1–2 element
#: arrays costs more than it saves.
BATCH_MIN_NODES = 8


class JobPhase(enum.Enum):
    SETUP = "setup"
    COMPUTE = "compute"
    TEARDOWN = "teardown"
    DONE = "done"
    KILLED = "killed"  # terminated by a node failure; produces no totals


class RunningJob:
    """One executing job: physics state plus its GEOPM plumbing."""

    def __init__(
        self,
        job_id: str,
        job_type: JobType,
        nodes: list[Node],
        *,
        submit_time: float,
        start_time: float,
        rng: np.random.Generator,
        agent_fanout: int = 8,
        run_noise: bool = True,
    ) -> None:
        if not nodes:
            raise ValueError(f"job {job_id}: needs at least one node")
        self.job_id = job_id
        self.job_type = job_type
        self.nodes = nodes
        self.submit_time = float(submit_time)
        self.start_time = float(start_time)
        self.rng = rng
        self.phase = JobPhase.SETUP
        self.phase_elapsed = 0.0
        self.profiler = EpochProfiler(num_ranks=len(nodes))
        self.endpoint = Endpoint(job_id=job_id)
        self.agents = JobAgentGroup(
            [n.pio for n in nodes], self.profiler, self.endpoint, fanout=agent_fanout
        )
        # Only the root node's PlatformIO can serve EPOCH_COUNT (§4.3: the
        # root agent reports the job-global epoch count to the endpoint).
        nodes[0].pio.attach_profiler(self.profiler)
        # Run-level performance coefficient: one draw per execution, giving
        # the run-to-run variance visible in Fig. 3's error bars.
        self._run_multiplier = (
            float(np.exp(rng.normal(0.0, job_type.noise))) if run_noise else 1.0
        )
        # Fractional epoch progress per rank (rank i ↔ node i).
        self._rank_progress = np.zeros(len(nodes), dtype=float)
        # Invariants hoisted for the batched physics path.
        self._perf_multipliers = np.array([n.perf_multiplier for n in nodes])
        self._idle_powers = np.array([n.idle_power for n in nodes])
        # Compute ticks draw, per node in order: one progress-jitter sample
        # (σ = type noise) then one RAPL-noise sample (σ = 0.01, consumed by
        # Node.consume).  A single Generator.normal call with this alternating
        # scale vector reproduces the sequential scalar draws bit for bit.
        scales = np.empty(2 * len(nodes))
        scales[0::2] = job_type.noise
        scales[1::2] = 0.01
        self._noise_scales = scales
        self._compute_started: float | None = None
        self._compute_finished: float | None = None
        self.end_time: float | None = None
        self._energy_at_start = sum(n.total_energy for n in nodes)
        self._compute_energy = 0.0
        self._compute_seconds = 0.0

    # ------------------------------------------------------------- physics

    def advance(self, dt: float, now: float) -> None:
        """Advance the job's physical state by ``dt`` seconds ending at ``now``."""
        if self.phase is JobPhase.DONE:
            self._consume_idle_all(dt)
            return
        self.phase_elapsed += dt
        if self.phase is JobPhase.SETUP:
            self._consume_idle_all(dt)
            if self.phase_elapsed >= self.job_type.setup_time:
                self.phase = JobPhase.COMPUTE
                self.phase_elapsed = 0.0
                self._compute_started = now
            return
        if self.phase is JobPhase.COMPUTE:
            tick_power = self._advance_compute(dt, now)
            self._compute_energy += tick_power * dt
            self._compute_seconds += dt
            if self.profiler.epoch_count >= self.job_type.epochs:
                self.phase = JobPhase.TEARDOWN
                self.phase_elapsed = 0.0
                self._compute_finished = now
            return
        if self.phase is JobPhase.TEARDOWN:
            self._consume_idle_all(dt)
            if self.phase_elapsed >= self.job_type.teardown_time:
                self.phase = JobPhase.DONE
                self.end_time = now

    def _advance_compute(self, dt: float, now: float) -> float:
        """One compute tick across all ranks, batched; returns the job power.

        Every arithmetic step mirrors the per-node scalar loop operation for
        operation (same elementwise IEEE ops, same RNG consumption order), so
        the batched path is bit-identical to the original implementation —
        ``tests/test_golden_traces.py`` holds it to that.
        """
        nodes = self.nodes
        jt = self.job_type
        if len(nodes) < BATCH_MIN_NODES or any(node.failed for node in nodes):
            # Narrow jobs: ufunc overhead dominates, the scalar loop wins.
            # Failed ranks (normally the job is killed before advancing
            # again) also route here — that path consumes no RNG draws for
            # the crashed node.
            return self._advance_compute_nodewise(dt, now)
        caps = np.array([node.power_cap for node in nodes])
        fracs = self._rank_progress / jt.epochs
        # Phase-aware lookup: phase-less types ignore the progress fraction;
        # PhasedJobType switches curves mid-run (§8).
        taus = jt.time_per_epoch_array(caps, fracs)
        draws = self.rng.normal(0.0, self._noise_scales)
        # Per-tick jitter on the progress rate plus the run-level and
        # node-variation multipliers.
        jitter = np.exp(draws[0::2])
        rates = self._perf_multipliers / (taus * self._run_multiplier * jitter)
        self._rank_progress += rates * dt
        done = np.minimum(self._rank_progress.astype(np.int64), jt.epochs)
        counts = np.asarray(self.profiler.rank_counts)
        for i in np.flatnonzero(done > counts):
            self.profiler.set_rank_progress(int(i), int(done[i]), timestamp=now)
        demand = np.minimum(np.maximum(caps, jt.p_min), jt.power_demand_array(fracs))
        if jt.power_wave > 0.0:
            # Epoch-periodic draw signature (compute vs. exchange phases
            # inside each iteration) — what §8's automatic epoch detection
            # listens for.
            demand = demand * (
                1.0 + jt.power_wave * np.sin(2.0 * np.pi * (self._rank_progress % 1.0))
            )
        # Node.consume, batched: RAPL noise, cap ceiling, idle floor.
        noisy = demand * (1.0 + draws[1::2])
        powers = np.minimum(caps, np.maximum(noisy, self._idle_powers))
        tick_power = 0.0
        for node, power in zip(nodes, powers):
            node.deposit(float(power), dt)
            tick_power += float(power)
        return tick_power

    def _advance_compute_nodewise(self, dt: float, now: float) -> float:
        """Reference per-node compute tick (kept for failed-node edge cases)."""
        tick_power = 0.0
        for i, node in enumerate(self.nodes):
            cap = node.power_cap
            frac = self._rank_progress[i] / self.job_type.epochs
            tau = self.job_type.time_per_epoch_at(cap, frac)
            jitter = float(np.exp(self.rng.normal(0.0, self.job_type.noise)))
            rate = node.perf_multiplier / (tau * self._run_multiplier * jitter)
            self._rank_progress[i] += rate * dt
            done_epochs = min(int(self._rank_progress[i]), self.job_type.epochs)
            if done_epochs > self.profiler.rank_counts[i]:
                self.profiler.set_rank_progress(i, done_epochs, timestamp=now)
            demand = min(
                max(cap, self.job_type.p_min),
                self.job_type.power_demand_at(frac),
            )
            if self.job_type.power_wave > 0.0:
                epoch_phase = self._rank_progress[i] % 1.0
                demand *= 1.0 + self.job_type.power_wave * np.sin(
                    2.0 * np.pi * epoch_phase
                )
            tick_power += node.consume(demand, dt, self.rng)
        return tick_power

    def _consume_idle_all(self, dt: float) -> None:
        """Idle-power tick for every node (setup/teardown/done), batched."""
        nodes = self.nodes
        if len(nodes) < BATCH_MIN_NODES or any(node.failed for node in nodes):
            for node in nodes:
                node.consume_idle(dt, self.rng)
            return
        eps = self.rng.normal(0.0, 0.01, size=len(nodes))
        caps = np.array([node.power_cap for node in nodes])
        noisy = self._idle_powers * (1.0 + eps)
        powers = np.minimum(caps, np.maximum(noisy, self._idle_powers))
        for node, power in zip(nodes, powers):
            node.deposit(float(power), dt)

    def kill(self, now: float) -> None:
        """Terminate the job mid-run (node crash took a rank with it).

        A killed job never reaches :meth:`totals` — its partial epoch
        progress is lost, exactly as when a real MPI rank dies and the whole
        job aborts.  The cluster releases the surviving nodes.
        """
        self.phase = JobPhase.KILLED
        self.end_time = now

    # ------------------------------------------------------------- queries

    @property
    def is_done(self) -> bool:
        return self.phase is JobPhase.DONE

    @property
    def was_killed(self) -> bool:
        return self.phase is JobPhase.KILLED

    @property
    def progress(self) -> float:
        """Job-global fraction of epochs completed, in [0, 1]."""
        return self.profiler.epoch_count / self.job_type.epochs

    @property
    def compute_runtime(self) -> float | None:
        """Seconds in the compute phase, once finished (GEOPM report basis)."""
        if self._compute_started is None or self._compute_finished is None:
            return None
        return self._compute_finished - self._compute_started

    def totals(self) -> ApplicationTotals:
        """Application Totals for the completed job (paper §5.4)."""
        if not self.is_done or self.end_time is None:
            raise RuntimeError(f"job {self.job_id} has not completed")
        runtime = self.compute_runtime or 0.0
        avg_power = self._compute_energy / self._compute_seconds if self._compute_seconds else 0.0
        return ApplicationTotals(
            job_id=self.job_id,
            job_type=self.job_type.name,
            nodes=len(self.nodes),
            runtime=runtime,
            sojourn=self.end_time - self.submit_time,
            energy=sum(n.total_energy for n in self.nodes) - self._energy_at_start,
            epoch_count=self.profiler.epoch_count,
            average_power=avg_power,
        )
