"""Total-node power modeling beyond the CPU (paper §7.1).

The paper limits control to CPU power but notes the same framework widens
through modeling: "the cluster tier can apply a model of its total power
demand as a function of the job tier's power and other state within the
cluster".  :class:`NodePowerModel` is that model: it maps CPU power to
whole-node wall power (baseboard/DRAM/NIC static draw plus cooling that
rises superlinearly with heat), and inverts the map so a facility-level
wall-power target can be translated into the CPU budget the budgeters
actually control.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.maths import bisect_scalar

__all__ = ["NodePowerModel", "ClusterPowerModel"]


@dataclass(frozen=True)
class NodePowerModel:
    """Wall power of one node as a function of its CPU power.

        P_wall = static + cpu + fan_coeff · (cpu / cpu_ref)² · cpu_ref

    ``static`` covers baseboard, DRAM, NIC and disks; the quadratic term
    models fans/VR losses growing with dissipated heat.  Defaults are
    calibrated to a dual-socket 2U node: ~90 W static, ~8 % extra at TDP.
    """

    static: float = 90.0
    fan_coeff: float = 0.08
    cpu_ref: float = 280.0

    def __post_init__(self) -> None:
        if self.static < 0:
            raise ValueError(f"static draw must be ≥ 0, got {self.static}")
        if self.fan_coeff < 0:
            raise ValueError(f"fan_coeff must be ≥ 0, got {self.fan_coeff}")
        if self.cpu_ref <= 0:
            raise ValueError(f"cpu_ref must be positive, got {self.cpu_ref}")

    def wall_power(self, cpu_power: float | np.ndarray) -> float | np.ndarray:
        """Whole-node watts for a given CPU draw."""
        cpu = np.asarray(cpu_power, dtype=float)
        if np.any(cpu < 0):
            raise ValueError("CPU power cannot be negative")
        wall = self.static + cpu + self.fan_coeff * (cpu / self.cpu_ref) * cpu
        if np.isscalar(cpu_power):
            return float(wall)
        return wall

    def cpu_power_for_wall(self, wall_target: float) -> float:
        """CPU watts whose wall power equals ``wall_target`` (≥ static)."""
        if wall_target < self.static:
            raise ValueError(
                f"wall target {wall_target} below static draw {self.static}"
            )
        # Monotone in cpu: bisection over a generous bracket.
        hi = max(wall_target, self.cpu_ref * 2.0)
        return bisect_scalar(
            lambda cpu: float(self.wall_power(cpu)) - wall_target, 0.0, hi
        )


@dataclass(frozen=True)
class ClusterPowerModel:
    """Cluster-level wall↔CPU power conversion for the facility tier.

    Treats nodes as homogeneous (the §5.5 testbed is); the facility meter
    reads wall power, the budgeters spend CPU power, and this model converts
    between the two at cluster scope.
    """

    node_model: NodePowerModel
    num_nodes: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be ≥ 1, got {self.num_nodes}")

    def wall_power(self, total_cpu_power: float) -> float:
        """Cluster wall watts given total CPU watts (split evenly)."""
        per_node = total_cpu_power / self.num_nodes
        return self.num_nodes * float(self.node_model.wall_power(per_node))

    def cpu_budget_for_wall(self, wall_target: float) -> float:
        """Total CPU watts the budgeters may spend under a wall-power target."""
        per_node_wall = wall_target / self.num_nodes
        return self.num_nodes * self.node_model.cpu_power_for_wall(per_node_wall)

    @property
    def static_wall_power(self) -> float:
        """Wall draw with every CPU at zero — the conversion's floor."""
        return self.num_nodes * self.node_model.static
