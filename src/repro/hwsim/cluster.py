"""The emulated cluster: node pool, job lifecycle, facility power metering.

Mirrors the paper's testbed (§5.5): 16 dual-package nodes by default, RAPL
cap range 140–280 W per node, so the whole cluster spans 2.24–4.48 kW — the
band Fig. 9's demand-response targets move within.
"""

from __future__ import annotations

import numpy as np

from repro.geopm.report import ApplicationTotals
from repro.hwsim.job import BATCH_MIN_NODES, RunningJob, plan_stride_batch
from repro.hwsim.node import Node
from repro.util.clock import SimClock
from repro.util.rng import ensure_rng, spawn_rng
from repro.workloads.nas import JobType

__all__ = ["EmulatedCluster"]


class EmulatedCluster:
    """A pool of emulated nodes plus the jobs running on them."""

    def __init__(
        self,
        num_nodes: int = 16,
        *,
        clock: SimClock | None = None,
        seed: int | np.random.Generator | None = None,
        idle_power: float = 60.0,
        perf_variation_std: float = 0.0,
        agent_fanout: int = 8,
        run_noise: bool = True,
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"cluster needs ≥ 1 node, got {num_nodes}")
        self.clock = clock if clock is not None else SimClock()
        rng = ensure_rng(seed)
        node_rngs = spawn_rng(rng, num_nodes)
        self._job_rng = rng
        self.agent_fanout = int(agent_fanout)
        self.run_noise = bool(run_noise)
        self.nodes = []
        for i in range(num_nodes):
            mult = 1.0
            if perf_variation_std > 0:
                # §6.4: per-node coefficients from N(1, σ), fixed per node
                # for the whole simulation.  Floor keeps rates physical.
                mult = max(0.05, 1.0 + float(node_rngs[i].normal(0.0, perf_variation_std)))
            self.nodes.append(
                Node(
                    i,
                    clock_fn=lambda: self.clock.now,
                    idle_power=idle_power,
                    perf_multiplier=mult,
                )
            )
        self._node_rngs = node_rngs
        self.running: dict[str, RunningJob] = {}
        self.completed: list[ApplicationTotals] = []
        self.killed: list[tuple[float, str]] = []  # (time, job_id) of kills
        self._power_history: list[tuple[float, float]] = []

    # ------------------------------------------------------------ node pool

    def idle_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.is_idle]

    def failed_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.failed]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def min_cluster_power(self) -> float:
        """Lowest enforceable CPU cap total across all nodes (W)."""
        return sum(n.min_power_cap for n in self.nodes)

    @property
    def max_cluster_power(self) -> float:
        return sum(n.max_power_cap for n in self.nodes)

    # --------------------------------------------------------- job lifecycle

    def start_job(
        self,
        job_id: str,
        job_type: JobType,
        *,
        submit_time: float | None = None,
        nodes: list[Node] | None = None,
    ) -> RunningJob:
        """Place a job on idle nodes (or explicit ``nodes``) and start it."""
        if job_id in self.running:
            raise ValueError(f"job id {job_id!r} already running")
        if nodes is None:
            pool = self.idle_nodes()
            if len(pool) < job_type.nodes:
                raise RuntimeError(
                    f"not enough idle nodes for {job_id}: "
                    f"need {job_type.nodes}, have {len(pool)}"
                )
            nodes = pool[: job_type.nodes]
        busy = [n.node_id for n in nodes if not n.is_idle]
        if busy:
            raise RuntimeError(f"nodes already allocated: {busy}")
        now = self.clock.now
        job_rng = spawn_rng(self._job_rng, 1)[0]
        job = RunningJob(
            job_id,
            job_type,
            nodes,
            submit_time=now if submit_time is None else submit_time,
            start_time=now,
            rng=job_rng,
            agent_fanout=self.agent_fanout,
            run_noise=self.run_noise,
        )
        for node in nodes:
            node.job_id = job_id
        self.running[job_id] = job
        return job

    def kill_job(self, job_id: str) -> RunningJob:
        """Terminate a running job mid-flight, releasing its nodes.

        Unlike normal completion the job produces no Application Totals —
        its partial progress is lost and the caller decides whether to
        requeue it.
        """
        if job_id not in self.running:
            raise KeyError(f"job {job_id!r} is not running")
        job = self.running.pop(job_id)
        for node in job.nodes:
            node.job_id = None
            node.pio.detach_profiler()
        job.kill(self.clock.now)
        self.killed.append((self.clock.now, job_id))
        return job

    def fail_node(self, node_id: int) -> str | None:
        """Crash one node; returns the job id it killed, if any.

        The victim job (if the node was allocated) is killed on every node
        it occupied — an MPI job does not survive losing a rank.  The node
        stays out of the pool until :meth:`restore_node`.
        """
        node = self.nodes[node_id]
        if node.failed:
            return None
        victim = node.job_id
        if victim is not None:
            self.kill_job(victim)
        node.fail()
        return victim

    def restore_node(self, node_id: int) -> None:
        """Bring a crashed node back into the schedulable pool."""
        self.nodes[node_id].restore()

    def advance(self, dt: float) -> float:
        """Advance physics by ``dt`` (clock already moved by the caller).

        Jobs advance, idle nodes draw idle power, and completed jobs release
        their nodes.  Returns the realised cluster CPU power for the tick.
        """
        now = self.clock.now
        finished = []
        for job in self.running.values():
            job.advance(dt, now)
            if job.is_done:
                finished.append(job.job_id)
        idle = self.idle_nodes()
        if len(idle) >= BATCH_MIN_NODES:
            # One draw per idle node from its own stream (order matches the
            # per-node consume_idle loop); the cap/floor arithmetic and
            # energy deposit batch across nodes.
            eps = np.array(
                [self._node_rngs[n.node_id].normal(0.0, 0.01) for n in idle]
            )
            idle_powers = np.array([n.idle_power for n in idle])
            caps = np.array([n.power_cap for n in idle])
            powers = np.minimum(caps, np.maximum(idle_powers * (1.0 + eps), idle_powers))
            for node, power in zip(idle, powers):
                node.deposit(float(power), dt)
        else:
            for node in idle:
                node.consume_idle(dt, self._node_rngs[node.node_id])
        for job_id in finished:
            job = self.running.pop(job_id)
            for node in job.nodes:
                node.job_id = None
                node.pio.detach_profiler()
            self.completed.append(job.totals())
        power = sum(n.last_power for n in self.nodes)
        self._power_history.append((now, power))
        return power

    def stride_ready(self) -> bool:
        """True when every running job can be advanced analytically.

        Jobs with epoch-periodic power waves, phased curves, or failed nodes
        force the per-tick path (see :attr:`RunningJob.stride_capable`).
        """
        for job in self.running.values():
            if not job.stride_capable:
                return False
        return True

    def advance_stride(self, times: np.ndarray, dt: float) -> tuple[int, np.ndarray]:
        """Advance physics across every instant in ``times`` in one call.

        Returns ``(M, totals)``: the number of ticks actually executed and
        the per-tick cluster power, bit-identical to ``M`` successive
        :meth:`advance` calls at those instants.  ``M < len(times)`` exactly
        when some job crosses a phase transition — the stride truncates at
        the earliest one so completions release nodes (and the scheduler
        sees them) on the very next tick, as under per-tick stepping.

        Callers must not change any per-tick input (caps, node allocation,
        fault state) between the instants covered; the framework guarantees
        this by striding only across control-event-free ticks.
        """
        total = len(times)
        if total == 0:
            return 0, np.empty(0)
        jobs = list(self.running.values())
        ticks, plans = plan_stride_batch(jobs, times, dt)
        finished = []
        for job, plan in zip(jobs, plans):
            job.commit_stride(plan, times, dt)
            if job.is_done:
                finished.append(job.job_id)
        # Per-node power series for the whole fleet: job plans fill their
        # nodes' columns, idle nodes draw their own streams, failed nodes
        # hold their last (zero) draw.
        series = np.empty((ticks, len(self.nodes)))
        for node in self.nodes:
            series[:, node.node_id] = node.last_power
        for job, plan in zip(jobs, plans):
            for j, node in enumerate(job.nodes):
                series[:, node.node_id] = plan.powers[:, j]
        for node in self.idle_nodes():
            rng = self._node_rngs[node.node_id]
            # standard_normal·σ ≡ normal(0, σ) bit for bit, minus the
            # broadcasting slow path of the scale argument.
            eps = rng.standard_normal(ticks) * 0.01
            noisy = node.idle_power * (1.0 + eps)
            powers = np.minimum(node.power_cap, np.maximum(noisy, node.idle_power))
            node.deposit_series(powers, dt)
            series[:, node.node_id] = powers
        for job_id in finished:
            job = self.running.pop(job_id)
            for node in job.nodes:
                node.job_id = None
                node.pio.detach_profiler()
            self.completed.append(job.totals())
        # Cluster power per tick: left-to-right accumulation in node order,
        # matching the scalar `sum(n.last_power for n in self.nodes)`
        # (seeding with node 0's column is exact: 0 + p ≡ p for the
        # non-negative draws).
        totals = series[:, self.nodes[0].node_id].copy()
        for node in self.nodes[1:]:
            np.add(totals, series[:, node.node_id], out=totals)
        for k in range(ticks):
            self._power_history.append((float(times[k]), float(totals[k])))
        return ticks, totals

    # ------------------------------------------------------------- metering

    @property
    def measured_power(self) -> float:
        """Facility-metered cluster CPU power of the latest tick (W)."""
        if not self._power_history:
            return sum(n.last_power for n in self.nodes)
        return self._power_history[-1][1]

    def power_history(self) -> np.ndarray:
        """(time, watts) samples for every tick so far, shape (n, 2)."""
        if not self._power_history:
            return np.empty((0, 2))
        return np.asarray(self._power_history)

    def totals_by_type(self) -> dict[str, list[ApplicationTotals]]:
        by_type: dict[str, list[ApplicationTotals]] = {}
        for totals in self.completed:
            by_type.setdefault(totals.job_type, []).append(totals)
        return by_type
