"""A faithful reimplementation of the GEOPM subset the paper relies on.

The paper's job tier (§4.2–§4.3) uses GEOPM to (a) count application epochs
via ``geopm_prof_epoch()`` instrumentation, (b) read package energy from the
``PKG_ENERGY_STATUS`` MSR through msr-safe, (c) enforce CPU power caps via
the ``PKG_POWER_LIMIT`` MSR, and (d) move data between a per-job endpoint and
one agent instance per node over a hierarchical communication tree.  This
package provides those four pieces against the emulated hardware in
:mod:`repro.hwsim`.
"""

from repro.geopm.msr import MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT, MsrBank
from repro.geopm.signals import PlatformIO, SignalNames, ControlNames
from repro.geopm.profiler import EpochProfiler
from repro.geopm.comm_tree import AgentTree
from repro.geopm.agent import AgentPolicy, AgentSample, PowerGovernorAgent
from repro.geopm.endpoint import Endpoint
from repro.geopm.report import ApplicationTotals, render_report

__all__ = [
    "MSR_PKG_ENERGY_STATUS",
    "MSR_PKG_POWER_LIMIT",
    "MsrBank",
    "PlatformIO",
    "SignalNames",
    "ControlNames",
    "EpochProfiler",
    "AgentTree",
    "AgentPolicy",
    "AgentSample",
    "PowerGovernorAgent",
    "Endpoint",
    "ApplicationTotals",
    "render_report",
]
