"""GEOPM endpoint interface: the root agent's mailbox (paper §3–§4).

The endpoint is the software interface at the root of the agent hierarchy
"that can be used to dynamically write new objectives and read summarized
state updates from agents".  In the paper the job-tier power modeler talks to
it over shared memory; here it is a pair of single-slot mailboxes with the
same last-writer-wins semantics shared memory gives you.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import with agent.py
    from repro.geopm.agent import AgentPolicy, AgentSample

__all__ = ["Endpoint"]


class Endpoint:
    """Single-slot policy/sample mailboxes between modeler and root agent."""

    def __init__(self, job_id: str = "") -> None:
        self.job_id = job_id
        self._policy: "AgentPolicy | None" = None
        self._sample: "AgentSample | None" = None
        self.policies_written = 0
        self.samples_published = 0

    # --------------------------------------------------- modeler-facing side

    def write_policy(self, policy: "AgentPolicy") -> None:
        """Set a new objective; overwrites any not-yet-consumed policy."""
        self._policy = policy
        self.policies_written += 1

    def read_sample(self) -> "AgentSample | None":
        """Latest summarized agent state (None until the first publish)."""
        return self._sample

    # ----------------------------------------------------- agent-facing side

    def take_policy(self) -> "AgentPolicy | None":
        """Consume the pending policy, if any (root agent, once per period)."""
        policy, self._policy = self._policy, None
        return policy

    def publish_sample(self, sample: "AgentSample") -> None:
        self._sample = sample
        self.samples_published += 1

    @property
    def has_pending_policy(self) -> bool:
        return self._policy is not None
