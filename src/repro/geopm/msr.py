"""Emulated model-specific registers (MSRs) for CPU packages.

The paper's GEOPM deployment reads ``PKG_ENERGY_STATUS`` and writes
``PKG_POWER_LIMIT`` through the msr-safe kernel module (§5.4).  We emulate
the two registers with realistic semantics:

* ``PKG_ENERGY_STATUS`` is a 32-bit accumulating counter in units of
  2⁻¹⁶ J (≈15.3 µJ), which **wraps around** every few hours at package TDP.
  Consumers must compute modular deltas, as real power managers do.
* ``PKG_POWER_LIMIT`` stores the RAPL cap in units of 2⁻³ W (0.125 W), so
  written caps are quantised — another real-hardware effect the control
  plane has to live with.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MSR_PKG_POWER_LIMIT",
    "MSR_PKG_ENERGY_STATUS",
    "ENERGY_UNIT_JOULES",
    "POWER_UNIT_WATTS",
    "ENERGY_COUNTER_BITS",
    "MsrBank",
    "energy_counter_delta",
]

#: Register addresses mirror the Intel SDM so code reads like the real thing.
MSR_PKG_POWER_LIMIT = 0x610
MSR_PKG_ENERGY_STATUS = 0x611

#: RAPL energy status unit: 2**-16 joules.
ENERGY_UNIT_JOULES = 1.0 / (1 << 16)
#: RAPL power limit unit: 2**-3 watts.
POWER_UNIT_WATTS = 0.125
#: The energy counter is 32 bits wide and wraps silently.
ENERGY_COUNTER_BITS = 32

_ENERGY_MASK = (1 << ENERGY_COUNTER_BITS) - 1


def energy_counter_delta(before: int, after: int) -> float:
    """Joules elapsed between two raw counter reads, handling wraparound."""
    raw = (after - before) & _ENERGY_MASK
    return raw * ENERGY_UNIT_JOULES


class MsrBank:
    """The MSR file of one CPU package.

    The hardware emulator deposits consumed energy with
    :meth:`accumulate_energy`; agents read/write raw register values exactly
    as they would through ``/dev/cpu/*/msr_safe``.
    """

    def __init__(self, *, tdp_watts: float = 140.0, min_power_watts: float = 70.0):
        if min_power_watts <= 0 or tdp_watts <= min_power_watts:
            raise ValueError(
                f"need 0 < min_power < tdp, got {min_power_watts}, {tdp_watts}"
            )
        self.tdp_watts = float(tdp_watts)
        self.min_power_watts = float(min_power_watts)
        self._energy_raw = 0  # 32-bit accumulating counter
        self._energy_joules_total = 0.0  # unwrapped ground truth (emulator only)
        self._power_limit_raw = int(round(tdp_watts / POWER_UNIT_WATTS))
        #: Bumped on every power-limit write; lets node-level cap sums be
        #: cached and invalidated without re-deriving watts on each read.
        self.cap_version = 0

    # ---------------------------------------------------------- register API

    def read(self, address: int) -> int:
        if address == MSR_PKG_ENERGY_STATUS:
            return self._energy_raw
        if address == MSR_PKG_POWER_LIMIT:
            return self._power_limit_raw
        raise KeyError(f"unsupported MSR address {address:#x}")

    def write(self, address: int, value: int) -> None:
        if address == MSR_PKG_POWER_LIMIT:
            if value < 0:
                raise ValueError(f"power limit cannot be negative: {value}")
            self._power_limit_raw = int(value)
            self.cap_version += 1
            return
        if address == MSR_PKG_ENERGY_STATUS:
            raise PermissionError("PKG_ENERGY_STATUS is read-only")
        raise KeyError(f"unsupported MSR address {address:#x}")

    # ----------------------------------------------------- watt-level helpers

    @property
    def power_limit_watts(self) -> float:
        """The cap currently programmed, clamped into the actuatable range."""
        requested = self._power_limit_raw * POWER_UNIT_WATTS
        return min(max(requested, self.min_power_watts), self.tdp_watts)

    def set_power_limit_watts(self, watts: float) -> float:
        """Program a cap in watts; returns the quantised value stored."""
        clamped = min(max(watts, self.min_power_watts), self.tdp_watts)
        self.write(MSR_PKG_POWER_LIMIT, int(round(clamped / POWER_UNIT_WATTS)))
        return self.power_limit_watts

    # ------------------------------------------------------ emulator plumbing

    def accumulate_energy(self, joules: float) -> None:
        """Deposit consumed energy (called by the hardware emulator only)."""
        if joules < 0:
            raise ValueError(f"cannot consume negative energy: {joules}")
        self._energy_joules_total += joules
        ticks = int(round(self._energy_joules_total / ENERGY_UNIT_JOULES))
        self._energy_raw = ticks & _ENERGY_MASK

    def accumulate_energy_series(self, joules: np.ndarray) -> None:
        """Deposit a run of per-tick energies in one call (stride commit).

        The unwrapped total is folded with ``np.cumsum`` over the chain
        ``[total, j₁, …, jₙ]`` — an ordered left-to-right accumulation, so
        the final total is bit-identical to n sequential
        :meth:`accumulate_energy` calls.  The raw counter is a pure function
        of that total; intermediate raw values are only ever observed at
        agent samples, which bound strides, so deriving it once at the end
        is exact.
        """
        deposits = np.asarray(joules, dtype=float)
        if deposits.size == 0:
            return
        if float(deposits.min()) < 0:
            raise ValueError(f"cannot consume negative energy: {deposits.min()}")
        if deposits.size < 64:
            # Short runs (typical stride length): a scalar loop of the same
            # left-to-right adds beats the ufunc setup cost.
            total = self._energy_joules_total
            for j in deposits.tolist():
                total += j
            self._energy_joules_total = total
        else:
            chain = np.empty(deposits.size + 1)
            chain[0] = self._energy_joules_total
            chain[1:] = deposits
            self._energy_joules_total = float(np.cumsum(chain)[-1])
        ticks = int(round(self._energy_joules_total / ENERGY_UNIT_JOULES))
        self._energy_raw = ticks & _ENERGY_MASK

    @property
    def total_energy_joules(self) -> float:
        """Unwrapped cumulative energy — ground truth for tests/metering."""
        return self._energy_joules_total
