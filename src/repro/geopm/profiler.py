"""Application epoch instrumentation (``geopm_prof_epoch()``, paper §4.3/§5.1).

The paper inserts one ``geopm_prof_epoch()`` call per iteration of each
benchmark's main outer loop; the epoch count increments once **all**
processes across all nodes running the benchmark have reached the call.
:class:`EpochProfiler` reproduces that barrier semantics: each rank calls
:meth:`prof_epoch`, and the global count is the minimum per-rank count.
The hardware emulator drives ranks directly from job progress.
"""

from __future__ import annotations

__all__ = ["EpochProfiler"]


class EpochProfiler:
    """Barrier-style epoch counter shared by all ranks of one job."""

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ValueError(f"num_ranks must be ≥ 1, got {num_ranks}")
        self.num_ranks = int(num_ranks)
        self._rank_counts = [0] * self.num_ranks
        self._epoch_times: list[float] = []  # completion time of each epoch

    def prof_epoch(self, rank: int, *, timestamp: float = 0.0) -> int:
        """Rank ``rank`` finished one more main-loop iteration.

        Returns the new global epoch count.  The global count only advances
        when the slowest rank reaches the call, mirroring GEOPM's
        all-processes semantics.
        """
        if not 0 <= rank < self.num_ranks:
            raise IndexError(f"rank {rank} out of range [0, {self.num_ranks})")
        before = self.epoch_count
        self._rank_counts[rank] += 1
        after = self.epoch_count
        for _ in range(after - before):
            self._epoch_times.append(float(timestamp))
        return after

    def set_rank_progress(self, rank: int, count: int, *, timestamp: float = 0.0) -> int:
        """Set a rank's cumulative epoch count directly (emulator fast path)."""
        if not 0 <= rank < self.num_ranks:
            raise IndexError(f"rank {rank} out of range [0, {self.num_ranks})")
        if count < self._rank_counts[rank]:
            raise ValueError(
                f"rank {rank} epoch count went backwards: "
                f"{self._rank_counts[rank]} -> {count}"
            )
        before = self.epoch_count
        self._rank_counts[rank] = int(count)
        after = self.epoch_count
        for _ in range(after - before):
            self._epoch_times.append(float(timestamp))
        return after

    @property
    def epoch_count(self) -> int:
        """Global epoch count: iterations completed by *every* rank."""
        return min(self._rank_counts)

    @property
    def rank_counts(self) -> tuple[int, ...]:
        return tuple(self._rank_counts)

    @property
    def epoch_times(self) -> tuple[float, ...]:
        """Timestamps at which each global epoch completed."""
        return tuple(self._epoch_times)

    def seconds_per_epoch(self, last_n: int | None = None) -> float:
        """Mean seconds between recent epoch completions (≥ 2 epochs needed)."""
        times = self._epoch_times if last_n is None else self._epoch_times[-last_n:]
        if len(times) < 2:
            raise ValueError("need at least two completed epochs")
        return (times[-1] - times[0]) / (len(times) - 1)
