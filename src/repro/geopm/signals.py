"""GEOPM-style signal/control name registry bound to emulated hardware.

GEOPM exposes hardware telemetry as named *signals* and knobs as named
*controls* (§4 of the paper names ``CPU_ENERGY`` and
``CPU_POWER_LIMIT_CONTROL``, backed by the ``PKG_ENERGY_STATUS`` and
``PKG_POWER_LIMIT`` MSRs).  :class:`PlatformIO` is the per-node access layer
that agents use; it aggregates across the node's CPU packages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.geopm.msr import (
    MSR_PKG_ENERGY_STATUS,
    MsrBank,
    energy_counter_delta,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.geopm.profiler import EpochProfiler

__all__ = ["SignalNames", "ControlNames", "PlatformIO"]


class SignalNames:
    """Signal identifiers mirroring the paper's GEOPM configuration (§5.4)."""

    CPU_ENERGY = "CPU_ENERGY"
    CPU_POWER = "CPU_POWER"
    EPOCH_COUNT = "EPOCH_COUNT"
    TIME = "TIME"


class ControlNames:
    """Control identifiers (§5.4)."""

    CPU_POWER_LIMIT_CONTROL = "CPU_POWER_LIMIT_CONTROL"


class PlatformIO:
    """Per-node signal/control access over the node's MSR banks.

    ``CPU_ENERGY`` sums package energy counters (handling 32-bit wraparound
    per package), ``CPU_POWER_LIMIT_CONTROL`` splits a node-level cap evenly
    across packages — matching how GEOPM's power governor treats
    multi-package nodes.
    """

    def __init__(
        self,
        msr_banks: Sequence[MsrBank],
        *,
        clock_fn,
        profiler: "EpochProfiler | None" = None,
    ) -> None:
        if not msr_banks:
            raise ValueError("a node needs at least one CPU package")
        self._banks = list(msr_banks)
        self._clock_fn = clock_fn
        self._profiler = profiler
        self._last_energy_raw = [b.read(MSR_PKG_ENERGY_STATUS) for b in self._banks]
        self._energy_joules = 0.0  # unwrapped, accumulated from deltas
        self._last_power_read: tuple[float, float] | None = None  # (time, energy)
        self._last_power_value = 0.0

    # --------------------------------------------------------------- signals

    def read_signal(self, name: str) -> float:
        if name == SignalNames.TIME:
            return float(self._clock_fn())
        if name == SignalNames.CPU_ENERGY:
            self._update_energy()
            return self._energy_joules
        if name == SignalNames.CPU_POWER:
            return self._read_power()
        if name == SignalNames.EPOCH_COUNT:
            if self._profiler is None:
                raise KeyError("no profiler attached; EPOCH_COUNT unavailable")
            return float(self._profiler.epoch_count)
        raise KeyError(f"unknown signal {name!r}")

    def _update_energy(self) -> None:
        for i, bank in enumerate(self._banks):
            raw = bank.read(MSR_PKG_ENERGY_STATUS)
            self._energy_joules += energy_counter_delta(self._last_energy_raw[i], raw)
            self._last_energy_raw[i] = raw

    def _read_power(self) -> float:
        """Average node power since the previous CPU_POWER read."""
        now = float(self._clock_fn())
        self._update_energy()
        energy = self._energy_joules
        if self._last_power_read is None:
            self._last_power_read = (now, energy)
            return 0.0
        t0, e0 = self._last_power_read
        dt = now - t0
        if dt <= 0:
            return self._last_power_value
        self._last_power_read = (now, energy)
        self._last_power_value = (energy - e0) / dt
        return self._last_power_value

    def sample(self) -> tuple[float, float, float]:
        """One-shot ``(CPU_POWER, CPU_ENERGY, applied cap)`` read.

        Agents read all three every control period; reading them through one
        call skips the second energy-counter sweep (its delta is always zero
        because nothing deposits energy between the reads) while returning
        exactly what three :meth:`read_signal`/:meth:`read_control` calls
        would.
        """
        power = self._read_power()  # unwraps + accumulates the counters
        applied = sum(b.power_limit_watts for b in self._banks)
        return power, self._energy_joules, applied

    # -------------------------------------------------------------- controls

    def write_control(self, name: str, value: float) -> None:
        if name == ControlNames.CPU_POWER_LIMIT_CONTROL:
            per_package = value / len(self._banks)
            for bank in self._banks:
                bank.set_power_limit_watts(per_package)
            return
        raise KeyError(f"unknown control {name!r}")

    def read_control(self, name: str) -> float:
        if name == ControlNames.CPU_POWER_LIMIT_CONTROL:
            return sum(b.power_limit_watts for b in self._banks)
        raise KeyError(f"unknown control {name!r}")

    @property
    def num_packages(self) -> int:
        return len(self._banks)

    def attach_profiler(self, profiler: "EpochProfiler") -> None:
        self._profiler = profiler

    def detach_profiler(self) -> None:
        self._profiler = None
