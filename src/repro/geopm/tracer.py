"""GEOPM-style trace files: per-control-period sample logs.

Real GEOPM can emit a trace CSV per node with one row per agent control
period.  The paper's debugging story (§7.2, timestamp alignment across
tiers) is exactly the kind of analysis these traces enable.  The tracer
hooks a job's agent group and appends one row per root-agent sample; traces
round-trip through :func:`read_trace`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import IO

import numpy as np

from repro.geopm.agent import AgentSample

__all__ = ["JobTracer", "read_trace", "TRACE_FIELDS"]

TRACE_FIELDS = (
    "time",
    "power",
    "energy",
    "epoch_count",
    "nodes",
    "applied_cap",
)


class JobTracer:
    """Appends one CSV row per root-agent sample for a single job."""

    def __init__(self, path: str | Path, *, job_id: str = "") -> None:
        self.path = Path(path)
        self.job_id = job_id
        self._fh: IO[str] | None = None
        self._writer = None
        self.rows_written = 0

    def _ensure_open(self) -> None:
        if self._fh is None:
            self._fh = self.path.open("w", newline="")
            self._writer = csv.writer(self._fh)
            self._writer.writerow(["# geopm-style trace", self.job_id])
            self._writer.writerow(TRACE_FIELDS)

    def record(self, sample: AgentSample) -> None:
        """Append one control-period row."""
        self._ensure_open()
        self._writer.writerow(
            [
                repr(sample.timestamp),
                repr(sample.power),
                repr(sample.energy),
                sample.epoch_count,
                sample.nodes,
                repr(sample.applied_cap),
            ]
        )
        self.rows_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JobTracer":
        self._ensure_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str | Path) -> np.ndarray:
    """Load a trace as a float array with :data:`TRACE_FIELDS` columns."""
    path = Path(path)
    rows: list[list[float]] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        comment = next(reader, None)
        if not comment or not comment[0].startswith("# geopm-style trace"):
            raise ValueError(f"{path}: not a trace file")
        header = next(reader, None)
        if tuple(header or ()) != TRACE_FIELDS:
            raise ValueError(f"{path}: unexpected trace header {header!r}")
        for row in reader:
            if row:
                rows.append([float(v) for v in row])
    if not rows:
        return np.empty((0, len(TRACE_FIELDS)))
    return np.asarray(rows)
