"""Balanced agent communication tree for multi-node jobs (paper §4.3).

When the endpoint sends a new power cap to a job's root agent, the cap is
forwarded "over a communication tree to the rest of the agent instances (one
per node running the job)".  We model the tree as a heap-shaped balanced
k-ary tree over the job's node-local agents; each hop costs one agent control
period, so deep trees see policy staleness — a scalability effect §8 flags.
"""

from __future__ import annotations

__all__ = ["AgentTree"]


class AgentTree:
    """Heap-shaped balanced k-ary tree over ``size`` agent instances.

    Index 0 is the root (the agent that owns the endpoint connection);
    node ``i``'s children are ``k·i + 1 … k·i + k``.
    """

    def __init__(self, size: int, fanout: int = 8) -> None:
        if size < 1:
            raise ValueError(f"tree needs at least one agent, got {size}")
        if fanout < 1:
            raise ValueError(f"fanout must be ≥ 1, got {fanout}")
        self.size = int(size)
        self.fanout = int(fanout)

    def parent(self, index: int) -> int | None:
        """Parent index, or None for the root."""
        self._check(index)
        if index == 0:
            return None
        return (index - 1) // self.fanout

    def children(self, index: int) -> list[int]:
        self._check(index)
        first = self.fanout * index + 1
        return [i for i in range(first, first + self.fanout) if i < self.size]

    def is_leaf(self, index: int) -> bool:
        return not self.children(index)

    def depth(self, index: int) -> int:
        """Hops from the root (root depth is 0)."""
        self._check(index)
        depth = 0
        while index != 0:
            index = (index - 1) // self.fanout
            depth += 1
        return depth

    @property
    def height(self) -> int:
        """Maximum depth over all agents; policy staleness is ≤ height hops.

        In a heap-shaped tree the last index is always on the deepest level.
        """
        return self.depth(self.size - 1)

    def breadth_first(self) -> list[int]:
        return list(range(self.size))

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"agent index {index} out of range [0, {self.size})")
