"""Power-governor agents: enforce caps, report epochs (paper §4.3).

One :class:`PowerGovernorAgent` runs per node of a job.  The paper modified
GEOPM's ``power_governor`` agent to write the epoch count to the endpoint;
agents on multi-node jobs relay policy down and samples up a balanced
communication tree, one hop per control period.  :class:`JobAgentGroup`
wires a job's agents, its tree, and its endpoint together and is what the
hardware-experiment harness steps every agent control period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geopm.comm_tree import AgentTree
from repro.geopm.endpoint import Endpoint
from repro.geopm.profiler import EpochProfiler
from repro.geopm.signals import ControlNames, PlatformIO

__all__ = ["AgentPolicy", "AgentSample", "PowerGovernorAgent", "JobAgentGroup"]


@dataclass(frozen=True)
class AgentPolicy:
    """Control message flowing down the tree: the per-node CPU power cap.

    With a ``lease_ttl`` the policy is a *lease*: past
    ``issued_at + lease_ttl`` the agent treats its controller as silent and
    decays the cap toward ``safe_floor`` over ``ramp_seconds`` (a dead-man
    switch for the case where the job endpoint itself dies).  ``None``
    (default) keeps the pre-lease hold-last-value behaviour.
    """

    power_cap_node: float
    issued_at: float = 0.0
    lease_ttl: float | None = None
    safe_floor: float | None = None
    ramp_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.power_cap_node <= 0:
            raise ValueError(f"power cap must be positive, got {self.power_cap_node}")
        if self.lease_ttl is not None and self.lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {self.lease_ttl}")
        if self.ramp_seconds < 0:
            raise ValueError(f"ramp_seconds must be ≥ 0, got {self.ramp_seconds}")

    def effective_cap(self, now: float) -> float:
        """Cap to enforce at time ``now``, honouring lease expiry.

        Inside the lease (or with no lease) this is the dispatched cap;
        past expiry it ramps linearly down to ``safe_floor`` over
        ``ramp_seconds`` and stays there.  Never *raises* the cap: a floor
        above the dispatched cap clamps to the dispatched cap.
        """
        if self.lease_ttl is None or self.safe_floor is None:
            return self.power_cap_node
        expired_for = now - (self.issued_at + self.lease_ttl)
        if expired_for <= 0:
            return self.power_cap_node
        floor = min(self.safe_floor, self.power_cap_node)
        if self.ramp_seconds <= 0 or expired_for >= self.ramp_seconds:
            return floor
        frac = expired_for / self.ramp_seconds
        return self.power_cap_node - frac * (self.power_cap_node - floor)


@dataclass(frozen=True)
class AgentSample:
    """Status message flowing up the tree.

    ``power`` and ``energy`` aggregate over the reporting subtree;
    ``epoch_count`` is the job-global count (all-ranks barrier), read at the
    root from the profiler.
    """

    timestamp: float
    power: float
    energy: float
    epoch_count: int
    nodes: int
    applied_cap: float


class PowerGovernorAgent:
    """One agent instance on one node of a job."""

    def __init__(
        self,
        platform_io: PlatformIO,
        *,
        tree_index: int,
        profiler: EpochProfiler | None = None,
    ) -> None:
        self.pio = platform_io
        self.tree_index = int(tree_index)
        self.profiler = profiler  # only the root agent reads epochs
        self.policy: AgentPolicy | None = None
        self._policy_inbox: AgentPolicy | None = None
        self._child_samples: dict[int, AgentSample] = {}
        self.last_sample: AgentSample | None = None

    # ---------------------------------------------------------- message I/O

    def deliver_policy(self, policy: AgentPolicy) -> None:
        """Deposit a policy to be applied on this agent's next step."""
        self._policy_inbox = policy

    def deliver_child_sample(self, child_index: int, sample: AgentSample) -> None:
        self._child_samples[child_index] = sample

    # ---------------------------------------------------------------- control

    def step(self, now: float) -> AgentSample:
        """One control-loop iteration: apply policy, sample, aggregate.

        Returns the aggregated sample for this agent's subtree (to be
        forwarded to the parent by the group).
        """
        if self._policy_inbox is not None:
            self.policy = self._policy_inbox
            self._policy_inbox = None
            self.pio.write_control(
                ControlNames.CPU_POWER_LIMIT_CONTROL,
                self.policy.effective_cap(now),
            )
        elif self.policy is not None and self.policy.lease_ttl is not None:
            # Leased policy with no refresh this period: the dead-man switch
            # re-evaluates every step so an expired lease keeps ramping the
            # cap down even when the endpoint above has gone silent.
            effective = self.policy.effective_cap(now)
            if effective != self.pio.read_control(
                ControlNames.CPU_POWER_LIMIT_CONTROL
            ):
                self.pio.write_control(
                    ControlNames.CPU_POWER_LIMIT_CONTROL, effective
                )
        own_power, own_energy, applied = self.pio.sample()
        if self._child_samples:
            children = self._child_samples.values()
            power = own_power + sum(s.power for s in children)
            energy = own_energy + sum(s.energy for s in children)
            nodes = 1 + sum(s.nodes for s in children)
        else:
            # Leaf agents (the vast majority) aggregate nothing.
            power, energy, nodes = own_power, own_energy, 1
        epoch = self.profiler.epoch_count if self.profiler is not None else 0
        sample = AgentSample(
            timestamp=now,
            power=power,
            energy=energy,
            epoch_count=epoch,
            nodes=nodes,
            applied_cap=applied,
        )
        self.last_sample = sample
        return sample


class JobAgentGroup:
    """A job's agents plus the tree and endpoint gluing them together.

    Stepping the group once is one agent control period: the root pulls any
    fresh policy from the endpoint, every agent applies the policy it
    received *last* period (one hop of staleness per tree level), and
    subtree-aggregated samples move one hop toward the root, where the final
    sample is published to the endpoint.
    """

    def __init__(
        self,
        platform_ios: list[PlatformIO],
        profiler: EpochProfiler,
        endpoint: Endpoint,
        *,
        fanout: int = 8,
    ) -> None:
        if not platform_ios:
            raise ValueError("a job needs at least one node")
        self.tree = AgentTree(len(platform_ios), fanout=fanout)
        self.endpoint = endpoint
        self.agents = [
            PowerGovernorAgent(
                pio,
                tree_index=i,
                profiler=profiler if i == 0 else None,
            )
            for i, pio in enumerate(platform_ios)
        ]

    def step(self, now: float) -> AgentSample:
        """Run one control period for every agent; returns the root sample."""
        policy = self.endpoint.take_policy()
        if policy is not None:
            self.agents[0].deliver_policy(policy)
        # Forward the policy each parent applied *last* period one hop down,
        # before anyone steps: propagation costs one control period per tree
        # level (the root's fresh policy is still in its inbox, so children
        # see it only next period).
        for i in self.tree.breadth_first():
            parent_policy = self.agents[i].policy
            if parent_policy is not None:
                for child in self.tree.children(i):
                    self.agents[child].deliver_policy(parent_policy)
        samples: dict[int, AgentSample] = {}
        for i in self.tree.breadth_first():
            samples[i] = self.agents[i].step(now)
        # Samples move one hop per period: deposit this period's subtree
        # samples into parents for aggregation next period.
        for i in self.tree.breadth_first():
            parent = self.tree.parent(i)
            if parent is not None:
                self.agents[parent].deliver_child_sample(i, samples[i])
        root_sample = samples[0]
        # The root's epoch count is authoritative; re-stamp aggregate nodes
        # to the job's true width once child samples have propagated.
        self.endpoint.publish_sample(root_sample)
        return root_sample

    @property
    def num_nodes(self) -> int:
        return len(self.agents)

    def applied_caps(self) -> list[float]:
        """Per-node caps currently programmed (for convergence tests)."""
        return [
            a.pio.read_control(ControlNames.CPU_POWER_LIMIT_CONTROL)
            for a in self.agents
        ]
