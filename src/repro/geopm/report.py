"""GEOPM-style job reports ("Application Totals", paper §5.4).

The paper's hardware experiments read job execution time from the
Application Totals section of GEOPM reports generated for each job.  This
module builds those totals from endpoint samples and renders them in a
GEOPM-report-like YAML flavour so downstream tooling reads familiar keys.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ApplicationTotals", "render_report"]


@dataclass(frozen=True)
class ApplicationTotals:
    """Whole-job aggregates, one per completed job."""

    job_id: str
    job_type: str
    nodes: int
    runtime: float  # seconds spent running the benchmark (compute phase)
    sojourn: float  # submit -> completion (QoS numerator basis, §5.2)
    energy: float  # CPU joules across all nodes
    epoch_count: int
    average_power: float  # CPU watts across all nodes while running

    def __post_init__(self) -> None:
        if self.runtime < 0 or self.sojourn < 0:
            raise ValueError("runtime and sojourn must be non-negative")
        if self.sojourn + 1e-9 < self.runtime:
            raise ValueError(
                f"sojourn {self.sojourn} cannot be shorter than runtime {self.runtime}"
            )

    def slowdown_vs(self, t_uncapped: float) -> float:
        """Fractional runtime slowdown vs. an uncapped reference time."""
        if t_uncapped <= 0:
            raise ValueError(f"t_uncapped must be positive, got {t_uncapped}")
        return self.runtime / t_uncapped - 1.0

    def qos_degradation(self, t_min: float) -> float:
        """Q = (T_sojourn − T_min) / T_min (paper §5.2)."""
        if t_min <= 0:
            raise ValueError(f"t_min must be positive, got {t_min}")
        return (self.sojourn - t_min) / t_min


def render_report(totals: ApplicationTotals) -> str:
    """Render one job's report in a GEOPM-like YAML layout."""
    lines = [
        f"Hosts: {totals.nodes}",
        f"Profile: {totals.job_id}",
        "Application Totals:",
        f"    runtime (s): {totals.runtime:.6g}",
        f"    sojourn (s): {totals.sojourn:.6g}",
        f"    package-energy (J): {totals.energy:.6g}",
        f"    power (W): {totals.average_power:.6g}",
        f"    epoch-count: {totals.epoch_count}",
        f"    job-type: {totals.job_type}",
    ]
    return "\n".join(lines) + "\n"
