"""Target forecasters: past target samples → a horizon of (t, ŷ, confidence).

A forecaster sees exactly what the cluster manager sees — the target value
read at each control round — and extrapolates it over the planning horizon.
Four families cover the target sources the framework ships:

* :class:`PersistenceForecaster` — ŷ(t) = last observation.  The baseline
  every other forecaster must beat; exact for constant targets.
* :class:`RampForecaster` — fits the slope of the most recent samples by
  least squares and extrapolates linearly.  Matches stepped ramps and slow
  tariff/carbon transitions.
* :class:`AR1Forecaster` — mean-reverting AR(1) extrapolation for
  ``aqa.regulation`` signals: ŷ(t) = μ + ρ^k · (y − μ).  Fit offline from a
  regulation signal's vectorised :meth:`~repro.aqa.regulation.RegulationSignal.series`.
* :class:`ScheduleForecaster` — not a statistical model at all: file-backed
  targets publish their upcoming breakpoints via ``window(t, horizon)``, so
  the "forecast" is exact and its breakpoints become plan instants.

Every forecaster tracks its own online error (MAE/bias over a sliding
window) via :class:`ForecastErrorWindow`; the safety envelope reads that
window to decide when predictions can be trusted.
:class:`InvertedRampForecaster` deliberately extrapolates the wrong way —
the adversarial probe the forecast drill uses to prove the envelope holds.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.targets import HoldLastGoodTarget, PowerTargetSource, RegulationTarget

__all__ = [
    "ForecastPoint",
    "ForecastErrorWindow",
    "TargetForecaster",
    "PersistenceForecaster",
    "RampForecaster",
    "InvertedRampForecaster",
    "AR1Forecaster",
    "ScheduleForecaster",
    "make_forecaster",
]

FORECASTER_KINDS = ("auto", "schedule", "persistence", "ramp", "ar1", "adversarial")


@dataclass(frozen=True)
class ForecastPoint:
    """One horizon point: predicted target ``value`` (W) at ``time``.

    ``confidence`` ∈ (0, 1] decays with lookahead distance; the planner
    currently records it for observability (the envelope's min-bound makes
    the plan safe regardless), but a future multi-cluster layer can weight
    pre-positioning decisions by it.
    """

    time: float
    value: float
    confidence: float


class ForecastErrorWindow:
    """Sliding window of signed forecast errors (actual − predicted)."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"error window must be ≥ 1, got {window}")
        self.window = int(window)
        self._errors: deque[float] = deque(maxlen=self.window)

    def push(self, error: float) -> None:
        self._errors.append(float(error))

    @property
    def count(self) -> int:
        return len(self._errors)

    @property
    def mae(self) -> float:
        """Mean absolute error (W) over the window; 0 when empty."""
        if not self._errors:
            return 0.0
        return float(np.mean(np.abs(self._errors)))

    @property
    def bias(self) -> float:
        """Mean signed error (W); positive means the forecast runs low."""
        if not self._errors:
            return 0.0
        return float(np.mean(self._errors))

    def reset(self) -> None:
        self._errors.clear()


class TargetForecaster(ABC):
    """Common interface: observe target samples, emit a forecast horizon.

    Subclasses implement :meth:`predict`; the base class handles sample
    bookkeeping, confidence decay, and the online error window.  The
    *caller* (the planner) decides which issued predictions to score via
    :meth:`record_error` — the forecaster itself has no notion of the
    control-round cadence.
    """

    #: human-readable name used in drill tables and telemetry
    name: str = "abstract"

    def __init__(self, *, error_window: int = 16, confidence_tau: float = 60.0) -> None:
        if confidence_tau <= 0:
            raise ValueError(f"confidence_tau must be positive, got {confidence_tau}")
        self.errors = ForecastErrorWindow(error_window)
        self.confidence_tau = float(confidence_tau)
        self._last_t: float | None = None
        self._last_y: float | None = None

    # -- observation ------------------------------------------------------
    def observe(self, t: float, y: float) -> None:
        """Feed one actual target sample (what the manager just read)."""
        self._last_t = float(t)
        self._last_y = float(y)
        self._observe(float(t), float(y))

    def _observe(self, t: float, y: float) -> None:
        """Subclass hook: update internal fit state on a new sample."""

    @property
    def last_observation(self) -> tuple[float, float] | None:
        if self._last_t is None or self._last_y is None:
            return None
        return (self._last_t, self._last_y)

    # -- prediction -------------------------------------------------------
    @abstractmethod
    def predict(self, now: float, t: float) -> float:
        """Predicted target (W) at future time ``t`` given samples up to ``now``."""

    def confidence(self, now: float, t: float) -> float:
        """Confidence in a prediction ``t − now`` seconds ahead, in (0, 1]."""
        return math.exp(-max(t - now, 0.0) / self.confidence_tau)

    def forecast(self, now: float, times: Iterable[float]) -> list[ForecastPoint]:
        """Emit the horizon of ``(t, ŷ, confidence)`` points."""
        return [
            ForecastPoint(float(t), self.predict(now, float(t)), self.confidence(now, float(t)))
            for t in times
        ]

    def breakpoints(self, now: float, horizon: float) -> tuple[float, ...]:
        """Future instants where the target is *known* to change; empty for
        statistical forecasters."""
        return ()

    # -- error tracking ---------------------------------------------------
    def record_error(self, error: float) -> None:
        """Record one signed error (actual − predicted) for a scored point."""
        self.errors.push(error)

    @property
    def mae(self) -> float:
        return self.errors.mae

    @property
    def bias(self) -> float:
        return self.errors.bias

    def _require_observation(self) -> tuple[float, float]:
        if self._last_t is None or self._last_y is None:
            raise ValueError(f"{self.name} forecaster has no observations yet")
        return (self._last_t, self._last_y)


class PersistenceForecaster(TargetForecaster):
    """ŷ(t) = last observed target — the zero-order-hold baseline."""

    name = "persistence"

    def predict(self, now: float, t: float) -> float:
        _, y = self._require_observation()
        return y


class RampForecaster(TargetForecaster):
    """Linear extrapolation of the recent target slope.

    Fits a least-squares line through the last ``fit_points`` samples and
    extends it from the newest observation.  ``max_slope`` (W/s) optionally
    clamps the fitted slope so one bad sample cannot launch the forecast.
    """

    name = "ramp"

    def __init__(
        self,
        *,
        fit_points: int = 8,
        max_slope: float | None = None,
        error_window: int = 16,
        confidence_tau: float = 60.0,
    ) -> None:
        super().__init__(error_window=error_window, confidence_tau=confidence_tau)
        if fit_points < 2:
            raise ValueError(f"fit_points must be ≥ 2, got {fit_points}")
        if max_slope is not None and max_slope <= 0:
            raise ValueError(f"max_slope must be positive, got {max_slope}")
        self.fit_points = int(fit_points)
        self.max_slope = None if max_slope is None else float(max_slope)
        self._samples: deque[tuple[float, float]] = deque(maxlen=self.fit_points)

    def _observe(self, t: float, y: float) -> None:
        if self._samples and self._samples[-1][0] == t:
            self._samples[-1] = (t, y)
        else:
            self._samples.append((t, y))

    def slope(self) -> float:
        """Fitted slope (W/s) over the retained samples; 0 with < 2 points."""
        if len(self._samples) < 2:
            return 0.0
        ts = np.array([s[0] for s in self._samples])
        ys = np.array([s[1] for s in self._samples])
        tc = ts - ts.mean()
        denom = float(np.dot(tc, tc))
        if denom <= 0.0:
            return 0.0
        slope = float(np.dot(tc, ys - ys.mean()) / denom)
        if self.max_slope is not None:
            slope = float(np.clip(slope, -self.max_slope, self.max_slope))
        return slope

    def predict(self, now: float, t: float) -> float:
        t0, y0 = self._require_observation()
        return y0 + self.slope() * (t - t0)


class InvertedRampForecaster(RampForecaster):
    """Adversarial probe: extrapolates the fitted slope *backwards*.

    Wrong by construction — roughly twice the true move per step — so the
    forecast drill can demonstrate that the safety envelope keeps planned
    draw inside the reactive bound and that fallback engages once windowed
    error crosses the configured limit.
    """

    name = "inverted-ramp"

    def slope(self) -> float:
        return -super().slope()


class AR1Forecaster(TargetForecaster):
    """Mean-reverting AR(1) extrapolation: ŷ(t) = μ + ρ^k · (y_now − μ).

    ``rho`` is the per-``step`` autocorrelation; ``k = (t − t_now) / step``.
    Built for :class:`~repro.core.targets.RegulationTarget` sources, whose
    signals are bounded mean-reverting walks; :meth:`fit_regulation`
    estimates μ and ρ offline from the signal's vectorised ``series()``.
    """

    name = "ar1"

    def __init__(
        self,
        *,
        mean_power: float,
        rho: float,
        step: float = 4.0,
        error_window: int = 16,
    ) -> None:
        super().__init__(error_window=error_window)
        if mean_power <= 0:
            raise ValueError(f"mean_power must be positive, got {mean_power}")
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        self.mean_power = float(mean_power)
        self.rho = float(rho)
        self.step = float(step)

    @classmethod
    def fit_regulation(
        cls,
        target: RegulationTarget,
        *,
        fit_duration: float = 1800.0,
        error_window: int = 16,
    ) -> "AR1Forecaster":
        """Estimate μ and ρ from a regulation target's signal.

        Samples the signal on its update grid via the vectorised
        :meth:`~repro.aqa.regulation.RegulationSignal.series` path and
        regresses lag-1 values; μ comes from the signal mean mapped through
        ``P̄ + R·ȳ``.
        """
        if fit_duration <= target.update_period:
            raise ValueError("fit_duration must cover at least two update periods")
        times = np.arange(0.0, fit_duration, target.update_period)
        y = np.asarray(target.signal.series(times), dtype=float)
        centred = y - y.mean()
        denom = float(np.dot(centred[:-1], centred[:-1]))
        rho = float(np.dot(centred[1:], centred[:-1]) / denom) if denom > 0 else 0.0
        rho = float(np.clip(rho, 0.0, 0.999))
        mean_power = target.average_power + target.reserve * float(y.mean())
        return cls(
            mean_power=mean_power,
            rho=rho,
            step=target.update_period,
            error_window=error_window,
        )

    def predict(self, now: float, t: float) -> float:
        _, y = self._require_observation()
        k = max(t - now, 0.0) / self.step
        return self.mean_power + (self.rho**k) * (y - self.mean_power)

    def confidence(self, now: float, t: float) -> float:
        k = max(t - now, 0.0) / self.step
        return max(self.rho**k, 1e-6)


class ScheduleForecaster(TargetForecaster):
    """Exact lookahead over a source that publishes future breakpoints.

    File-backed targets (``SteppedTarget`` from :func:`load_target_file`)
    already *know* their future: ``window(t, horizon)`` returns the upcoming
    (time, watts) breakpoints.  Forecasting what is already written down
    would be silly, so this forecaster replays the schedule exactly
    (confidence 1.0) and surfaces the breakpoints as plan instants.
    """

    name = "schedule"

    def __init__(self, source: PowerTargetSource, *, error_window: int = 16) -> None:
        super().__init__(error_window=error_window)
        if not hasattr(source, "window"):
            raise ValueError(
                f"{type(source).__name__} has no window(t, horizon) method; "
                "a schedule forecaster needs a breakpoint-publishing source"
            )
        self.source = source

    def predict(self, now: float, t: float) -> float:
        return float(self.source.target(t))

    def confidence(self, now: float, t: float) -> float:
        return 1.0

    def breakpoints(self, now: float, horizon: float) -> tuple[float, ...]:
        return tuple(time for time, _ in self.source.window(now, horizon))


def unwrap_target_source(source: PowerTargetSource) -> PowerTargetSource:
    """Peel fault-tolerance wrappers off a target source.

    The manager reads targets through :class:`HoldLastGoodTarget`; the
    forecaster wants the raw schedule/signal underneath.
    """
    while isinstance(source, HoldLastGoodTarget):
        source = source.inner
    return source


def make_forecaster(
    kind: str,
    source: PowerTargetSource,
    *,
    error_window: int = 16,
    fit_duration: float = 1800.0,
) -> TargetForecaster:
    """Build the forecaster ``kind`` for ``source``.

    ``"auto"`` picks the best available: exact schedule lookahead when the
    source publishes breakpoints, AR(1) for regulation targets, persistence
    otherwise.  ``"adversarial"`` is the drill's inverted-ramp probe.
    """
    if kind not in FORECASTER_KINDS:
        raise ValueError(
            f"unknown forecaster kind {kind!r}; expected one of {FORECASTER_KINDS}"
        )
    raw = unwrap_target_source(source)
    if kind == "auto":
        if hasattr(raw, "window"):
            kind = "schedule"
        elif isinstance(raw, RegulationTarget):
            kind = "ar1"
        else:
            kind = "persistence"
    if kind == "schedule":
        return ScheduleForecaster(raw, error_window=error_window)
    if kind == "persistence":
        return PersistenceForecaster(error_window=error_window)
    if kind == "ramp":
        return RampForecaster(error_window=error_window)
    if kind == "adversarial":
        return InvertedRampForecaster(error_window=error_window)
    # kind == "ar1"
    if not isinstance(raw, RegulationTarget):
        raise ValueError(
            f"ar1 forecaster needs a RegulationTarget source, got {type(raw).__name__}"
        )
    return AR1Forecaster.fit_regulation(
        raw, fit_duration=fit_duration, error_window=error_window
    )
