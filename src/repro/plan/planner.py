"""Receding-horizon planner: pre-solve the budgeter over the next H rounds.

The planner (when enabled) maintains a short plan: it asks the forecaster
for the target at each of the next ``horizon_rounds`` round instants (plus
any *exact* breakpoints a schedule forecaster publishes), clamps each
predicted target through the safety envelope's ``min(forecast,
last-observed)`` bound, and solves the configured budgeter once per horizon
point.  The result is a per-job **cap trajectory** — the caps the manager
would dispatch at each upcoming instant if the forecast holds.  Replanning
is event-triggered: the trajectory is reused round to round while dispatch
keeps warm-hitting it, and fully re-solved on any deviation (job churn,
pool drift, forecast miss) or once half the horizon has elapsed.

At dispatch time the manager consumes the plan as a warm start
(:meth:`RecedingHorizonPlanner.dispatch`): if the envelope is ``active``,
the pre-solved round for "now" matches the current job set, and its planned
total fits the budget pool derived from the *actual* target just read, the
stored caps are used without re-solving.  Otherwise the budgeter runs fresh
against the actual pool — exactly the reactive path.  Either way a
cap-churn hysteresis pass then holds each job's previous cap when the new
one moved by less than ``hysteresis_watts`` (and the held total still fits
the pool), suppressing the per-round correction-drift micro-rewrites that
dominate cap churn on regulation targets.

Plan **instants** — breakpoints the schedule forecaster knows about — are
exposed via :meth:`next_instant`/:meth:`take_due_instants` so the framework
can fire extra control rounds exactly when the target steps, and register
them with the event calendar so event-driven striding stays bit-identical
to tick stepping.  Instants are only surfaced while the envelope is
``active``: in shadow/fallback the control cadence must be exactly the
reactive one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.budget.base import BudgetAllocation, JobBudgetRequest, PowerBudgeter
from repro.plan.envelope import PLAN_ACTIVE, SafetyEnvelope
from repro.plan.forecast import TargetForecaster

__all__ = ["PlannedRound", "Plan", "RecedingHorizonPlanner"]


@dataclass(frozen=True)
class PlannedRound:
    """One point of the cap trajectory.

    Rounds carry ``caps=None`` until materialized: their budget and
    forecast are fixed at build time, but the budgeter solve is deferred
    until dispatch actually warm-hits the round (most rounds are
    superseded by a replan first, so solving them eagerly is pure waste).
    """

    time: float  # instant this round is planned for
    forecast: float  # ŷ(time) from the forecaster (W)
    confidence: float  # forecaster confidence at this lookahead
    effective_target: float  # min(forecast, last-observed) — envelope bound
    budget: float  # pool the budgeter was solved against (W)
    caps: Mapping[str, float] | None  # job_id -> per-node cap (W); None = lazy
    planned_watts: float | None  # Σ caps·nodes over the planned job set
    signature: tuple  # job-set identity the solve assumed


@dataclass
class Plan:
    """A cap trajectory built at one control round."""

    built_at: float
    rounds: list[PlannedRound] = field(default_factory=list)

    def round_at(self, now: float, *, max_age: float, eps: float) -> PlannedRound | None:
        """Zero-order-hold lookup: the newest round at or before ``now``.

        Returns None when the best candidate is older than ``max_age`` —
        a stale trajectory point must not be replayed past the next round.
        """
        best: PlannedRound | None = None
        for rnd in self.rounds:
            if rnd.time <= now + eps and (best is None or rnd.time > best.time):
                best = rnd
        if best is None or now - best.time > max_age + eps:
            return None
        return best


class RecedingHorizonPlanner:
    """Budgeter lookahead with warm-start dispatch and churn hysteresis."""

    def __init__(
        self,
        *,
        budgeter: PowerBudgeter,
        forecaster: TargetForecaster,
        envelope: SafetyEnvelope,
        horizon_rounds: int = 8,
        period: float = 4.0,
        hysteresis_watts: float = 8.0,
        eager_rounds: int = 0,
    ) -> None:
        if horizon_rounds < 1:
            raise ValueError(f"horizon_rounds must be ≥ 1, got {horizon_rounds}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if hysteresis_watts < 0:
            raise ValueError(f"hysteresis_watts must be ≥ 0, got {hysteresis_watts}")
        self.budgeter = budgeter
        self.forecaster = forecaster
        self.envelope = envelope
        self.horizon_rounds = int(horizon_rounds)
        self.period = float(period)
        self.hysteresis_watts = float(hysteresis_watts)
        self._eps = self.period * 1e-6
        # Rounds solve lazily by default: bursty scenarios rebuild almost
        # every control round (job churn invalidates the signature), so
        # eager solves are mostly thrown away — dispatch materializes a
        # round's caps only when its budget actually matches the live pool.
        # eager_rounds > 0 pre-solves the first rounds at build time for
        # callers that want to inspect the trajectory immediately.
        self._eager_rounds = max(0, int(eager_rounds))
        self.plan: Plan | None = None
        self._instants: list[float] = []
        # counters for drills/telemetry
        self.plans_built = 0
        self.plan_reuses = 0
        self.lazy_solves = 0
        self.warm_hits = 0
        self.fresh_solves = 0
        self.hysteresis_holds = 0
        #: (time, predicted, actual) — plan-vs-actual deviation record
        self.deviations: list[tuple[float, float, float]] = []
        self._pending: list[tuple[float, float]] = []
        # Model interning for cheap signatures: value-equal models share a
        # small int token (the job tier refits models online, so a job's
        # model is often a fresh-but-equal object each round).  The id()
        # fast path makes the common stable-object case a dict hit; the
        # strong reference in _model_refs pins each object so its id() can
        # never be reused by a different model while this planner is alive.
        self._model_tokens: dict[int, int] = {}
        self._model_index: dict[object, int] = {}
        self._model_refs: list[object] = []

    # -- state ------------------------------------------------------------
    @property
    def state(self) -> str:
        return self.envelope.state

    @property
    def active(self) -> bool:
        return self.envelope.state == PLAN_ACTIVE

    # -- observation / scoring --------------------------------------------
    def observe(self, now: float, target: float) -> str:
        """Score pending forecasts against the target just read, then advance
        the envelope state machine.  Called once per control round, before
        budgeting."""
        self.forecaster.observe(now, target)
        due = [p for p in self._pending if p[0] <= now + self._eps]
        if due:
            _, predicted = due[-1]
            self.forecaster.record_error(target - predicted)
            self.deviations.append((now, predicted, target))
            self._pending = [p for p in self._pending if p[0] > now + self._eps]
        return self.envelope.update(now, self.forecaster.mae, self.forecaster.errors.count)

    # -- plan construction ------------------------------------------------
    def _model_token(self, model: object) -> int:
        # id() is safe as a cache key only because _model_refs keeps the
        # model alive: a bare id() in the signature would let the allocator
        # hand a freed model's address to a different one, making unequal
        # signatures compare equal in a run-to-run-varying pattern.
        token = self._model_tokens.get(id(model))
        if token is not None:
            return token
        try:
            token = self._model_index.get(model)
            if token is None:
                token = len(self._model_refs)
                self._model_index[model] = token
        except TypeError:
            # unhashable model: identity is the only equality available
            token = len(self._model_refs)
        self._model_tokens[id(model)] = token
        self._model_refs.append(model)
        return token

    def _signature(self, requests: Sequence[JobBudgetRequest]) -> tuple:
        # Interned int tokens instead of the models themselves: signatures
        # are built and compared every control round, and value-comparing
        # each model (a Python-level dataclass __eq__ per job) costs a
        # measurable slice of the whole control loop at realistic job counts.
        return tuple(
            (j.job_id, j.nodes, self._model_token(j.model), j.p_min, j.p_max)
            for j in requests
        )

    def rebuild(
        self,
        now: float,
        requests: Sequence[JobBudgetRequest],
        *,
        observed_target: float,
        idle_power: float,
        reserved: float,
        correction: float,
    ) -> Plan:
        """Solve the cap trajectory for the next ``horizon_rounds`` rounds.

        ``observed_target`` is the actual target read this round — the
        envelope clamps every horizon point to ``min(ŷ, observed)``.  Idle
        draw, reserved (stale/dormant/quarantined) power, and the feedback
        correction are assumed constant over the horizon; they re-enter
        exactly at dispatch time, so this assumption only affects warm-hit
        quality, never safety.

        Replanning is event-triggered: while the trajectory is still valid
        (envelope active, job set unchanged, horizon not yet consumed) the
        existing plan is reused instead of re-solved — budgeter solves are
        the planner's whole cost on the reactive path, so rebuilds fix
        budgets and forecasts only, deferring every cap solve until a
        dispatch warm-hits the round (``eager_rounds`` pre-solves the head
        of the trajectory for callers that inspect it immediately).  Job
        churn or an envelope trip forces a full rebuild.
        """
        sig = self._signature(requests)
        if self._plan_reusable(now, sig):
            self.plan_reuses += 1
            return self.plan
        horizon = self.horizon_rounds * self.period
        times = [now + k * self.period for k in range(self.horizon_rounds + 1)]
        breaks = [
            float(b)
            for b in self.forecaster.breakpoints(now, horizon)
            if now + self._eps < b <= now + horizon
        ]
        for b in breaks:
            if all(abs(b - t) > self._eps for t in times):
                times.append(b)
        times.sort()
        rounds: list[PlannedRound] = []
        for k, point in enumerate(self.forecaster.forecast(now, times)):
            effective = self.envelope.bound(point.value, observed_target)
            budget = max(effective - idle_power + correction - reserved, 1.0)
            caps: dict[str, float] | None = None
            planned: float | None = None
            if k < self._eager_rounds:
                alloc = self.budgeter.allocate(requests, budget)
                caps = dict(alloc.caps)
                planned = sum(caps[j.job_id] * j.nodes for j in requests)
            rounds.append(
                PlannedRound(
                    time=point.time,
                    forecast=point.value,
                    confidence=point.confidence,
                    effective_target=effective,
                    budget=budget,
                    caps=caps,
                    planned_watts=planned,
                    signature=sig,
                )
            )
        self.plan = Plan(built_at=now, rounds=rounds)
        self.plans_built += 1
        self._pending = [(r.time, r.forecast) for r in rounds if r.time > now + self._eps]
        self._instants = sorted(breaks)
        return self.plan

    def _plan_reusable(self, now: float, sig: tuple) -> bool:
        """True while the standing trajectory still matches reality.

        Forecast quality is already policed by the envelope — staying
        ``active`` means the error window is inside the bound — so the plan
        only goes stale through job churn (signature mismatch) or running
        out of horizon.  Shadow and fallback never reuse: their rebuilds
        feed the scoring that earns (re-)promotion, and a mispriced round
        can never be dispatched anyway (the warm-hit pool check rejects
        it).
        """
        if self.plan is None or not self.active:
            return False
        rounds = self.plan.rounds
        if not rounds or rounds[0].signature != sig:
            return False
        runway = sum(1 for r in rounds if r.time > now + self._eps)
        return runway >= min(2, self.horizon_rounds)

    def clear(self) -> None:
        """Drop the current plan (no active jobs to plan for)."""
        self.plan = None
        self._pending = []
        self._instants = []

    # -- plan instants (event-calendar integration) ------------------------
    def next_instant(self) -> float | None:
        """Earliest upcoming plan instant, or None when inactive/empty."""
        if not self.active or not self._instants:
            return None
        return self._instants[0]

    def take_due_instants(self, now: float) -> bool:
        """Pop instants at or before ``now``; True when an active plan wants a
        control round fired at this tick."""
        due = [t for t in self._instants if t <= now + self._eps]
        if not due:
            return False
        self._instants = [t for t in self._instants if t > now + self._eps]
        return self.active

    # -- dispatch ----------------------------------------------------------
    def dispatch(
        self,
        now: float,
        requests: Sequence[JobBudgetRequest],
        pool: float,
        last_caps: Mapping[str, float | None],
    ) -> BudgetAllocation | None:
        """Produce this round's allocation, warm-starting from the plan.

        ``pool`` is the budget derived from the *actual* target read this
        round; the planned caps are only used when their total fits it, so
        a wrong forecast can never push allocation past the reactive bound.
        Returns None when the envelope is not ``active`` (caller runs the
        plain reactive path).
        """
        if not self.active:
            return None
        sig = self._signature(requests)
        rnd = None
        if self.plan is not None:
            rnd = self.plan.round_at(now, max_age=self.period, eps=self._eps)
        # The budget tolerance bounds the systematic under-allocation a
        # stale-but-reused round can introduce: caps solved for a budget
        # within 0.5% of the actual pool track it to within 0.5%.
        candidate = (
            rnd is not None
            and rnd.signature == sig
            and abs(rnd.budget - pool) <= max(0.005 * pool, 1.0)
        )
        if candidate and rnd.caps is None:
            rnd = self._materialize(rnd, requests)
        warm = candidate and rnd.planned_watts <= pool + 1e-6
        if warm:
            caps = dict(rnd.caps)
            meta: dict[str, float] = {"plan_warm": 1.0, "plan_round_time": rnd.time}
            self.warm_hits += 1
        else:
            alloc = self.budgeter.allocate(requests, pool)
            caps = dict(alloc.caps)
            meta = dict(alloc.meta)
            meta["plan_warm"] = 0.0
            self.fresh_solves += 1
        caps, held = self._apply_hysteresis(caps, last_caps, requests, pool)
        if held:
            meta["plan_held_caps"] = float(held)
            self.hysteresis_holds += held
        return BudgetAllocation(caps=caps, budget=pool, meta=meta)

    def _materialize(self, rnd: PlannedRound, requests: Sequence[JobBudgetRequest]) -> PlannedRound:
        """Solve a lazily planned round at its build-time budget, in place."""
        alloc = self.budgeter.allocate(requests, rnd.budget)
        caps = dict(alloc.caps)
        full = PlannedRound(
            time=rnd.time,
            forecast=rnd.forecast,
            confidence=rnd.confidence,
            effective_target=rnd.effective_target,
            budget=rnd.budget,
            caps=caps,
            planned_watts=sum(caps[j.job_id] * j.nodes for j in requests),
            signature=rnd.signature,
        )
        assert self.plan is not None
        self.plan.rounds[self.plan.rounds.index(rnd)] = full
        self.lazy_solves += 1
        return full

    def _apply_hysteresis(
        self,
        caps: dict[str, float],
        last_caps: Mapping[str, float | None],
        requests: Sequence[JobBudgetRequest],
        pool: float,
    ) -> tuple[dict[str, float], int]:
        """Hold each job's previous cap when the new one barely moved.

        The held set is only accepted when its total stays within the
        dispatch pool (or does not exceed the freshly solved total) — the
        budget invariant outranks churn suppression.
        """
        if self.hysteresis_watts <= 0:
            return caps, 0
        held_caps: dict[str, float] = {}
        held = 0
        for job in requests:
            new = caps[job.job_id]
            old = last_caps.get(job.job_id)
            if (
                old is not None
                and abs(new - old) <= self.hysteresis_watts
                and job.p_min <= old <= job.p_max
                and old != new
            ):
                held_caps[job.job_id] = float(old)
                held += 1
            else:
                held_caps[job.job_id] = new
        if not held:
            return caps, 0
        total_held = sum(held_caps[j.job_id] * j.nodes for j in requests)
        total_new = sum(caps[j.job_id] * j.nodes for j in requests)
        if total_held > max(pool, total_new) + 1e-6:
            return caps, 0
        return held_caps, held
